// Ablation: bagging ensemble size (Section IV.D uses 30 ANNs).
//
// Sweeps the number of bagged nets and reports held-out test accuracy,
// exact best-size hits on the scheduling set, and the energy degradation
// of mispredictions — showing what the ensemble buys over a single ANN.
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  // Build the suite once; retrain predictors of different sizes on it.
  ExperimentOptions base_options;
  Experiment experiment(base_options);
  const CharacterizedSuite& suite = experiment.suite();
  const Dataset dataset = build_ann_dataset(suite, suite.training_ids());

  std::cout << "=== Ablation: bagging ensemble size ===\n\n";

  TablePrinter table({"ensemble", "test accuracy", "test MSE",
                      "scheduling hits", "mean degradation",
                      "worst degradation"});
  for (std::size_t ensemble : {1u, 3u, 10u, 30u, 60u}) {
    PredictorConfig config = base_options.predictor;
    config.ensemble_size = ensemble;
    Rng rng(base_options.seed);
    BestSizePredictor predictor(dataset, config, rng);

    RunningStats degradation;
    std::size_t hits = 0;
    for (std::size_t id : experiment.scheduling_ids()) {
      const BenchmarkProfile& b = suite.benchmark(id);
      const std::uint32_t predicted =
          predictor.predict_size_bytes(b.base_statistics);
      const std::uint32_t oracle = b.oracle_best_size();
      if (predicted == oracle) ++hits;
      degradation.add(b.best_for_size(predicted).energy.total() /
                          b.best_for_size(oracle).energy.total() -
                      1.0);
    }
    table.add_row(
        {std::to_string(ensemble),
         TablePrinter::num(predictor.report().test_accuracy * 100.0, 1) + "%",
         TablePrinter::num(predictor.report().test_mse),
         std::to_string(hits) + "/" +
             std::to_string(experiment.scheduling_ids().size()),
         TablePrinter::pct(degradation.mean()),
         TablePrinter::pct(degradation.max())});
  }
  table.print(std::cout);
  std::cout << "\nPaper setting: 30 bagged ANNs with random weight "
               "initialisation, averaged outputs.\n";
  return 0;
}
