// Ablation: cache microarchitecture options.
//
// The paper's configurable cache is write-back/write-allocate with no
// prefetching. This bench sweeps the architecture options the simulator
// supports — replacement policy, write policy, next-line prefetch — over
// the whole suite in the base configuration, showing how each choice
// moves the quantities the Figure-4 energy model consumes.
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  SuiteOptions suite_options;  // standard scale, single variant
  suite_options.variants_per_kernel = 1;
  const auto kernels = make_suite_kernels(suite_options);

  struct Variant {
    std::string label;
    CacheOptions options;
  };
  const Variant variants[] = {
      {"LRU / write-back (paper)", {}},
      {"FIFO / write-back",
       {.replacement = ReplacementPolicy::kFifo}},
      {"LRU / write-through",
       {.write = WritePolicy::kWriteThroughNoAllocate}},
      {"LRU / write-back + prefetch",
       {.next_line_prefetch = true}},
  };

  std::cout << "=== Ablation: cache architecture options (base config "
            << DesignSpace::base_config().name() << ") ===\n\n";

  TablePrinter table({"variant", "miss rate", "writebacks/kref",
                      "writethroughs/kref", "prefetches/kref"});
  for (const Variant& variant : variants) {
    RunningStats miss_rate, wb, wt, pf;
    for (std::size_t k = 0; k < kernels.size(); ++k) {
      const KernelExecution exec = execute(*kernels[k], 1000 + k);
      Cache cache(DesignSpace::base_config(), variant.options);
      for (const MemRef& ref : exec.trace) cache.access(ref);
      const CacheStats& s = cache.stats();
      const double krefs = static_cast<double>(s.accesses) / 1000.0;
      miss_rate.add(s.miss_rate());
      wb.add(static_cast<double>(s.writebacks) / krefs);
      wt.add(static_cast<double>(s.writethroughs) / krefs);
      pf.add(static_cast<double>(s.prefetch_fills) / krefs);
    }
    table.add_row({variant.label, TablePrinter::num(miss_rate.mean(), 4),
                   TablePrinter::num(wb.mean(), 1),
                   TablePrinter::num(wt.mean(), 1),
                   TablePrinter::num(pf.mean(), 1)});
  }
  table.print(std::cout);

  std::cout << "\nSuite means per kernel; /kref = per thousand cache "
               "accesses. Write-through floods the off-chip interface "
               "with store traffic and the next-line prefetcher only pays "
               "off on the streaming kernels — supporting the paper's "
               "write-back baseline.\n";
  return 0;
}
