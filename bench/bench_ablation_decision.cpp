// Ablation: the Section IV.E energy-advantageous decision.
//
// Compares four scheduling disciplines on the identical arrival stream:
//   always-stall   (energy-centric: fixed "stall" answer)
//   never-stall    (fixed "run on an idle non-best core" answer)
//   decision       (the proposed scheduler)
//   decision+oracle(proposed with a perfect size predictor)
// This isolates the paper's core observation: neither fixed decision
// dominates; the energy evaluation is what wins.
#include <iostream>

#include "core/tuning_heuristic.hpp"
#include "experiment/experiment.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace hetsched;

// Proposed-system flow with the stall-vs-run question hardwired to "run":
// if the best core is busy, take the first idle core (tuning it if its
// best configuration is unknown). Never stalls after profiling.
class NeverStallPolicy final : public SchedulerPolicy {
 public:
  explicit NeverStallPolicy(const SizePredictor& predictor)
      : predictor_(&predictor) {}

  std::string_view name() const override { return "never-stall"; }

  void on_profiled(std::size_t benchmark_id, SystemView& view) override {
    ProfilingTable::Entry& entry = view.table().entry(benchmark_id);
    entry.predicted_best_size_bytes =
        predictor_->predict(benchmark_id, entry.statistics);
  }

  Decision decide(const Job& job, SystemView& view) override {
    if (const auto profiling =
            policy_detail::profiling_decision(job, view)) {
      return *profiling;
    }
    const ProfilingTable::Entry& entry =
        view.table().entry(job.benchmark_id);
    const std::uint32_t best_size = *entry.predicted_best_size_bytes;
    for (std::size_t core : view.system().cores_with_size(best_size)) {
      if (!view.core(core).busy) {
        return policy_detail::run_with_heuristic(core, best_size, entry);
      }
    }
    const std::vector<std::size_t> idle = view.idle_cores();
    const std::size_t core = idle.front();
    return policy_detail::run_with_heuristic(
        core, view.core(core).spec.cache_size_bytes, entry);
  }

 private:
  const SizePredictor* predictor_;
};

}  // namespace

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  Experiment experiment(options);
  const SystemRun base = experiment.run_base();

  std::cout << "=== Ablation: stall-vs-run decision ===\n\n";

  TablePrinter table({"discipline", "idle", "dynamic", "total", "cycles",
                      "stalls"});
  auto add = [&](const SystemRun& run) {
    const NormalizedEnergy n = normalize(run.result, base.result);
    table.add_row({run.name, TablePrinter::num(n.idle, 2),
                   TablePrinter::num(n.dynamic, 2),
                   TablePrinter::num(n.total, 2),
                   TablePrinter::num(n.cycles, 2),
                   std::to_string(run.result.stall_events)});
  };

  add(experiment.run_energy_centric_with(experiment.predictor(),
                                         "always-stall (EC)"));
  {
    NeverStallPolicy policy(experiment.predictor());
    MulticoreSimulator simulator(SystemConfig::paper_quadcore(),
                                 experiment.suite(), experiment.energy(),
                                 policy);
    SystemRun run;
    run.name = "never-stall";
    run.result = simulator.run(experiment.arrivals());
    add(run);
  }
  add(experiment.run_proposed());
  {
    OracleSizePredictor oracle(experiment.suite());
    add(experiment.run_proposed_with(oracle, "decision + oracle ANN"));
  }
  table.print(std::cout);

  std::cout << "\nAll values normalised to the base system. The paper's "
               "Section VI observation: neither fixed decision (never "
               "stall / always stall) achieves the best total energy; the "
               "energy-advantageous evaluation is required.\n";
  return 0;
}
