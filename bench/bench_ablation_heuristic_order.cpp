// Ablation: tuning-heuristic parameter order.
//
// The paper explores associativity before line size "since the
// associativity has the second largest impact on energy after the size".
// This bench replays both orders offline against the characterised ground
// truth and compares executions-to-convergence and converged-configuration
// quality, validating the design choice.
#include <iostream>
#include <optional>

#include "core/tuning_heuristic.hpp"
#include "experiment/experiment.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace hetsched;

struct WalkOutcome {
  std::size_t executions = 0;
  CacheConfig converged;
};

// Generic greedy two-phase walk over (primary, secondary) parameter lists.
WalkOutcome greedy_walk(const BenchmarkProfile& profile, std::uint32_t size,
                        const std::vector<std::uint32_t>& primary,
                        const std::vector<std::uint32_t>& secondary,
                        bool assoc_first) {
  auto energy_of = [&](std::uint32_t p, std::uint32_t s) {
    const CacheConfig config = assoc_first ? CacheConfig{size, p, s}
                                           : CacheConfig{size, s, p};
    return profile.profile_for(config).energy.total();
  };
  WalkOutcome out;
  std::uint32_t best_p = primary.front();
  NanoJoules best = energy_of(best_p, secondary.front());
  ++out.executions;
  for (std::size_t i = 1; i < primary.size(); ++i) {
    const NanoJoules candidate = energy_of(primary[i], secondary.front());
    ++out.executions;
    if (candidate < best) {
      best = candidate;
      best_p = primary[i];
    } else {
      break;
    }
  }
  std::uint32_t best_s = secondary.front();
  for (std::size_t j = 1; j < secondary.size(); ++j) {
    const NanoJoules candidate = energy_of(best_p, secondary[j]);
    ++out.executions;
    if (candidate < best) {
      best = candidate;
      best_s = secondary[j];
    } else {
      break;
    }
  }
  out.converged = assoc_first ? CacheConfig{size, best_p, best_s}
                              : CacheConfig{size, best_s, best_p};
  return out;
}

}  // namespace

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  Experiment experiment(options);
  const CharacterizedSuite& suite = experiment.suite();

  std::cout << "=== Ablation: heuristic exploration order ===\n\n";

  RunningStats af_runs, lf_runs, af_gap, lf_gap;
  for (std::size_t id : experiment.scheduling_ids()) {
    const BenchmarkProfile& b = suite.benchmark(id);
    for (std::uint32_t size : DesignSpace::sizes()) {
      const auto assocs = DesignSpace::associativities_for(size);
      const auto lines = DesignSpace::line_sizes();
      const NanoJoules optimum = b.best_for_size(size).energy.total();

      const WalkOutcome af = greedy_walk(b, size, assocs, lines, true);
      const WalkOutcome lf = greedy_walk(b, size, lines, assocs, false);
      af_runs.add(static_cast<double>(af.executions));
      lf_runs.add(static_cast<double>(lf.executions));
      af_gap.add(b.profile_for(af.converged).energy.total() / optimum - 1.0);
      lf_gap.add(b.profile_for(lf.converged).energy.total() / optimum - 1.0);
    }
  }

  TablePrinter table({"order", "mean executions", "max executions",
                      "mean gap vs optimum", "worst gap"});
  table.add_row({"associativity first (paper)",
                 TablePrinter::num(af_runs.mean(), 2),
                 TablePrinter::num(af_runs.max(), 0),
                 TablePrinter::pct(af_gap.mean()),
                 TablePrinter::pct(af_gap.max())});
  table.add_row({"line size first", TablePrinter::num(lf_runs.mean(), 2),
                 TablePrinter::num(lf_runs.max(), 0),
                 TablePrinter::pct(lf_gap.mean()),
                 TablePrinter::pct(lf_gap.max())});
  table.print(std::cout);

  std::cout << "\nGaps are the converged configuration's total energy vs "
               "the exhaustive per-size optimum, averaged over every "
               "(benchmark, core size) pair.\n";
  return 0;
}
