// Ablation: offered load.
//
// Sweeps the mean inter-arrival gap of the 5000-job stream and reports
// every system's total energy (relative to the base system at the same
// load) plus makespan and base-system core utilisation. Shows where the
// scheduling decisions actually matter: under light load every policy
// degenerates to "best core is idle"; under heavy load the
// energy-advantageous decision separates the proposed system from the
// always-stall energy-centric one.
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  const double gaps[] = {40000, 60000, 80000, 120000, 160000, 240000};

  TablePrinter table({"interarrival", "base util", "optimal", "energy-centric",
                      "proposed", "opt cyc", "ec cyc", "prop cyc"});

  for (double gap : gaps) {
    ExperimentOptions options;
    options.arrivals.mean_interarrival_cycles = gap;
    Experiment experiment(options);

    const Experiment::StandardRuns runs = experiment.run_standard_systems();
    const SystemRun& base = runs.base;
    const SystemRun& optimal = runs.optimal;
    const SystemRun& ec = runs.energy_centric;
    const SystemRun& proposed = runs.proposed;

    double util = 0.0;
    for (const CoreUsage& core : base.result.per_core) {
      util += core.utilization;
    }
    util /= static_cast<double>(base.result.per_core.size());

    const NormalizedEnergy n_opt = normalize(optimal.result, base.result);
    const NormalizedEnergy n_ec = normalize(ec.result, base.result);
    const NormalizedEnergy n_prop = normalize(proposed.result, base.result);

    table.add_row({TablePrinter::num(gap, 0),
                   TablePrinter::num(util * 100.0, 1) + "%",
                   TablePrinter::pct(n_opt.total - 1.0),
                   TablePrinter::pct(n_ec.total - 1.0),
                   TablePrinter::pct(n_prop.total - 1.0),
                   TablePrinter::pct(n_opt.cycles - 1.0),
                   TablePrinter::pct(n_ec.cycles - 1.0),
                   TablePrinter::pct(n_prop.cycles - 1.0)});
  }

  std::cout << "=== Ablation: offered load (energy/cycles vs base at the "
               "same load) ===\n\n";
  table.print(std::cout);
  return 0;
}
