// Ablation / future work (§VIII): "evaluating different machine learning
// techniques".
//
// Runs the full predictor pipeline with four interchangeable models —
// the paper's bagged MLP ensemble, k-nearest-neighbours, a CART
// regression tree, and ridge regression — then measures each model's
// best-size quality AND the end-to-end proposed-system energy when the
// scheduler runs on its predictions.
#include <iostream>
#include <memory>

#include "ann/decision_tree.hpp"
#include "ann/knn.hpp"
#include "ann/mlp_regressor.hpp"
#include "ann/ridge.hpp"
#include "core/model_predictor.hpp"
#include "experiment/experiment.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  Experiment experiment(options);
  const CharacterizedSuite& suite = experiment.suite();
  const Dataset dataset = build_ann_dataset(suite, suite.training_ids());
  const SystemRun base = experiment.run_base();

  std::cout << "=== Future work: alternative ML techniques ===\n\n";

  TablePrinter table({"model", "test accuracy", "scheduling hits",
                      "mean degradation", "proposed total vs base"});

  auto evaluate = [&](std::unique_ptr<Regressor> model) {
    Rng rng(options.seed);
    ModelSizePredictor predictor(dataset, std::move(model),
                                 options.predictor, rng);

    RunningStats degradation;
    std::size_t hits = 0;
    for (std::size_t id : experiment.scheduling_ids()) {
      const BenchmarkProfile& b = suite.benchmark(id);
      const std::uint32_t predicted =
          predictor.predict_size_bytes(b.base_statistics);
      const std::uint32_t oracle = b.oracle_best_size();
      if (predicted == oracle) ++hits;
      degradation.add(b.best_for_size(predicted).energy.total() /
                          b.best_for_size(oracle).energy.total() -
                      1.0);
    }

    const SystemRun run = experiment.run_proposed_with(
        predictor, std::string(predictor.model().name()));
    const NormalizedEnergy n = normalize(run.result, base.result);

    table.add_row(
        {std::string(predictor.model().name()),
         TablePrinter::num(predictor.report().test_accuracy * 100.0, 1) +
             "%",
         std::to_string(hits) + "/" +
             std::to_string(experiment.scheduling_ids().size()),
         TablePrinter::pct(degradation.mean()),
         TablePrinter::num(n.total, 3)});
  };

  {
    BaggingConfig bagging;
    bagging.ensemble_size = options.predictor.ensemble_size;
    bagging.net.layer_sizes = {10, 18, 5, 1};
    bagging.trainer = options.predictor.trainer;
    evaluate(std::make_unique<BaggedMlpRegressor>(bagging));
  }
  evaluate(std::make_unique<KnnRegressor>());
  evaluate(std::make_unique<DecisionTreeRegressor>());
  evaluate(std::make_unique<RidgeRegressor>());

  table.print(std::cout);
  std::cout << "\nEach model is trained through the identical pipeline "
               "(stratified split, top-10 feature selection, "
               "standardisation) and then drives the proposed scheduler "
               "over the same 5000-job stream.\n";
  return 0;
}
