// Ablation: robustness across random seeds.
//
// The headline numbers must not be an artifact of one arrival stream or
// one ANN initialisation. Re-runs the full pipeline across seeds and
// reports the distribution of the Figure-6 total-energy ratios.
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  std::cout << "=== Ablation: seed robustness (Figure 6 totals) ===\n\n";

  RunningStats opt, ec, prop, ann_hits;
  TablePrinter table({"seed", "optimal", "energy-centric", "proposed",
                      "ANN hits"});
  for (std::uint64_t seed : {42ull, 7ull, 1234ull, 9001ull, 31415ull}) {
    ExperimentOptions options;
    options.seed = seed;
    Experiment experiment(options);
    const SystemRun base = experiment.run_base();
    const double n_opt =
        normalize(experiment.run_optimal().result, base.result).total;
    const double n_ec =
        normalize(experiment.run_energy_centric().result, base.result).total;
    const double n_prop =
        normalize(experiment.run_proposed().result, base.result).total;

    std::size_t hits = 0;
    for (std::size_t id : experiment.scheduling_ids()) {
      const BenchmarkProfile& b = experiment.suite().benchmark(id);
      if (experiment.predictor().predict_size_bytes(b.base_statistics) ==
          b.oracle_best_size()) {
        ++hits;
      }
    }
    opt.add(n_opt);
    ec.add(n_ec);
    prop.add(n_prop);
    ann_hits.add(static_cast<double>(hits));
    table.add_row({std::to_string(seed), TablePrinter::num(n_opt, 3),
                   TablePrinter::num(n_ec, 3), TablePrinter::num(n_prop, 3),
                   std::to_string(hits) + "/" +
                       std::to_string(experiment.scheduling_ids().size())});
  }
  table.print(std::cout);

  std::cout << "\nMean total-energy ratio vs base: optimal "
            << TablePrinter::num(opt.mean(), 3) << " (s.d. "
            << TablePrinter::num(opt.stddev(), 3) << "), energy-centric "
            << TablePrinter::num(ec.mean(), 3) << " (s.d. "
            << TablePrinter::num(ec.stddev(), 3) << "), proposed "
            << TablePrinter::num(prop.mean(), 3) << " (s.d. "
            << TablePrinter::num(prop.stddev(), 3) << ")\n"
            << "Mean exact ANN best-size hits: "
            << TablePrinter::num(ann_hits.mean(), 1) << "/"
            << "19\n";
  return 0;
}
