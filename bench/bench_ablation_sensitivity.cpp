// Ablation: energy-model sensitivity.
//
// The absolute constants of the Figure-4 model (off-chip energy, static
// fraction, CPU idle/active power) come from CACTI/datasheet calibration
// the paper does not publish. This bench perturbs each constant across a
// wide range and reports the proposed system's total-energy ratio vs
// base, plus the oracle best-size distribution — showing which
// conclusions depend on calibration and which do not.
#include <iostream>
#include <map>

#include "experiment/experiment.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace hetsched;

struct Row {
  std::string label;
  EnergyModelParams params;
};

std::string size_histogram(const Experiment& experiment) {
  std::map<std::uint32_t, int> sizes;
  for (std::size_t id : experiment.scheduling_ids()) {
    ++sizes[experiment.suite().benchmark(id).oracle_best_size()];
  }
  std::string out;
  for (const auto& [size, count] : sizes) {
    out += std::to_string(size / 1024) + "K=" + std::to_string(count) + " ";
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace

int main() {
  using namespace hetsched;

  std::vector<Row> rows;
  rows.push_back({"defaults", {}});
  {
    EnergyModelParams p;
    p.offchip_access = NanoJoules(3.0);
    p.offchip_per_beat = NanoJoules(0.75);
    rows.push_back({"off-chip energy x0.5", p});
  }
  {
    EnergyModelParams p;
    p.offchip_access = NanoJoules(12.0);
    p.offchip_per_beat = NanoJoules(3.0);
    rows.push_back({"off-chip energy x2", p});
  }
  {
    EnergyModelParams p;
    p.static_fraction = 0.05;
    rows.push_back({"leakage fraction 5%", p});
  }
  {
    EnergyModelParams p;
    p.static_fraction = 0.20;
    rows.push_back({"leakage fraction 20%", p});
  }
  {
    EnergyModelParams p;
    p.core_idle_per_cycle = NanoJoules(0.05);
    rows.push_back({"idle power x1/6", p});
  }
  {
    EnergyModelParams p;
    p.core_active_per_cycle = NanoJoules(0.40);
    rows.push_back({"active power x2", p});
  }
  {
    EnergyModelParams p;
    p.miss_latency = 80;
    p.bandwidth_cycles_per_beat = 40;
    rows.push_back({"miss penalty x2", p});
  }

  std::cout << "=== Ablation: energy-model sensitivity ===\n\n";

  TablePrinter table({"perturbation", "proposed/base total",
                      "optimal/base total", "oracle sizes"});
  for (const Row& row : rows) {
    ExperimentOptions options;
    options.arrivals.count = 2500;  // keep the sweep quick
    options.energy_params = row.params;
    Experiment experiment(options);
    const SystemRun base = experiment.run_base();
    const double prop =
        normalize(experiment.run_proposed().result, base.result).total;
    const double opt =
        normalize(experiment.run_optimal().result, base.result).total;
    table.add_row({row.label, TablePrinter::num(prop, 3),
                   TablePrinter::num(opt, 3),
                   size_histogram(experiment)});
  }
  table.print(std::cout);

  std::cout << "\nThe proposed system's total-energy reduction must hold "
               "across every perturbation (the headline is not a "
               "calibration artifact), while the best-size mix is allowed "
               "to shift with the constants.\n";
  return 0;
}
