// Section IV.D claim — the bagged ANN's best-cache-size predictions
// "only degraded the average energy consumption by less than 2% over all
// the benchmarks as compared to the optimal cache size".
//
// For every scheduling benchmark we compare the energy of the best
// configuration at the ANN-predicted size against the best configuration
// at the oracle size (both from the characterisation ground truth — this
// isolates prediction quality from scheduling effects).
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  Experiment experiment(options);
  const CharacterizedSuite& suite = experiment.suite();
  const BestSizePredictor& predictor = experiment.predictor();

  std::cout << "=== ANN best-size prediction quality (Section IV.D) ===\n\n";

  const PredictorReport& report = predictor.report();
  std::cout << "Training set: " << report.dataset_rows << " rows ("
            << report.train_rows << " train / " << report.validation_rows
            << " validation / " << report.test_rows << " test)\n"
            << "Selected features (" << report.selected_features << "): ";
  for (std::size_t idx : predictor.selected_features().indices) {
    std::cout << ExecutionStatistics::name(idx) << " ";
  }
  std::cout << "\nHeld-out test MSE: " << TablePrinter::num(report.test_mse)
            << ", snapped accuracy: "
            << TablePrinter::num(report.test_accuracy * 100.0, 1) << "%\n\n";

  TablePrinter table({"benchmark", "oracle size", "predicted", "raw output",
                      "energy degradation"});
  RunningStats degradation;
  std::size_t correct = 0;
  for (std::size_t id : experiment.scheduling_ids()) {
    const BenchmarkProfile& b = suite.benchmark(id);
    const std::uint32_t oracle = b.oracle_best_size();
    const std::uint32_t predicted =
        predictor.predict_size_bytes(b.base_statistics);
    const double raw = predictor.predict_raw(b.base_statistics);
    const double degrade = b.best_for_size(predicted).energy.total() /
                               b.best_for_size(oracle).energy.total() -
                           1.0;
    degradation.add(degrade);
    if (predicted == oracle) ++correct;
    table.add_row({b.instance.name, std::to_string(oracle / 1024) + "KB",
                   std::to_string(predicted / 1024) + "KB",
                   TablePrinter::num(raw, 2), TablePrinter::pct(degrade)});
  }
  table.print(std::cout);

  const double n = static_cast<double>(experiment.scheduling_ids().size());
  std::cout << "\nExact best-size predictions: " << correct << "/"
            << experiment.scheduling_ids().size() << " ("
            << TablePrinter::num(100.0 * static_cast<double>(correct) / n, 1)
            << "%)\n"
            << "Average energy degradation vs oracle size: "
            << TablePrinter::pct(degradation.mean())
            << "  (paper: < +2%)\n"
            << "Worst-case degradation: "
            << TablePrinter::pct(degradation.max()) << "\n";
  return 0;
}
