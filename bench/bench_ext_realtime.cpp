// Extension bench (paper future work, §VIII): preemption, priority and
// deadlines.
//
// Assigns every job a deadline of arrival + slack × (base-configuration
// execution time) and sweeps the slack factor from tight to loose,
// comparing four disciplines on deadline-miss rate, mean response time
// and total energy:
//   proposed/FIFO        — the paper's scheduler, deadline-oblivious
//   proposed/EDF queue   — same policy, most-urgent-first ready queue
//   realtime-EDF         — EDF queue + idle-capacity-first placement
//   realtime-EDF+preempt — additionally evicts later-deadline jobs
#include <iostream>

#include "core/realtime_policy.hpp"
#include "experiment/experiment.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  options.arrivals.count = 3000;
  Experiment experiment(options);
  const CharacterizedSuite& suite = experiment.suite();

  // Reference execution time per benchmark: base configuration.
  std::vector<Cycles> reference(suite.size(), 0);
  for (std::size_t id = 0; id < suite.size(); ++id) {
    reference[id] = suite.benchmark(id)
                        .profile_for(DesignSpace::base_config())
                        .energy.total_cycles;
  }

  std::cout << "=== Extension: deadlines, EDF and preemption ===\n\n";

  TablePrinter table({"slack", "discipline", "miss rate", "mean response",
                      "preemptions", "total energy mJ"});

  for (double slack : {2.0, 4.0, 8.0}) {
    std::vector<JobArrival> arrivals = experiment.arrivals();
    arrivals.resize(options.arrivals.count);
    Rng rt_rng(123);
    RealtimeOptions rt;
    rt.slack_factor = slack;
    rt.priority_levels = 3;
    assign_realtime_attributes(arrivals, reference, rt, rt_rng);

    struct Variant {
      std::string label;
      QueueDiscipline discipline;
      bool realtime_policy;
      bool preempt;
    };
    const Variant variants[] = {
        {"proposed/FIFO", QueueDiscipline::kFifo, false, false},
        {"proposed/EDF", QueueDiscipline::kEdf, false, false},
        {"realtime-EDF", QueueDiscipline::kEdf, true, false},
        {"realtime-EDF+preempt", QueueDiscipline::kEdf, true, true},
    };
    for (const Variant& v : variants) {
      SimulationResult result;
      if (v.realtime_policy) {
        RealtimeEdfPolicy policy(experiment.predictor(), v.preempt);
        MulticoreSimulator sim(SystemConfig::paper_quadcore(), suite,
                               experiment.energy(), policy, v.discipline);
        result = sim.run(arrivals);
      } else {
        ProposedPolicy policy(experiment.predictor());
        MulticoreSimulator sim(SystemConfig::paper_quadcore(), suite,
                               experiment.energy(), policy, v.discipline);
        result = sim.run(arrivals);
      }
      table.add_row(
          {TablePrinter::num(slack, 1) + "x", v.label,
           TablePrinter::num(result.deadline_miss_rate() * 100.0, 1) + "%",
           TablePrinter::num(result.mean_response_cycles() / 1000.0, 0) +
               " kcyc",
           std::to_string(result.preemptions),
           TablePrinter::num(result.total_energy().millijoules(), 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nDeadline = arrival + slack x base-configuration "
               "execution time; 3 priority levels assigned uniformly.\n";
  return 0;
}
