// Extension bench (Section III): "this general structure could be scaled
// up or down for different system requirements".
//
// Sweeps the core count (repeating the paper's 2/4/8/8 KB mix) with the
// offered load scaled proportionally, and reports the proposed system's
// energy vs an equally sized homogeneous base machine — showing the
// heterogeneity benefit is not specific to the quad-core.
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  std::cout << "=== Extension: core-count scaling ===\n\n";

  TablePrinter table({"cores", "mix", "proposed/base total",
                      "proposed/base cycles", "stalls", "base util"});
  for (const std::size_t n : {2u, 4u, 8u, 12u}) {
    ExperimentOptions options;
    options.arrivals.count = 3000;
    // Keep per-core offered load constant: the quad-core default gap is
    // 55k cycles, so an n-core machine gets gap 55k * 4 / n.
    options.arrivals.mean_interarrival_cycles = 55000.0 * 4.0 / static_cast<double>(n);
    Experiment experiment(options);

    const SystemConfig machine = SystemConfig::scaled_heterogeneous(n);
    std::string mix;
    for (const CoreSpec& core : machine.cores) {
      mix += std::to_string(core.cache_size_bytes / 1024) + "/";
    }
    mix.pop_back();

    BasePolicy base_policy;
    MulticoreSimulator base_sim(SystemConfig::fixed_base(n),
                                experiment.suite(), experiment.energy(),
                                base_policy);
    const SimulationResult base = base_sim.run(experiment.arrivals());

    ProposedPolicy policy(experiment.predictor());
    MulticoreSimulator sim(machine, experiment.suite(),
                           experiment.energy(), policy);
    const SimulationResult proposed = sim.run(experiment.arrivals());

    double util = 0.0;
    for (const CoreUsage& core : base.per_core) util += core.utilization;
    util /= static_cast<double>(base.per_core.size());

    const NormalizedEnergy norm = normalize(proposed, base);
    table.add_row({std::to_string(n), mix,
                   TablePrinter::num(norm.total, 3),
                   TablePrinter::num(norm.cycles, 3),
                   std::to_string(proposed.stall_events),
                   TablePrinter::num(util * 100.0, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nEach row compares against a homogeneous 8KB_4W_64B "
               "machine with the same core count and the same (per-core-"
               "constant) offered load.\n";
  return 0;
}
