// Extension bench: suite-size robustness.
//
// Re-runs the Figure-6 comparison with the extended kernel pack enabled
// (27 kernels instead of 19), checking that the headline result — the
// proposed scheduler's large total-energy win over the fixed base system
// — is not an artifact of the calibrated 19-kernel suite.
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  std::cout << "=== Extension: 27-kernel suite (standard + extended) ===\n\n";

  TablePrinter table({"suite", "kernels", "ANN hits", "optimal",
                      "energy-centric", "proposed"});
  for (const bool extended : {false, true}) {
    ExperimentOptions options;
    options.suite.include_extended = extended;
    Experiment experiment(options);

    std::size_t hits = 0;
    for (std::size_t id : experiment.scheduling_ids()) {
      const BenchmarkProfile& b = experiment.suite().benchmark(id);
      if (experiment.predictor().predict_size_bytes(b.base_statistics) ==
          b.oracle_best_size()) {
        ++hits;
      }
    }

    const SystemRun base = experiment.run_base();
    const double opt =
        normalize(experiment.run_optimal().result, base.result).total;
    const double ec = normalize(experiment.run_energy_centric().result,
                                base.result)
                          .total;
    const double prop =
        normalize(experiment.run_proposed().result, base.result).total;

    table.add_row({extended ? "standard+extended" : "standard",
                   std::to_string(experiment.scheduling_ids().size()),
                   std::to_string(hits) + "/" +
                       std::to_string(experiment.scheduling_ids().size()),
                   TablePrinter::num(opt, 3), TablePrinter::num(ec, 3),
                   TablePrinter::num(prop, 3)});
  }
  table.print(std::cout);
  std::cout << "\nTotal energy normalised to the base system at the same "
               "load. The proposed system's reduction must survive the "
               "suite change.\n";
  return 0;
}
