// Extension bench (paper future work, §VIII): additional cache levels.
//
// Re-characterises every scheduling benchmark across the 18 L1
// configurations with the private 32 KB L2 of Figure 1 in the loop,
// priced by the TwoLevelEnergyModel, and reports how the picture changes
// relative to the paper's Figure-4 (L1-miss-equals-off-chip) model:
// global miss rates, per-benchmark best configurations, and the value of
// the L2 itself.
#include <iostream>
#include <map>

#include "energy/two_level_model.hpp"
#include "experiment/experiment.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  Experiment experiment(options);
  const CharacterizedSuite& suite = experiment.suite();
  const TwoLevelEnergyModel two_level{CactiModel{}, options.energy_params};

  std::cout << "=== Extension: private L2 in the energy loop ===\n\n";

  const auto kernels = make_suite_kernels(options.suite);

  TablePrinter table({"benchmark", "L1-only best", "two-level best",
                      "global miss rate", "energy vs L1-only model"});
  std::map<std::uint32_t, int> l1_only_sizes, two_level_sizes;
  RunningStats energy_ratio;

  for (std::size_t id : experiment.scheduling_ids()) {
    const BenchmarkProfile& b = suite.benchmark(id);
    const KernelExecution exec =
        execute(*kernels[b.instance.kernel_index], b.instance.data_seed);

    const CacheConfig l1_best = b.best_overall().config;

    CacheConfig best_config = DesignSpace::all().front();
    EnergyBreakdown best_energy;
    double best_total = 0.0;
    double global_miss_at_best = 0.0;
    bool first = true;
    for (const CacheConfig& config : DesignSpace::all()) {
      const HierarchyStats stats = simulate_hierarchy(exec.trace, config);
      const EnergyBreakdown energy =
          two_level.evaluate(exec.counters, stats, config);
      if (first || energy.total().value() < best_total) {
        first = false;
        best_config = config;
        best_energy = energy;
        best_total = energy.total().value();
        global_miss_at_best = stats.global_miss_rate();
      }
    }

    ++l1_only_sizes[l1_best.size_bytes];
    ++two_level_sizes[best_config.size_bytes];
    const double ratio =
        best_total / b.best_overall().energy.total().value();
    energy_ratio.add(ratio);

    table.add_row({b.instance.name, l1_best.name(), best_config.name(),
                   TablePrinter::num(global_miss_at_best, 4),
                   TablePrinter::num(ratio, 3)});
  }
  table.print(std::cout);

  auto histogram = [](const std::map<std::uint32_t, int>& sizes) {
    std::string out;
    for (const auto& [size, count] : sizes) {
      out += std::to_string(size / 1024) + "KB=" + std::to_string(count) +
             " ";
    }
    return out;
  };
  std::cout << "\nBest-L1-size distribution:  L1-only model: "
            << histogram(l1_only_sizes)
            << " | two-level model: " << histogram(two_level_sizes)
            << "\nMean best-config energy vs the L1-only model: "
            << TablePrinter::num(energy_ratio.mean(), 3)
            << "x (the L2 absorbs most off-chip traffic, so the optimal "
               "L1 can shrink)\n";
  return 0;
}
