// Fault-resilience sweep — how the four Section-V systems degrade as the
// injected fault rate grows. A uniform rate drives reconfiguration
// failures, stuck-job hangs and counter corruption simultaneously; every
// system runs the identical arrival stream at every rate.
//
// The robustness claim under test: the proposed system keeps completing
// (effectively) every job under faults — watchdog re-dispatch recovers
// stuck jobs, failed reconfigurations degrade to the stale configuration,
// and the prediction sanity guard absorbs corrupted counters — while its
// energy advantage over the base system erodes only gradually.
#include <iostream>
#include <vector>

#include "core/policies.hpp"
#include "core/simulator.hpp"
#include "experiment/experiment.hpp"
#include "fault/fault_injector.hpp"
#include "util/csv.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  options.arrivals.count = 2000;
  Experiment experiment(options);
  const OracleSizePredictor oracle(experiment.suite());

  const std::vector<double> rates = {0.0,  0.001, 0.005, 0.01,
                                     0.02, 0.05,  0.1};
  const std::vector<std::string> systems = {"base", "optimal",
                                            "energy-centric", "proposed"};

  auto run_system = [&](const std::string& name,
                        double rate) -> SimulationResult {
    const FaultPlan plan = FaultPlan::uniform(rate, 1017);
    auto simulate = [&](SchedulerPolicy& policy,
                        const SystemConfig& system) {
      MulticoreSimulator sim(system, experiment.suite(),
                             experiment.energy(), policy);
      FaultInjector injector(plan);
      sim.set_fault_injector(&injector);
      return sim.run(experiment.arrivals());
    };
    if (name == "base") {
      BasePolicy policy;
      return simulate(policy, SystemConfig::fixed_base(4));
    }
    if (name == "optimal") {
      OptimalPolicy policy;
      return simulate(policy, SystemConfig::paper_quadcore());
    }
    if (name == "energy-centric") {
      EnergyCentricPolicy policy(oracle);
      return simulate(policy, SystemConfig::paper_quadcore());
    }
    ProposedPolicy policy(oracle);
    return simulate(policy, SystemConfig::paper_quadcore());
  };

  std::cout << "=== Fault resilience: uniform fault rate sweep ===\n"
            << "(" << experiment.arrivals().size()
            << " arrivals; rate applies to reconfig failures, stuck jobs "
               "and counter corruption)\n\n";

  CsvWriter csv("fault_resilience.csv",
                {"rate", "system", "completed", "completed_fraction",
                 "total_mJ", "makespan", "injected_faults",
                 "watchdog_fires", "degraded_executions",
                 "prediction_fallbacks"});

  TablePrinter table({"rate", "system", "completed", "total mJ",
                      "makespan", "faults", "watchdog", "degraded",
                      "fallbacks"});
  double proposed_completion_at_1pct = 0.0;
  for (const double rate : rates) {
    for (const std::string& name : systems) {
      const SimulationResult r = run_system(name, rate);
      const double fraction =
          static_cast<double>(r.completed_jobs) /
          static_cast<double>(experiment.arrivals().size());
      if (name == "proposed" && rate == 0.01) {
        proposed_completion_at_1pct = fraction;
      }
      table.add_row({TablePrinter::num(rate, 3), name,
                     std::to_string(r.completed_jobs),
                     TablePrinter::num(r.total_energy().millijoules(), 1),
                     std::to_string(r.makespan),
                     std::to_string(r.faults.injected),
                     std::to_string(r.faults.watchdog_fires),
                     std::to_string(r.faults.degraded_executions),
                     std::to_string(r.faults.prediction_fallbacks)});
      // CSVs are machine-read: full round-trippable precision, not the
      // rounded console-table values.
      csv.add_row({CsvWriter::number(rate), name,
                   std::to_string(r.completed_jobs),
                   CsvWriter::number(fraction),
                   CsvWriter::number(r.total_energy().millijoules()),
                   std::to_string(r.makespan),
                   std::to_string(r.faults.injected),
                   std::to_string(r.faults.watchdog_fires),
                   std::to_string(r.faults.degraded_executions),
                   std::to_string(r.faults.prediction_fallbacks)});
    }
  }
  table.print(std::cout);

  std::cout << "\nProposed-system completion at 1% fault rate: "
            << TablePrinter::pct(proposed_completion_at_1pct - 1.0)
            << " vs fault-free (target: >= 99% of jobs complete)\n"
            << "Series written to fault_resilience.csv\n";
  return proposed_completion_at_1pct >= 0.99 ? 0 : 1;
}
