// Figure 5 / Section VI — cache tuning heuristic efficiency.
//
// Paper: "Even though our heuristic may explore a minimum of three
// configurations and a maximum of nine configurations, out of 18, no
// benchmark explored more than six configurations, thus our tuning
// heuristic explored significantly fewer configurations than the optimal
// system."
//
// Two evaluations:
//  1. Offline: drive the heuristic to convergence on every (benchmark,
//     core size) against the characterised ground truth; count
//     configurations executed and measure the energy of the converged
//     configuration vs the per-size exhaustive optimum.
//  2. Online: after the full proposed-system run, report how many of the
//     18 configurations each benchmark ever executed, vs 18 for the
//     optimal system.
#include <iostream>

#include "core/tuning_heuristic.hpp"
#include "experiment/experiment.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace hetsched;

// Runs the Figure-5 heuristic to convergence for one benchmark and size,
// recording observations exactly as scheduled executions would.
std::size_t converge(const BenchmarkProfile& profile,
                     ProfilingTable::Entry& entry, std::uint32_t size) {
  std::size_t executed = 0;
  while (auto next = TuningHeuristic::next_config(entry, size)) {
    const ConfigProfile& cp = profile.profile_for(*next);
    entry.observations[*DesignSpace::index_of(*next)] =
        Observation{cp.energy.total(), cp.energy.dynamic_energy,
                    cp.energy.total_cycles};
    ++executed;
  }
  return executed;
}

}  // namespace

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  Experiment experiment(options);
  const CharacterizedSuite& suite = experiment.suite();

  std::cout << "=== Figure 5: tuning heuristic efficiency ===\n\n";

  TablePrinter table({"benchmark", "2KB runs", "4KB runs", "8KB runs",
                      "total", "energy vs per-size optimum"});
  RunningStats totals, quality;
  for (std::size_t id : experiment.scheduling_ids()) {
    const BenchmarkProfile& b = suite.benchmark(id);
    ProfilingTable fresh(suite.size());
    ProfilingTable::Entry& entry = fresh.entry(id);
    std::size_t total = 0;
    std::vector<std::string> cells{b.instance.name};
    double worst_gap = 0.0;
    for (std::uint32_t size : DesignSpace::sizes()) {
      const std::size_t runs = converge(b, entry, size);
      total += runs;
      cells.push_back(std::to_string(runs));
      const CacheConfig found = TuningHeuristic::best_known(entry, size);
      const double gap = b.profile_for(found).energy.total() /
                             b.best_for_size(size).energy.total() -
                         1.0;
      worst_gap = std::max(worst_gap, gap);
      quality.add(gap);
    }
    totals.add(static_cast<double>(total));
    cells.push_back(std::to_string(total));
    cells.push_back(TablePrinter::pct(worst_gap));
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::cout << "\nHeuristic executions per benchmark across all three core "
               "sizes: mean "
            << TablePrinter::num(totals.mean(), 1) << ", max "
            << TablePrinter::num(totals.max(), 0) << " of 18 configurations"
            << "\nConverged-vs-optimal energy gap (per size): mean "
            << TablePrinter::pct(quality.mean()) << ", worst "
            << TablePrinter::pct(quality.max()) << "\n";

  std::cout << "\n=== Online exploration footprint (full system runs) ===\n";
  const SystemRun optimal = experiment.run_optimal();
  const SystemRun proposed = experiment.run_proposed();
  RunningStats opt_explored, prop_explored;
  for (std::size_t i = 0; i < proposed.explored_configs.size(); ++i) {
    opt_explored.add(static_cast<double>(optimal.explored_configs[i]));
    prop_explored.add(static_cast<double>(proposed.explored_configs[i]));
  }
  std::cout << "Configurations executed per benchmark (of 18): optimal mean "
            << TablePrinter::num(opt_explored.mean(), 1) << ", proposed mean "
            << TablePrinter::num(prop_explored.mean(), 1) << " (max "
            << TablePrinter::num(prop_explored.max(), 0) << ")\n"
            << "Paper: heuristic explored 3-9 per core size, never more "
               "than 6 observed per benchmark.\n";
  return 0;
}
