// Figure 6 — idle, dynamic and total energy of the optimal,
// energy-centric and proposed systems, normalised to the base system
// (all cores fixed at 8KB_4W_64B).
//
// Paper values (DATE'19, Figure 6, ratios to base):
//   optimal:        idle 0.97, dynamic 0.65, total 0.94
//   energy-centric: idle 1.06, dynamic 0.42, total 1.02
//   proposed:       idle 0.73, dynamic 0.45, total 0.71
//
// The paper's headline: the proposed system reduces total energy by ~28-29%
// on average vs the fixed-configuration base system.
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/csv.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  Experiment experiment(options);

  const Experiment::StandardRuns runs = experiment.run_standard_systems();
  const SystemRun& base = runs.base;
  const SystemRun& optimal = runs.optimal;
  const SystemRun& ec = runs.energy_centric;
  const SystemRun& proposed = runs.proposed;

  std::cout << "=== Figure 6: energy normalised to the base system ===\n"
            << "(" << experiment.arrivals().size()
            << " arrivals, mean inter-arrival "
            << options.arrivals.mean_interarrival_cycles << " cycles)\n\n";

  TablePrinter table({"system", "idle", "dynamic", "total",
                      "paper idle", "paper dynamic", "paper total"});
  struct PaperRow {
    double idle, dynamic, total;
  };
  auto add = [&](const SystemRun& run, PaperRow paper) {
    const NormalizedEnergy n = normalize(run.result, base.result);
    table.add_row({run.name, TablePrinter::num(n.idle, 2),
                   TablePrinter::num(n.dynamic, 2),
                   TablePrinter::num(n.total, 2),
                   TablePrinter::num(paper.idle, 2),
                   TablePrinter::num(paper.dynamic, 2),
                   TablePrinter::num(paper.total, 2)});
  };
  add(optimal, {0.97, 0.65, 0.94});
  add(ec, {1.06, 0.42, 1.02});
  add(proposed, {0.73, 0.45, 0.71});
  table.print(std::cout);

  CsvWriter csv("fig6_energy_vs_base.csv",
                {"system", "idle", "dynamic", "total"});
  for (const SystemRun* run : {&optimal, &ec, &proposed}) {
    const NormalizedEnergy n = normalize(run->result, base.result);
    // CSVs are machine-read: full round-trippable precision, not the
    // rounded console-table values.
    csv.add_row({run->name, CsvWriter::number(n.idle),
                 CsvWriter::number(n.dynamic), CsvWriter::number(n.total)});
  }

  std::cout << "\nAbsolute totals (mJ): base "
            << TablePrinter::num(base.result.total_energy().millijoules(), 1)
            << ", optimal "
            << TablePrinter::num(optimal.result.total_energy().millijoules(),
                                 1)
            << ", energy-centric "
            << TablePrinter::num(ec.result.total_energy().millijoules(), 1)
            << ", proposed "
            << TablePrinter::num(proposed.result.total_energy().millijoules(),
                                 1)
            << "\n";

  const NormalizedEnergy headline = normalize(proposed.result, base.result);
  std::cout << "Headline total-energy reduction (proposed vs base): "
            << TablePrinter::pct(headline.total - 1.0)
            << "  (paper: -29%)\n"
            << "Series written to fig6_energy_vs_base.csv\n";
  return 0;
}
