// Figure 7 — performance (number of cycles) and idle/dynamic/total energy
// of the energy-centric and proposed systems, normalised to the optimal
// (exhaustive-search) system.
//
// Paper values (DATE'19, Figure 7, ratios to optimal):
//   energy-centric: cycles 0.83, idle 1.10, dynamic 0.65, total 1.09
//   proposed:       cycles 0.75, idle 0.74, dynamic 0.69, total 0.76
//
// "Cycles" is the total number of execution cycles consumed by the 5000
// benchmarks: the optimal system pays for physically executing all 18
// configurations per benchmark and for never-stall placements in slow
// configurations; predictive systems avoid most of that work.
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/csv.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  Experiment experiment(options);

  const SystemRun optimal = experiment.run_optimal();
  const SystemRun ec = experiment.run_energy_centric();
  const SystemRun proposed = experiment.run_proposed();

  std::cout << "=== Figure 7: cycles and energy normalised to the optimal "
               "system ===\n\n";

  TablePrinter table({"system", "cycles", "idle", "dynamic", "total",
                      "paper cycles", "paper total"});
  struct PaperRow {
    double cycles, total;
  };
  auto add = [&](const SystemRun& run, PaperRow paper) {
    const NormalizedEnergy n = normalize(run.result, optimal.result);
    table.add_row({run.name, TablePrinter::num(n.cycles, 2),
                   TablePrinter::num(n.idle, 2),
                   TablePrinter::num(n.dynamic, 2),
                   TablePrinter::num(n.total, 2),
                   TablePrinter::num(paper.cycles, 2),
                   TablePrinter::num(paper.total, 2)});
  };
  add(ec, {0.83, 1.09});
  add(proposed, {0.75, 0.76});
  table.print(std::cout);

  CsvWriter csv("fig7_vs_optimal.csv",
                {"system", "cycles", "idle", "dynamic", "total",
                 "makespan"});
  for (const SystemRun* run : {&ec, &proposed}) {
    const NormalizedEnergy n = normalize(run->result, optimal.result);
    // CSVs are machine-read: full round-trippable precision, not the
    // rounded console-table values.
    csv.add_row({run->name, CsvWriter::number(n.cycles),
                 CsvWriter::number(n.idle), CsvWriter::number(n.dynamic),
                 CsvWriter::number(n.total),
                 CsvWriter::number(n.makespan)});
  }

  std::cout << "\nExecution-cycle totals (G cycles): optimal "
            << TablePrinter::num(
                   static_cast<double>(
                       optimal.result.total_execution_cycles) /
                       1e9,
                   2)
            << ", energy-centric "
            << TablePrinter::num(
                   static_cast<double>(ec.result.total_execution_cycles) /
                       1e9,
                   2)
            << ", proposed "
            << TablePrinter::num(
                   static_cast<double>(
                       proposed.result.total_execution_cycles) /
                       1e9,
                   2)
            << "\nTuning runs: optimal " << optimal.result.tuning_runs
            << ", energy-centric " << ec.result.tuning_runs << ", proposed "
            << proposed.result.tuning_runs
            << "\nSeries written to fig7_vs_optimal.csv\n";
  return 0;
}
