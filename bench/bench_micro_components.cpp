// Micro-benchmarks (google-benchmark): throughput/latency of the
// simulator's hot components — cache access simulation, Figure-4 energy
// evaluation, ANN inference, heuristic stepping, and the end-to-end
// event-driven scheduling loop.
#include <benchmark/benchmark.h>

#include "core/tuning_heuristic.hpp"
#include "experiment/experiment.hpp"

namespace {

using namespace hetsched;

const Experiment& shared_experiment() {
  static const Experiment experiment{[] {
    ExperimentOptions options = ExperimentOptions::quick();
    options.arrivals.count = 1000;
    return options;
  }()};
  return experiment;
}

void BM_CacheAccess(benchmark::State& state) {
  const CacheConfig config =
      DesignSpace::all()[static_cast<std::size_t>(state.range(0))];
  Rng rng(1);
  MemTrace trace;
  trace.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    trace.push_back(MemRef{
        static_cast<std::uint32_t>(rng.below(16384)), 4,
        rng.bernoulli(0.3)});
  }
  Cache cache(config);
  for (auto _ : state) {
    for (const MemRef& ref : trace) {
      benchmark::DoNotOptimize(cache.access(ref));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
  state.SetLabel(config.name());
}
BENCHMARK(BM_CacheAccess)->Arg(0)->Arg(8)->Arg(17);

void BM_EnergyModelEvaluate(benchmark::State& state) {
  const EnergyModel model{CactiModel{}};
  RawCounters counters;
  counters.loads = 50000;
  counters.stores = 20000;
  counters.int_ops = 100000;
  CacheSimResult sim;
  sim.config = DesignSpace::base_config();
  sim.stats.accesses = 70000;
  sim.stats.hits = 69000;
  sim.stats.misses = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(counters, sim));
  }
}
BENCHMARK(BM_EnergyModelEvaluate);

void BM_AnnInference(benchmark::State& state) {
  const Experiment& experiment = shared_experiment();
  const BenchmarkProfile& b =
      experiment.suite().benchmark(experiment.scheduling_ids().front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        experiment.predictor().predict_size_bytes(b.base_statistics));
  }
}
BENCHMARK(BM_AnnInference);

void BM_TuningHeuristicStep(benchmark::State& state) {
  ProfilingTable table(1);
  ProfilingTable::Entry& entry = table.entry(0);
  // Partially explored 8KB walk: next_config must reconstruct the path.
  table.record(0, CacheConfig{8192, 1, 16}, Observation{NanoJoules(100), NanoJoules(60), 1000});
  table.record(0, CacheConfig{8192, 2, 16}, Observation{NanoJoules(90), NanoJoules(55), 950});
  for (auto _ : state) {
    benchmark::DoNotOptimize(TuningHeuristic::next_config(entry, 8192));
  }
}
BENCHMARK(BM_TuningHeuristicStep);

void BM_KernelExecution(benchmark::State& state) {
  const auto kernels = make_standard_kernels(0.25);
  const Kernel& kernel = *kernels[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(execute(kernel, 99));
  }
  state.SetLabel(kernel.name());
}
BENCHMARK(BM_KernelExecution)->Arg(0)->Arg(3)->Arg(12);

void BM_FullSchedulingRun(benchmark::State& state) {
  const Experiment& experiment = shared_experiment();
  for (auto _ : state) {
    SystemRun run = experiment.run_proposed();
    benchmark::DoNotOptimize(run.result.total_energy());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(experiment.arrivals().size()));
}
BENCHMARK(BM_FullSchedulingRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
