// Performance: observability overhead.
//
// The observability layer must be zero-cost when disabled (no observer,
// no probe — the hot paths see one null check) and cheap when enabled.
// This bench times the proposed system over the quick-scale stream in
// three modes:
//
//   disabled : no observer, no probe (the default production path)
//   metrics  : EventTracer attached, counters/histogram maintained
//   full     : tracer + metrics + global ProbeRecorder installed
//   windowed : WindowedCollector attached (per-window telemetry)
//   all      : tracer (job spans on) + span collector + windowed
//              collector fanned out together (the everything-on path)
//
// and verifies that enabling observability does not change a single
// simulation output (energy, makespan, completions are compared against
// the disabled run) — including the windowed path, whose collector is
// checked to see the full stream without perturbing it. Results go to
// BENCH_obs_overhead.json.
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

#include "experiment/experiment.hpp"
#include "obs/latency.hpp"
#include "obs/observability.hpp"
#include "obs/windowed.hpp"
#include "util/atomic_file.hpp"
#include "util/contracts.hpp"
#include "util/table_printer.hpp"

namespace {

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  using namespace hetsched;

  ExperimentOptions options = ExperimentOptions::quick();
  options.arrivals.count = 1000;
  Experiment experiment(options);

  const int kRepeats = 5;

  // Reference outputs + disabled-path timing.
  SystemRun reference;
  const double disabled_ms = time_ms([&] {
    for (int i = 0; i < kRepeats; ++i) reference = experiment.run_proposed();
  });

  // Tracer + metrics registry attached to the simulator.
  SystemRun traced;
  std::size_t trace_events = 0;
  const double metrics_ms = time_ms([&] {
    for (int i = 0; i < kRepeats; ++i) {
      MetricsRegistry metrics;
      EventTracer tracer(&metrics);
      traced = experiment.run_proposed(&tracer);
      trace_events = tracer.events().size();
    }
  });

  // Tracer + metrics + the global runtime probe installed.
  SystemRun full;
  const double full_ms = time_ms([&] {
    for (int i = 0; i < kRepeats; ++i) {
      MetricsRegistry metrics;
      EventTracer tracer(&metrics);
      EventTracer runtime;
      ProbeRecorder recorder(metrics, &runtime);
      ScopedProbe probe(&recorder);
      full = experiment.run_proposed(&tracer);
      record_result_metrics(metrics, "proposed.", full.result);
    }
  });

  // WindowedCollector attached to the simulator (the streaming
  // telemetry path).
  SystemRun windowed_run;
  std::uint64_t windows_closed = 0;
  std::uint64_t window_jobs = 0;
  const double windowed_ms = time_ms([&] {
    for (int i = 0; i < kRepeats; ++i) {
      WindowedCollector collector(options.core_count,
                                  WindowedOptions{1'000'000, 0},
                                  &experiment.suite());
      windowed_run = experiment.run_proposed(&collector);
      collector.finalize();
      windows_closed = collector.windows_closed();
      window_jobs = 0;
      for (const WindowRecord& w : collector.windows()) {
        window_jobs += w.jobs_completed;
      }
    }
  });

  // Everything at once: tracer with job spans enabled, the span
  // collector, and the windowed collector sharing one fanout — the
  // most expensive supported configuration.
  SystemRun all_run;
  std::uint64_t span_jobs = 0;
  const double all_ms = time_ms([&] {
    for (int i = 0; i < kRepeats; ++i) {
      MetricsRegistry metrics;
      EventTracer tracer(&metrics);
      tracer.set_job_spans(true);
      JobSpanCollector spans("proposed", 1'000'000);
      WindowedCollector collector(options.core_count,
                                  WindowedOptions{1'000'000, 0},
                                  &experiment.suite());
      collector.set_span_source(&spans);
      FanoutObserver fanout({&tracer, &spans, &collector});
      all_run = experiment.run_proposed(&fanout);
      spans.finalize();
      collector.finalize();
      span_jobs = spans.jobs_completed();
    }
  });

  // Observability must not perturb the simulation.
  auto same = [&](const SystemRun& run) {
    HETSCHED_REQUIRE(run.result.total_energy().value() ==
                     reference.result.total_energy().value());
    HETSCHED_REQUIRE(run.result.makespan == reference.result.makespan);
    HETSCHED_REQUIRE(run.result.completed_jobs ==
                     reference.result.completed_jobs);
  };
  same(traced);
  same(full);
  same(windowed_run);
  same(all_run);
  // The window stream must account for every completed job exactly once,
  // and the span collector must retire exactly the completed jobs.
  HETSCHED_REQUIRE(window_jobs == reference.result.completed_jobs);
  HETSCHED_REQUIRE(span_jobs == reference.result.completed_jobs);

  std::cout << "=== Observability overhead (proposed system, "
            << options.arrivals.count << " arrivals, " << kRepeats
            << " repeats) ===\n\n";
  TablePrinter table({"mode", "wall ms", "vs disabled"});
  auto add = [&](const std::string& name, double ms) {
    table.add_row({name, TablePrinter::num(ms, 1),
                   TablePrinter::num(ms / disabled_ms, 3) + "x"});
  };
  add("disabled", disabled_ms);
  add("tracer + metrics", metrics_ms);
  add("tracer + metrics + probe", full_ms);
  add("windowed collector", windowed_ms);
  add("tracer + spans + windowed", all_ms);
  table.print(std::cout);
  std::cout << "\nTrace events per run: " << trace_events
            << "\nWindows closed per run: " << windows_closed
            << "\nSimulation outputs identical across all modes.\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"obs_overhead\",\n"
       << "  \"arrivals\": " << options.arrivals.count << ",\n"
       << "  \"repeats\": " << kRepeats << ",\n"
       << "  \"trace_events_per_run\": " << trace_events << ",\n"
       << "  \"windows_closed_per_run\": " << windows_closed << ",\n"
       << "  \"disabled_ms\": " << disabled_ms << ",\n"
       << "  \"metrics_ms\": " << metrics_ms << ",\n"
       << "  \"full_ms\": " << full_ms << ",\n"
       << "  \"windowed_ms\": " << windowed_ms << ",\n"
       << "  \"all_ms\": " << all_ms << ",\n"
       << "  \"metrics_overhead\": " << metrics_ms / disabled_ms << ",\n"
       << "  \"full_overhead\": " << full_ms / disabled_ms << ",\n"
       << "  \"windowed_overhead\": " << windowed_ms / disabled_ms << ",\n"
       << "  \"all_overhead\": " << all_ms / disabled_ms << "\n"
       << "}\n";
  atomic_write_file("BENCH_obs_overhead.json", json.str());
  std::cout << "Results written to BENCH_obs_overhead.json\n";
  return 0;
}
