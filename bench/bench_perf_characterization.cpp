// Performance: suite characterisation fast path.
//
// Times the four ways of obtaining the characterised suite at paper
// scale (19 kernels x 8 variants x 18 Table-1 configurations):
//
//   serial-reference : the original path — one full Cache replay per
//                      configuration, one benchmark at a time.
//   single-pass      : one thread, but each trace decides all 18
//                      configurations in one stack-distance sweep.
//   pooled           : single-pass fanned out over the shared pool
//                      (HETSCHED_THREADS or hardware concurrency).
//   snapshot         : reload from the persistent profile cache.
//
// All four produce bit-identical suites (verified by fastpath_test and
// re-checked cheaply here). Results go to BENCH_characterization.json.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

#include "energy/energy_model.hpp"
#include "util/atomic_file.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "workload/characterization.hpp"
#include "workload/profile_cache.hpp"

namespace {

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  using namespace hetsched;

  const EnergyModel model{CactiModel{}, EnergyModelParams{}};
  const SuiteOptions options;  // paper scale
  const std::size_t threads = ThreadPool::default_threads();

  std::cout << "=== Characterisation fast path (paper-scale suite, "
            << threads << " thread" << (threads == 1 ? "" : "s")
            << " available) ===\n\n";

  std::size_t suite_size = 0;
  const double serial_ms = time_ms([&] {
    const CharacterizedSuite suite =
        CharacterizedSuite::build_reference(model, options);
    suite_size = suite.size();
  });

  ThreadPool one(1);
  const double single_pass_ms = time_ms(
      [&] { CharacterizedSuite::build(model, options, one); });

  const double pooled_ms =
      time_ms([&] { CharacterizedSuite::build(model, options); });

  // Snapshot: first call populates the cache file, second call times the
  // pure reload.
  const std::string cache_path = "BENCH_characterization.profile";
  std::remove(cache_path.c_str());
  load_or_build_suite(cache_path, model, options);
  const double snapshot_ms =
      time_ms([&] { load_or_build_suite(cache_path, model, options); });
  std::remove(cache_path.c_str());

  TablePrinter table({"path", "wall ms", "speedup vs serial"});
  auto add = [&](const std::string& name, double ms) {
    table.add_row({name, TablePrinter::num(ms, 1),
                   TablePrinter::num(serial_ms / ms, 1) + "x"});
  };
  add("serial-reference", serial_ms);
  add("single-pass (1 thread)", single_pass_ms);
  add("pooled (" + std::to_string(threads) + " threads)", pooled_ms);
  add("snapshot reload", snapshot_ms);
  table.print(std::cout);
  std::cout << "\nSuite: " << suite_size
            << " benchmark instances x 18 configurations\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"characterization\",\n"
       << "  \"suite_size\": " << suite_size << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"serial_reference_ms\": " << serial_ms << ",\n"
       << "  \"single_pass_ms\": " << single_pass_ms << ",\n"
       << "  \"pooled_ms\": " << pooled_ms << ",\n"
       << "  \"snapshot_ms\": " << snapshot_ms << ",\n"
       << "  \"single_pass_speedup\": " << serial_ms / single_pass_ms << ",\n"
       << "  \"pooled_speedup\": " << serial_ms / pooled_ms << ",\n"
       << "  \"snapshot_speedup\": " << serial_ms / snapshot_ms << "\n"
       << "}\n";
  hetsched::atomic_write_file("BENCH_characterization.json", json.str());
  std::cout << "Results written to BENCH_characterization.json\n";
  return 0;
}
