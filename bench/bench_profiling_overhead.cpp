// Section VI claim — "Profiling only introduced less than .5% overhead in
// total energy consumption."
//
// Reports the energy spent in profiling executions (the base-configuration
// runs on the profiling core) as a fraction of each system's total energy,
// plus the tuning-execution overhead for context.
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  Experiment experiment(options);

  const SystemRun optimal = experiment.run_optimal();
  const SystemRun ec = experiment.run_energy_centric();
  const SystemRun proposed = experiment.run_proposed();

  std::cout << "=== Profiling and tuning overhead (Section VI) ===\n\n";

  TablePrinter table({"system", "profiling runs", "profiling energy",
                      "share of total", "tuning runs", "tuning energy share"});
  auto add = [&](const SystemRun& run) {
    const double total = run.result.total_energy().value();
    table.add_row(
        {run.name, std::to_string(run.result.profiling_runs),
         TablePrinter::num(run.result.profiling_energy.millijoules(), 2) +
             " mJ",
         TablePrinter::pct(run.result.profiling_energy.value() / total),
         std::to_string(run.result.tuning_runs),
         TablePrinter::pct(run.result.tuning_energy.value() / total)});
  };
  add(optimal);
  add(ec);
  add(proposed);
  table.print(std::cout);

  const double share = proposed.result.profiling_energy.value() /
                       proposed.result.total_energy().value();
  std::cout << "\nProposed-system profiling overhead: "
            << TablePrinter::pct(share) << " of total energy (paper: < 0.5%)."
            << "\nNote: profiling runs double as real executions of the "
               "arriving job, so the marginal overhead is the difference "
               "between the base configuration and the job's best "
               "configuration for those runs.\n";
  return 0;
}
