// Scale: the streaming scenario driver at 16 and 64-256 cores.
//
// Runs the same proposed-policy scenario at 10k, 100k and 1M jobs under
// the streaming driver (arrivals generated on demand, schedule compacted
// into StreamStats as it happens) and records wall time, throughput,
// peak RSS and the dispatch-index scan counters. Two claims are under
// test: time grows linearly with the job count while peak memory stays
// flat (streaming), and the per-decision scan cost stays a few bitmap
// words as the machine grows 16 -> 256 cores (hierarchical dispatch).
//
// The 16- and 64-core rows go to BENCH_scenario.json (gated by the CI
// bench-diff job against bench/baselines); the 128/256-core rows go to
// BENCH_scenario_large.json, uploaded as an informational artifact only.
// The inter-arrival gap scales inversely with the core count so every
// machine size runs under the same per-core load.
//
// Rows come in two flavours. "Observed" rows run with the StreamStats
// observer attached, as every real driver does; their wall time includes
// folding each slice/dispatch/idle event into the byte-serial FNV-1a
// digest, which costs ~110 ns/job at -O3 and therefore caps observed
// throughput near 4M jobs/s regardless of how cheap dispatch gets.
// "Raw" rows attach no observer — observers never feed back into
// simulation state, so the SimulationResult is identical — and measure
// the dispatch+simulation engine proper.
#include <chrono>
#include <limits>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "scenario/scenario_runner.hpp"
#include "util/atomic_file.hpp"
#include "util/contracts.hpp"
#include "util/table_printer.hpp"

namespace {

// Peak RSS of the whole process so far, in KiB (0 where unsupported).
// Monotone by definition, so running the job counts in increasing order
// makes the delta between rows the honest "extra memory the bigger run
// needed" figure.
long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // ru_maxrss is bytes on macOS
#else
  return usage.ru_maxrss;
#endif
#else
  return 0;
#endif
}

struct Row {
  std::size_t cores;
  std::size_t jobs;
  double wall_ms;
  double jobs_per_sec;
  long peak_rss_kib;
  std::uint64_t digest;
  double words_per_decision;  // bitmap words scanned per decide() call
  double clamp_hit_rate;      // clamp lookups served from the epoch cache
};

std::vector<Row> run_rows(hetsched::Scenario scenario,
                          const hetsched::ScenarioContext& context,
                          std::size_t cores,
                          const std::vector<std::size_t>& job_counts,
                          bool raw = false) {
  using namespace hetsched;
  scenario.cores = cores;
  // Same per-core offered load at every machine size: the 16-core
  // baseline gap is 20000 cycles, so gap(n) = 20000 * 16 / n.
  scenario.arrivals.mean_interarrival_cycles =
      20000.0 * 16.0 / static_cast<double>(cores);

  std::vector<Row> rows;
  for (const std::size_t jobs : job_counts) {
    scenario.arrivals.count = jobs;
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t digest = 0;
    std::uint64_t completed = 0;
    DispatchTelemetry d;
    if (raw) {
      ScenarioRun run(scenario, context, nullptr,
                      ScenarioRun::ObserverMode::kRaw);
      run.start();
      run.advance_until(std::numeric_limits<SimTime>::max());
      completed = run.finish().completed_jobs;
      d = run.simulator().dispatch_telemetry();
    } else {
      const ScenarioOutcome outcome = run_scenario(scenario, context);
      HETSCHED_ASSERT(outcome.stream.invariant_violations() == 0);
      completed = outcome.result.completed_jobs;
      digest = outcome.stream.digest();
      d = outcome.dispatch;
    }
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    HETSCHED_ASSERT(completed == jobs);
    rows.push_back(
        {cores, jobs, wall_ms, jobs / (wall_ms / 1000.0), peak_rss_kib(),
         digest,
         d.decisions == 0 ? 0.0
                          : static_cast<double>(d.words_scanned) /
                                static_cast<double>(d.decisions),
         d.clamp_lookups == 0 ? 0.0
                              : static_cast<double>(d.clamp_hits) /
                                    static_cast<double>(d.clamp_lookups)});
  }
  return rows;
}

void print_rows(const std::vector<Row>& rows, const char* label = "") {
  using hetsched::TablePrinter;
  if (*label != '\0') std::cout << label << "\n";
  TablePrinter table({"cores", "jobs", "wall ms", "jobs/sec",
                      "peak RSS KiB", "words/decision", "clamp hit"});
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.cores), std::to_string(row.jobs),
                   TablePrinter::num(row.wall_ms, 1),
                   TablePrinter::num(row.jobs_per_sec, 0),
                   std::to_string(row.peak_rss_kib),
                   TablePrinter::num(row.words_per_decision, 2),
                   TablePrinter::num(row.clamp_hit_rate, 3)});
  }
  table.print(std::cout);
}

double rss_growth(const std::vector<Row>& rows) {
  return rows.front().peak_rss_kib > 0
             ? static_cast<double>(rows.back().peak_rss_kib) /
                   static_cast<double>(rows.front().peak_rss_kib)
             : 0.0;
}

void append_rows_json(std::ostringstream& json, const std::string& key,
                      const std::vector<Row>& rows, bool trailing_comma,
                      bool with_digest = true) {
  json << "  \"" << key << "\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"jobs\": " << row.jobs << ", \"wall_ms\": " << row.wall_ms
         << ", \"jobs_per_sec\": " << row.jobs_per_sec
         << ", \"peak_rss_kib\": " << row.peak_rss_kib;
    if (with_digest) json << ", \"stream_digest\": " << row.digest;
    json << ", \"words_per_decision\": " << row.words_per_decision
         << ", \"clamp_hit_rate\": " << row.clamp_hit_rate << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]" << (trailing_comma ? "," : "") << "\n";
}

}  // namespace

int main() {
  using namespace hetsched;

  Scenario scenario;
  scenario.name = "scale";
  scenario.system = Scenario::SystemKind::kScaledHeterogeneous;
  scenario.cores = 16;
  scenario.policy = "proposed";
  scenario.arrivals.mean_interarrival_cycles = 20000.0;
  // Light suite/training so the benchmark measures the streaming driver,
  // not characterisation or ANN training.
  scenario.suite.kernel_scale = 0.25;
  scenario.suite.variants_per_kernel = 1;
  scenario.predictor_ensemble = 5;
  scenario.predictor_max_epochs = 120;

  std::cout << "=== Streaming scenario scale (scaled heterogeneous "
               "system, proposed policy) ===\n\n";

  // One context serves every core count: the suite and predictor depend
  // only on the kernel/training parameters, not the machine shape.
  const auto setup_start = std::chrono::steady_clock::now();
  const ScenarioContext context(scenario);
  const double setup_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - setup_start)
                              .count();

  const std::vector<std::size_t> job_counts{10'000, 100'000, 1'000'000};
  const std::vector<Row> rows16 = run_rows(scenario, context, 16, job_counts);
  const std::vector<Row> rows64 = run_rows(scenario, context, 64, job_counts);
  const std::vector<Row> raw16 =
      run_rows(scenario, context, 16, job_counts, /*raw=*/true);
  const std::vector<Row> raw64 =
      run_rows(scenario, context, 64, job_counts, /*raw=*/true);

  print_rows(rows16, "observed (StreamStats digest attached):");
  std::cout << "\n";
  print_rows(rows64);
  std::cout << "\n";
  print_rows(raw16, "raw (no observer; engine throughput):");
  std::cout << "\n";
  print_rows(raw64);
  std::cout << "\nSetup (suite + predictor): "
            << TablePrinter::num(setup_ms, 1) << " ms\n"
            << "Peak RSS growth 10k -> 1M jobs @16: "
            << TablePrinter::num(rss_growth(rows16), 2) << "x, @64: "
            << TablePrinter::num(rss_growth(rows64), 2)
            << "x (streaming keeps memory bounded by the machine, not "
               "the stream)\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"scenario_scale\",\n"
       << "  \"cores\": 16,\n"
       << "  \"policy\": \"" << scenario.policy << "\",\n"
       << "  \"setup_ms\": " << setup_ms << ",\n"
       << "  \"rss_growth_10k_to_1m\": " << rss_growth(rows16) << ",\n"
       << "  \"rss_growth_64_10k_to_1m\": " << rss_growth(rows64) << ",\n";
  append_rows_json(json, "runs", rows16, /*trailing_comma=*/true);
  append_rows_json(json, "runs_64", rows64, /*trailing_comma=*/true);
  append_rows_json(json, "runs_raw", raw16, /*trailing_comma=*/true,
                   /*with_digest=*/false);
  append_rows_json(json, "runs_64_raw", raw64, /*trailing_comma=*/false,
                   /*with_digest=*/false);
  json << "}\n";
  atomic_write_file("BENCH_scenario.json", json.str());
  std::cout << "Results written to BENCH_scenario.json\n";

  // 128/256-core rows: informational only (CI uploads the file as an
  // artifact, no gate) — big-machine wall times are too sensitive to
  // runner weather to hard-gate, and they would double the bench job's
  // runtime budget.
  const std::vector<Row> rows128 =
      run_rows(scenario, context, 128, job_counts);
  const std::vector<Row> rows256 =
      run_rows(scenario, context, 256, job_counts);
  std::cout << "\n";
  print_rows(rows128);
  std::cout << "\n";
  print_rows(rows256);

  std::ostringstream large;
  large << "{\n"
        << "  \"benchmark\": \"scenario_scale_large\",\n"
        << "  \"policy\": \"" << scenario.policy << "\",\n";
  append_rows_json(large, "runs_128", rows128, /*trailing_comma=*/true);
  append_rows_json(large, "runs_256", rows256, /*trailing_comma=*/false);
  large << "}\n";
  atomic_write_file("BENCH_scenario_large.json", large.str());
  std::cout << "\nResults written to BENCH_scenario_large.json\n";
  return 0;
}
