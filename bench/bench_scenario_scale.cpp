// Scale: the streaming scenario driver on a 16-core system.
//
// Runs the same proposed-policy scenario at 10k, 100k and 1M jobs under
// the streaming driver (arrivals generated on demand, schedule compacted
// into StreamStats as it happens) and records wall time, throughput and
// peak RSS. The point of the exercise: time grows linearly with the job
// count while peak memory stays flat — a million-job run costs no more
// RAM than a ten-thousand-job one. Results go to BENCH_scenario.json.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "scenario/scenario_runner.hpp"
#include "util/atomic_file.hpp"
#include "util/contracts.hpp"
#include "util/table_printer.hpp"

namespace {

// Peak RSS of the whole process so far, in KiB (0 where unsupported).
// Monotone by definition, so running the job counts in increasing order
// makes the delta between rows the honest "extra memory the bigger run
// needed" figure.
long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // ru_maxrss is bytes on macOS
#else
  return usage.ru_maxrss;
#endif
#else
  return 0;
#endif
}

}  // namespace

int main() {
  using namespace hetsched;

  Scenario scenario;
  scenario.name = "scale";
  scenario.system = Scenario::SystemKind::kScaledHeterogeneous;
  scenario.cores = 16;
  scenario.policy = "proposed";
  scenario.arrivals.mean_interarrival_cycles = 20000.0;
  // Light suite/training so the benchmark measures the streaming driver,
  // not characterisation or ANN training.
  scenario.suite.kernel_scale = 0.25;
  scenario.suite.variants_per_kernel = 1;
  scenario.predictor_ensemble = 5;
  scenario.predictor_max_epochs = 120;

  std::cout << "=== Streaming scenario scale (16-core scaled system, "
               "proposed policy) ===\n\n";

  const auto setup_start = std::chrono::steady_clock::now();
  const ScenarioContext context(scenario);
  const double setup_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - setup_start)
                              .count();

  struct Row {
    std::size_t jobs;
    double wall_ms;
    double jobs_per_sec;
    long peak_rss_kib;
    std::uint64_t digest;
  };
  std::vector<Row> rows;
  for (const std::size_t jobs : {std::size_t{10'000}, std::size_t{100'000},
                                 std::size_t{1'000'000}}) {
    scenario.arrivals.count = jobs;
    const auto start = std::chrono::steady_clock::now();
    const ScenarioOutcome outcome = run_scenario(scenario, context);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    HETSCHED_ASSERT(outcome.result.completed_jobs == jobs);
    HETSCHED_ASSERT(outcome.stream.invariant_violations() == 0);
    rows.push_back({jobs, wall_ms, jobs / (wall_ms / 1000.0),
                    peak_rss_kib(), outcome.stream.digest()});
  }

  TablePrinter table({"jobs", "wall ms", "jobs/sec", "peak RSS KiB"});
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.jobs),
                   TablePrinter::num(row.wall_ms, 1),
                   TablePrinter::num(row.jobs_per_sec, 0),
                   std::to_string(row.peak_rss_kib)});
  }
  table.print(std::cout);
  const double rss_growth =
      rows.front().peak_rss_kib > 0
          ? static_cast<double>(rows.back().peak_rss_kib) /
                static_cast<double>(rows.front().peak_rss_kib)
          : 0.0;
  std::cout << "\nSetup (suite + predictor): "
            << TablePrinter::num(setup_ms, 1) << " ms\n"
            << "Peak RSS growth 10k -> 1M jobs: "
            << TablePrinter::num(rss_growth, 2) << "x (streaming keeps "
            << "memory bounded by the machine, not the stream)\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"scenario_scale\",\n"
       << "  \"cores\": " << scenario.cores << ",\n"
       << "  \"policy\": \"" << scenario.policy << "\",\n"
       << "  \"setup_ms\": " << setup_ms << ",\n"
       << "  \"rss_growth_10k_to_1m\": " << rss_growth << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"jobs\": " << row.jobs << ", \"wall_ms\": " << row.wall_ms
         << ", \"jobs_per_sec\": " << row.jobs_per_sec
         << ", \"peak_rss_kib\": " << row.peak_rss_kib
         << ", \"stream_digest\": " << row.digest << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  atomic_write_file("BENCH_scenario.json", json.str());
  std::cout << "Results written to BENCH_scenario.json\n";
  return 0;
}
