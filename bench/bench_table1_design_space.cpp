// Table 1 — the cache configuration design space.
//
// Prints the 18 Table-1 configurations with the per-access energy model
// values (Figure 4 pieces) and the suite-averaged characterisation:
// mean miss rate, mean execution cycles and mean total energy across the
// scheduling benchmarks, each normalised to the base configuration
// 8KB_4W_64B. Also prints the per-benchmark oracle best configuration —
// the ground truth behind every scheduling experiment.
#include <iostream>
#include <map>

#include "experiment/experiment.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  Experiment experiment(options);
  const CharacterizedSuite& suite = experiment.suite();
  const EnergyModel& model = experiment.energy();
  const auto ids = experiment.scheduling_ids();

  std::cout << "=== Table 1: cache configuration design space ===\n\n";

  const auto base_index =
      *DesignSpace::index_of(DesignSpace::base_config());

  TablePrinter table({"config", "E(hit) nJ", "E(miss) nJ", "E(sta)/cyc nJ",
                      "stall cyc/miss", "miss rate", "cycles vs base",
                      "energy vs base"});
  for (const CacheConfig& config : DesignSpace::all()) {
    const auto idx = *DesignSpace::index_of(config);
    RunningStats miss_rate, rel_cycles, rel_energy;
    for (std::size_t id : ids) {
      const BenchmarkProfile& b = suite.benchmark(id);
      const ConfigProfile& cp = b.per_config[idx];
      const ConfigProfile& bp = b.per_config[base_index];
      miss_rate.add(cp.cache.miss_rate());
      rel_cycles.add(static_cast<double>(cp.energy.total_cycles) /
                     static_cast<double>(bp.energy.total_cycles));
      rel_energy.add(cp.energy.total() / bp.energy.total());
    }
    table.add_row(
        {config.name(), TablePrinter::num(model.hit_energy(config).value()),
         TablePrinter::num(model.miss_energy(config).value(), 2),
         TablePrinter::num(model.static_per_cycle(config).value(), 4),
         std::to_string(model.stall_cycles_per_miss(config)),
         TablePrinter::num(miss_rate.mean(), 4),
         TablePrinter::num(rel_cycles.mean(), 3),
         TablePrinter::num(rel_energy.mean(), 3)});
  }
  table.print(std::cout);

  std::cout << "\n=== Oracle best configuration per benchmark ===\n\n";
  TablePrinter best({"benchmark", "domain", "footprint B", "refs",
                     "best config", "best/base energy", "best/base cycles"});
  std::map<std::uint32_t, int> size_histogram;
  for (std::size_t id : ids) {
    const BenchmarkProfile& b = suite.benchmark(id);
    const ConfigProfile& opt = b.best_overall();
    const ConfigProfile& bp = b.per_config[base_index];
    ++size_histogram[opt.config.size_bytes];
    best.add_row({b.instance.name, std::string(to_string(b.instance.domain)),
                  std::to_string(b.footprint_bytes),
                  std::to_string(b.counters.memory_refs()),
                  opt.config.name(),
                  TablePrinter::num(opt.energy.total() / bp.energy.total(), 3),
                  TablePrinter::num(
                      static_cast<double>(opt.energy.total_cycles) /
                          static_cast<double>(bp.energy.total_cycles),
                      3)});
  }
  best.print(std::cout);

  std::cout << "\nOracle best-size distribution: ";
  for (const auto& [size, count] : size_histogram) {
    std::cout << size / 1024 << "KB=" << count << "  ";
  }
  std::cout << "\n";
  return 0;
}
