file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bagging.dir/bench_ablation_bagging.cpp.o"
  "CMakeFiles/bench_ablation_bagging.dir/bench_ablation_bagging.cpp.o.d"
  "bench_ablation_bagging"
  "bench_ablation_bagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
