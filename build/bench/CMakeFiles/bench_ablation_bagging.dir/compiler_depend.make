# Empty compiler generated dependencies file for bench_ablation_bagging.
# This may be replaced when dependencies are built.
