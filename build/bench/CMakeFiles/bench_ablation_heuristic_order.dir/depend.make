# Empty dependencies file for bench_ablation_heuristic_order.
# This may be replaced when dependencies are built.
