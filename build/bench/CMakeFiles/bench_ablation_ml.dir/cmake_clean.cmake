file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ml.dir/bench_ablation_ml.cpp.o"
  "CMakeFiles/bench_ablation_ml.dir/bench_ablation_ml.cpp.o.d"
  "bench_ablation_ml"
  "bench_ablation_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
