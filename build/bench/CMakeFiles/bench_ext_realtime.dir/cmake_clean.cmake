file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_realtime.dir/bench_ext_realtime.cpp.o"
  "CMakeFiles/bench_ext_realtime.dir/bench_ext_realtime.cpp.o.d"
  "bench_ext_realtime"
  "bench_ext_realtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
