# Empty dependencies file for bench_ext_realtime.
# This may be replaced when dependencies are built.
