file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_suite.dir/bench_ext_suite.cpp.o"
  "CMakeFiles/bench_ext_suite.dir/bench_ext_suite.cpp.o.d"
  "bench_ext_suite"
  "bench_ext_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
