# Empty dependencies file for bench_ext_suite.
# This may be replaced when dependencies are built.
