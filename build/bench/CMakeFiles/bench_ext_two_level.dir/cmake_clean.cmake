file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_two_level.dir/bench_ext_two_level.cpp.o"
  "CMakeFiles/bench_ext_two_level.dir/bench_ext_two_level.cpp.o.d"
  "bench_ext_two_level"
  "bench_ext_two_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_two_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
