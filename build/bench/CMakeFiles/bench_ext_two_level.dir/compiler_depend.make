# Empty compiler generated dependencies file for bench_ext_two_level.
# This may be replaced when dependencies are built.
