file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_tuning_heuristic.dir/bench_fig5_tuning_heuristic.cpp.o"
  "CMakeFiles/bench_fig5_tuning_heuristic.dir/bench_fig5_tuning_heuristic.cpp.o.d"
  "bench_fig5_tuning_heuristic"
  "bench_fig5_tuning_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_tuning_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
