# Empty dependencies file for bench_fig5_tuning_heuristic.
# This may be replaced when dependencies are built.
