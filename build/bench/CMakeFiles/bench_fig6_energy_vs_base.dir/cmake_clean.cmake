file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_energy_vs_base.dir/bench_fig6_energy_vs_base.cpp.o"
  "CMakeFiles/bench_fig6_energy_vs_base.dir/bench_fig6_energy_vs_base.cpp.o.d"
  "bench_fig6_energy_vs_base"
  "bench_fig6_energy_vs_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_energy_vs_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
