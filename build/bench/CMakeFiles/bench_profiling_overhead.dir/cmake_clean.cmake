file(REMOVE_RECURSE
  "CMakeFiles/bench_profiling_overhead.dir/bench_profiling_overhead.cpp.o"
  "CMakeFiles/bench_profiling_overhead.dir/bench_profiling_overhead.cpp.o.d"
  "bench_profiling_overhead"
  "bench_profiling_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profiling_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
