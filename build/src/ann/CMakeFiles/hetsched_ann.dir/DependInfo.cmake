
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ann/activations.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/activations.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/activations.cpp.o.d"
  "/root/repo/src/ann/bagging.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/bagging.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/bagging.cpp.o.d"
  "/root/repo/src/ann/dataset.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/dataset.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/dataset.cpp.o.d"
  "/root/repo/src/ann/decision_tree.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/decision_tree.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ann/feature_selection.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/feature_selection.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/feature_selection.cpp.o.d"
  "/root/repo/src/ann/knn.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/knn.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/knn.cpp.o.d"
  "/root/repo/src/ann/matrix.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/matrix.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/matrix.cpp.o.d"
  "/root/repo/src/ann/metrics.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/metrics.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/metrics.cpp.o.d"
  "/root/repo/src/ann/mlp.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/mlp.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/mlp.cpp.o.d"
  "/root/repo/src/ann/mlp_regressor.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/mlp_regressor.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/mlp_regressor.cpp.o.d"
  "/root/repo/src/ann/ridge.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/ridge.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/ridge.cpp.o.d"
  "/root/repo/src/ann/trainer.cpp" "src/ann/CMakeFiles/hetsched_ann.dir/trainer.cpp.o" "gcc" "src/ann/CMakeFiles/hetsched_ann.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hetsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
