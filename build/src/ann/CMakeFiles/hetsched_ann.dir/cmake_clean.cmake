file(REMOVE_RECURSE
  "CMakeFiles/hetsched_ann.dir/activations.cpp.o"
  "CMakeFiles/hetsched_ann.dir/activations.cpp.o.d"
  "CMakeFiles/hetsched_ann.dir/bagging.cpp.o"
  "CMakeFiles/hetsched_ann.dir/bagging.cpp.o.d"
  "CMakeFiles/hetsched_ann.dir/dataset.cpp.o"
  "CMakeFiles/hetsched_ann.dir/dataset.cpp.o.d"
  "CMakeFiles/hetsched_ann.dir/decision_tree.cpp.o"
  "CMakeFiles/hetsched_ann.dir/decision_tree.cpp.o.d"
  "CMakeFiles/hetsched_ann.dir/feature_selection.cpp.o"
  "CMakeFiles/hetsched_ann.dir/feature_selection.cpp.o.d"
  "CMakeFiles/hetsched_ann.dir/knn.cpp.o"
  "CMakeFiles/hetsched_ann.dir/knn.cpp.o.d"
  "CMakeFiles/hetsched_ann.dir/matrix.cpp.o"
  "CMakeFiles/hetsched_ann.dir/matrix.cpp.o.d"
  "CMakeFiles/hetsched_ann.dir/metrics.cpp.o"
  "CMakeFiles/hetsched_ann.dir/metrics.cpp.o.d"
  "CMakeFiles/hetsched_ann.dir/mlp.cpp.o"
  "CMakeFiles/hetsched_ann.dir/mlp.cpp.o.d"
  "CMakeFiles/hetsched_ann.dir/mlp_regressor.cpp.o"
  "CMakeFiles/hetsched_ann.dir/mlp_regressor.cpp.o.d"
  "CMakeFiles/hetsched_ann.dir/ridge.cpp.o"
  "CMakeFiles/hetsched_ann.dir/ridge.cpp.o.d"
  "CMakeFiles/hetsched_ann.dir/trainer.cpp.o"
  "CMakeFiles/hetsched_ann.dir/trainer.cpp.o.d"
  "libhetsched_ann.a"
  "libhetsched_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsched_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
