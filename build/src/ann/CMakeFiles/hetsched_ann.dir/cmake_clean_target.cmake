file(REMOVE_RECURSE
  "libhetsched_ann.a"
)
