# Empty compiler generated dependencies file for hetsched_ann.
# This may be replaced when dependencies are built.
