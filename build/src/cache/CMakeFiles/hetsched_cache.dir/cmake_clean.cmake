file(REMOVE_RECURSE
  "CMakeFiles/hetsched_cache.dir/cache.cpp.o"
  "CMakeFiles/hetsched_cache.dir/cache.cpp.o.d"
  "CMakeFiles/hetsched_cache.dir/cache_config.cpp.o"
  "CMakeFiles/hetsched_cache.dir/cache_config.cpp.o.d"
  "CMakeFiles/hetsched_cache.dir/cache_tuner.cpp.o"
  "CMakeFiles/hetsched_cache.dir/cache_tuner.cpp.o.d"
  "CMakeFiles/hetsched_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/hetsched_cache.dir/hierarchy.cpp.o.d"
  "libhetsched_cache.a"
  "libhetsched_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsched_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
