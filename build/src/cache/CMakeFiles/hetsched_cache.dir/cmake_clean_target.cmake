file(REMOVE_RECURSE
  "libhetsched_cache.a"
)
