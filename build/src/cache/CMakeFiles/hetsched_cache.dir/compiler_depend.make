# Empty compiler generated dependencies file for hetsched_cache.
# This may be replaced when dependencies are built.
