
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/energy_decision.cpp" "src/core/CMakeFiles/hetsched_core.dir/energy_decision.cpp.o" "gcc" "src/core/CMakeFiles/hetsched_core.dir/energy_decision.cpp.o.d"
  "/root/repo/src/core/model_predictor.cpp" "src/core/CMakeFiles/hetsched_core.dir/model_predictor.cpp.o" "gcc" "src/core/CMakeFiles/hetsched_core.dir/model_predictor.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/core/CMakeFiles/hetsched_core.dir/policies.cpp.o" "gcc" "src/core/CMakeFiles/hetsched_core.dir/policies.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/hetsched_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/hetsched_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/profiling_table.cpp" "src/core/CMakeFiles/hetsched_core.dir/profiling_table.cpp.o" "gcc" "src/core/CMakeFiles/hetsched_core.dir/profiling_table.cpp.o.d"
  "/root/repo/src/core/realtime_policy.cpp" "src/core/CMakeFiles/hetsched_core.dir/realtime_policy.cpp.o" "gcc" "src/core/CMakeFiles/hetsched_core.dir/realtime_policy.cpp.o.d"
  "/root/repo/src/core/schedule_log.cpp" "src/core/CMakeFiles/hetsched_core.dir/schedule_log.cpp.o" "gcc" "src/core/CMakeFiles/hetsched_core.dir/schedule_log.cpp.o.d"
  "/root/repo/src/core/serialization.cpp" "src/core/CMakeFiles/hetsched_core.dir/serialization.cpp.o" "gcc" "src/core/CMakeFiles/hetsched_core.dir/serialization.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/hetsched_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/hetsched_core.dir/simulator.cpp.o.d"
  "/root/repo/src/core/system_config.cpp" "src/core/CMakeFiles/hetsched_core.dir/system_config.cpp.o" "gcc" "src/core/CMakeFiles/hetsched_core.dir/system_config.cpp.o.d"
  "/root/repo/src/core/tuning_heuristic.cpp" "src/core/CMakeFiles/hetsched_core.dir/tuning_heuristic.cpp.o" "gcc" "src/core/CMakeFiles/hetsched_core.dir/tuning_heuristic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hetsched_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hetsched_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hetsched_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/hetsched_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/hetsched_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hetsched_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
