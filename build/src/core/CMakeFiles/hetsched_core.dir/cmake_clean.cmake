file(REMOVE_RECURSE
  "CMakeFiles/hetsched_core.dir/energy_decision.cpp.o"
  "CMakeFiles/hetsched_core.dir/energy_decision.cpp.o.d"
  "CMakeFiles/hetsched_core.dir/model_predictor.cpp.o"
  "CMakeFiles/hetsched_core.dir/model_predictor.cpp.o.d"
  "CMakeFiles/hetsched_core.dir/policies.cpp.o"
  "CMakeFiles/hetsched_core.dir/policies.cpp.o.d"
  "CMakeFiles/hetsched_core.dir/predictor.cpp.o"
  "CMakeFiles/hetsched_core.dir/predictor.cpp.o.d"
  "CMakeFiles/hetsched_core.dir/profiling_table.cpp.o"
  "CMakeFiles/hetsched_core.dir/profiling_table.cpp.o.d"
  "CMakeFiles/hetsched_core.dir/realtime_policy.cpp.o"
  "CMakeFiles/hetsched_core.dir/realtime_policy.cpp.o.d"
  "CMakeFiles/hetsched_core.dir/schedule_log.cpp.o"
  "CMakeFiles/hetsched_core.dir/schedule_log.cpp.o.d"
  "CMakeFiles/hetsched_core.dir/serialization.cpp.o"
  "CMakeFiles/hetsched_core.dir/serialization.cpp.o.d"
  "CMakeFiles/hetsched_core.dir/simulator.cpp.o"
  "CMakeFiles/hetsched_core.dir/simulator.cpp.o.d"
  "CMakeFiles/hetsched_core.dir/system_config.cpp.o"
  "CMakeFiles/hetsched_core.dir/system_config.cpp.o.d"
  "CMakeFiles/hetsched_core.dir/tuning_heuristic.cpp.o"
  "CMakeFiles/hetsched_core.dir/tuning_heuristic.cpp.o.d"
  "libhetsched_core.a"
  "libhetsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
