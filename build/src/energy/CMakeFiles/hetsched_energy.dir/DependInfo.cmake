
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/cacti.cpp" "src/energy/CMakeFiles/hetsched_energy.dir/cacti.cpp.o" "gcc" "src/energy/CMakeFiles/hetsched_energy.dir/cacti.cpp.o.d"
  "/root/repo/src/energy/energy_model.cpp" "src/energy/CMakeFiles/hetsched_energy.dir/energy_model.cpp.o" "gcc" "src/energy/CMakeFiles/hetsched_energy.dir/energy_model.cpp.o.d"
  "/root/repo/src/energy/two_level_model.cpp" "src/energy/CMakeFiles/hetsched_energy.dir/two_level_model.cpp.o" "gcc" "src/energy/CMakeFiles/hetsched_energy.dir/two_level_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hetsched_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hetsched_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hetsched_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
