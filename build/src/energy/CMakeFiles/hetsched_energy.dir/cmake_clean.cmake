file(REMOVE_RECURSE
  "CMakeFiles/hetsched_energy.dir/cacti.cpp.o"
  "CMakeFiles/hetsched_energy.dir/cacti.cpp.o.d"
  "CMakeFiles/hetsched_energy.dir/energy_model.cpp.o"
  "CMakeFiles/hetsched_energy.dir/energy_model.cpp.o.d"
  "CMakeFiles/hetsched_energy.dir/two_level_model.cpp.o"
  "CMakeFiles/hetsched_energy.dir/two_level_model.cpp.o.d"
  "libhetsched_energy.a"
  "libhetsched_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsched_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
