file(REMOVE_RECURSE
  "libhetsched_energy.a"
)
