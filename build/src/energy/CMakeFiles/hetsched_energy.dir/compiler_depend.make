# Empty compiler generated dependencies file for hetsched_energy.
# This may be replaced when dependencies are built.
