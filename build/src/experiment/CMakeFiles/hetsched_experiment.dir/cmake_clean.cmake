file(REMOVE_RECURSE
  "CMakeFiles/hetsched_experiment.dir/experiment.cpp.o"
  "CMakeFiles/hetsched_experiment.dir/experiment.cpp.o.d"
  "libhetsched_experiment.a"
  "libhetsched_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsched_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
