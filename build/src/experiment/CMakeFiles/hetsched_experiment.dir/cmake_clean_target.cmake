file(REMOVE_RECURSE
  "libhetsched_experiment.a"
)
