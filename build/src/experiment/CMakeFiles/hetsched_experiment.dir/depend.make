# Empty dependencies file for hetsched_experiment.
# This may be replaced when dependencies are built.
