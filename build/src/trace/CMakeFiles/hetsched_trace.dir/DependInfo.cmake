
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/counters.cpp" "src/trace/CMakeFiles/hetsched_trace.dir/counters.cpp.o" "gcc" "src/trace/CMakeFiles/hetsched_trace.dir/counters.cpp.o.d"
  "/root/repo/src/trace/kernel.cpp" "src/trace/CMakeFiles/hetsched_trace.dir/kernel.cpp.o" "gcc" "src/trace/CMakeFiles/hetsched_trace.dir/kernel.cpp.o.d"
  "/root/repo/src/trace/kernels/automotive.cpp" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/automotive.cpp.o" "gcc" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/automotive.cpp.o.d"
  "/root/repo/src/trace/kernels/consumer.cpp" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/consumer.cpp.o" "gcc" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/consumer.cpp.o.d"
  "/root/repo/src/trace/kernels/extended.cpp" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/extended.cpp.o" "gcc" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/extended.cpp.o.d"
  "/root/repo/src/trace/kernels/networking.cpp" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/networking.cpp.o" "gcc" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/networking.cpp.o.d"
  "/root/repo/src/trace/kernels/office.cpp" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/office.cpp.o" "gcc" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/office.cpp.o.d"
  "/root/repo/src/trace/kernels/telecom.cpp" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/telecom.cpp.o" "gcc" "src/trace/CMakeFiles/hetsched_trace.dir/kernels/telecom.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/hetsched_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/hetsched_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hetsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
