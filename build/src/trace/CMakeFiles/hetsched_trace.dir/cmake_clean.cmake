file(REMOVE_RECURSE
  "CMakeFiles/hetsched_trace.dir/counters.cpp.o"
  "CMakeFiles/hetsched_trace.dir/counters.cpp.o.d"
  "CMakeFiles/hetsched_trace.dir/kernel.cpp.o"
  "CMakeFiles/hetsched_trace.dir/kernel.cpp.o.d"
  "CMakeFiles/hetsched_trace.dir/kernels/automotive.cpp.o"
  "CMakeFiles/hetsched_trace.dir/kernels/automotive.cpp.o.d"
  "CMakeFiles/hetsched_trace.dir/kernels/consumer.cpp.o"
  "CMakeFiles/hetsched_trace.dir/kernels/consumer.cpp.o.d"
  "CMakeFiles/hetsched_trace.dir/kernels/extended.cpp.o"
  "CMakeFiles/hetsched_trace.dir/kernels/extended.cpp.o.d"
  "CMakeFiles/hetsched_trace.dir/kernels/networking.cpp.o"
  "CMakeFiles/hetsched_trace.dir/kernels/networking.cpp.o.d"
  "CMakeFiles/hetsched_trace.dir/kernels/office.cpp.o"
  "CMakeFiles/hetsched_trace.dir/kernels/office.cpp.o.d"
  "CMakeFiles/hetsched_trace.dir/kernels/telecom.cpp.o"
  "CMakeFiles/hetsched_trace.dir/kernels/telecom.cpp.o.d"
  "CMakeFiles/hetsched_trace.dir/trace_io.cpp.o"
  "CMakeFiles/hetsched_trace.dir/trace_io.cpp.o.d"
  "libhetsched_trace.a"
  "libhetsched_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsched_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
