file(REMOVE_RECURSE
  "libhetsched_trace.a"
)
