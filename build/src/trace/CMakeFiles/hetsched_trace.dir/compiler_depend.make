# Empty compiler generated dependencies file for hetsched_trace.
# This may be replaced when dependencies are built.
