file(REMOVE_RECURSE
  "CMakeFiles/hetsched_util.dir/csv.cpp.o"
  "CMakeFiles/hetsched_util.dir/csv.cpp.o.d"
  "CMakeFiles/hetsched_util.dir/rng.cpp.o"
  "CMakeFiles/hetsched_util.dir/rng.cpp.o.d"
  "CMakeFiles/hetsched_util.dir/stats.cpp.o"
  "CMakeFiles/hetsched_util.dir/stats.cpp.o.d"
  "CMakeFiles/hetsched_util.dir/table_printer.cpp.o"
  "CMakeFiles/hetsched_util.dir/table_printer.cpp.o.d"
  "libhetsched_util.a"
  "libhetsched_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsched_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
