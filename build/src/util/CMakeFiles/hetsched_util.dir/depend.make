# Empty dependencies file for hetsched_util.
# This may be replaced when dependencies are built.
