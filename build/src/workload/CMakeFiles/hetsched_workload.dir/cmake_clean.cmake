file(REMOVE_RECURSE
  "CMakeFiles/hetsched_workload.dir/arrivals.cpp.o"
  "CMakeFiles/hetsched_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/hetsched_workload.dir/characterization.cpp.o"
  "CMakeFiles/hetsched_workload.dir/characterization.cpp.o.d"
  "CMakeFiles/hetsched_workload.dir/dataset_builder.cpp.o"
  "CMakeFiles/hetsched_workload.dir/dataset_builder.cpp.o.d"
  "libhetsched_workload.a"
  "libhetsched_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetsched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
