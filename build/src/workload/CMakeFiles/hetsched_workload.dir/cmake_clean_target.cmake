file(REMOVE_RECURSE
  "libhetsched_workload.a"
)
