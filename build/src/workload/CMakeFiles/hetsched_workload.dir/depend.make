# Empty dependencies file for hetsched_workload.
# This may be replaced when dependencies are built.
