file(REMOVE_RECURSE
  "CMakeFiles/ann_models_test.dir/ann_models_test.cpp.o"
  "CMakeFiles/ann_models_test.dir/ann_models_test.cpp.o.d"
  "ann_models_test"
  "ann_models_test.pdb"
  "ann_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
