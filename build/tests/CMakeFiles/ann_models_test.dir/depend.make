# Empty dependencies file for ann_models_test.
# This may be replaced when dependencies are built.
