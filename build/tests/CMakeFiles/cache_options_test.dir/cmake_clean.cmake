file(REMOVE_RECURSE
  "CMakeFiles/cache_options_test.dir/cache_options_test.cpp.o"
  "CMakeFiles/cache_options_test.dir/cache_options_test.cpp.o.d"
  "cache_options_test"
  "cache_options_test.pdb"
  "cache_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
