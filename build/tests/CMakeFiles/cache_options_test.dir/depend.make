# Empty dependencies file for cache_options_test.
# This may be replaced when dependencies are built.
