file(REMOVE_RECURSE
  "CMakeFiles/extended_suite_test.dir/extended_suite_test.cpp.o"
  "CMakeFiles/extended_suite_test.dir/extended_suite_test.cpp.o.d"
  "extended_suite_test"
  "extended_suite_test.pdb"
  "extended_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
