# Empty dependencies file for extended_suite_test.
# This may be replaced when dependencies are built.
