file(REMOVE_RECURSE
  "CMakeFiles/golden_model_test.dir/golden_model_test.cpp.o"
  "CMakeFiles/golden_model_test.dir/golden_model_test.cpp.o.d"
  "golden_model_test"
  "golden_model_test.pdb"
  "golden_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
