# Empty dependencies file for golden_model_test.
# This may be replaced when dependencies are built.
