file(REMOVE_RECURSE
  "CMakeFiles/schedule_log_test.dir/schedule_log_test.cpp.o"
  "CMakeFiles/schedule_log_test.dir/schedule_log_test.cpp.o.d"
  "schedule_log_test"
  "schedule_log_test.pdb"
  "schedule_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
