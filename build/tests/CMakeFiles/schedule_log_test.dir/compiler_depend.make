# Empty compiler generated dependencies file for schedule_log_test.
# This may be replaced when dependencies are built.
