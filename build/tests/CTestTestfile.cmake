# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/ann_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/realtime_test[1]_include.cmake")
include("/root/repo/build/tests/ann_models_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/two_level_test[1]_include.cmake")
include("/root/repo/build/tests/cache_options_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_log_test[1]_include.cmake")
include("/root/repo/build/tests/extended_suite_test[1]_include.cmake")
include("/root/repo/build/tests/golden_model_test[1]_include.cmake")
