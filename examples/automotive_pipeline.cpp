// Domain scenario: an automotive engine-control unit.
//
// The paper's introduction motivates embedded systems running a fixed
// application domain. This example builds an automotive-only workload
// (angle-to-time, table lookup, FIR filter, matrix arithmetic, PWM) on a
// custom *asymmetric triple-core* system — showing that the library's
// architecture description, predictor, and scheduler are not hard-wired to
// the paper's quad-core — and reports per-core placement and energy.
//
// Run:  ./build/examples/automotive_pipeline
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  // Characterise the full suite, then restrict scheduling to the
  // automotive kernels.
  ExperimentOptions options;
  options.arrivals.count = 3000;
  Experiment experiment(options);
  const CharacterizedSuite& suite = experiment.suite();

  std::vector<std::size_t> automotive_ids;
  for (std::size_t id : experiment.scheduling_ids()) {
    if (suite.benchmark(id).instance.domain == Domain::kAutomotive) {
      automotive_ids.push_back(id);
    }
  }
  std::cout << "Automotive workload: ";
  for (std::size_t id : automotive_ids) {
    std::cout << suite.benchmark(id).instance.name << ' ';
  }
  std::cout << "\n\n";

  Rng rng(7);
  ArrivalOptions arrival_options;
  arrival_options.count = 3000;
  arrival_options.mean_interarrival_cycles = 70000.0;
  const auto arrivals =
      generate_arrivals(automotive_ids, arrival_options, rng);

  // A custom ECU: one small 2KB core, two 8KB cores (one of them the
  // profiling core). No 4KB class at all.
  SystemConfig ecu;
  auto spec = [](std::uint32_t size, bool profiling) {
    CoreSpec s;
    s.cache_size_bytes = size;
    s.initial_config =
        CacheConfig{size, DesignSpace::associativities_for(size).front(),
                    DesignSpace::line_sizes().front()};
    s.can_profile = profiling;
    return s;
  };
  ecu.cores = {spec(2048, false), spec(8192, true), spec(8192, true)};
  ecu.primary_profiling_core = 2;
  ecu.secondary_profiling_core = 1;

  // The ANN may predict 4KB, which this machine does not offer; wrap the
  // predictor to clamp predictions onto available sizes.
  class ClampedPredictor final : public SizePredictor {
   public:
    explicit ClampedPredictor(const SizePredictor& inner) : inner_(&inner) {}
    std::uint32_t predict(std::size_t id,
                          const ExecutionStatistics& stats) const override {
      const std::uint32_t size = inner_->predict(id, stats);
      return size <= 2048 ? 2048u : 8192u;
    }

   private:
    const SizePredictor* inner_;
  } predictor(experiment.predictor());

  ProposedPolicy policy(predictor);
  MulticoreSimulator simulator(ecu, suite, experiment.energy(), policy);
  const SimulationResult result = simulator.run(arrivals);

  // Reference: the same stream on a homogeneous 3-core base machine.
  BasePolicy base_policy;
  MulticoreSimulator base_sim(SystemConfig::fixed_base(3), suite,
                              experiment.energy(), base_policy);
  const SimulationResult base = base_sim.run(arrivals);

  TablePrinter cores({"core", "L1 size", "executions", "utilization"});
  for (std::size_t i = 0; i < result.per_core.size(); ++i) {
    cores.add_row(
        {"core " + std::to_string(i + 1),
         std::to_string(ecu.cores[i].cache_size_bytes / 1024) + " KB",
         std::to_string(result.per_core[i].executions),
         TablePrinter::num(result.per_core[i].utilization * 100.0, 1) +
             "%"});
  }
  std::cout << "Proposed scheduler on the asymmetric ECU:\n";
  cores.print(std::cout);

  std::cout << "\nEnergy: "
            << TablePrinter::num(result.total_energy().millijoules(), 1)
            << " mJ vs "
            << TablePrinter::num(base.total_energy().millijoules(), 1)
            << " mJ on the homogeneous 8KB_4W_64B triple-core ("
            << TablePrinter::pct(result.total_energy() /
                                     base.total_energy() -
                                 1.0)
            << ")\nProfiling runs: " << result.profiling_runs
            << ", tuning runs: " << result.tuning_runs
            << ", reconfigurations: " << result.reconfigurations << "\n";
  return 0;
}
