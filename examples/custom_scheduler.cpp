// Writing your own scheduler policy.
//
// The library's SchedulerPolicy interface is open: this example implements
// a "performance-first" policy that always places jobs on the core where
// they finish fastest (using the profiling table's observed cycle counts),
// and races it against the paper's energy-oriented policies on the same
// arrival stream.
//
// Run:  ./build/examples/custom_scheduler
#include <iostream>
#include <limits>

#include "core/tuning_heuristic.hpp"
#include "experiment/experiment.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace hetsched;

// Schedules onto the idle core with the lowest *observed* execution time
// for this benchmark, exploring unknown per-size configurations with the
// Figure-5 heuristic when nothing is known yet. Never stalls.
class PerformanceFirstPolicy final : public SchedulerPolicy {
 public:
  explicit PerformanceFirstPolicy(const SizePredictor& predictor)
      : predictor_(&predictor) {}

  std::string_view name() const override { return "performance-first"; }

  void on_profiled(std::size_t benchmark_id, SystemView& view) override {
    ProfilingTable::Entry& entry = view.table().entry(benchmark_id);
    entry.predicted_best_size_bytes =
        predictor_->predict(benchmark_id, entry.statistics);
  }

  Decision decide(const Job& job, SystemView& view) override {
    if (const auto profiling =
            policy_detail::profiling_decision(job, view)) {
      return *profiling;
    }
    const ProfilingTable::Entry& entry =
        view.table().entry(job.benchmark_id);

    // Candidate per idle core: its tuned best configuration if known
    // (ranked by observed cycles), otherwise a heuristic exploration step.
    std::optional<Decision> best_run;
    Cycles best_cycles = std::numeric_limits<Cycles>::max();
    for (std::size_t core : view.idle_cores()) {
      const std::uint32_t size = view.core(core).spec.cache_size_bytes;
      if (!TuningHeuristic::complete(entry, size)) {
        // Unknown territory: explore it right away (also gathers the
        // cycle data future decisions rank on).
        return policy_detail::run_with_heuristic(core, size, entry);
      }
      const CacheConfig config = TuningHeuristic::best_known(entry, size);
      const Observation* obs = entry.find(config);
      if (obs != nullptr && obs->cycles < best_cycles) {
        best_cycles = obs->cycles;
        best_run = Decision::run(core, config, ExecutionKind::kNormal);
      }
    }
    if (best_run.has_value()) return *best_run;
    return Decision::stall();
  }

 private:
  const SizePredictor* predictor_;
};

}  // namespace

int main() {
  using namespace hetsched;

  ExperimentOptions options;
  options.arrivals.count = 2000;  // quicker demo run
  Experiment experiment(options);
  const SystemRun base = experiment.run_base();

  TablePrinter table(
      {"policy", "total energy", "exec cycles", "makespan", "stalls"});
  auto add = [&](const SystemRun& run) {
    const NormalizedEnergy n = normalize(run.result, base.result);
    table.add_row({run.name, TablePrinter::num(n.total, 3),
                   TablePrinter::num(n.cycles, 3),
                   TablePrinter::num(n.makespan, 3),
                   std::to_string(run.result.stall_events)});
  };

  add(experiment.run_proposed());
  add(experiment.run_energy_centric());
  {
    PerformanceFirstPolicy policy(experiment.predictor());
    MulticoreSimulator simulator(SystemConfig::paper_quadcore(),
                                 experiment.suite(), experiment.energy(),
                                 policy);
    SystemRun run;
    run.name = std::string(policy.name());
    run.result = simulator.run(experiment.arrivals());
    add(run);
  }

  std::cout << "Custom vs built-in policies (normalised to the base "
               "system):\n";
  table.print(std::cout);
  std::cout << "\nThe performance-first policy trades energy for speed: "
               "fewer total cycles, but it burns energy running small-"
               "working-set jobs on big caches.\n";
  return 0;
}
