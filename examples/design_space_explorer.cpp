// Design-space exploration for a single application.
//
// Demonstrates the substrate APIs directly (no scheduler): run one kernel,
// sweep its trace across the full Table-1 design space with the cache
// simulator and Figure-4 energy model, then replay the Figure-5 tuning
// heuristic and compare how much of the space it needed to find a
// near-optimal configuration on each core size.
//
// Run:  ./build/examples/design_space_explorer [kernel-name]
#include <iostream>
#include <string>

#include "core/tuning_heuristic.hpp"
#include "energy/energy_model.hpp"
#include "trace/kernel.hpp"
#include "util/table_printer.hpp"
#include "workload/characterization.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;

  const std::string wanted = argc > 1 ? argv[1] : "matrix01";
  const auto kernels = make_standard_kernels();
  const Kernel* kernel = nullptr;
  for (const auto& k : kernels) {
    if (k->name() == wanted) kernel = k.get();
  }
  if (kernel == nullptr) {
    std::cerr << "unknown kernel '" << wanted << "'; available:";
    for (const auto& k : kernels) std::cerr << ' ' << k->name();
    std::cerr << '\n';
    return 1;
  }

  std::cout << "Executing '" << kernel->name() << "' ("
            << to_string(kernel->domain()) << ")...\n";
  const KernelExecution exec = execute(*kernel, /*data_seed=*/2024);
  std::cout << "  " << exec.trace.size() << " memory references, "
            << exec.counters.total_instructions() << " instructions, "
            << exec.footprint_bytes << " B footprint\n\n";

  const EnergyModel model{CactiModel{}};

  // Exhaustive sweep (what the paper's "optimal" system pays for).
  TablePrinter table({"config", "hits", "misses", "miss rate", "cycles",
                      "dynamic nJ", "static nJ", "total nJ"});
  const ConfigProfile* best = nullptr;
  std::vector<ConfigProfile> profiles;
  for (const CacheConfig& config : DesignSpace::all()) {
    const CacheSimResult sim = simulate_trace(exec.trace, config);
    profiles.push_back({config, sim.stats,
                        model.evaluate(exec.counters, sim)});
  }
  for (const ConfigProfile& p : profiles) {
    if (best == nullptr || p.energy.total() < best->energy.total()) {
      best = &p;
    }
  }
  for (const ConfigProfile& p : profiles) {
    const bool is_best = &p == best;
    table.add_row({p.config.name() + (is_best ? " *" : ""),
                   std::to_string(p.cache.hits),
                   std::to_string(p.cache.misses),
                   TablePrinter::num(p.cache.miss_rate(), 4),
                   std::to_string(p.energy.total_cycles),
                   TablePrinter::num(p.energy.dynamic_energy.value(), 0),
                   TablePrinter::num(p.energy.static_energy.value(), 0),
                   TablePrinter::num(p.energy.total().value(), 0)});
  }
  table.print(std::cout);
  std::cout << "* = lowest-energy configuration (the oracle best core has "
            << best->config.size_bytes / 1024 << " KB)\n\n";

  // The Figure-5 heuristic on each core size.
  std::cout << "Figure-5 tuning heuristic per core size:\n";
  ProfilingTable ptable(1);
  for (std::uint32_t size : DesignSpace::sizes()) {
    std::size_t executed = 0;
    while (auto next = TuningHeuristic::next_config(ptable.entry(0), size)) {
      const CacheSimResult sim = simulate_trace(exec.trace, *next);
      const EnergyBreakdown energy = model.evaluate(exec.counters, sim);
      ptable.record(0, *next,
                    Observation{energy.total(), energy.dynamic_energy,
                                energy.total_cycles});
      ++executed;
    }
    const CacheConfig found =
        TuningHeuristic::best_known(ptable.entry(0), size);
    // Exhaustive optimum for this size, for comparison.
    const ConfigProfile* size_best = nullptr;
    for (const ConfigProfile& p : profiles) {
      if (p.config.size_bytes != size) continue;
      if (size_best == nullptr ||
          p.energy.total() < size_best->energy.total()) {
        size_best = &p;
      }
    }
    std::cout << "  " << size / 1024 << "KB: converged to " << found.name()
              << " after " << executed << " executions (exhaustive best: "
              << size_best->config.name() << ")\n";
  }
  return 0;
}
