// Quickstart: the full paper pipeline in ~60 lines.
//
//  1. Build the synthetic embedded suite and characterise it across the
//     18-configuration design space (SimpleScalar+CACTI stage).
//  2. Train the bagged ANN best-size predictor on held-out variants.
//  3. Run the four systems of Section V over one 5000-job arrival stream.
//  4. Print Figure-6-style energy ratios against the base system.
//
// Run:  ./build/examples/quickstart
#include <iostream>

#include "experiment/experiment.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace hetsched;

  ExperimentOptions options;  // paper-scale defaults: 5000 arrivals
  std::cout << "Characterising suite and training the ANN predictor...\n";
  Experiment experiment(options);

  const PredictorReport& report = experiment.predictor().report();
  std::cout << "  benchmarks: " << experiment.suite().size()
            << " (scheduling " << experiment.scheduling_ids().size()
            << ")\n"
            << "  ANN: " << report.selected_features
            << " selected features, test accuracy "
            << TablePrinter::num(report.test_accuracy * 100.0, 1) << "%\n\n";

  std::cout << "Running the four systems over "
            << experiment.arrivals().size() << " arrivals...\n";
  const Experiment::StandardRuns runs = experiment.run_standard_systems();
  const SystemRun& base = runs.base;
  const SystemRun& optimal = runs.optimal;
  const SystemRun& energy_centric = runs.energy_centric;
  const SystemRun& proposed = runs.proposed;

  TablePrinter table({"system", "idle", "dynamic", "total", "cycles",
                      "stalls", "tuning runs"});
  auto add = [&](const SystemRun& run) {
    const NormalizedEnergy n = normalize(run.result, base.result);
    table.add_row({run.name, TablePrinter::pct(n.idle - 1.0),
                   TablePrinter::pct(n.dynamic - 1.0),
                   TablePrinter::pct(n.total - 1.0),
                   TablePrinter::pct(n.cycles - 1.0),
                   std::to_string(run.result.stall_events),
                   std::to_string(run.result.tuning_runs)});
  };
  add(base);
  add(optimal);
  add(energy_centric);
  add(proposed);

  std::cout << "\nEnergy and cycles relative to the base system "
               "(all cores fixed at 8KB_4W_64B):\n";
  table.print(std::cout);
  std::cout << "\nPaper headline: the proposed scheduler reduces total "
               "energy by ~28% vs the base system.\n";
  return 0;
}
