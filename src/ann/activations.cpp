#include "ann/activations.hpp"

#include <cmath>

namespace hetsched {

std::string_view to_string(Activation a) {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kRelu: return "relu";
  }
  return "unknown";
}

double activate(Activation a, double x) {
  switch (a) {
    case Activation::kIdentity: return x;
    case Activation::kTanh: return std::tanh(x);
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
  }
  return x;
}

double activate_grad_from_output(Activation a, double y) {
  switch (a) {
    case Activation::kIdentity: return 1.0;
    case Activation::kTanh: return 1.0 - y * y;
    case Activation::kSigmoid: return y * (1.0 - y);
    case Activation::kRelu: return y > 0.0 ? 1.0 : 0.0;
  }
  return 1.0;
}

void activate_inplace(Activation a, Matrix& m) {
  for (double& v : m.flat()) {
    v = activate(a, v);
  }
}

Matrix activation_grad(Activation a, const Matrix& activated) {
  Matrix grad = activated;
  for (double& v : grad.flat()) {
    v = activate_grad_from_output(a, v);
  }
  return grad;
}

}  // namespace hetsched
