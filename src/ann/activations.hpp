// Activation functions for the MLP. The paper's PEs are classic sigmoidal
// units; tanh is the default hidden activation, with identity output for
// the cache-size regression head.
#pragma once

#include <string_view>

#include "ann/matrix.hpp"

namespace hetsched {

enum class Activation { kIdentity, kTanh, kSigmoid, kRelu };

std::string_view to_string(Activation a);

double activate(Activation a, double x);
// Derivative expressed in terms of the *activated* value y = f(x), which
// is what backprop has in hand for tanh/sigmoid.
double activate_grad_from_output(Activation a, double y);

// Elementwise application over a matrix (in place).
void activate_inplace(Activation a, Matrix& m);
// Produces f'(x) for every element given the activated matrix.
Matrix activation_grad(Activation a, const Matrix& activated);

}  // namespace hetsched
