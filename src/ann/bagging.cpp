#include "ann/bagging.hpp"

#include <optional>

#include "util/contracts.hpp"
#include "util/thread_pool.hpp"

namespace hetsched {

BaggedEnsemble::BaggedEnsemble(const BaggingConfig& config,
                               const Dataset& train,
                               const Dataset& validation, Rng& rng) {
  HETSCHED_REQUIRE(config.ensemble_size > 0);
  HETSCHED_REQUIRE(config.sample_fraction > 0.0 &&
                   config.sample_fraction <= 1.0);
  HETSCHED_REQUIRE(train.size() > 0);

  const Trainer trainer(config.trainer);
  const auto sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.sample_fraction *
                                  static_cast<double>(train.size())));

  // Member streams are split off serially (split() advances `rng`, so the
  // order must not depend on scheduling); training is then fanned out over
  // the shared pool. Each member's resample, initialisation and fit draw
  // only from its own stream, so the ensemble is bit-identical to the
  // serial build for every thread count.
  std::vector<Rng> member_rngs;
  member_rngs.reserve(config.ensemble_size);
  for (std::size_t m = 0; m < config.ensemble_size; ++m) {
    member_rngs.push_back(rng.split());
  }

  std::vector<std::optional<Mlp>> slots(config.ensemble_size);
  ThreadPool::global().parallel_for(
      config.ensemble_size, [&](std::size_t m) {
        Rng member_rng = member_rngs[m];
        const auto indices =
            member_rng.sample_with_replacement(train.size(), sample_size);
        const Dataset resample = train.subset(indices);
        Mlp net(config.net, member_rng);
        trainer.fit(net, resample, validation, member_rng);
        slots[m].emplace(std::move(net));
      });

  members_.reserve(config.ensemble_size);
  for (std::optional<Mlp>& slot : slots) {
    members_.push_back(std::move(*slot));
  }
}

const Mlp& BaggedEnsemble::member(std::size_t i) const {
  HETSCHED_REQUIRE(i < members_.size());
  return members_[i];
}

Matrix BaggedEnsemble::predict(const Matrix& inputs) const {
  Matrix sum = members_.front().predict(inputs);
  for (std::size_t m = 1; m < members_.size(); ++m) {
    sum.add_inplace(members_[m].predict(inputs));
  }
  sum.scale_inplace(1.0 / static_cast<double>(members_.size()));
  return sum;
}

std::vector<double> BaggedEnsemble::predict_one(
    std::span<const double> input) const {
  std::vector<double> acc(members_.front().output_size(), 0.0);
  for (const Mlp& net : members_) {
    const std::vector<double> out = net.predict_one(input);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += out[i];
  }
  for (double& v : acc) v /= static_cast<double>(members_.size());
  return acc;
}

std::vector<double> BaggedEnsemble::member_outputs(
    std::span<const double> input) const {
  std::vector<double> outs;
  outs.reserve(members_.size());
  for (const Mlp& net : members_) {
    outs.push_back(net.predict_one(input).front());
  }
  return outs;
}

double BaggedEnsemble::evaluate_mse(const Matrix& inputs,
                                    const Matrix& targets) const {
  HETSCHED_REQUIRE(inputs.rows() == targets.rows());
  if (inputs.rows() == 0) return 0.0;
  const Matrix out = predict(inputs);
  double acc = 0.0;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      const double d = out.at(r, c) - targets.at(r, c);
      acc += d * d;
    }
  }
  return acc / static_cast<double>(out.rows() * out.cols());
}

}  // namespace hetsched
