// Bagged ensemble of MLPs.
//
// Section IV.D: "We used bagging to improve the ANN's accuracy and
// generalization, which trains several different ANNs using a subset of
// the input data and averages the ANNs' outputs... We trained 30 ANNs and
// initialized the model weights randomly."
#pragma once

#include <vector>

#include "ann/mlp.hpp"
#include "ann/trainer.hpp"

namespace hetsched {

struct BaggingConfig {
  std::size_t ensemble_size = 30;
  // Bootstrap sample size as a fraction of the training set.
  double sample_fraction = 1.0;
  MlpConfig net;
  TrainerConfig trainer;
};

class BaggedEnsemble {
 public:
  // Trains `ensemble_size` nets on bootstrap resamples of `train`, each
  // with independently random initial weights; `validation` drives early
  // stopping for every member.
  BaggedEnsemble(const BaggingConfig& config, const Dataset& train,
                 const Dataset& validation, Rng& rng);

  std::size_t size() const { return members_.size(); }
  const Mlp& member(std::size_t i) const;

  // Mean of the member outputs.
  Matrix predict(const Matrix& inputs) const;
  std::vector<double> predict_one(std::span<const double> input) const;

  // Per-member outputs for one input (spread diagnostics).
  std::vector<double> member_outputs(std::span<const double> input) const;

  double evaluate_mse(const Matrix& inputs, const Matrix& targets) const;

 private:
  std::vector<Mlp> members_;
};

}  // namespace hetsched
