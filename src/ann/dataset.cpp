#include "ann/dataset.hpp"

#include <cmath>
#include <map>
#include <numeric>

#include "util/contracts.hpp"

namespace hetsched {

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  HETSCHED_REQUIRE(consistent());
  Dataset out;
  out.features = Matrix(indices.size(), features.cols());
  out.targets = Matrix(indices.size(), targets.cols());
  if (!groups.empty()) out.groups.reserve(indices.size());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    HETSCHED_REQUIRE(indices[r] < size());
    for (std::size_t c = 0; c < features.cols(); ++c) {
      out.features.at(r, c) = features.at(indices[r], c);
    }
    for (std::size_t c = 0; c < targets.cols(); ++c) {
      out.targets.at(r, c) = targets.at(indices[r], c);
    }
    if (!groups.empty()) out.groups.push_back(groups[indices[r]]);
  }
  return out;
}

DataSplit split_dataset(const Dataset& data, double train_fraction,
                        double validation_fraction, Rng& rng) {
  HETSCHED_REQUIRE(data.consistent());
  HETSCHED_REQUIRE(train_fraction > 0.0 && validation_fraction >= 0.0);
  HETSCHED_REQUIRE(train_fraction + validation_fraction <= 1.0);

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  const auto n = data.size();
  const auto n_train = static_cast<std::size_t>(
      std::llround(train_fraction * static_cast<double>(n)));
  const auto n_val = static_cast<std::size_t>(
      std::llround(validation_fraction * static_cast<double>(n)));
  HETSCHED_REQUIRE(n_train >= 1);

  const std::vector<std::size_t> train_idx(order.begin(),
                                           order.begin() + n_train);
  const std::vector<std::size_t> val_idx(
      order.begin() + n_train,
      order.begin() + std::min(n, n_train + n_val));
  const std::vector<std::size_t> test_idx(
      order.begin() + std::min(n, n_train + n_val), order.end());

  DataSplit split;
  split.train = data.subset(train_idx);
  split.validation = data.subset(val_idx);
  split.test = data.subset(test_idx);
  return split;
}

DataSplit split_dataset_stratified(const Dataset& data,
                                   double train_fraction,
                                   double validation_fraction, Rng& rng) {
  HETSCHED_REQUIRE(data.consistent());
  HETSCHED_REQUIRE(!data.groups.empty());
  HETSCHED_REQUIRE(train_fraction > 0.0 && validation_fraction >= 0.0);
  HETSCHED_REQUIRE(train_fraction + validation_fraction <= 1.0);

  std::map<std::size_t, std::vector<std::size_t>> by_group;
  for (std::size_t r = 0; r < data.size(); ++r) {
    by_group[data.groups[r]].push_back(r);
  }

  std::vector<std::size_t> train_idx, val_idx, test_idx;
  for (auto& [group, rows] : by_group) {
    (void)group;
    rng.shuffle(rows);
    const auto n = rows.size();
    // At least one training row per group; round the rest.
    const auto n_train = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(train_fraction * static_cast<double>(n))));
    const auto n_val = std::min(
        n - n_train,
        static_cast<std::size_t>(std::llround(
            validation_fraction * static_cast<double>(n))));
    for (std::size_t i = 0; i < n; ++i) {
      if (i < n_train) {
        train_idx.push_back(rows[i]);
      } else if (i < n_train + n_val) {
        val_idx.push_back(rows[i]);
      } else {
        test_idx.push_back(rows[i]);
      }
    }
  }
  // Shuffle the merged partitions so group order does not leak into batch
  // order downstream.
  rng.shuffle(train_idx);
  rng.shuffle(val_idx);
  rng.shuffle(test_idx);

  DataSplit split;
  split.train = data.subset(train_idx);
  split.validation = data.subset(val_idx);
  split.test = data.subset(test_idx);
  return split;
}

void StandardScaler::fit(const Matrix& features) {
  HETSCHED_REQUIRE(features.rows() > 0);
  const std::size_t d = features.cols();
  means_.assign(d, 0.0);
  stddevs_.assign(d, 1.0);
  for (std::size_t c = 0; c < d; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < features.rows(); ++r) {
      sum += features.at(r, c);
    }
    means_[c] = sum / static_cast<double>(features.rows());
    double sq = 0.0;
    for (std::size_t r = 0; r < features.rows(); ++r) {
      const double diff = features.at(r, c) - means_[c];
      sq += diff * diff;
    }
    const double var = sq / static_cast<double>(features.rows());
    stddevs_[c] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
}

StandardScaler StandardScaler::from_moments(std::vector<double> means,
                                            std::vector<double> stddevs) {
  HETSCHED_REQUIRE(!means.empty());
  HETSCHED_REQUIRE(means.size() == stddevs.size());
  for (double s : stddevs) {
    HETSCHED_REQUIRE(s > 0.0);
  }
  StandardScaler scaler;
  scaler.means_ = std::move(means);
  scaler.stddevs_ = std::move(stddevs);
  return scaler;
}

Matrix StandardScaler::transform(const Matrix& features) const {
  HETSCHED_REQUIRE(fitted());
  HETSCHED_REQUIRE(features.cols() == means_.size());
  Matrix out = features;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out.at(r, c) = (out.at(r, c) - means_[c]) / stddevs_[c];
    }
  }
  return out;
}

std::vector<double> StandardScaler::transform_row(
    std::span<const double> row) const {
  HETSCHED_REQUIRE(fitted());
  HETSCHED_REQUIRE(row.size() == means_.size());
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - means_[c]) / stddevs_[c];
  }
  return out;
}

}  // namespace hetsched
