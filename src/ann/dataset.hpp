// Supervised dataset handling: feature matrix + targets, deterministic
// shuffling, and the paper's 70/15/15 train/validation/test split.
#pragma once

#include <vector>

#include "ann/matrix.hpp"
#include "util/rng.hpp"

namespace hetsched {

struct Dataset {
  Matrix features;  // n x d
  Matrix targets;   // n x k (k = 1 for the cache-size regression)
  // Optional per-row group key (e.g. which kernel produced the row);
  // split_dataset_stratified uses it to represent every group in every
  // partition. Empty means ungrouped.
  std::vector<std::size_t> groups;

  std::size_t size() const { return features.rows(); }
  std::size_t feature_count() const { return features.cols(); }

  bool consistent() const {
    return features.rows() == targets.rows() &&
           (groups.empty() || groups.size() == features.rows());
  }

  // Row subset (indices may repeat — used by bagging resamples).
  Dataset subset(const std::vector<std::size_t>& indices) const;
};

struct DataSplit {
  Dataset train;
  Dataset validation;
  Dataset test;
};

// Shuffles rows (deterministically via rng) then splits by the given
// fractions; fractions must be positive and sum to <= 1, remainder goes to
// test.
DataSplit split_dataset(const Dataset& data, double train_fraction,
                        double validation_fraction, Rng& rng);

// Stratified variant: splits each group (data.groups) separately so every
// group contributes rows to the training partition — without this, a
// small suite can land all instances of one application outside the
// training set and the predictor never learns that behaviour class.
// Requires data.groups to be populated.
DataSplit split_dataset_stratified(const Dataset& data,
                                   double train_fraction,
                                   double validation_fraction, Rng& rng);

// Standardises features to zero mean / unit variance. Fitted on training
// data, applied to everything — constant features pass through unchanged.
class StandardScaler {
 public:
  void fit(const Matrix& features);
  // Reconstructs a fitted scaler from saved moments (deserialisation).
  static StandardScaler from_moments(std::vector<double> means,
                                     std::vector<double> stddevs);
  Matrix transform(const Matrix& features) const;
  std::vector<double> transform_row(std::span<const double> row) const;

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace hetsched
