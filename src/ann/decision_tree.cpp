#include "ann/decision_tree.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace hetsched {
namespace {

double mean_target(const Dataset& data,
                   const std::vector<std::size_t>& rows) {
  double sum = 0.0;
  for (std::size_t r : rows) sum += data.targets.at(r, 0);
  return sum / static_cast<double>(rows.size());
}

double squared_error(const Dataset& data,
                     const std::vector<std::size_t>& rows) {
  const double mean = mean_target(data, rows);
  double acc = 0.0;
  for (std::size_t r : rows) {
    const double d = data.targets.at(r, 0) - mean;
    acc += d * d;
  }
  return acc;
}

}  // namespace

DecisionTreeRegressor::DecisionTreeRegressor(DecisionTreeConfig config)
    : config_(config) {
  HETSCHED_REQUIRE(config_.max_depth >= 1);
  HETSCHED_REQUIRE(config_.min_samples_leaf >= 1);
}

void DecisionTreeRegressor::fit(const Dataset& train,
                                const Dataset& validation, Rng& rng) {
  (void)validation;
  (void)rng;
  HETSCHED_REQUIRE(train.consistent());
  HETSCHED_REQUIRE(train.size() > 0);
  HETSCHED_REQUIRE(train.targets.cols() == 1);
  nodes_.clear();
  std::vector<std::size_t> rows(train.size());
  for (std::size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  build(train, rows, 0);
  fitted_ = true;
}

std::int32_t DecisionTreeRegressor::build(const Dataset& data,
                                          std::vector<std::size_t>& rows,
                                          std::size_t depth) {
  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(index)].value = mean_target(data, rows);

  if (depth >= config_.max_depth ||
      rows.size() < 2 * config_.min_samples_leaf) {
    return index;
  }

  const double parent_error = squared_error(data, rows);
  double best_gain = config_.min_impurity_decrease;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::size_t> sorted = rows;
  for (std::size_t f = 0; f < data.feature_count(); ++f) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return data.features.at(a, f) < data.features.at(b, f);
              });
    // Prefix sums over the sorted order for O(n) split evaluation.
    double left_sum = 0.0, left_sq = 0.0;
    double total_sum = 0.0, total_sq = 0.0;
    for (std::size_t r : sorted) {
      const double t = data.targets.at(r, 0);
      total_sum += t;
      total_sq += t * t;
    }
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double t = data.targets.at(sorted[i], 0);
      left_sum += t;
      left_sq += t * t;
      const double x_here = data.features.at(sorted[i], f);
      const double x_next = data.features.at(sorted[i + 1], f);
      if (x_here == x_next) continue;  // cannot split between equal values
      const std::size_t n_left = i + 1;
      const std::size_t n_right = sorted.size() - n_left;
      if (n_left < config_.min_samples_leaf ||
          n_right < config_.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double err_left =
          left_sq - left_sum * left_sum / static_cast<double>(n_left);
      const double err_right =
          right_sq - right_sum * right_sum / static_cast<double>(n_right);
      const double gain = parent_error - err_left - err_right;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = (x_here + x_next) / 2.0;
      }
    }
  }

  if (best_gain <= config_.min_impurity_decrease) {
    return index;  // no useful split: stay a leaf
  }

  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows) {
    (data.features.at(r, best_feature) <= best_threshold ? left_rows
                                                         : right_rows)
        .push_back(r);
  }
  HETSCHED_ASSERT(!left_rows.empty() && !right_rows.empty());

  const std::int32_t left = build(data, left_rows, depth + 1);
  const std::int32_t right = build(data, right_rows, depth + 1);
  Node& node = nodes_[static_cast<std::size_t>(index)];
  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return index;
}

double DecisionTreeRegressor::predict(
    std::span<const double> features) const {
  HETSCHED_REQUIRE(fitted_);
  HETSCHED_REQUIRE(!nodes_.empty());
  std::size_t index = 0;
  for (;;) {
    const Node& node = nodes_[index];
    if (node.is_leaf) return node.value;
    HETSCHED_ASSERT(node.feature < features.size());
    index = static_cast<std::size_t>(
        features[node.feature] <= node.threshold ? node.left : node.right);
  }
}

std::size_t DecisionTreeRegressor::depth() const {
  HETSCHED_REQUIRE(fitted_);
  // Iterative depth computation over the implicit tree.
  std::size_t max_depth = 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& node = nodes_[index];
    if (!node.is_leaf) {
      stack.push_back({static_cast<std::size_t>(node.left), depth + 1});
      stack.push_back({static_cast<std::size_t>(node.right), depth + 1});
    }
  }
  return max_depth;
}

std::size_t DecisionTreeRegressor::root_feature() const {
  HETSCHED_REQUIRE(fitted_);
  if (nodes_.front().is_leaf) return static_cast<std::size_t>(-1);
  return nodes_.front().feature;
}

}  // namespace hetsched
