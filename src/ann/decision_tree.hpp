// CART regression tree: greedy binary splits minimising the weighted sum
// of child variances, with depth and leaf-size stopping rules. The
// interpretable baseline among the predictor models — its split features
// show *which* counters drive the best-size decision.
#pragma once

#include <cstdint>
#include <vector>

#include "ann/regressor.hpp"

namespace hetsched {

struct DecisionTreeConfig {
  std::size_t max_depth = 8;
  std::size_t min_samples_leaf = 2;
  // A split must reduce total squared error by at least this much.
  double min_impurity_decrease = 1e-9;
};

class DecisionTreeRegressor final : public Regressor {
 public:
  explicit DecisionTreeRegressor(DecisionTreeConfig config = {});

  std::string_view name() const override { return "decision-tree"; }
  void fit(const Dataset& train, const Dataset& validation,
           Rng& rng) override;
  double predict(std::span<const double> features) const override;

  // Introspection: number of nodes and the root split (for tests/reports).
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;
  // Feature index of the root split; npos when the tree is a single leaf.
  std::size_t root_feature() const;

 private:
  struct Node {
    bool is_leaf = true;
    double value = 0.0;            // leaf prediction
    std::size_t feature = 0;       // internal: split feature
    double threshold = 0.0;        // internal: go left if x <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& rows,
                     std::size_t depth);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace hetsched
