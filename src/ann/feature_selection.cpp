#include "ann/feature_selection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace hetsched {
namespace {

std::vector<double> column(const Matrix& m, std::size_t c) {
  std::vector<double> out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) out[r] = m.at(r, c);
  return out;
}

}  // namespace

Dataset SelectedFeatures::project(const Dataset& data) const {
  Dataset out;
  out.features = Matrix(data.features.rows(), indices.size());
  out.targets = data.targets;
  for (std::size_t r = 0; r < data.features.rows(); ++r) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      out.features.at(r, i) = data.features.at(r, indices[i]);
    }
  }
  return out;
}

std::vector<double> SelectedFeatures::project_row(
    std::span<const double> row) const {
  std::vector<double> out;
  out.reserve(indices.size());
  for (std::size_t idx : indices) {
    HETSCHED_REQUIRE(idx < row.size());
    out.push_back(row[idx]);
  }
  return out;
}

SelectedFeatures select_features(const Dataset& data,
                                 const FeatureSelectionConfig& config) {
  HETSCHED_REQUIRE(data.consistent());
  HETSCHED_REQUIRE(data.size() >= 2);
  HETSCHED_REQUIRE(data.targets.cols() == 1);
  HETSCHED_REQUIRE(config.max_features > 0);

  const std::size_t d = data.feature_count();
  const std::vector<double> target = column(data.targets, 0);

  SelectedFeatures result;
  result.relevance.resize(d);
  std::vector<std::vector<double>> columns(d);
  for (std::size_t c = 0; c < d; ++c) {
    columns[c] = column(data.features, c);
    result.relevance[c] = std::abs(pearson(columns[c], target));
  }

  // Greedy: highest relevance first, skipping redundant candidates.
  std::vector<std::size_t> order(d);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.relevance[a] > result.relevance[b];
  });

  for (std::size_t candidate : order) {
    if (result.indices.size() >= config.max_features) break;
    bool redundant = false;
    for (std::size_t chosen : result.indices) {
      if (std::abs(pearson(columns[candidate], columns[chosen])) >
          config.redundancy_threshold) {
        redundant = true;
        break;
      }
    }
    if (!redundant) result.indices.push_back(candidate);
  }
  HETSCHED_ASSERT(!result.indices.empty());
  return result;
}

}  // namespace hetsched
