// Correlation-based feature selection.
//
// Section IV.D: from 18 execution statistics, feature selection keeps the
// statistics most relevant to cache-size prediction. We rank features by
// |Pearson correlation| with the target, drop near-duplicate features that
// correlate highly with an already-selected one, and keep the top k (the
// paper's final topology has 10 inputs).
#pragma once

#include <vector>

#include "ann/dataset.hpp"

namespace hetsched {

struct FeatureSelectionConfig {
  std::size_t max_features = 10;
  // A candidate is dropped when |corr| with a selected feature exceeds
  // this (redundancy filter).
  double redundancy_threshold = 0.97;
};

struct SelectedFeatures {
  // Indices into the original feature columns, in selection order.
  std::vector<std::size_t> indices;
  // |corr(feature, target)| for every original column.
  std::vector<double> relevance;

  // Projects a dataset/vector onto the selected columns.
  Dataset project(const Dataset& data) const;
  std::vector<double> project_row(std::span<const double> row) const;
};

SelectedFeatures select_features(const Dataset& data,
                                 const FeatureSelectionConfig& config = {});

}  // namespace hetsched
