#include "ann/knn.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.hpp"

namespace hetsched {

KnnRegressor::KnnRegressor(KnnConfig config) : config_(config) {
  HETSCHED_REQUIRE(config_.k > 0);
  HETSCHED_REQUIRE(config_.distance_power >= 0.0);
}

void KnnRegressor::fit(const Dataset& train, const Dataset& validation,
                       Rng& rng) {
  (void)validation;
  (void)rng;
  HETSCHED_REQUIRE(train.consistent());
  HETSCHED_REQUIRE(train.size() > 0);
  HETSCHED_REQUIRE(train.targets.cols() == 1);
  features_ = train.features;
  targets_ = train.targets;
  fitted_ = true;
}

double KnnRegressor::predict(std::span<const double> features) const {
  HETSCHED_REQUIRE(fitted_);
  HETSCHED_REQUIRE(features.size() == features_.cols());

  std::vector<std::pair<double, std::size_t>> distances;
  distances.reserve(features_.rows());
  for (std::size_t r = 0; r < features_.rows(); ++r) {
    double d2 = 0.0;
    for (std::size_t c = 0; c < features.size(); ++c) {
      const double diff = features_.at(r, c) - features[c];
      d2 += diff * diff;
    }
    distances.emplace_back(d2, r);
  }
  const std::size_t k = std::min(config_.k, distances.size());
  std::partial_sort(distances.begin(), distances.begin() + k,
                    distances.end());

  // Exact match short-circuits (infinite weight).
  if (distances.front().first == 0.0) {
    return targets_.at(distances.front().second, 0);
  }
  double weight_sum = 0.0;
  double value = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double dist = std::sqrt(distances[i].first);
    const double w = config_.distance_power == 0.0
                         ? 1.0
                         : 1.0 / std::pow(dist, config_.distance_power);
    weight_sum += w;
    value += w * targets_.at(distances[i].second, 0);
  }
  return value / weight_sum;
}

}  // namespace hetsched
