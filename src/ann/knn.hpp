// k-nearest-neighbours regression with inverse-distance weighting.
// The lazy-learning baseline: memorise the training rows, answer queries
// by the weighted mean of the k closest (Euclidean) neighbours.
#pragma once

#include "ann/regressor.hpp"

namespace hetsched {

struct KnnConfig {
  std::size_t k = 5;
  // Shepard weighting exponent; 0 gives the unweighted mean.
  double distance_power = 2.0;
};

class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(KnnConfig config = {});

  std::string_view name() const override { return "knn"; }
  void fit(const Dataset& train, const Dataset& validation,
           Rng& rng) override;
  double predict(std::span<const double> features) const override;

  const KnnConfig& config() const { return config_; }

 private:
  KnnConfig config_;
  Matrix features_;
  Matrix targets_;
};

}  // namespace hetsched
