#include "ann/matrix.hpp"

#include <cmath>

namespace hetsched {

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  HETSCHED_REQUIRE(!rows.empty());
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    HETSCHED_REQUIRE(rows[r].size() == m.cols_);
    for (std::size_t c = 0; c < m.cols_; ++c) {
      m.at(r, c) = rows[r][c];
    }
  }
  return m;
}

Matrix Matrix::xavier(std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  HETSCHED_REQUIRE(fan_in > 0 && fan_out > 0);
  Matrix m(fan_in, fan_out);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (double& v : m.data_) {
    v = rng.uniform(-limit, limit);
  }
  return m;
}

Matrix Matrix::matmul(const Matrix& other) const {
  HETSCHED_REQUIRE(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) += a * other.at(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::transposed_matmul(const Matrix& other) const {
  HETSCHED_REQUIRE(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = at(k, i);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) += a * other.at(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& other) const {
  HETSCHED_REQUIRE(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < other.rows_; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) {
        acc += at(i, k) * other.at(j, k);
      }
      out.at(i, j) = acc;
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.at(c, r) = at(r, c);
    }
  }
  return out;
}

Matrix& Matrix::add_inplace(const Matrix& other, double scale) {
  HETSCHED_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
  return *this;
}

Matrix& Matrix::scale_inplace(double k) {
  for (double& v : data_) v *= k;
  return *this;
}

Matrix& Matrix::add_row_vector(const Matrix& bias) {
  HETSCHED_REQUIRE(bias.rows_ == 1 && bias.cols_ == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      at(r, c) += bias.at(0, c);
    }
  }
  return *this;
}

Matrix& Matrix::hadamard_inplace(const Matrix& other) {
  HETSCHED_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] *= other.data_[i];
  }
  return *this;
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.at(0, c) += at(r, c);
    }
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

}  // namespace hetsched
