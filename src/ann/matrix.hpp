// Dense row-major matrix for the ANN. The nets are tiny ({10,18,5,1}), so
// clarity beats blocking/vectorisation tricks; the interface is the
// minimal set backprop needs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace hetsched {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(
      const std::vector<std::vector<double>>& rows);

  // Xavier/Glorot-uniform initialisation for a (fan_in x fan_out) weight
  // matrix.
  static Matrix xavier(std::size_t fan_in, std::size_t fan_out, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) {
    HETSCHED_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    HETSCHED_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    HETSCHED_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    HETSCHED_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> flat() { return data_; }
  std::span<const double> flat() const { return data_; }

  // out = this * other
  Matrix matmul(const Matrix& other) const;
  // out = this^T * other
  Matrix transposed_matmul(const Matrix& other) const;
  // out = this * other^T
  Matrix matmul_transposed(const Matrix& other) const;
  Matrix transposed() const;

  Matrix& add_inplace(const Matrix& other, double scale = 1.0);
  Matrix& scale_inplace(double k);
  // Adds `bias` (1 x cols) to every row.
  Matrix& add_row_vector(const Matrix& bias);
  // Elementwise product.
  Matrix& hadamard_inplace(const Matrix& other);

  // Column-wise sum → (1 x cols). Used for bias gradients.
  Matrix column_sums() const;

  double frobenius_norm() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hetsched
