#include "ann/metrics.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace hetsched {

double mean_squared_error(const Matrix& predictions, const Matrix& targets) {
  HETSCHED_REQUIRE(predictions.rows() == targets.rows());
  HETSCHED_REQUIRE(predictions.cols() == targets.cols());
  HETSCHED_REQUIRE(predictions.rows() > 0);
  double acc = 0.0;
  for (std::size_t r = 0; r < predictions.rows(); ++r) {
    for (std::size_t c = 0; c < predictions.cols(); ++c) {
      const double d = predictions.at(r, c) - targets.at(r, c);
      acc += d * d;
    }
  }
  return acc / static_cast<double>(predictions.rows() * predictions.cols());
}

double mean_absolute_error(const Matrix& predictions, const Matrix& targets) {
  HETSCHED_REQUIRE(predictions.rows() == targets.rows());
  HETSCHED_REQUIRE(predictions.cols() == targets.cols());
  HETSCHED_REQUIRE(predictions.rows() > 0);
  double acc = 0.0;
  for (std::size_t r = 0; r < predictions.rows(); ++r) {
    for (std::size_t c = 0; c < predictions.cols(); ++c) {
      acc += std::abs(predictions.at(r, c) - targets.at(r, c));
    }
  }
  return acc / static_cast<double>(predictions.rows() * predictions.cols());
}

double r_squared(const Matrix& predictions, const Matrix& targets) {
  HETSCHED_REQUIRE(predictions.rows() == targets.rows());
  HETSCHED_REQUIRE(predictions.cols() == 1 && targets.cols() == 1);
  HETSCHED_REQUIRE(predictions.rows() > 1);
  double mean = 0.0;
  for (std::size_t r = 0; r < targets.rows(); ++r) mean += targets.at(r, 0);
  mean /= static_cast<double>(targets.rows());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t r = 0; r < targets.rows(); ++r) {
    const double dr = targets.at(r, 0) - predictions.at(r, 0);
    const double dt = targets.at(r, 0) - mean;
    ss_res += dr * dr;
    ss_tot += dt * dt;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double snap_to_class(double value, std::span<const double> classes) {
  HETSCHED_REQUIRE(!classes.empty());
  double best = classes[0];
  double best_dist = std::abs(value - classes[0]);
  for (double c : classes.subspan(1)) {
    const double dist = std::abs(value - c);
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

double snapped_accuracy(const Matrix& predictions, const Matrix& targets,
                        std::span<const double> classes) {
  HETSCHED_REQUIRE(predictions.rows() == targets.rows());
  HETSCHED_REQUIRE(predictions.cols() == 1 && targets.cols() == 1);
  HETSCHED_REQUIRE(predictions.rows() > 0);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < predictions.rows(); ++r) {
    if (snap_to_class(predictions.at(r, 0), classes) ==
        snap_to_class(targets.at(r, 0), classes)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(predictions.rows());
}

}  // namespace hetsched
