// Regression / classification metrics for evaluating the predictor.
#pragma once

#include <span>

#include "ann/matrix.hpp"

namespace hetsched {

double mean_squared_error(const Matrix& predictions, const Matrix& targets);
double mean_absolute_error(const Matrix& predictions, const Matrix& targets);
// Coefficient of determination on a single-column target.
double r_squared(const Matrix& predictions, const Matrix& targets);

// Fraction of rows where `snap(prediction)` equals `snap(target)`, with
// snap() mapping a continuous value to the nearest element of `classes`.
double snapped_accuracy(const Matrix& predictions, const Matrix& targets,
                        std::span<const double> classes);

// Nearest element of `classes` to `value`.
double snap_to_class(double value, std::span<const double> classes);

}  // namespace hetsched
