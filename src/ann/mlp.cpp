#include "ann/mlp.hpp"

#include "util/contracts.hpp"

namespace hetsched {

Mlp::Mlp(MlpConfig config, Rng& rng) : config_(std::move(config)) {
  HETSCHED_REQUIRE(config_.layer_sizes.size() >= 2);
  for (std::size_t s : config_.layer_sizes) {
    HETSCHED_REQUIRE(s > 0);
  }
  const std::size_t layers = config_.layer_sizes.size() - 1;
  weights_.reserve(layers);
  biases_.reserve(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    weights_.push_back(Matrix::xavier(config_.layer_sizes[l],
                                      config_.layer_sizes[l + 1], rng));
    biases_.emplace_back(1, config_.layer_sizes[l + 1]);
    velocity_w_.emplace_back(config_.layer_sizes[l],
                             config_.layer_sizes[l + 1]);
    velocity_b_.emplace_back(1, config_.layer_sizes[l + 1]);
  }
}

Mlp Mlp::from_parameters(MlpConfig config, std::vector<Matrix> weights,
                         std::vector<Matrix> biases) {
  HETSCHED_REQUIRE(config.layer_sizes.size() >= 2);
  const std::size_t layers = config.layer_sizes.size() - 1;
  HETSCHED_REQUIRE(weights.size() == layers);
  HETSCHED_REQUIRE(biases.size() == layers);
  for (std::size_t l = 0; l < layers; ++l) {
    HETSCHED_REQUIRE(weights[l].rows() == config.layer_sizes[l]);
    HETSCHED_REQUIRE(weights[l].cols() == config.layer_sizes[l + 1]);
    HETSCHED_REQUIRE(biases[l].rows() == 1);
    HETSCHED_REQUIRE(biases[l].cols() == config.layer_sizes[l + 1]);
  }
  Mlp net;
  net.config_ = std::move(config);
  net.weights_ = std::move(weights);
  net.biases_ = std::move(biases);
  for (std::size_t l = 0; l < layers; ++l) {
    net.velocity_w_.emplace_back(net.config_.layer_sizes[l],
                                 net.config_.layer_sizes[l + 1]);
    net.velocity_b_.emplace_back(1, net.config_.layer_sizes[l + 1]);
  }
  return net;
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (std::size_t l = 0; l + 1 < config_.layer_sizes.size(); ++l) {
    n += config_.layer_sizes[l] * config_.layer_sizes[l + 1] +
         config_.layer_sizes[l + 1];
  }
  return n;
}

std::vector<Matrix> Mlp::forward_all(const Matrix& inputs) const {
  HETSCHED_REQUIRE(inputs.cols() == input_size());
  std::vector<Matrix> activations;
  activations.reserve(weights_.size() + 1);
  activations.push_back(inputs);
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Matrix z = activations.back().matmul(weights_[l]);
    z.add_row_vector(biases_[l]);
    const bool last = l + 1 == weights_.size();
    activate_inplace(last ? config_.output_activation
                          : config_.hidden_activation,
                     z);
    activations.push_back(std::move(z));
  }
  return activations;
}

Matrix Mlp::predict(const Matrix& inputs) const {
  return forward_all(inputs).back();
}

std::vector<double> Mlp::predict_one(std::span<const double> input) const {
  HETSCHED_REQUIRE(input.size() == input_size());
  Matrix m(1, input.size());
  for (std::size_t c = 0; c < input.size(); ++c) {
    m.at(0, c) = input[c];
  }
  const Matrix out = predict(m);
  return std::vector<double>(out.row(0).begin(), out.row(0).end());
}

double Mlp::evaluate_mse(const Matrix& inputs, const Matrix& targets) const {
  HETSCHED_REQUIRE(inputs.rows() == targets.rows());
  HETSCHED_REQUIRE(targets.cols() == output_size());
  if (inputs.rows() == 0) return 0.0;
  const Matrix out = predict(inputs);
  double acc = 0.0;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      const double d = out.at(r, c) - targets.at(r, c);
      acc += d * d;
    }
  }
  return acc / static_cast<double>(out.rows() * out.cols());
}

double Mlp::train_batch(const Matrix& inputs, const Matrix& targets,
                        double learning_rate, double momentum) {
  HETSCHED_REQUIRE(inputs.rows() == targets.rows());
  HETSCHED_REQUIRE(inputs.rows() > 0);
  HETSCHED_REQUIRE(targets.cols() == output_size());
  HETSCHED_REQUIRE(learning_rate > 0.0);
  HETSCHED_REQUIRE(momentum >= 0.0 && momentum < 1.0);

  const std::vector<Matrix> acts = forward_all(inputs);
  const Matrix& output = acts.back();
  const double n = static_cast<double>(inputs.rows());

  // Loss: MSE = mean((out - target)^2); dL/dout = 2 (out - target) / n.
  double mse = 0.0;
  Matrix delta = output;
  delta.add_inplace(targets, -1.0);
  for (double v : delta.flat()) mse += v * v;
  mse /= static_cast<double>(output.rows() * output.cols());
  delta.scale_inplace(2.0 / (n * static_cast<double>(output.cols())));

  // Backward through the output activation.
  delta.hadamard_inplace(
      activation_grad(config_.output_activation, output));

  for (std::size_t l = weights_.size(); l-- > 0;) {
    const Matrix& layer_input = acts[l];
    const Matrix grad_w = layer_input.transposed_matmul(delta);
    const Matrix grad_b = delta.column_sums();

    Matrix next_delta;
    if (l > 0) {
      next_delta = delta.matmul_transposed(weights_[l]);
      next_delta.hadamard_inplace(
          activation_grad(config_.hidden_activation, acts[l]));
    }

    velocity_w_[l].scale_inplace(momentum).add_inplace(grad_w,
                                                       -learning_rate);
    velocity_b_[l].scale_inplace(momentum).add_inplace(grad_b,
                                                       -learning_rate);
    weights_[l].add_inplace(velocity_w_[l]);
    biases_[l].add_inplace(velocity_b_[l]);

    delta = std::move(next_delta);
  }
  return mse;
}

}  // namespace hetsched
