// Multi-layer perceptron with backpropagation.
//
// The paper's predictor is a 3-hidden-structure ANN whose empirical best
// topology was {10, 18, 5, 1}: 10 selected execution statistics in, two
// hidden layers of 18 and 5 PEs, one output (the predicted best cache
// size). This class implements the general fully-connected case with
// mini-batch gradient descent plus momentum.
#pragma once

#include <cstdint>
#include <vector>

#include "ann/activations.hpp"
#include "ann/matrix.hpp"
#include "util/rng.hpp"

namespace hetsched {

struct MlpConfig {
  // Layer widths including input and output, e.g. {10, 18, 5, 1}.
  std::vector<std::size_t> layer_sizes{10, 18, 5, 1};
  Activation hidden_activation = Activation::kTanh;
  Activation output_activation = Activation::kIdentity;
};

class Mlp {
 public:
  // Weights are Xavier-initialised from `rng` (the paper initialises each
  // bagged net's weights randomly).
  Mlp(MlpConfig config, Rng& rng);

  // Reconstructs a net from explicit parameters (deserialisation).
  // Shapes must match the config.
  static Mlp from_parameters(MlpConfig config, std::vector<Matrix> weights,
                             std::vector<Matrix> biases);

  const MlpConfig& config() const { return config_; }
  std::size_t input_size() const { return config_.layer_sizes.front(); }
  std::size_t output_size() const { return config_.layer_sizes.back(); }
  std::size_t parameter_count() const;

  // Forward pass over a batch (n x input_size) → (n x output_size).
  Matrix predict(const Matrix& inputs) const;
  // Single-sample convenience.
  std::vector<double> predict_one(std::span<const double> input) const;

  // One gradient step on (inputs, targets) with mean-squared-error loss.
  // Returns the batch MSE *before* the update. `momentum` in [0, 1).
  double train_batch(const Matrix& inputs, const Matrix& targets,
                     double learning_rate, double momentum = 0.9);

  // Mean squared error over a batch without updating weights.
  double evaluate_mse(const Matrix& inputs, const Matrix& targets) const;

  // Introspection for tests and serialisation.
  const std::vector<Matrix>& weights() const { return weights_; }
  const std::vector<Matrix>& biases() const { return biases_; }

 private:
  Mlp() = default;  // for from_parameters

  // Forward pass retaining every layer's activated output.
  std::vector<Matrix> forward_all(const Matrix& inputs) const;

  MlpConfig config_;
  std::vector<Matrix> weights_;   // [l]: sizes[l] x sizes[l+1]
  std::vector<Matrix> biases_;    // [l]: 1 x sizes[l+1]
  std::vector<Matrix> velocity_w_;
  std::vector<Matrix> velocity_b_;
};

}  // namespace hetsched
