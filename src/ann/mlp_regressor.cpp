#include "ann/mlp_regressor.hpp"

#include "util/contracts.hpp"

namespace hetsched {

BaggedMlpRegressor::BaggedMlpRegressor(BaggingConfig config)
    : config_(std::move(config)) {
  HETSCHED_REQUIRE(config_.net.layer_sizes.size() >= 2);
}

void BaggedMlpRegressor::fit(const Dataset& train,
                             const Dataset& validation, Rng& rng) {
  HETSCHED_REQUIRE(train.consistent());
  HETSCHED_REQUIRE(train.size() > 0);
  config_.net.layer_sizes.front() = train.feature_count();
  ensemble_ =
      std::make_unique<BaggedEnsemble>(config_, train, validation, rng);
  fitted_ = true;
}

double BaggedMlpRegressor::predict(std::span<const double> features) const {
  HETSCHED_REQUIRE(fitted_);
  return ensemble_->predict_one(features).front();
}

const BaggedEnsemble& BaggedMlpRegressor::ensemble() const {
  HETSCHED_REQUIRE(fitted_);
  return *ensemble_;
}

}  // namespace hetsched
