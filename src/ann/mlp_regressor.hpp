// Adapter exposing the paper's bagged-MLP ensemble through the generic
// Regressor interface, so it competes with the alternative models in the
// future-work ML comparison on identical footing.
#pragma once

#include <memory>

#include "ann/bagging.hpp"
#include "ann/regressor.hpp"

namespace hetsched {

class BaggedMlpRegressor final : public Regressor {
 public:
  // The input-layer width in `config.net.layer_sizes` is overwritten at
  // fit() time from the training data.
  explicit BaggedMlpRegressor(BaggingConfig config = {});

  std::string_view name() const override { return "bagged-mlp"; }
  void fit(const Dataset& train, const Dataset& validation,
           Rng& rng) override;
  double predict(std::span<const double> features) const override;

  const BaggedEnsemble& ensemble() const;

 private:
  BaggingConfig config_;
  std::unique_ptr<BaggedEnsemble> ensemble_;
};

}  // namespace hetsched
