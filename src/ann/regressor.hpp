// Common interface for the regression models behind the best-size
// predictor. The paper evaluates an ANN and names "evaluating different
// machine learning techniques" as future work; this interface lets the
// scheduler pipeline (feature selection → scaling → model → snap) run any
// of them interchangeably: the bagged MLP, k-nearest-neighbours, a CART
// regression tree, and ridge regression.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "ann/dataset.hpp"

namespace hetsched {

class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual std::string_view name() const = 0;

  // Fits on (already selected/scaled) training data. `validation` may be
  // empty; models that do not use it ignore it. `rng` drives any
  // stochastic element (weight init, tie breaking).
  virtual void fit(const Dataset& train, const Dataset& validation,
                   Rng& rng) = 0;

  // Predicts the (continuous) target for one feature row.
  virtual double predict(std::span<const double> features) const = 0;

  bool fitted() const { return fitted_; }

 protected:
  bool fitted_ = false;
};

}  // namespace hetsched
