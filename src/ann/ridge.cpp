#include "ann/ridge.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace hetsched {

std::vector<double> solve_spd(const std::vector<double>& a,
                              const std::vector<double>& b, std::size_t n) {
  HETSCHED_REQUIRE(a.size() == n * n);
  HETSCHED_REQUIRE(b.size() == n);

  // Cholesky: A = L L^T, L lower triangular.
  std::vector<double> l(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) {
        sum -= l[i * n + k] * l[j * n + k];
      }
      if (i == j) {
        HETSCHED_REQUIRE(sum > 0.0 && "matrix must be positive definite");
        l[i * n + i] = std::sqrt(sum);
      } else {
        l[i * n + j] = sum / l[j * n + j];
      }
    }
  }

  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i * n + k] * y[k];
    y[i] = sum / l[i * n + i];
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l[k * n + i] * x[k];
    x[i] = sum / l[i * n + i];
  }
  return x;
}

RidgeRegressor::RidgeRegressor(RidgeConfig config) : config_(config) {
  HETSCHED_REQUIRE(config_.lambda >= 0.0);
}

void RidgeRegressor::fit(const Dataset& train, const Dataset& validation,
                         Rng& rng) {
  (void)validation;
  (void)rng;
  HETSCHED_REQUIRE(train.consistent());
  HETSCHED_REQUIRE(train.size() > 0);
  HETSCHED_REQUIRE(train.targets.cols() == 1);

  const std::size_t d = train.feature_count();
  const std::size_t n = d + 1;  // + bias column

  // Normal equations on the bias-augmented design matrix:
  //   (X^T X + lambda I') w = X^T y,  I' zeroing the bias entry.
  std::vector<double> xtx(n * n, 0.0);
  std::vector<double> xty(n, 0.0);
  auto x_at = [&](std::size_t row, std::size_t col) {
    return col < d ? train.features.at(row, col) : 1.0;
  };
  for (std::size_t r = 0; r < train.size(); ++r) {
    const double t = train.targets.at(r, 0);
    for (std::size_t i = 0; i < n; ++i) {
      xty[i] += x_at(r, i) * t;
      for (std::size_t j = 0; j < n; ++j) {
        xtx[i * n + j] += x_at(r, i) * x_at(r, j);
      }
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    xtx[i * n + i] += config_.lambda;
  }
  // A tiny jitter on the bias keeps the system positive definite even for
  // degenerate inputs.
  xtx[d * n + d] += 1e-12;

  weights_ = solve_spd(xtx, xty, n);
  fitted_ = true;
}

double RidgeRegressor::predict(std::span<const double> features) const {
  HETSCHED_REQUIRE(fitted_);
  HETSCHED_REQUIRE(features.size() + 1 == weights_.size());
  double value = weights_.back();  // bias
  for (std::size_t i = 0; i < features.size(); ++i) {
    value += weights_[i] * features[i];
  }
  return value;
}

}  // namespace hetsched
