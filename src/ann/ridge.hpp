// Ridge (L2-regularised linear) regression via the normal equations,
// solved with an in-house Cholesky factorisation. The linear baseline the
// related work's regression-model predictors [3][11][22] correspond to.
#pragma once

#include "ann/regressor.hpp"

namespace hetsched {

struct RidgeConfig {
  double lambda = 1e-3;  // regularisation strength (not applied to bias)
};

class RidgeRegressor final : public Regressor {
 public:
  explicit RidgeRegressor(RidgeConfig config = {});

  std::string_view name() const override { return "ridge"; }
  void fit(const Dataset& train, const Dataset& validation,
           Rng& rng) override;
  double predict(std::span<const double> features) const override;

  // Learned weights (bias last), for tests.
  const std::vector<double>& coefficients() const { return weights_; }

 private:
  RidgeConfig config_;
  std::vector<double> weights_;  // d features + bias
};

// Solves A x = b for symmetric positive-definite A via Cholesky
// (A = L L^T). A is given row-major (n x n). Exposed for testing.
std::vector<double> solve_spd(const std::vector<double>& a,
                              const std::vector<double>& b, std::size_t n);

}  // namespace hetsched
