#include "ann/trainer.hpp"

#include <limits>
#include <numeric>

#include "util/contracts.hpp"

namespace hetsched {

Trainer::Trainer(TrainerConfig config) : config_(config) {
  HETSCHED_REQUIRE(config_.max_epochs > 0);
  HETSCHED_REQUIRE(config_.batch_size > 0);
  HETSCHED_REQUIRE(config_.learning_rate > 0.0);
  HETSCHED_REQUIRE(config_.lr_decay > 0.0 && config_.lr_decay <= 1.0);
}

TrainingReport Trainer::fit(Mlp& net, const Dataset& train,
                            const Dataset& validation, Rng& rng) const {
  HETSCHED_REQUIRE(train.consistent());
  HETSCHED_REQUIRE(train.size() > 0);
  HETSCHED_REQUIRE(train.feature_count() == net.input_size());

  TrainingReport report;
  // patience == 0 disables both early stopping and the best-validation
  // weight restore: the net keeps its final weights and regularisation is
  // left to the bagging ensemble.
  const bool use_validation =
      validation.size() > 0 && config_.patience > 0;
  double best_val = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;
  // Best-so-far snapshot for early-stopping restore.
  Mlp best_net = net;

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double lr = config_.learning_rate;
  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_mse = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config_.batch_size);
      const std::vector<std::size_t> batch_idx(order.begin() + start,
                                               order.begin() + end);
      const Dataset batch = train.subset(batch_idx);
      epoch_mse += net.train_batch(batch.features, batch.targets, lr,
                                   config_.momentum);
      ++batches;
    }
    epoch_mse /= static_cast<double>(batches);
    report.train_mse_history.push_back(epoch_mse);
    report.final_train_mse = epoch_mse;
    ++report.epochs_run;
    lr *= config_.lr_decay;

    if (use_validation) {
      const double val_mse =
          net.evaluate_mse(validation.features, validation.targets);
      report.validation_mse_history.push_back(val_mse);
      if (val_mse < best_val) {
        best_val = val_mse;
        best_net = net;
        since_best = 0;
      } else {
        ++since_best;
        if (since_best >= config_.patience) {
          report.early_stopped = true;
          break;
        }
      }
    }
  }

  if (use_validation) {
    net = best_net;
    report.best_validation_mse = best_val;
  } else {
    report.best_validation_mse = report.final_train_mse;
  }
  return report;
}

}  // namespace hetsched
