// Training loop: mini-batch SGD with momentum, learning-rate decay and
// early stopping on the validation set.
#pragma once

#include <optional>

#include "ann/dataset.hpp"
#include "ann/mlp.hpp"

namespace hetsched {

struct TrainerConfig {
  std::size_t max_epochs = 1200;
  std::size_t batch_size = 8;
  double learning_rate = 0.05;
  double momentum = 0.9;
  // Multiplied into the learning rate each epoch (1.0 = constant).
  double lr_decay = 0.998;
  // Early stopping: give up after this many epochs without validation
  // improvement and restore the best-validation weights. 0 disables early
  // stopping AND the restore (bagging provides the regularisation).
  std::size_t patience = 0;
};

struct TrainingReport {
  std::size_t epochs_run = 0;
  double final_train_mse = 0.0;
  double best_validation_mse = 0.0;
  bool early_stopped = false;
  std::vector<double> train_mse_history;
  std::vector<double> validation_mse_history;
};

class Trainer {
 public:
  explicit Trainer(TrainerConfig config = {});

  // Trains `net` in place on `train`, monitoring `validation` (if
  // non-empty) for early stopping; restores the best-validation weights on
  // completion. `rng` drives batch shuffling.
  TrainingReport fit(Mlp& net, const Dataset& train,
                     const Dataset& validation, Rng& rng) const;

 private:
  TrainerConfig config_;
};

}  // namespace hetsched
