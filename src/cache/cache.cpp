#include "cache/cache.hpp"

#include "util/contracts.hpp"

namespace hetsched {

std::string_view to_string(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru: return "LRU";
    case ReplacementPolicy::kFifo: return "FIFO";
    case ReplacementPolicy::kRandom: return "random";
  }
  return "unknown";
}

std::string_view to_string(WritePolicy p) {
  switch (p) {
    case WritePolicy::kWriteBackAllocate: return "write-back";
    case WritePolicy::kWriteThroughNoAllocate: return "write-through";
  }
  return "unknown";
}

Cache::Cache(const CacheConfig& config, ReplacementPolicy policy, Rng* rng)
    : Cache(config, CacheOptions{.replacement = policy}, rng) {}

Cache::Cache(const CacheConfig& config, const CacheOptions& options,
             Rng* rng)
    : config_(config), options_(options), rng_(rng) {
  HETSCHED_REQUIRE(config.valid());
  HETSCHED_REQUIRE(options.replacement != ReplacementPolicy::kRandom ||
                   rng != nullptr);
  lines_.resize(static_cast<std::size_t>(config.num_sets()) *
                config.associativity);
}

Cache::AccessResult Cache::access(std::uint32_t address, std::uint8_t size,
                                  bool is_write) {
  HETSCHED_REQUIRE(size > 0);
  const std::uint32_t first_line = config_.line_address(address);
  const std::uint32_t last_line =
      config_.line_address(address + size - 1u);
  AccessResult combined;
  combined.hit = true;
  for (std::uint32_t la = first_line; la <= last_line; ++la) {
    const AccessResult r = access_line(la, is_write);
    combined.hit = combined.hit && r.hit;
    combined.writeback = combined.writeback || r.writeback;
  }
  return combined;
}

bool Cache::fill_line(std::uint32_t line_addr, bool dirty) {
  const std::uint32_t set = line_addr % config_.num_sets();
  const std::uint32_t tag = line_addr / config_.num_sets();
  Line* const set_base = &lines_[static_cast<std::size_t>(set) *
                                 config_.associativity];
  const std::size_t victim = victim_way(set);
  Line& line = set_base[victim];
  bool writeback = false;
  if (line.valid) {
    ++stats_.evictions;
    if (line.dirty) {
      ++stats_.writebacks;
      writeback = true;
    }
  }
  line.valid = true;
  line.tag = tag;
  line.dirty = dirty;
  line.stamp = tick_;  // both LRU use-time and FIFO fill-time start here
  return writeback;
}

bool Cache::prefetch_line(std::uint32_t line_addr) {
  // Skip if already resident (no replacement disturbance).
  const std::uint32_t set = line_addr % config_.num_sets();
  const std::uint32_t tag = line_addr / config_.num_sets();
  Line* const set_base = &lines_[static_cast<std::size_t>(set) *
                                 config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (set_base[w].valid && set_base[w].tag == tag) return false;
  }
  ++stats_.prefetch_fills;
  seen_lines_.insert(line_addr);
  return fill_line(line_addr, false);
}

Cache::AccessResult Cache::access_line(std::uint32_t line_addr,
                                       bool is_write) {
  ++tick_;
  ++stats_.accesses;

  const bool write_through =
      options_.write == WritePolicy::kWriteThroughNoAllocate;
  if (write_through && is_write) {
    // Every store is forwarded to the next level regardless of hit/miss.
    ++stats_.writethroughs;
  }

  const std::uint32_t set = line_addr % config_.num_sets();
  const std::uint32_t tag = line_addr / config_.num_sets();
  Line* const set_base = &lines_[static_cast<std::size_t>(set) *
                                 config_.associativity];

  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Line& line = set_base[w];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      if (options_.replacement == ReplacementPolicy::kLru) {
        line.stamp = tick_;
      }
      // Write-through lines never become dirty (memory is up to date).
      line.dirty = line.dirty || (is_write && !write_through);
      return {true, false};
    }
  }

  // Miss.
  ++stats_.misses;
  if (is_write) {
    ++stats_.write_misses;
  } else {
    ++stats_.read_misses;
  }
  if (seen_lines_.insert(line_addr)) {
    ++stats_.compulsory_misses;
  }

  // No-allocate: a write miss under write-through bypasses the cache.
  if (write_through && is_write) {
    return {false, false};
  }

  bool writeback = fill_line(line_addr, is_write && !write_through);

  if (options_.next_line_prefetch) {
    // Demand miss triggers a next-line prefetch (wrapping within the
    // 32-bit line-address space).
    writeback = prefetch_line(line_addr + 1) || writeback;
  }
  return {false, writeback};
}

std::size_t Cache::victim_way(std::uint32_t set) const {
  const Line* const set_base = &lines_[static_cast<std::size_t>(set) *
                                       config_.associativity];
  // Prefer an invalid way.
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (!set_base[w].valid) return w;
  }
  if (options_.replacement == ReplacementPolicy::kRandom) {
    return static_cast<std::size_t>(rng_->below(config_.associativity));
  }
  // LRU and FIFO both evict the minimum stamp (use-time vs fill-time).
  std::size_t victim = 0;
  for (std::uint32_t w = 1; w < config_.associativity; ++w) {
    if (set_base[w].stamp < set_base[victim].stamp) victim = w;
  }
  return victim;
}

std::uint32_t Cache::dirty_lines() const {
  std::uint32_t n = 0;
  for (const Line& line : lines_) {
    if (line.valid && line.dirty) ++n;
  }
  return n;
}

std::uint32_t Cache::flush() {
  std::uint32_t written_back = 0;
  for (Line& line : lines_) {
    if (line.valid && line.dirty) {
      ++written_back;
      ++stats_.writebacks;
    }
    line = Line{};
  }
  return written_back;
}

CacheSimResult simulate_trace(const MemTrace& trace,
                              const CacheConfig& config,
                              ReplacementPolicy policy, Rng* rng) {
  Cache cache(config, policy, rng);
  for (const MemRef& ref : trace) {
    cache.access(ref);
  }
  return CacheSimResult{config, cache.stats()};
}

}  // namespace hetsched
