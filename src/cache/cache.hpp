// Set-associative cache simulator.
//
// Trace-driven functional model of one cache level: tag/valid/dirty state
// per line, LRU / FIFO / random replacement, write-back + write-allocate
// policy (the organisation Zhang's configurable cache [30] and the paper's
// energy model assume). Produces the access/hit/miss/writeback counts the
// Figure-4 energy model consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_config.hpp"
#include "trace/memref.hpp"
#include "util/rng.hpp"

namespace hetsched {

// Set of line addresses, used to detect first-touch (compulsory) misses.
//
// Kernel address spaces are dense and start near 0 (ExecutionContext
// allocates upward from 0x1000), so a growable flat bitmap beats the
// unordered_set it replaced: one bit per line instead of a ~40-byte hash
// node, no rehashing, and O(1) word-indexed probes. It is rebuilt 18×
// per trace during characterisation — the largest per-config allocation
// before this change.
class LineAddressSet {
 public:
  // Inserts `line_addr`; returns true when it was not yet present.
  bool insert(std::uint32_t line_addr) {
    const std::size_t word = line_addr >> 6;
    if (word >= bits_.size()) {
      std::size_t grown = bits_.empty() ? 64 : bits_.size();
      while (grown <= word) grown *= 2;
      bits_.resize(grown, 0);
    }
    const std::uint64_t mask = 1ull << (line_addr & 63u);
    if ((bits_[word] & mask) != 0) return false;
    bits_[word] |= mask;
    ++count_;
    return true;
  }

  bool contains(std::uint32_t line_addr) const {
    const std::size_t word = line_addr >> 6;
    return word < bits_.size() &&
           (bits_[word] & (1ull << (line_addr & 63u))) != 0;
  }

  std::size_t size() const { return count_; }
  void clear() {
    bits_.clear();
    count_ = 0;
  }

 private:
  std::vector<std::uint64_t> bits_;
  std::size_t count_ = 0;
};

enum class ReplacementPolicy { kLru, kFifo, kRandom };

std::string_view to_string(ReplacementPolicy p);

// Write handling. The paper's configurable cache (and Figure 4) assumes
// write-back + write-allocate; write-through/no-allocate is provided for
// architecture studies.
enum class WritePolicy { kWriteBackAllocate, kWriteThroughNoAllocate };

std::string_view to_string(WritePolicy p);

struct CacheOptions {
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  WritePolicy write = WritePolicy::kWriteBackAllocate;
  // Fetch line+1 into the cache on every demand miss.
  bool next_line_prefetch = false;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t compulsory_misses = 0;  // first touch of a line address
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;  // dirty evictions (+ dirty flushes)
  // Write-through stores forwarded to the next level.
  std::uint64_t writethroughs = 0;
  // Prefetch line fills issued (next-line prefetcher).
  std::uint64_t prefetch_fills = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class Cache {
 public:
  struct AccessResult {
    bool hit = false;
    bool writeback = false;  // a dirty line was evicted by this access
  };

  // `rng` is only consulted for kRandom replacement; it may be null for
  // the deterministic policies.
  explicit Cache(const CacheConfig& config,
                 ReplacementPolicy policy = ReplacementPolicy::kLru,
                 Rng* rng = nullptr);
  // Full-options constructor (write policy, prefetcher).
  Cache(const CacheConfig& config, const CacheOptions& options,
        Rng* rng = nullptr);

  const CacheConfig& config() const { return config_; }
  ReplacementPolicy policy() const { return options_.replacement; }
  const CacheOptions& options() const { return options_; }
  const CacheStats& stats() const { return stats_; }

  // Single byte-addressed access of `size` bytes; accesses every line the
  // range touches (element-aligned kernel accesses touch exactly one).
  AccessResult access(std::uint32_t address, std::uint8_t size,
                      bool is_write);
  AccessResult access(const MemRef& ref) {
    return access(ref.address, ref.size, ref.is_write);
  }

  // Number of currently dirty lines (what a reconfiguration must flush).
  std::uint32_t dirty_lines() const;

  // Invalidates everything; returns the number of dirty lines written back
  // (also added to stats().writebacks).
  std::uint32_t flush();

  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    std::uint32_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t stamp = 0;  // LRU: last use; FIFO: fill time
  };

  // One line-granular lookup; returns hit/writeback for that line.
  AccessResult access_line(std::uint32_t line_addr, bool is_write);
  // Allocates `line_addr` without counting an access (prefetch fill);
  // returns true if a dirty line was written back.
  bool prefetch_line(std::uint32_t line_addr);
  // Fill helper shared by demand misses and prefetches.
  bool fill_line(std::uint32_t line_addr, bool dirty);

  std::size_t victim_way(std::uint32_t set) const;

  CacheConfig config_;
  CacheOptions options_;
  Rng* rng_;
  std::vector<Line> lines_;  // num_sets * associativity, set-major
  std::uint64_t tick_ = 0;
  CacheStats stats_;
  LineAddressSet seen_lines_;  // for compulsory misses
};

// Result of simulating one full trace against one configuration.
struct CacheSimResult {
  CacheConfig config;
  CacheStats stats;
};

// Runs `trace` through a fresh cache in `config`. Deterministic for the
// LRU/FIFO policies; for kRandom pass a seeded rng.
CacheSimResult simulate_trace(const MemTrace& trace,
                              const CacheConfig& config,
                              ReplacementPolicy policy = ReplacementPolicy::kLru,
                              Rng* rng = nullptr);

}  // namespace hetsched
