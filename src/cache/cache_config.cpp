#include "cache/cache_config.hpp"

#include <cstdio>

#include "util/contracts.hpp"

namespace hetsched {
namespace {

bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

bool CacheConfig::valid() const {
  if (!is_pow2(size_bytes) || !is_pow2(associativity) || !is_pow2(line_bytes))
    return false;
  if (line_bytes < 4 || line_bytes > size_bytes) return false;
  if (associativity > num_lines()) return false;
  return num_lines() % associativity == 0;
}

std::string CacheConfig::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%uKB_%uW_%uB", size_bytes / 1024,
                associativity, line_bytes);
  return buf;
}

std::optional<CacheConfig> CacheConfig::parse(std::string_view name) {
  unsigned kb = 0, ways = 0, line = 0;
  char tail = 0;
  // snprintf-style format of name(): "<kb>KB_<w>W_<line>B"
  const std::string owned(name);
  const int matched =
      std::sscanf(owned.c_str(), "%uKB_%uW_%uB%c", &kb, &ways, &line, &tail);
  if (matched != 3) return std::nullopt;
  CacheConfig config{kb * 1024, ways, line};
  if (!config.valid()) return std::nullopt;
  return config;
}

const std::vector<CacheConfig>& DesignSpace::all() {
  static const std::vector<CacheConfig> kAll = [] {
    std::vector<CacheConfig> configs;
    for (std::uint32_t size : sizes()) {
      for (std::uint32_t ways : associativities_for(size)) {
        for (std::uint32_t line : line_sizes()) {
          configs.push_back(CacheConfig{size, ways, line});
          HETSCHED_ASSERT(configs.back().valid());
        }
      }
    }
    HETSCHED_ASSERT(configs.size() == 18);
    return configs;
  }();
  return kAll;
}

const std::vector<std::uint32_t>& DesignSpace::sizes() {
  static const std::vector<std::uint32_t> kSizes = {2048, 4096, 8192};
  return kSizes;
}

const std::vector<std::uint32_t>& DesignSpace::associativities_for(
    std::uint32_t size_bytes) {
  static const std::vector<std::uint32_t> kOne = {1};
  static const std::vector<std::uint32_t> kTwo = {1, 2};
  static const std::vector<std::uint32_t> kThree = {1, 2, 4};
  static const std::vector<std::uint32_t> kNone;
  switch (size_bytes) {
    case 2048: return kOne;
    case 4096: return kTwo;
    case 8192: return kThree;
    default: return kNone;
  }
}

const std::vector<std::uint32_t>& DesignSpace::line_sizes() {
  static const std::vector<std::uint32_t> kLines = {16, 32, 64};
  return kLines;
}

std::vector<CacheConfig> DesignSpace::configs_for_size(
    std::uint32_t size_bytes) {
  std::vector<CacheConfig> configs;
  for (const CacheConfig& c : all()) {
    if (c.size_bytes == size_bytes) configs.push_back(c);
  }
  return configs;
}

std::optional<std::size_t> DesignSpace::index_of(const CacheConfig& config) {
  // O(1) arithmetic over the canonical (size-major, ways, line) order.
  // Hot: the profiling table and characterisation lookups route every
  // observation through here; cache_test pins agreement with a linear
  // search of all().
  std::size_t line_idx = 0;
  switch (config.line_bytes) {
    case 16: line_idx = 0; break;
    case 32: line_idx = 1; break;
    case 64: line_idx = 2; break;
    default: return std::nullopt;
  }
  std::size_t way_idx = 0;
  switch (config.associativity) {
    case 1: way_idx = 0; break;
    case 2: way_idx = 1; break;
    case 4: way_idx = 2; break;
    default: return std::nullopt;
  }
  switch (config.size_bytes) {
    case 2048:
      return way_idx == 0 ? std::optional<std::size_t>(line_idx)
                          : std::nullopt;
    case 4096:
      return way_idx <= 1
                 ? std::optional<std::size_t>(3 + way_idx * 3 + line_idx)
                 : std::nullopt;
    case 8192: return 9 + way_idx * 3 + line_idx;
    default: return std::nullopt;
  }
}

}  // namespace hetsched
