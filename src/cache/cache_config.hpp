// Cache configuration model and the Table-1 design space.
//
// The paper's quad-core offers a subsetted configurable-L1 design space
// (Table 1): total size 2/4/8 KB, associativity 1/2/4 ways bounded by the
// size, line size 16/32/64 B — 18 configurations in all. Each core fixes
// the size (2, 4, 8, 8 KB) and can tune associativity and line size.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hetsched {

struct CacheConfig {
  std::uint32_t size_bytes = 8192;
  std::uint32_t associativity = 4;
  std::uint32_t line_bytes = 64;

  std::uint32_t num_lines() const { return size_bytes / line_bytes; }
  std::uint32_t num_sets() const { return num_lines() / associativity; }
  std::uint32_t size_kb() const { return size_bytes / 1024; }

  // True if sizes are powers of two and consistent (at least one set).
  bool valid() const;

  // Canonical name, e.g. "8KB_4W_64B" (Table 1 notation).
  std::string name() const;
  // Parses the canonical notation; nullopt on malformed input.
  static std::optional<CacheConfig> parse(std::string_view name);

  // Address decomposition.
  std::uint32_t line_address(std::uint32_t addr) const {
    return addr / line_bytes;
  }
  std::uint32_t set_index(std::uint32_t addr) const {
    return line_address(addr) % num_sets();
  }
  std::uint32_t tag(std::uint32_t addr) const {
    return line_address(addr) / num_sets();
  }

  friend bool operator==(const CacheConfig&, const CacheConfig&) = default;
};

// The Table-1 design space and the per-core subsets derived from it.
class DesignSpace {
 public:
  // The base/profiling configuration (largest, most associative, widest).
  static CacheConfig base_config() { return {8192, 4, 64}; }

  // All 18 configurations of Table 1, in a fixed canonical order
  // (size-major, then associativity, then line size).
  static const std::vector<CacheConfig>& all();

  // Cache sizes present in the space: {2048, 4096, 8192}.
  static const std::vector<std::uint32_t>& sizes();

  // Associativities Table 1 allows for a size (2KB:{1}, 4KB:{1,2},
  // 8KB:{1,2,4}; empty for off-space sizes). Returns a reference to a
  // static table — the tuning heuristic consults this on every decide,
  // so it must not allocate.
  static const std::vector<std::uint32_t>& associativities_for(
      std::uint32_t size_bytes);

  // Line sizes (same for every size): {16, 32, 64}.
  static const std::vector<std::uint32_t>& line_sizes();

  // The per-core tunable subset: every Table-1 config with this size.
  static std::vector<CacheConfig> configs_for_size(std::uint32_t size_bytes);

  // Index of `config` in all(); nullopt if not a Table-1 configuration.
  static std::optional<std::size_t> index_of(const CacheConfig& config);
};

}  // namespace hetsched
