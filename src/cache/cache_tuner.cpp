#include "cache/cache_tuner.hpp"

#include "util/contracts.hpp"

namespace hetsched {

CacheTuner::CacheTuner(std::uint32_t fixed_size_bytes,
                       const CacheConfig& initial, ReplacementPolicy policy)
    : fixed_size_bytes_(fixed_size_bytes), policy_(policy) {
  HETSCHED_REQUIRE(initial.valid());
  HETSCHED_REQUIRE(initial.size_bytes == fixed_size_bytes);
  cache_ = std::make_unique<Cache>(initial, policy);
}

ReconfigureCost CacheTuner::reconfigure(const CacheConfig& next) {
  HETSCHED_REQUIRE(next.valid());
  HETSCHED_REQUIRE(next.size_bytes == fixed_size_bytes_);
  if (next == cache_->config()) return {};

  ReconfigureCost cost;
  cost.flushed_writebacks = cache_->dirty_lines();
  cost.invalidated_lines = cache_->config().num_lines();
  cache_->flush();
  cache_ = std::make_unique<Cache>(next, policy_);
  ++reconfigurations_;
  return cost;
}

}  // namespace hetsched
