// Cache tuner hardware model (Figure 1).
//
// Each core carries a tuner that can reconfigure its L1's associativity and
// line size within the core's fixed total size. Reconfiguration is not
// free: dirty lines must be written back and the cache starts cold, so the
// tuner reports the flush traffic for energy/cycle accounting.
#pragma once

#include <cstdint>
#include <memory>

#include "cache/cache.hpp"

namespace hetsched {

struct ReconfigureCost {
  std::uint32_t flushed_writebacks = 0;  // dirty lines written back
  std::uint32_t invalidated_lines = 0;   // lines lost to the cold start
};

class CacheTuner {
 public:
  // The tuner is bound to a core's fixed cache size; every configuration
  // it installs must keep that size.
  CacheTuner(std::uint32_t fixed_size_bytes, const CacheConfig& initial,
             ReplacementPolicy policy = ReplacementPolicy::kLru);

  std::uint32_t fixed_size_bytes() const { return fixed_size_bytes_; }
  Cache& cache() { return *cache_; }
  const Cache& cache() const { return *cache_; }

  // Installs `next` (must match the fixed size and be valid). Returns the
  // flush cost. A no-op reconfigure (same config) costs nothing.
  ReconfigureCost reconfigure(const CacheConfig& next);

  std::uint32_t reconfigurations() const { return reconfigurations_; }

 private:
  std::uint32_t fixed_size_bytes_;
  ReplacementPolicy policy_;
  std::unique_ptr<Cache> cache_;
  std::uint32_t reconfigurations_ = 0;
};

}  // namespace hetsched
