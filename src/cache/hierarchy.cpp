#include "cache/hierarchy.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace hetsched {

CacheHierarchy::CacheHierarchy(const CacheConfig& l1_config,
                               const CacheConfig& l2_config,
                               ReplacementPolicy policy, Rng* rng)
    : l1_(l1_config, policy, rng), l2_(l2_config, policy, rng) {
  // Inclusive-style fills assume the L2 line is at least as long as L1's.
  HETSCHED_REQUIRE(l2_config.line_bytes >= l1_config.line_bytes);
  HETSCHED_REQUIRE(l2_config.size_bytes >= l1_config.size_bytes);
}

void CacheHierarchy::access(const MemRef& ref) {
  const Cache::AccessResult l1r = l1_.access(ref);
  if (l1r.hit && !l1r.writeback) return;
  if (!l1r.hit) {
    // Line fill from L2 (read of the full L1 line).
    const std::uint32_t line_base =
        ref.address / l1_.config().line_bytes * l1_.config().line_bytes;
    l2_.access(line_base, static_cast<std::uint8_t>(
                              std::min<std::uint32_t>(
                                  l1_.config().line_bytes, 255u)),
               false);
  }
  if (l1r.writeback) {
    // Dirty victim written back into L2. The victim's address is not
    // recoverable from AccessResult; model it as a write to the same set
    // region (address-homed approximation adequate for hit/miss counts).
    l2_.access(ref.address, static_cast<std::uint8_t>(
                                std::min<std::uint32_t>(
                                    l1_.config().line_bytes, 255u)),
               true);
  }
}

HierarchyStats simulate_hierarchy(const MemTrace& trace,
                                  const CacheConfig& l1_config,
                                  const CacheConfig& l2_config) {
  CacheHierarchy hierarchy(l1_config, l2_config);
  for (const MemRef& ref : trace) {
    hierarchy.access(ref);
  }
  return hierarchy.stats();
}

}  // namespace hetsched
