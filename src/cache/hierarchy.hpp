// Two-level private cache hierarchy (Figure 1): configurable L1 backed by
// a fixed, non-configurable private L2.
//
// The paper's Figure-4 energy model accounts L1 misses directly as
// off-chip accesses (its L2 is not in the energy equations); the hierarchy
// model here completes the Figure-1 architecture and powers the
// "additional cache levels" future-work extension bench.
#pragma once

#include "cache/cache.hpp"

namespace hetsched {

struct HierarchyStats {
  CacheStats l1;
  CacheStats l2;

  // Fraction of L1 misses also missing in L2 (off-chip accesses).
  double global_miss_rate() const {
    return l1.accesses == 0 ? 0.0
                            : static_cast<double>(l2.misses) /
                                  static_cast<double>(l1.accesses);
  }
};

class CacheHierarchy {
 public:
  // Default L2 follows embedded practice: 32 KB, 4-way, matching 64 B lines.
  static CacheConfig default_l2_config() { return {32768, 4, 64}; }

  CacheHierarchy(const CacheConfig& l1_config,
                 const CacheConfig& l2_config = default_l2_config(),
                 ReplacementPolicy policy = ReplacementPolicy::kLru,
                 Rng* rng = nullptr);

  // Accesses L1; on an L1 miss, fetches the line through L2. L1 dirty
  // evictions are written back into L2.
  void access(const MemRef& ref);

  HierarchyStats stats() const { return {l1_.stats(), l2_.stats()}; }
  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }

 private:
  Cache l1_;
  Cache l2_;
};

// Simulates `trace` through a fresh two-level hierarchy.
HierarchyStats simulate_hierarchy(const MemTrace& trace,
                                  const CacheConfig& l1_config,
                                  const CacheConfig& l2_config =
                                      CacheHierarchy::default_l2_config());

}  // namespace hetsched
