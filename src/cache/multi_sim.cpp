#include "cache/multi_sim.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace hetsched {
namespace {

// One output configuration inside a SetGroup: an associativity plus the
// per-config counters the shared recency array cannot derive.
struct ConfigSlot {
  std::uint32_t assoc = 0;
  std::size_t result_index = 0;  // into the caller's configs vector
  std::uint64_t misses = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
};

// All configurations sharing (line size, set count). `capacity` is the
// largest associativity among them; the per-set recency arrays hold the
// `capacity` most-recently-used distinct lines of each set, most recent
// first — precisely the resident lines of the capacity-way LRU cache.
struct SetGroup {
  std::uint32_t num_sets = 0;
  std::uint32_t capacity = 0;
  std::vector<ConfigSlot> slots;

  struct Entry {
    std::uint32_t line = 0;
    std::uint32_t dirty = 0;  // bit s: dirty in slots[s]'s configuration
  };
  std::vector<Entry> entries;       // num_sets * capacity, set-major
  std::vector<std::uint8_t> sizes;  // valid entries per set (≤ capacity)

  void access(std::uint32_t line_addr, bool is_write);
};

void SetGroup::access(std::uint32_t line_addr, bool is_write) {
  const std::uint32_t set = line_addr % num_sets;
  Entry* const base = &entries[static_cast<std::size_t>(set) * capacity];
  const std::uint32_t n = sizes[set];

  // Reuse rank of the line within its set (capacity == not resident
  // anywhere, i.e. a miss for every configuration in the group).
  std::uint32_t rank = capacity;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (base[i].line == line_addr) {
      rank = i;
      break;
    }
  }

  for (ConfigSlot& slot : slots) {
    if (rank < slot.assoc) continue;  // hit in this configuration
    ++slot.misses;
    if (is_write) {
      ++slot.write_misses;
    } else {
      ++slot.read_misses;
    }
    // The A-way cache holds the set's top-A lines; when full, the miss
    // evicts the rank-(A-1) line.
    if (n >= slot.assoc) {
      ++slot.evictions;
      Entry& victim = base[slot.assoc - 1];
      const std::uint32_t bit =
          1u << static_cast<std::uint32_t>(&slot - slots.data());
      if ((victim.dirty & bit) != 0) {
        ++slot.writebacks;
        victim.dirty &= ~bit;  // written back: clean and gone
      }
    }
  }

  // Move the line to the front of the recency array. A hit keeps its
  // dirty mask; a write marks every configuration dirty (hits turn
  // dirty, misses fill dirty under write-allocate) — a clean read-miss
  // line enters with its bits already 0 by the residency invariant.
  std::uint32_t mask = 0;
  if (is_write) {
    mask = (1u << slots.size()) - 1u;
  } else if (rank < capacity) {
    mask = base[rank].dirty;
  }
  const std::uint32_t shift_from =
      rank < capacity ? rank
                      : std::min<std::uint32_t>(n, capacity - 1);
  for (std::uint32_t i = shift_from; i > 0; --i) base[i] = base[i - 1];
  base[0] = Entry{line_addr, mask};
  if (rank == capacity && n < capacity) {
    sizes[set] = static_cast<std::uint8_t>(n + 1);
  }
}

// All configurations sharing a line size: accesses and compulsory misses
// are identical across them, so both are counted once here.
struct LineGroup {
  std::uint32_t line_bytes = 0;
  std::vector<SetGroup> set_groups;
  LineAddressSet seen;
  std::uint64_t accesses = 0;
  std::uint64_t compulsory = 0;

  void access(const MemRef& ref) {
    const std::uint32_t first = ref.address / line_bytes;
    const std::uint32_t last =
        (ref.address + ref.size - 1u) / line_bytes;
    for (std::uint32_t la = first; la <= last; ++la) {
      ++accesses;
      if (seen.insert(la)) ++compulsory;
      for (SetGroup& group : set_groups) {
        group.access(la, ref.is_write);
      }
    }
  }
};

}  // namespace

bool multi_sim_supported(const CacheOptions& options) {
  return options.replacement == ReplacementPolicy::kLru &&
         options.write == WritePolicy::kWriteBackAllocate &&
         !options.next_line_prefetch;
}

std::vector<CacheSimResult> simulate_trace_multi(
    const MemTrace& trace, const std::vector<CacheConfig>& configs) {
  std::vector<LineGroup> groups;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const CacheConfig& config = configs[c];
    HETSCHED_REQUIRE(config.valid());
    auto line_it = std::find_if(
        groups.begin(), groups.end(),
        [&](const LineGroup& g) { return g.line_bytes == config.line_bytes; });
    if (line_it == groups.end()) {
      groups.push_back(LineGroup{});
      groups.back().line_bytes = config.line_bytes;
      line_it = groups.end() - 1;
    }
    auto set_it = std::find_if(
        line_it->set_groups.begin(), line_it->set_groups.end(),
        [&](const SetGroup& g) { return g.num_sets == config.num_sets(); });
    if (set_it == line_it->set_groups.end()) {
      line_it->set_groups.push_back(SetGroup{});
      line_it->set_groups.back().num_sets = config.num_sets();
      set_it = line_it->set_groups.end() - 1;
    }
    // Dirty masks are per-slot bits in a uint32.
    HETSCHED_REQUIRE(set_it->slots.size() < 32);
    set_it->slots.push_back(
        ConfigSlot{.assoc = config.associativity, .result_index = c});
  }

  for (LineGroup& line_group : groups) {
    for (SetGroup& set_group : line_group.set_groups) {
      for (const ConfigSlot& slot : set_group.slots) {
        set_group.capacity = std::max(set_group.capacity, slot.assoc);
      }
      set_group.entries.resize(static_cast<std::size_t>(set_group.num_sets) *
                               set_group.capacity);
      set_group.sizes.assign(set_group.num_sets, 0);
    }
  }

  for (const MemRef& ref : trace) {
    HETSCHED_REQUIRE(ref.size > 0);
    for (LineGroup& group : groups) group.access(ref);
  }

  std::vector<CacheSimResult> results(configs.size());
  for (const LineGroup& line_group : groups) {
    for (const SetGroup& set_group : line_group.set_groups) {
      for (const ConfigSlot& slot : set_group.slots) {
        CacheStats stats;
        stats.accesses = line_group.accesses;
        stats.misses = slot.misses;
        stats.hits = line_group.accesses - slot.misses;
        stats.read_misses = slot.read_misses;
        stats.write_misses = slot.write_misses;
        stats.compulsory_misses = line_group.compulsory;
        stats.evictions = slot.evictions;
        stats.writebacks = slot.writebacks;
        results[slot.result_index] =
            CacheSimResult{configs[slot.result_index], stats};
      }
    }
  }
  return results;
}

}  // namespace hetsched
