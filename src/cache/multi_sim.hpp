// Single-pass multi-configuration cache simulation.
//
// Characterisation replays every kernel trace once per Table-1
// configuration — 18 full replays per benchmark instance. For LRU with
// write-back + write-allocate (the default and the only mode the
// characterisation uses), hit/miss behaviour of *every* set-count and
// associativity point with a given line size can be decided in one sweep
// using per-set LRU stack distances (Mattson et al.'s inclusion property,
// as exploited by Hill & Smith's all-associativity simulation):
//
//   * With bit-selection indexing and no invalidations, the content of an
//     A-way LRU set is exactly the A most-recently-used distinct lines
//     mapping to that set. An access therefore hits in (S sets, A ways)
//     iff its same-set reuse rank under S is < A.
//   * On a miss the evicted line is the set's rank-(A-1) line, so dirty
//     state (one bit per configuration) and writeback/eviction counts
//     are tracked exactly, not approximated.
//
// Per (line size, set count) the engine keeps a tiny per-set recency
// array bounded by the largest associativity sharing that set count
// (≤ 4 in Table 1), so the inner loop is a ≤ 4-entry scan instead of a
// full cache model. Configurations that need FIFO/random replacement,
// write-through, or prefetching fall back to the reference Cache.
//
// Contract: the returned CacheStats are bit-identical to running
// simulate_trace per configuration.
#pragma once

#include <vector>

#include "cache/cache.hpp"

namespace hetsched {

// True if the single-pass engine handles `options` (LRU, write-back +
// write-allocate, no prefetch — the simulate_trace defaults).
bool multi_sim_supported(const CacheOptions& options);

// Simulates all `configs` in one sweep over `trace`; result i corresponds
// to configs[i]. Every config must be valid. Uses the default
// CacheOptions (LRU / write-back) semantics.
std::vector<CacheSimResult> simulate_trace_multi(
    const MemTrace& trace, const std::vector<CacheConfig>& configs);

}  // namespace hetsched
