#include "core/contender_policies.hpp"

#include <istream>
#include <limits>
#include <ostream>

#include "core/policies.hpp"
#include "core/tuning_heuristic.hpp"
#include "util/contracts.hpp"
#include "util/snapshot_text.hpp"
#include "workload/characterization.hpp"

namespace hetsched {
namespace {

namespace st = snapshot_text;
using policy_detail::profiling_decision;
using policy_detail::run_with_heuristic;

constexpr std::uint64_t kNoCycles = ~std::uint64_t{0};
constexpr double kNoEnergy = std::numeric_limits<double>::infinity();

// Lowest observed cycle count among this size's configurations; kNoCycles
// when the size is still unexplored.
std::uint64_t observed_cycles_for_size(const ProfilingTable::Entry& entry,
                                       std::uint32_t size_bytes) {
  std::uint64_t best = kNoCycles;
  const auto& all = DesignSpace::all();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].size_bytes != size_bytes) continue;
    const auto& obs = entry.observations[i];
    if (obs.has_value() && obs->cycles < best) best = obs->cycles;
  }
  return best;
}

// Lowest observed cycle count anywhere (the base-configuration profiling
// observation at minimum, once the job has been profiled).
std::uint64_t observed_cycles_any(const ProfilingTable::Entry& entry) {
  std::uint64_t best = kNoCycles;
  for (const auto& obs : entry.observations) {
    if (obs.has_value() && obs->cycles < best) best = obs->cycles;
  }
  return best;
}

double observed_energy_for_size(const ProfilingTable::Entry& entry,
                                std::uint32_t size_bytes) {
  double best = kNoEnergy;
  const auto& all = DesignSpace::all();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].size_bytes != size_bytes) continue;
    const auto& obs = entry.observations[i];
    if (obs.has_value() && obs->total_energy.value() < best) {
      best = obs->total_energy.value();
    }
  }
  return best;
}

double observed_energy_any(const ProfilingTable::Entry& entry) {
  double best = kNoEnergy;
  for (const auto& obs : entry.observations) {
    if (obs.has_value() && obs->total_energy.value() < best) {
      best = obs->total_energy.value();
    }
  }
  return best;
}

}  // namespace

// --------------------------------------------------------------------
// Shortest-predicted-job-first: among idle cores, the one where the
// profiling table predicts the fewest cycles. Sizes with no observation
// yet fall back to the cheapest observation anywhere (every profiled job
// has at least the base-configuration one), so exploration is not
// penalised against known-bad placements; ties go to the lowest index.
Decision ShortestJobFirstPolicy::decide(const Job& job, SystemView& view) {
  if (const auto profiling = profiling_decision(job, view)) {
    return *profiling;
  }
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  const std::uint64_t fallback = observed_cycles_any(entry);

  std::size_t chosen = SystemView::npos;
  std::uint64_t chosen_cycles = kNoCycles;
  view.for_each_idle([&](std::size_t core) {
    const std::uint32_t size = view.core(core).spec.cache_size_bytes;
    std::uint64_t cycles = observed_cycles_for_size(entry, size);
    if (cycles == kNoCycles) cycles = fallback;
    if (chosen == SystemView::npos || cycles < chosen_cycles) {
      chosen = core;
      chosen_cycles = cycles;
    }
    return false;
  });
  if (chosen == SystemView::npos) {
    HETSCHED_ASSERT(false && "decide() called with no idle core");
    return Decision::stall();
  }
  return run_with_heuristic(chosen, view.core(chosen).spec.cache_size_bytes,
                            entry);
}

// --------------------------------------------------------------------
// Energy-greedy: identical placement shape, scored by observed total
// energy instead of cycles.
Decision EnergyGreedyPolicy::decide(const Job& job, SystemView& view) {
  if (const auto profiling = profiling_decision(job, view)) {
    return *profiling;
  }
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  const double fallback = observed_energy_any(entry);

  std::size_t chosen = SystemView::npos;
  double chosen_energy = kNoEnergy;
  view.for_each_idle([&](std::size_t core) {
    const std::uint32_t size = view.core(core).spec.cache_size_bytes;
    double energy = observed_energy_for_size(entry, size);
    if (energy == kNoEnergy) energy = fallback;
    if (chosen == SystemView::npos || energy < chosen_energy) {
      chosen = core;
      chosen_energy = energy;
    }
    return false;
  });
  if (chosen == SystemView::npos) {
    HETSCHED_ASSERT(false && "decide() called with no idle core");
    return Decision::stall();
  }
  return run_with_heuristic(chosen, view.core(chosen).spec.cache_size_bytes,
                            entry);
}

// --------------------------------------------------------------------
// Random: uniform over the idle cores. Exactly one Rng draw per
// non-profiling decision, so the stream is a pure function of the decide
// sequence (stream==batch and checkpoint identity follow).
Decision RandomPolicy::decide(const Job& job, SystemView& view) {
  if (const auto profiling = profiling_decision(job, view)) {
    return *profiling;
  }
  std::size_t idle_count = 0;
  view.for_each_idle([&](std::size_t) {
    ++idle_count;
    return false;
  });
  if (idle_count == 0) {
    HETSCHED_ASSERT(false && "decide() called with no idle core");
    return Decision::stall();
  }
  const std::uint64_t pick = rng_.below(idle_count);
  std::size_t chosen = SystemView::npos;
  std::uint64_t seen = 0;
  view.for_each_idle([&](std::size_t core) {
    if (seen++ == pick) {
      chosen = core;
      return true;
    }
    return false;
  });
  HETSCHED_ASSERT(chosen != SystemView::npos);
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  return run_with_heuristic(chosen, view.core(chosen).spec.cache_size_bytes,
                            entry);
}

void RandomPolicy::save_state(std::ostream& out) const {
  out << "policy-state random\n";
  rng_.save_state(out);
}

void RandomPolicy::restore_state(std::istream& in,
                                 const std::string& context) {
  const auto header = st::read_value<std::string>(in, "policy tag", context);
  const auto tag = st::read_value<std::string>(in, "policy name", context);
  if (header != "policy-state" || tag != "random") {
    st::fail(context, "mismatched random policy state header");
  }
  rng_.restore_state(in, context);
}

// --------------------------------------------------------------------
// Oracle: reads the characterised ground truth (which honest policies
// never see) and replays the known-best configuration. It skips profiling
// entirely — it already knows everything — so it also never deposits
// profiling statistics; its executions still record observations like any
// other run.
Decision OraclePolicy::decide(const Job& job, SystemView& view) {
  const BenchmarkProfile& profile = suite_->benchmark(job.benchmark_id);
  const std::uint32_t best_size =
      view.clamp_to_available(profile.oracle_best_size());

  const std::size_t best_core = view.first_idle_with_size(best_size);
  if (best_core != SystemView::npos) {
    return Decision::run(best_core, profile.best_for_size(best_size).config,
                         ExecutionKind::kNormal);
  }
  const std::size_t core = view.first_idle();
  if (core == SystemView::npos) {
    HETSCHED_ASSERT(false && "decide() called with no idle core");
    return Decision::stall();
  }
  const std::uint32_t size = view.core(core).spec.cache_size_bytes;
  return Decision::run(core, profile.best_for_size(size).config,
                       ExecutionKind::kNormal);
}

}  // namespace hetsched
