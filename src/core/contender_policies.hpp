// Contender policies for the competitive portfolio (ROADMAP item 2).
//
// Four additional schedulers that compete inside PortfolioPolicy (and can
// run standalone through the registry):
//
//   ShortestJobFirstPolicy — places the head job on the idle core with the
//                            lowest *observed* cycle count for that core's
//                            cache size (profiling-table knowledge only).
//   EnergyGreedyPolicy     — same shape, but minimises observed total
//                            energy instead of cycles.
//   RandomPolicy           — uniform choice over idle cores from its own
//                            seeded Rng; the Rng state serialises through
//                            SchedulerPolicy::save_state so checkpoint
//                            resume replays the identical stream.
//   OraclePolicy           — deliberately breaks the information model: it
//                            reads the characterised ground truth and
//                            replays the known-best per-job configuration.
//                            Upper-bound reference, never a fair contender.
#pragma once

#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace hetsched {

class CharacterizedSuite;

class ShortestJobFirstPolicy final : public SchedulerPolicy {
 public:
  std::string_view name() const override { return "sjf"; }
  Decision decide(const Job& job, SystemView& view) override;
};

class EnergyGreedyPolicy final : public SchedulerPolicy {
 public:
  std::string_view name() const override { return "energy-greedy"; }
  Decision decide(const Job& job, SystemView& view) override;
};

class RandomPolicy final : public SchedulerPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

  std::string_view name() const override { return "random"; }
  Decision decide(const Job& job, SystemView& view) override;
  void save_state(std::ostream& out) const override;
  void restore_state(std::istream& in, const std::string& context) override;

 private:
  Rng rng_;
};

class OraclePolicy final : public SchedulerPolicy {
 public:
  explicit OraclePolicy(const CharacterizedSuite& suite) : suite_(&suite) {}

  std::string_view name() const override { return "oracle"; }
  Decision decide(const Job& job, SystemView& view) override;

 private:
  const CharacterizedSuite* suite_;
};

}  // namespace hetsched
