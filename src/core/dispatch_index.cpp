#include "core/dispatch_index.hpp"

#include <algorithm>

#include "core/scheduler.hpp"
#include "util/contracts.hpp"

namespace hetsched {

namespace {

constexpr std::size_t kWordBits = 64;

inline std::size_t word_count(std::size_t cores) {
  return (cores + kWordBits - 1) / kWordBits;
}

}  // namespace

DispatchIndex::DispatchIndex(const SystemConfig& system)
    : core_count_(system.core_count()) {
  HETSCHED_REQUIRE(core_count_ > 0);

  // Clusters: one per (cache size, can_profile) class, in order of first
  // appearance; members ascending by construction.
  for (std::size_t i = 0; i < core_count_; ++i) {
    const CoreSpec& spec = system.cores[i];
    auto it = std::find_if(clusters_.begin(), clusters_.end(),
                           [&](const Cluster& c) {
                             return c.cache_size_bytes ==
                                        spec.cache_size_bytes &&
                                    c.can_profile == spec.can_profile;
                           });
    if (it == clusters_.end()) {
      clusters_.push_back(
          Cluster{spec.cache_size_bytes, spec.can_profile, {}});
      it = clusters_.end() - 1;
    }
    it->members.push_back(i);
  }

  // Size classes: clusters aggregated by cache size, ascending.
  std::vector<std::uint32_t> sizes;
  for (const Cluster& cluster : clusters_) sizes.push_back(cluster.cache_size_bytes);
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  class_of_core_.assign(core_count_, 0);
  for (const std::uint32_t size : sizes) {
    SizeClass sc;
    sc.cache_size_bytes = size;
    sc.member_mask.assign(word_count(core_count_), 0);
    for (std::size_t i = 0; i < core_count_; ++i) {
      if (system.cores[i].cache_size_bytes != size) continue;
      sc.members.push_back(i);
      sc.member_mask[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
      class_of_core_[i] =
          static_cast<std::uint32_t>(size_classes_.size());
    }
    sc.online_members = sc.members.size();  // all cores boot online
    size_classes_.push_back(std::move(sc));
  }

  // All cores start online and idle, matching the simulator constructor.
  idle_.assign(word_count(core_count_), 0);
  for (std::size_t i = 0; i < core_count_; ++i) {
    idle_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
  }
  idle_count_ = core_count_;
}

void DispatchIndex::mark_busy(std::size_t core) {
  HETSCHED_ASSERT(core < core_count_);
  std::uint64_t& word = idle_[core / kWordBits];
  const std::uint64_t bit = std::uint64_t{1} << (core % kWordBits);
  HETSCHED_ASSERT((word & bit) != 0);
  word &= ~bit;
  --idle_count_;
}

void DispatchIndex::mark_idle(std::size_t core) {
  HETSCHED_ASSERT(core < core_count_);
  std::uint64_t& word = idle_[core / kWordBits];
  const std::uint64_t bit = std::uint64_t{1} << (core % kWordBits);
  HETSCHED_ASSERT((word & bit) == 0);
  word |= bit;
  ++idle_count_;
}

void DispatchIndex::mark_offline(std::size_t core) {
  HETSCHED_ASSERT(core < core_count_);
  // The core may have been busy (bit already clear) or idle.
  std::uint64_t& word = idle_[core / kWordBits];
  const std::uint64_t bit = std::uint64_t{1} << (core % kWordBits);
  if ((word & bit) != 0) {
    word &= ~bit;
    --idle_count_;
  }
  SizeClass& sc = size_classes_[class_of_core_[core]];
  HETSCHED_ASSERT(sc.online_members > 0);
  --sc.online_members;
  ++epoch_;
}

void DispatchIndex::mark_online(std::size_t core) {
  HETSCHED_ASSERT(core < core_count_);
  // A recovered core returns idle.
  std::uint64_t& word = idle_[core / kWordBits];
  const std::uint64_t bit = std::uint64_t{1} << (core % kWordBits);
  HETSCHED_ASSERT((word & bit) == 0);
  word |= bit;
  ++idle_count_;
  ++size_classes_[class_of_core_[core]].online_members;
  ++epoch_;
}

void DispatchIndex::rebuild(std::span<const CoreRuntime> cores) {
  HETSCHED_REQUIRE(cores.size() == core_count_);
  std::fill(idle_.begin(), idle_.end(), 0);
  idle_count_ = 0;
  for (SizeClass& sc : size_classes_) sc.online_members = 0;
  for (std::size_t i = 0; i < core_count_; ++i) {
    if (cores[i].online) {
      ++size_classes_[class_of_core_[i]].online_members;
      if (!cores[i].busy) {
        idle_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
        ++idle_count_;
      }
    }
  }
  // Anything memoised against the previous topology is stale now.
  ++epoch_;
  ++telemetry_.rebuilds;
}

std::size_t DispatchIndex::first_idle() const {
  ++telemetry_.idle_queries;
  for (std::size_t w = 0; w < idle_.size(); ++w) {
    ++telemetry_.words_scanned;
    if (idle_[w] != 0) {
      return w * kWordBits +
             static_cast<std::size_t>(std::countr_zero(idle_[w]));
    }
  }
  return npos;
}

std::size_t DispatchIndex::first_idle_with_size(
    std::uint32_t size_bytes) const {
  ++telemetry_.idle_queries;
  const SizeClass* sc = find_size_class(size_bytes);
  if (sc == nullptr) return npos;
  for (std::size_t w = 0; w < idle_.size(); ++w) {
    ++telemetry_.words_scanned;
    const std::uint64_t word = idle_[w] & sc->member_mask[w];
    if (word != 0) {
      return w * kWordBits +
             static_cast<std::size_t>(std::countr_zero(word));
    }
  }
  return npos;
}

std::size_t DispatchIndex::first_idle_with_size_at_least(
    std::uint32_t min_size) const {
  // Size classes ascend, so the first class with an idle member gives
  // the smallest sufficient cache; find-first-set gives the lowest
  // index within it — exactly the naive min-(size, index) scan.
  for (const SizeClass& sc : size_classes_) {
    if (sc.cache_size_bytes < min_size) continue;
    const std::size_t core = first_idle_with_size(sc.cache_size_bytes);
    if (core != npos) return core;
  }
  return npos;
}

std::span<const std::size_t> DispatchIndex::cores_with_size(
    std::uint32_t size_bytes) const {
  const SizeClass* sc = find_size_class(size_bytes);
  if (sc == nullptr) return {};
  return sc->members;
}

std::size_t DispatchIndex::online_count(std::uint32_t size_bytes) const {
  const SizeClass* sc = find_size_class(size_bytes);
  return sc == nullptr ? 0 : sc->online_members;
}

const DispatchIndex::SizeClass* DispatchIndex::find_size_class(
    std::uint32_t size_bytes) const {
  for (const SizeClass& sc : size_classes_) {
    if (sc.cache_size_bytes == size_bytes) return &sc;
  }
  return nullptr;
}

std::uint32_t DispatchIndex::compute_clamp_to_available(
    std::uint32_t size_bytes) const {
  // Two passes, mirroring the naive scan: prefer sizes some online core
  // offers; under transient mass failure fall back to all sizes. The
  // result is a pure function of the set of (online) sizes — iterating
  // size classes instead of cores changes nothing because the naive
  // tie-break (nearest distance, then larger size) is order-free.
  for (const bool online_only : {true, false}) {
    std::uint32_t best = 0;
    std::uint64_t best_distance = ~0ULL;
    for (const SizeClass& sc : size_classes_) {
      if (online_only && sc.online_members == 0) continue;
      const std::uint32_t size = sc.cache_size_bytes;
      const std::uint64_t distance =
          size >= size_bytes ? size - size_bytes : size_bytes - size;
      if (distance < best_distance ||
          (distance == best_distance && size > best)) {
        best_distance = distance;
        best = size;
      }
    }
    if (best != 0) return best;
  }
  HETSCHED_ASSERT(false && "system has no cores");
  return size_bytes;
}

std::uint32_t DispatchIndex::clamp_to_available(
    std::uint32_t size_bytes) const {
  ++telemetry_.clamp_lookups;
  if (cache_epoch_ != epoch_) {
    clamp_cache_.clear();
    cache_epoch_ = epoch_;
  }
  for (const auto& [requested, result] : clamp_cache_) {
    if (requested == size_bytes) {
      ++telemetry_.clamp_hits;
      return result;
    }
  }
  const std::uint32_t result = compute_clamp_to_available(size_bytes);
  clamp_cache_.emplace_back(size_bytes, result);
  return result;
}

std::uint32_t DispatchIndex::clamp_to_online(
    std::uint32_t size_bytes) const {
  if (online_count(size_bytes) > 0) return size_bytes;
  return clamp_to_available(size_bytes);
}

}  // namespace hetsched
