// Hierarchical O(log) dispatch: core clusters and indexed idle sets.
//
// Every scheduling decision used to rescan all cores linearly — fine for
// the paper's quad-core, quadratic pain at 64-256 cores. This index
// exploits the fact that cores fall into a handful of configuration
// classes: cores are grouped once, at construction, into *clusters*
// keyed by config class (cache size + can_profile), aggregated into
// *size classes* (all cores of one cache size, the unit policies select
// by), and the dynamic idle state is kept in find-first-set bitmaps that
// are updated incrementally on dispatch / completion / preemption /
// fault transitions instead of being rebuilt per event. A decision then
// costs one cluster pick (O(size classes), a handful) plus one
// find-first-set over cores/64 words — O(log cores) in spirit, a few
// dozen instructions in practice — with zero per-decision allocation.
//
// Determinism contract: every query answers exactly what the naive
// lowest-index-first linear scan over (online && !busy) cores would
// answer, so selection is bit-identical to the pre-index scheduler.
// SystemView keeps the naive scans alive as a reference implementation
// and the fuzz suite runs both side by side (see tests/fuzz_test.cpp).
//
// The index also owns the memoised clamp_to_available /clamp_to_online
// size snapping: results are cached per (requested size, topology
// epoch), where the epoch bumps on every core online/offline
// transition, so repeated predictions stop rescanning the machine while
// fault transitions still invalidate correctly.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/system_config.hpp"

namespace hetsched {

struct CoreRuntime;  // defined in core/scheduler.hpp

// Counters describing how much scanning the indexed decision paths
// performed — the observability hook proving the O(cores)-per-event
// scans are gone. Cheap relaxed increments, folded into a
// MetricsRegistry via record_dispatch_metrics (scenario_runner).
struct DispatchTelemetry {
  std::uint64_t decisions = 0;      // policy decide() invocations
  std::uint64_t idle_queries = 0;   // indexed idle-set queries answered
  std::uint64_t words_scanned = 0;  // bitmap words examined by queries
  std::uint64_t clamp_lookups = 0;  // clamp_to_available/online calls
  std::uint64_t clamp_hits = 0;     // answered from the epoch cache
  std::uint64_t rebuilds = 0;       // full rebuilds (checkpoint restore)
};

class DispatchIndex {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // One cluster per configuration class; members ascending.
  struct Cluster {
    std::uint32_t cache_size_bytes = 0;
    bool can_profile = false;
    std::vector<std::size_t> members;
  };

  // All cores sharing one cache size (1-2 clusters), the granularity
  // policies select at. `member_mask` is the static membership bitmap
  // the idle set is intersected with; `online_members` is maintained
  // incrementally so clamp queries never rescan cores.
  struct SizeClass {
    std::uint32_t cache_size_bytes = 0;
    std::vector<std::size_t> members;
    std::vector<std::uint64_t> member_mask;
    std::size_t online_members = 0;
  };

  explicit DispatchIndex(const SystemConfig& system);

  // --- Incremental maintenance (simulator transitions) ---------------
  void mark_busy(std::size_t core);   // idle -> dispatched
  void mark_idle(std::size_t core);   // completion / preempt / watchdog
  void mark_offline(std::size_t core);  // core failure (busy or idle)
  void mark_online(std::size_t core);   // recovery; the core returns idle
  // Checkpoint-restore path: recompute idle/online state from the
  // restored core array (clusters are static, derived from the system
  // shape). Deterministic: the rebuilt index equals the index an
  // uninterrupted run would hold at the same point.
  void rebuild(std::span<const CoreRuntime> cores);

  // --- Queries (bit-identical to the naive lowest-index scans) -------
  bool any_idle() const { return idle_count_ != 0; }
  std::size_t idle_count() const { return idle_count_; }
  // Lowest-index core that is online and not busy, npos when none.
  std::size_t first_idle() const;
  // Lowest-index idle core whose cache size is exactly `size_bytes`.
  std::size_t first_idle_with_size(std::uint32_t size_bytes) const;
  // Lowest-(size, index) idle core with cache size >= `min_size` — the
  // real-time "smallest sufficient cache" placement.
  std::size_t first_idle_with_size_at_least(std::uint32_t min_size) const;

  // Ascending iteration over idle cores; stops early when `fn` returns
  // true. Returns whether it stopped.
  template <typename Fn>
  bool for_each_idle(Fn&& fn) const {
    ++telemetry_.idle_queries;
    for (std::size_t w = 0; w < idle_.size(); ++w) {
      ++telemetry_.words_scanned;
      std::uint64_t word = idle_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        if (fn(w * 64 + bit)) return true;
        word &= word - 1;
      }
    }
    return false;
  }

  const std::vector<Cluster>& clusters() const { return clusters_; }
  // Ascending by cache size.
  const std::vector<SizeClass>& size_classes() const {
    return size_classes_;
  }
  // Static membership of a size class (empty when the machine offers no
  // such size); ascending core indices, identical to
  // SystemConfig::cores_with_size without the per-call allocation.
  std::span<const std::size_t> cores_with_size(
      std::uint32_t size_bytes) const;
  std::size_t online_count(std::uint32_t size_bytes) const;

  // Bumps on every online/offline transition (and rebuild); keys the
  // clamp memoisation below.
  std::uint64_t topology_epoch() const { return epoch_; }

  // Size snapping (see policies.hpp for semantics), memoised per
  // (requested size, topology epoch). Answers are pure functions of the
  // online topology, so a cached hit is bit-identical to a rescan.
  std::uint32_t clamp_to_available(std::uint32_t size_bytes) const;
  std::uint32_t clamp_to_online(std::uint32_t size_bytes) const;

  void note_decision() const { ++telemetry_.decisions; }
  const DispatchTelemetry& telemetry() const { return telemetry_; }

 private:
  const SizeClass* find_size_class(std::uint32_t size_bytes) const;
  std::uint32_t compute_clamp_to_available(std::uint32_t size_bytes) const;

  std::size_t core_count_ = 0;
  std::vector<Cluster> clusters_;
  std::vector<SizeClass> size_classes_;     // ascending by size
  std::vector<std::uint32_t> class_of_core_;  // core -> size-class index

  std::vector<std::uint64_t> idle_;  // bit set <=> online && !busy
  std::size_t idle_count_ = 0;
  std::uint64_t epoch_ = 0;

  // clamp_to_available cache, valid for `cache_epoch_` only. A handful
  // of distinct requested sizes ever occur (the design-space sizes), so
  // a flat vector beats any map.
  mutable std::vector<std::pair<std::uint32_t, std::uint32_t>> clamp_cache_;
  mutable std::uint64_t cache_epoch_ = 0;

  mutable DispatchTelemetry telemetry_;
};

}  // namespace hetsched
