#include "core/energy_decision.hpp"

#include "util/contracts.hpp"

namespace hetsched {

EnergyAdvantageResult evaluate_energy_advantage(
    const EnergyAdvantageInput& input) {
  EnergyAdvantageResult result;
  result.stall_cost = input.energy_on_best;
  if (input.candidates.empty()) {
    // Nothing to run on: stalling is the only option.
    return result;
  }

  // Evaluate every candidate; remember the one with the largest margin
  // (stall cost − run cost).
  bool have_best = false;
  double best_margin = 0.0;
  for (const auto& candidate : input.candidates) {
    const NanoJoules stall_cost =
        input.energy_on_best +
        candidate.idle_energy_per_cycle *
            static_cast<double>(input.wait_cycles);
    const double margin =
        (stall_cost - candidate.run_energy).value();
    if (!have_best || margin > best_margin) {
      have_best = true;
      best_margin = margin;
      result.chosen_core = candidate.core;
      result.stall_cost = stall_cost;
      result.run_cost = candidate.run_energy;
    }
  }
  result.run_on_non_best = best_margin > 0.0;
  return result;
}

}  // namespace hetsched
