// Energy-advantageous scheduling decision (Section IV.E).
//
// When application B's best core C1 is busy running A, the scheduler
// compares
//
//   stall:  Energy_C1^A + Energy_C1^B + IdleEnergy_C2
//   run:    Energy_C1^A + Energy_C2^B
//
// Energy_C1^A (the remainder of A on C1) appears on both sides and
// cancels, so the effective comparison per idle candidate core C2 is
//
//   Energy_C1^B + idle_rate(C2) * wait_cycles  >  Energy_C2^B
//
// where wait_cycles is A's remaining execution time (total cycles minus
// cycles already executed — here read off the core's completion time) and
// IdleEnergy_C2 is the idle energy C2 would burn over that wait. If the
// stall side is strictly greater for some candidate, running B on the
// best such candidate is energy advantageous; otherwise B stalls and is
// re-enqueued.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace hetsched {

struct EnergyAdvantageInput {
  // Energy of B executing in its best configuration on its best core C1.
  NanoJoules energy_on_best;
  // Remaining cycles of the occupant of the soonest-free best core.
  Cycles wait_cycles = 0;

  struct Candidate {
    std::size_t core = 0;
    // Energy of B in the best-known configuration of this core's size.
    NanoJoules run_energy;
    // Idle energy per cycle of this core (current configuration).
    NanoJoules idle_energy_per_cycle;
  };
  // Idle cores whose best configuration for B is known.
  std::vector<Candidate> candidates;
};

struct EnergyAdvantageResult {
  // True: schedule B on `chosen_core` now; false: stall for the best core.
  bool run_on_non_best = false;
  std::size_t chosen_core = 0;
  // Costs for the winning candidate (diagnostics/tests).
  NanoJoules stall_cost;
  NanoJoules run_cost;
};

EnergyAdvantageResult evaluate_energy_advantage(
    const EnergyAdvantageInput& input);

}  // namespace hetsched
