// Job and execution-kind types shared across the scheduler core.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "util/units.hpp"

namespace hetsched {

// One arrival of a benchmark (applications are identified by their
// benchmark id, which indexes the profiling table — Section V).
struct Job {
  std::uint64_t job_id = 0;       // unique per arrival
  std::size_t benchmark_id = 0;   // index into the characterised suite
  SimTime arrival = 0;

  // --- real-time extension (paper future work, §VIII) ---
  // Larger value = more important. 0 for the paper's baseline workloads.
  int priority = 0;
  // Absolute completion deadline; nullopt = best-effort job.
  std::optional<SimTime> deadline;
  // Fraction of the benchmark still to execute; < 1 after a preemption.
  double remaining_fraction = 1.0;

  // --- DAG extension ---
  // Unit-weight longest-path-to-sink rank in the job's precedence graph;
  // 0 for independent jobs and sinks. The cp-aware policy reads it as a
  // stall-cost boost.
  std::uint32_t cp_rank = 0;
};

// Why an execution was scheduled; drives overhead accounting.
enum class ExecutionKind {
  kNormal,     // run in a best-known configuration
  kProfiling,  // base-configuration run gathering counter statistics
  kTuning,     // design-space exploration step (Figure 5 heuristic or
               // the optimal system's exhaustive search)
};

std::string_view to_string(ExecutionKind k);

}  // namespace hetsched
