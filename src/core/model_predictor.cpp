#include "core/model_predictor.hpp"

#include "ann/metrics.hpp"
#include "util/contracts.hpp"
#include "workload/dataset_builder.hpp"

namespace hetsched {
namespace {

Matrix predict_matrix(const Regressor& model, const Matrix& features) {
  Matrix out(features.rows(), 1);
  for (std::size_t r = 0; r < features.rows(); ++r) {
    out.at(r, 0) = model.predict(features.row(r));
  }
  return out;
}

}  // namespace

ModelSizePredictor::ModelSizePredictor(const Dataset& data,
                                       std::unique_ptr<Regressor> model,
                                       const PredictorConfig& config,
                                       Rng& rng)
    : model_(std::move(model)) {
  HETSCHED_REQUIRE(model_ != nullptr);
  HETSCHED_REQUIRE(data.consistent());
  HETSCHED_REQUIRE(data.size() >= 4);
  HETSCHED_REQUIRE(data.feature_count() == kNumExecutionStatistics);

  report_.dataset_rows = data.size();

  DataSplit split =
      data.groups.empty()
          ? split_dataset(data, config.train_fraction,
                          config.validation_fraction, rng)
          : split_dataset_stratified(data, config.train_fraction,
                                     config.validation_fraction, rng);

  selected_ = select_features(split.train, config.selection);
  report_.selected_features = selected_.indices.size();

  Dataset train = selected_.project(split.train);
  Dataset validation = selected_.project(split.validation);
  Dataset test = selected_.project(split.test);

  scaler_.fit(train.features);
  train.features = scaler_.transform(train.features);
  if (validation.size() > 0) {
    validation.features = scaler_.transform(validation.features);
  }
  if (test.size() > 0) {
    test.features = scaler_.transform(test.features);
  }

  model_->fit(train, validation, rng);

  report_.train_rows = train.size();
  report_.validation_rows = validation.size();
  report_.test_rows = test.size();
  report_.train_accuracy =
      snapped_accuracy(predict_matrix(*model_, train.features),
                       train.targets, size_target_classes());
  if (test.size() > 0) {
    const Matrix predictions = predict_matrix(*model_, test.features);
    report_.test_mse = mean_squared_error(predictions, test.targets);
    report_.test_accuracy = snapped_accuracy(predictions, test.targets,
                                             size_target_classes());
  }
}

double ModelSizePredictor::predict_raw(
    const ExecutionStatistics& stats) const {
  auto raw = stats.to_vector();
  for (std::size_t c = 0; c < raw.size(); ++c) {
    raw[c] = transform_statistic(c, raw[c]);
  }
  const std::vector<double> projected = selected_.project_row(raw);
  const std::vector<double> scaled = scaler_.transform_row(projected);
  return model_->predict(scaled);
}

std::uint32_t ModelSizePredictor::predict_size_bytes(
    const ExecutionStatistics& stats) const {
  return target_to_size(predict_raw(stats));
}

std::uint32_t ModelSizePredictor::predict(
    std::size_t benchmark_id, const ExecutionStatistics& stats) const {
  (void)benchmark_id;
  return predict_size_bytes(stats);
}

}  // namespace hetsched
