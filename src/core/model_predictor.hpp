// Best-size predictor over any Regressor model.
//
// Runs the same pipeline as the paper's ANN predictor — stratified
// 70/15/15 split, correlation feature selection, standardisation, model
// fit, snap-to-{2,4,8}KB — with a pluggable regression model, enabling
// the future-work comparison of machine-learning techniques.
#pragma once

#include <memory>

#include "ann/regressor.hpp"
#include "core/predictor.hpp"

namespace hetsched {

class ModelSizePredictor final : public SizePredictor {
 public:
  // Takes ownership of `model`; `config` supplies the split fractions and
  // feature-selection settings (its MLP-specific fields are ignored).
  ModelSizePredictor(const Dataset& data, std::unique_ptr<Regressor> model,
                     const PredictorConfig& config, Rng& rng);

  std::uint32_t predict(std::size_t benchmark_id,
                        const ExecutionStatistics& stats) const override;
  std::uint32_t predict_size_bytes(const ExecutionStatistics& stats) const;
  double predict_raw(const ExecutionStatistics& stats) const;

  const PredictorReport& report() const { return report_; }
  const Regressor& model() const { return *model_; }

 private:
  std::unique_ptr<Regressor> model_;
  SelectedFeatures selected_;
  StandardScaler scaler_;
  PredictorReport report_;
};

}  // namespace hetsched
