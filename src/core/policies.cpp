#include "core/policies.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "core/energy_decision.hpp"
#include "core/tuning_heuristic.hpp"
#include "util/contracts.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {

// Default checkpoint hooks: a stateless marker that round-trips exactly.
// Policies whose every decision derives from the profiling table (all
// four paper policies and the realtime EDF variant) inherit these.
void SchedulerPolicy::save_state(std::ostream& out) const {
  out << "policy-state none\n";
}

void SchedulerPolicy::restore_state(std::istream& in,
                                    const std::string& context) {
  namespace st = snapshot_text;
  const auto header = st::read_value<std::string>(in, "policy tag", context);
  const auto tag = st::read_value<std::string>(in, "policy name", context);
  if (header != "policy-state" || tag != "none") {
    st::fail(context, "mismatched stateless policy state header");
  }
}

namespace policy_detail {

std::optional<Decision> profiling_decision(const Job& job,
                                           SystemView& view) {
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  if (entry.profiled) return std::nullopt;

  // Core 4 is the primary profiling core; Core 3 the secondary
  // (Section III). Profiling executes the base configuration.
  const std::size_t primary = view.system().primary_profiling_core;
  const std::size_t secondary = view.system().secondary_profiling_core;
  for (std::size_t core : {primary, secondary}) {
    if (view.available(core) && view.core(core).spec.can_profile) {
      return Decision::run(core, DesignSpace::base_config(),
                           ExecutionKind::kProfiling);
    }
  }
  // No profiling core free: wait for one.
  return Decision::stall();
}

Decision run_with_heuristic(std::size_t core, std::uint32_t size_bytes,
                            const ProfilingTable::Entry& entry) {
  const TuningHeuristic::WalkState state =
      TuningHeuristic::walk(entry, size_bytes);
  if (!state.next.has_value()) {
    return Decision::run(core, state.best, ExecutionKind::kNormal);
  }
  return Decision::run(core, *state.next, ExecutionKind::kTuning);
}

std::uint32_t clamp_to_available(const SystemView& view,
                                 std::uint32_t size_bytes) {
  // Nearest size some online core offers (ties upward; all cores as the
  // mass-failure fallback), memoised per (size, topology epoch) by the
  // dispatch index so repeated predictions never rescan the machine.
  return view.clamp_to_available(size_bytes);
}

std::uint32_t clamp_to_online(const SystemView& view,
                              std::uint32_t size_bytes) {
  // Keeps the size if an online core offers it; otherwise retargets via
  // clamp_to_available so a job is never pinned to a failed core.
  return view.clamp_to_online(size_bytes);
}

std::uint32_t predict_best_size(const SizePredictor& predictor,
                                std::size_t benchmark_id,
                                const ProfilingTable::Entry& entry,
                                SystemView& view) {
  // Sanity guard (degraded mode): corrupted counters or a predictor
  // snapshot gone wrong must not poison scheduling. Any non-finite
  // feature, or a predicted size outside the legal design space, falls
  // back to the base configuration's size.
  bool sane = true;
  for (const double v : entry.statistics.to_vector()) {
    if (!std::isfinite(v)) {
      sane = false;
      break;
    }
  }
  std::uint32_t predicted = 0;
  if (sane) {
    predicted = predictor.predict(benchmark_id, entry.statistics);
    const auto& legal = DesignSpace::sizes();
    sane = std::find(legal.begin(), legal.end(), predicted) != legal.end();
  }
  if (!sane) {
    view.note_prediction_fallback();
    predicted = DesignSpace::base_config().size_bytes;
  }
  return clamp_to_available(view, predicted);
}

}  // namespace policy_detail

using policy_detail::profiling_decision;
using policy_detail::run_with_heuristic;

// --------------------------------------------------------------------
// Base system: every core offers 8KB_4W_64B; first idle core runs the job
// in that fixed configuration.
Decision BasePolicy::decide(const Job& job, SystemView& view) {
  (void)job;
  const std::size_t core = view.first_idle();
  if (core != SystemView::npos) {
    return Decision::run(core, view.core(core).spec.initial_config,
                         ExecutionKind::kNormal);
  }
  HETSCHED_ASSERT(false && "decide() called with no idle core");
  return Decision::stall();
}

// --------------------------------------------------------------------
// Optimal system: exhaustive exploration, never stalls after profiling.
Decision OptimalPolicy::decide(const Job& job, SystemView& view) {
  if (const auto profiling = profiling_decision(job, view)) {
    return *profiling;
  }
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  HETSCHED_ASSERT(view.any_idle());

  // While any configuration anywhere is unexplored, use executions on
  // idle cores to advance the exhaustive search: prefer an idle core
  // whose size still has unexplored configurations.
  if (!entry.fully_explored()) {
    std::optional<Decision> tuning;
    view.for_each_idle([&](std::size_t core) {
      const auto next = entry.next_unexplored_for_size(
          view.core(core).spec.cache_size_bytes);
      if (next.has_value()) {
        tuning = Decision::run(core, *next, ExecutionKind::kTuning);
        return true;
      }
      return false;
    });
    if (tuning.has_value()) return *tuning;
    // Every idle core's size is already fully explored: run the best
    // observed configuration for the first idle core's size.
    const std::size_t core = view.first_idle();
    HETSCHED_ASSERT(core != SystemView::npos);
    const auto best = entry.best_observed_for_size(
        view.core(core).spec.cache_size_bytes);
    HETSCHED_ASSERT(best.has_value());
    return Decision::run(core, *best, ExecutionKind::kNormal);
  }

  // Fully explored: the best configuration (and hence best core) is
  // known. Prefer an idle best core; otherwise any idle core with its
  // size's best configuration — the optimal system never stalls.
  const auto best_overall = entry.best_observed();
  HETSCHED_ASSERT(best_overall.has_value());
  const std::size_t best_core =
      view.first_idle_with_size(best_overall->size_bytes);
  if (best_core != SystemView::npos) {
    return Decision::run(best_core, *best_overall, ExecutionKind::kNormal);
  }
  const std::size_t core = view.first_idle();
  HETSCHED_ASSERT(core != SystemView::npos);
  const auto best = entry.best_observed_for_size(
      view.core(core).spec.cache_size_bytes);
  HETSCHED_ASSERT(best.has_value());
  return Decision::run(core, *best, ExecutionKind::kNormal);
}

// --------------------------------------------------------------------
// Energy-centric system: ANN prediction, but jobs only ever execute on a
// best-size core; anything else stalls.
void EnergyCentricPolicy::on_profiled(std::size_t benchmark_id,
                                      SystemView& view) {
  ProfilingTable::Entry& entry = view.table().entry(benchmark_id);
  entry.predicted_best_size_bytes = policy_detail::predict_best_size(
      *predictor_, benchmark_id, entry, view);
}

Decision EnergyCentricPolicy::decide(const Job& job, SystemView& view) {
  if (const auto profiling = profiling_decision(job, view)) {
    return *profiling;
  }
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  HETSCHED_ASSERT(entry.predicted_best_size_bytes.has_value());
  const std::uint32_t best_size =
      view.clamp_to_online(*entry.predicted_best_size_bytes);

  const std::size_t core = view.first_idle_with_size(best_size);
  if (core != SystemView::npos) {
    return run_with_heuristic(core, best_size, entry);
  }
  return Decision::stall();
}

// --------------------------------------------------------------------
// Proposed system (Figure 2).
void ProposedPolicy::on_profiled(std::size_t benchmark_id,
                                 SystemView& view) {
  ProfilingTable::Entry& entry = view.table().entry(benchmark_id);
  entry.predicted_best_size_bytes = policy_detail::predict_best_size(
      *predictor_, benchmark_id, entry, view);
}

Decision ProposedPolicy::decide(const Job& job, SystemView& view) {
  return policy_detail::predicted_decide(job, view, scratch_, 1);
}

// --------------------------------------------------------------------
// Critical-path-aware variant: identical flow, but a job's DAG rank
// scales the stall cost in the Section IV.E comparison, so jobs with
// long dependent chains behind them accept a non-best core sooner. With
// every rank 0 (independent jobs) the multiplier is 1 and the policy is
// bit-identical to the proposed one.
void CpAwarePolicy::on_profiled(std::size_t benchmark_id,
                                SystemView& view) {
  ProfilingTable::Entry& entry = view.table().entry(benchmark_id);
  entry.predicted_best_size_bytes = policy_detail::predict_best_size(
      *predictor_, benchmark_id, entry, view);
}

Decision CpAwarePolicy::decide(const Job& job, SystemView& view) {
  return policy_detail::predicted_decide(
      job, view, scratch_, std::uint64_t{1} + job.cp_rank);
}

namespace policy_detail {

Decision predicted_decide(const Job& job, SystemView& view,
                          EnergyAdvantageInput& scratch,
                          std::uint64_t stall_cost_multiplier) {
  if (const auto profiling = profiling_decision(job, view)) {
    return *profiling;
  }
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  HETSCHED_ASSERT(entry.predicted_best_size_bytes.has_value());
  const std::uint32_t best_size =
      view.clamp_to_online(*entry.predicted_best_size_bytes);

  // Best core idle → schedule there (best-known config, or continue the
  // Figure-5 exploration).
  const std::size_t best_idle = view.first_idle_with_size(best_size);
  if (best_idle != SystemView::npos) {
    return run_with_heuristic(best_idle, best_size, entry);
  }

  // Best core(s) busy. If some idle core's best configuration for this
  // application is unknown, the scheduler cannot evaluate the energy
  // tradeoff — schedule to such a core (arbitrarily: the first) to gather
  // design-space information (Section IV.E).
  HETSCHED_ASSERT(view.any_idle());
  std::optional<Decision> explore;
  view.for_each_idle([&](std::size_t core) {
    const std::uint32_t size = view.core(core).spec.cache_size_bytes;
    if (!TuningHeuristic::complete(entry, size)) {
      explore = run_with_heuristic(core, size, entry);
      return true;
    }
    return false;
  });
  if (explore.has_value()) return *explore;

  // All idle cores have known best configurations. The energy-advantage
  // evaluation additionally needs B's energy on its best core; if that is
  // still unknown the job stalls for its best core ("if and only if the
  // best configuration is known for all cores").
  const TuningHeuristic::WalkState best_walk =
      TuningHeuristic::walk(entry, best_size);
  if (best_walk.next.has_value()) {
    return Decision::stall();
  }

  // `scratch` is a policy-lifetime buffer: clear() keeps its capacity,
  // so the evaluation allocates nothing per decision in steady state.
  EnergyAdvantageInput& input = scratch;
  input.candidates.clear();
  const CacheConfig best_config = best_walk.best;
  const Observation* best_obs = entry.find(best_config);
  HETSCHED_ASSERT(best_obs != nullptr);
  input.energy_on_best = best_obs->total_energy;

  // Wait until the soonest best core frees up. Offline best cores are
  // not coming back on any known schedule — they must not make the wait
  // look free.
  Cycles wait = 0;
  bool first = true;
  view.for_each_core_with_size(best_size, [&](std::size_t core) {
    if (!view.core(core).online) return;
    const Cycles remaining = view.remaining_cycles(core);
    if (first || remaining < wait) {
      wait = remaining;
      first = false;
    }
  });
  // The multiplier (1 + cp_rank for the cp-aware policy, 1 otherwise)
  // inflates the perceived wait, saturating rather than wrapping.
  constexpr Cycles kMaxWait = std::numeric_limits<Cycles>::max();
  input.wait_cycles =
      (stall_cost_multiplier != 0 && wait > kMaxWait / stall_cost_multiplier)
          ? kMaxWait
          : wait * stall_cost_multiplier;

  view.for_each_idle([&](std::size_t core) {
    const std::uint32_t size = view.core(core).spec.cache_size_bytes;
    const CacheConfig config = TuningHeuristic::best_known(entry, size);
    const Observation* obs = entry.find(config);
    HETSCHED_ASSERT(obs != nullptr);
    EnergyAdvantageInput::Candidate candidate;
    candidate.core = core;
    candidate.run_energy = obs->total_energy;
    candidate.idle_energy_per_cycle =
        view.energy().idle_per_cycle(view.core(core).current_config);
    input.candidates.push_back(candidate);
    return false;
  });

  const EnergyAdvantageResult advantage = evaluate_energy_advantage(input);
  if (advantage.run_on_non_best) {
    const std::uint32_t size =
        view.core(advantage.chosen_core).spec.cache_size_bytes;
    return Decision::run(advantage.chosen_core,
                         TuningHeuristic::best_known(entry, size),
                         ExecutionKind::kNormal);
  }
  return Decision::stall();
}

}  // namespace policy_detail

}  // namespace hetsched
