#include "core/policies.hpp"

#include <algorithm>
#include <cmath>

#include "core/energy_decision.hpp"
#include "core/tuning_heuristic.hpp"
#include "util/contracts.hpp"

namespace hetsched {
namespace policy_detail {

std::optional<Decision> profiling_decision(const Job& job,
                                           SystemView& view) {
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  if (entry.profiled) return std::nullopt;

  // Core 4 is the primary profiling core; Core 3 the secondary
  // (Section III). Profiling executes the base configuration.
  const std::size_t primary = view.system().primary_profiling_core;
  const std::size_t secondary = view.system().secondary_profiling_core;
  for (std::size_t core : {primary, secondary}) {
    if (view.available(core) && view.core(core).spec.can_profile) {
      return Decision::run(core, DesignSpace::base_config(),
                           ExecutionKind::kProfiling);
    }
  }
  // No profiling core free: wait for one.
  return Decision::stall();
}

Decision run_with_heuristic(std::size_t core, std::uint32_t size_bytes,
                            const ProfilingTable::Entry& entry) {
  if (TuningHeuristic::complete(entry, size_bytes)) {
    return Decision::run(core, TuningHeuristic::best_known(entry, size_bytes),
                         ExecutionKind::kNormal);
  }
  const auto next = TuningHeuristic::next_config(entry, size_bytes);
  HETSCHED_ASSERT(next.has_value());
  return Decision::run(core, *next, ExecutionKind::kTuning);
}

std::uint32_t clamp_to_available(const SystemView& view,
                                 std::uint32_t size_bytes) {
  // Two passes: prefer sizes some online core offers; when every core is
  // offline (transient mass failure) fall back to all sizes so the stored
  // prediction is still meaningful once cores recover.
  for (const bool online_only : {true, false}) {
    std::uint32_t best = 0;
    std::uint64_t best_distance = ~0ULL;
    for (std::size_t i = 0; i < view.core_count(); ++i) {
      if (online_only && !view.core(i).online) continue;
      const std::uint32_t size = view.core(i).spec.cache_size_bytes;
      const std::uint64_t distance =
          size >= size_bytes ? size - size_bytes : size_bytes - size;
      // Nearest wins; on a tie prefer the larger size (never slower).
      if (distance < best_distance ||
          (distance == best_distance && size > best)) {
        best_distance = distance;
        best = size;
      }
    }
    if (best != 0) return best;
  }
  HETSCHED_ASSERT(false && "system has no cores");
  return size_bytes;
}

std::uint32_t clamp_to_online(const SystemView& view,
                              std::uint32_t size_bytes) {
  for (std::size_t i = 0; i < view.core_count(); ++i) {
    if (view.core(i).online &&
        view.core(i).spec.cache_size_bytes == size_bytes) {
      return size_bytes;
    }
  }
  // Every core of the predicted size is offline; waiting for one could
  // stall the job forever. Retarget the nearest size an online core
  // offers.
  return clamp_to_available(view, size_bytes);
}

std::uint32_t predict_best_size(const SizePredictor& predictor,
                                std::size_t benchmark_id,
                                const ProfilingTable::Entry& entry,
                                SystemView& view) {
  // Sanity guard (degraded mode): corrupted counters or a predictor
  // snapshot gone wrong must not poison scheduling. Any non-finite
  // feature, or a predicted size outside the legal design space, falls
  // back to the base configuration's size.
  bool sane = true;
  for (const double v : entry.statistics.to_vector()) {
    if (!std::isfinite(v)) {
      sane = false;
      break;
    }
  }
  std::uint32_t predicted = 0;
  if (sane) {
    predicted = predictor.predict(benchmark_id, entry.statistics);
    const auto& legal = DesignSpace::sizes();
    sane = std::find(legal.begin(), legal.end(), predicted) != legal.end();
  }
  if (!sane) {
    view.note_prediction_fallback();
    predicted = DesignSpace::base_config().size_bytes;
  }
  return clamp_to_available(view, predicted);
}

}  // namespace policy_detail

using policy_detail::profiling_decision;
using policy_detail::run_with_heuristic;

// --------------------------------------------------------------------
// Base system: every core offers 8KB_4W_64B; first idle core runs the job
// in that fixed configuration.
Decision BasePolicy::decide(const Job& job, SystemView& view) {
  (void)job;
  for (std::size_t i = 0; i < view.core_count(); ++i) {
    if (view.available(i)) {
      return Decision::run(i, view.core(i).spec.initial_config,
                           ExecutionKind::kNormal);
    }
  }
  HETSCHED_ASSERT(false && "decide() called with no idle core");
  return Decision::stall();
}

// --------------------------------------------------------------------
// Optimal system: exhaustive exploration, never stalls after profiling.
Decision OptimalPolicy::decide(const Job& job, SystemView& view) {
  if (const auto profiling = profiling_decision(job, view)) {
    return *profiling;
  }
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  const std::vector<std::size_t> idle = view.idle_cores();
  HETSCHED_ASSERT(!idle.empty());

  // While any configuration anywhere is unexplored, use executions on
  // idle cores to advance the exhaustive search: prefer an idle core
  // whose size still has unexplored configurations.
  if (!entry.fully_explored()) {
    for (std::size_t core : idle) {
      const auto next = entry.next_unexplored_for_size(
          view.core(core).spec.cache_size_bytes);
      if (next.has_value()) {
        return Decision::run(core, *next, ExecutionKind::kTuning);
      }
    }
    // Every idle core's size is already fully explored: run the best
    // observed configuration for the first idle core's size.
    const std::size_t core = idle.front();
    const auto best = entry.best_observed_for_size(
        view.core(core).spec.cache_size_bytes);
    HETSCHED_ASSERT(best.has_value());
    return Decision::run(core, *best, ExecutionKind::kNormal);
  }

  // Fully explored: the best configuration (and hence best core) is
  // known. Prefer an idle best core; otherwise any idle core with its
  // size's best configuration — the optimal system never stalls.
  const auto best_overall = entry.best_observed();
  HETSCHED_ASSERT(best_overall.has_value());
  for (std::size_t core : idle) {
    if (view.core(core).spec.cache_size_bytes ==
        best_overall->size_bytes) {
      return Decision::run(core, *best_overall, ExecutionKind::kNormal);
    }
  }
  const std::size_t core = idle.front();
  const auto best = entry.best_observed_for_size(
      view.core(core).spec.cache_size_bytes);
  HETSCHED_ASSERT(best.has_value());
  return Decision::run(core, *best, ExecutionKind::kNormal);
}

// --------------------------------------------------------------------
// Energy-centric system: ANN prediction, but jobs only ever execute on a
// best-size core; anything else stalls.
void EnergyCentricPolicy::on_profiled(std::size_t benchmark_id,
                                      SystemView& view) {
  ProfilingTable::Entry& entry = view.table().entry(benchmark_id);
  entry.predicted_best_size_bytes = policy_detail::predict_best_size(
      *predictor_, benchmark_id, entry, view);
}

Decision EnergyCentricPolicy::decide(const Job& job, SystemView& view) {
  if (const auto profiling = profiling_decision(job, view)) {
    return *profiling;
  }
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  HETSCHED_ASSERT(entry.predicted_best_size_bytes.has_value());
  const std::uint32_t best_size = policy_detail::clamp_to_online(
      view, *entry.predicted_best_size_bytes);

  for (std::size_t core : view.system().cores_with_size(best_size)) {
    if (view.available(core)) {
      return run_with_heuristic(core, best_size, entry);
    }
  }
  return Decision::stall();
}

// --------------------------------------------------------------------
// Proposed system (Figure 2).
void ProposedPolicy::on_profiled(std::size_t benchmark_id,
                                 SystemView& view) {
  ProfilingTable::Entry& entry = view.table().entry(benchmark_id);
  entry.predicted_best_size_bytes = policy_detail::predict_best_size(
      *predictor_, benchmark_id, entry, view);
}

Decision ProposedPolicy::decide(const Job& job, SystemView& view) {
  if (const auto profiling = profiling_decision(job, view)) {
    return *profiling;
  }
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  HETSCHED_ASSERT(entry.predicted_best_size_bytes.has_value());
  const std::uint32_t best_size = policy_detail::clamp_to_online(
      view, *entry.predicted_best_size_bytes);

  // Best core idle → schedule there (best-known config, or continue the
  // Figure-5 exploration).
  const std::vector<std::size_t> best_cores =
      view.system().cores_with_size(best_size);
  for (std::size_t core : best_cores) {
    if (view.available(core)) {
      return run_with_heuristic(core, best_size, entry);
    }
  }

  // Best core(s) busy. If some idle core's best configuration for this
  // application is unknown, the scheduler cannot evaluate the energy
  // tradeoff — schedule to such a core (arbitrarily: the first) to gather
  // design-space information (Section IV.E).
  const std::vector<std::size_t> idle = view.idle_cores();
  HETSCHED_ASSERT(!idle.empty());
  for (std::size_t core : idle) {
    const std::uint32_t size = view.core(core).spec.cache_size_bytes;
    if (!TuningHeuristic::complete(entry, size)) {
      return run_with_heuristic(core, size, entry);
    }
  }

  // All idle cores have known best configurations. The energy-advantage
  // evaluation additionally needs B's energy on its best core; if that is
  // still unknown the job stalls for its best core ("if and only if the
  // best configuration is known for all cores").
  if (!TuningHeuristic::complete(entry, best_size)) {
    return Decision::stall();
  }

  EnergyAdvantageInput input;
  const CacheConfig best_config =
      TuningHeuristic::best_known(entry, best_size);
  const Observation* best_obs = entry.find(best_config);
  HETSCHED_ASSERT(best_obs != nullptr);
  input.energy_on_best = best_obs->total_energy;

  // Wait until the soonest best core frees up. Offline best cores are
  // not coming back on any known schedule — they must not make the wait
  // look free.
  Cycles wait = 0;
  bool first = true;
  for (std::size_t core : best_cores) {
    if (!view.core(core).online) continue;
    const Cycles remaining = view.remaining_cycles(core);
    if (first || remaining < wait) {
      wait = remaining;
      first = false;
    }
  }
  input.wait_cycles = wait;

  for (std::size_t core : idle) {
    const std::uint32_t size = view.core(core).spec.cache_size_bytes;
    const CacheConfig config = TuningHeuristic::best_known(entry, size);
    const Observation* obs = entry.find(config);
    HETSCHED_ASSERT(obs != nullptr);
    EnergyAdvantageInput::Candidate candidate;
    candidate.core = core;
    candidate.run_energy = obs->total_energy;
    candidate.idle_energy_per_cycle =
        view.energy().idle_per_cycle(view.core(core).current_config);
    input.candidates.push_back(candidate);
  }

  const EnergyAdvantageResult advantage = evaluate_energy_advantage(input);
  if (advantage.run_on_non_best) {
    const std::uint32_t size =
        view.core(advantage.chosen_core).spec.cache_size_bytes;
    return Decision::run(advantage.chosen_core,
                         TuningHeuristic::best_known(entry, size),
                         ExecutionKind::kNormal);
  }
  return Decision::stall();
}

}  // namespace hetsched
