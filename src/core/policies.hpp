// The four evaluated scheduler policies (Section V):
//
//   BasePolicy          — homogeneous 8KB_4W_64B system, no profiling,
//                         no ANN, no tuning; first idle core wins.
//   OptimalPolicy       — configuration-subsetted system; profiles on the
//                         profiling core, then exhaustively executes every
//                         configuration to find the best one; schedules to
//                         the best core when idle, otherwise to any idle
//                         core; never stalls.
//   EnergyCentricPolicy — ANN predicts the best core; jobs only ever run
//                         on a best-size core (always stall otherwise);
//                         Figure-5 heuristic tunes the best core.
//   ProposedPolicy      — the paper's scheduler: ANN prediction, Figure-5
//                         tuning on non-best cores, and the Section IV.E
//                         energy-advantageous stall-vs-run decision.
#pragma once

#include "core/energy_decision.hpp"
#include "core/predictor.hpp"
#include "core/scheduler.hpp"

namespace hetsched {

class BasePolicy final : public SchedulerPolicy {
 public:
  std::string_view name() const override { return "base"; }
  Decision decide(const Job& job, SystemView& view) override;
};

class OptimalPolicy final : public SchedulerPolicy {
 public:
  std::string_view name() const override { return "optimal"; }
  Decision decide(const Job& job, SystemView& view) override;
};

class EnergyCentricPolicy final : public SchedulerPolicy {
 public:
  explicit EnergyCentricPolicy(const SizePredictor& predictor)
      : predictor_(&predictor) {}

  std::string_view name() const override { return "energy-centric"; }
  Decision decide(const Job& job, SystemView& view) override;
  void on_profiled(std::size_t benchmark_id, SystemView& view) override;

 private:
  const SizePredictor* predictor_;
};

class ProposedPolicy final : public SchedulerPolicy {
 public:
  explicit ProposedPolicy(const SizePredictor& predictor)
      : predictor_(&predictor) {}

  std::string_view name() const override { return "proposed"; }
  Decision decide(const Job& job, SystemView& view) override;
  void on_profiled(std::size_t benchmark_id, SystemView& view) override;

 private:
  const SizePredictor* predictor_;
  // Reusable energy-advantage evaluation buffer: cleared (capacity
  // retained) per decision so the hot path allocates nothing.
  EnergyAdvantageInput scratch_;
};

// Critical-path-aware variant of the proposed policy for DAG workloads:
// the same flow, but the job's longest-path-to-sink rank scales the
// stall cost in the Section IV.E comparison (perceived wait becomes
// wait * (1 + cp_rank)), so jobs gating long dependent chains migrate to
// a known non-best core sooner instead of stalling. Bit-identical to
// ProposedPolicy when every job's rank is 0 (independent workloads).
class CpAwarePolicy final : public SchedulerPolicy {
 public:
  explicit CpAwarePolicy(const SizePredictor& predictor)
      : predictor_(&predictor) {}

  std::string_view name() const override { return "cp-aware"; }
  Decision decide(const Job& job, SystemView& view) override;
  void on_profiled(std::size_t benchmark_id, SystemView& view) override;

 private:
  const SizePredictor* predictor_;
  EnergyAdvantageInput scratch_;
};

namespace policy_detail {

// Shared profiling step: if the job has no profiling information, run it
// in the base configuration on an idle profiling core (primary first), or
// stall until one frees up. Returns nullopt when already profiled.
std::optional<Decision> profiling_decision(const Job& job, SystemView& view);

// Configuration to run on a core of the given size: the heuristic's
// best-known configuration if tuning converged, otherwise the heuristic's
// next exploration step (flagged kTuning).
Decision run_with_heuristic(std::size_t core, std::uint32_t size_bytes,
                            const ProfilingTable::Entry& entry);

// Snaps a predicted cache size onto a size this machine actually offers
// (nearest available, ties upward; sizes offered only by offline cores
// are a last resort). Custom machines need not provide every Table-1
// size.
std::uint32_t clamp_to_available(const SystemView& view,
                                 std::uint32_t size_bytes);

// Keeps `size_bytes` if at least one online core offers it; otherwise
// retargets to the nearest size an online core does offer, so a job is
// never pinned to a failed core.
std::uint32_t clamp_to_online(const SystemView& view,
                              std::uint32_t size_bytes);

// ANN prediction behind a sanity guard: non-finite profiled statistics
// or a predicted size outside DesignSpace::sizes() fall back to the base
// configuration's size (counted via SystemView::note_prediction_fallback),
// then the result is clamped to the machine's sizes.
std::uint32_t predict_best_size(const SizePredictor& predictor,
                                std::size_t benchmark_id,
                                const ProfilingTable::Entry& entry,
                                SystemView& view);

// The full proposed-policy decision flow (Figure 2 + Section IV.E),
// shared with the cp-aware variant: profiling, predicted-best dispatch,
// exploration, then the energy-advantageous stall-vs-run comparison with
// the perceived wait scaled by `stall_cost_multiplier` (1 = the paper's
// equation, saturating on overflow). `scratch` is the caller's reusable
// candidate buffer.
Decision predicted_decide(const Job& job, SystemView& view,
                          EnergyAdvantageInput& scratch,
                          std::uint64_t stall_cost_multiplier);

}  // namespace policy_detail

}  // namespace hetsched
