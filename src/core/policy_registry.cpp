#include "core/policy_registry.hpp"

#include <charconv>

#include "core/contender_policies.hpp"
#include "core/policies.hpp"
#include "core/realtime_policy.hpp"
#include "util/contracts.hpp"

namespace hetsched {
namespace {

constexpr std::string_view kPortfolioPrefix = "portfolio:";

// Seed-space split so a RandomPolicy never shares a stream with the
// arrival generator (seed ^ 0xa5a5a5a5) or the realtime deadline stream
// (seed ^ 0x5151).
constexpr std::uint64_t kRandomPolicySalt = 0x52414e44ULL;  // "RAND"

std::unique_ptr<SchedulerPolicy> make_base(const PolicyContext&) {
  return std::make_unique<BasePolicy>();
}

std::unique_ptr<SchedulerPolicy> make_optimal(const PolicyContext&) {
  return std::make_unique<OptimalPolicy>();
}

std::unique_ptr<SchedulerPolicy> make_energy_centric(
    const PolicyContext& ctx) {
  return std::make_unique<EnergyCentricPolicy>(*ctx.predictor);
}

std::unique_ptr<SchedulerPolicy> make_proposed(const PolicyContext& ctx) {
  return std::make_unique<ProposedPolicy>(*ctx.predictor);
}

std::unique_ptr<SchedulerPolicy> make_realtime(const PolicyContext& ctx) {
  return std::make_unique<RealtimeEdfPolicy>(*ctx.predictor);
}

std::unique_ptr<SchedulerPolicy> make_sjf(const PolicyContext&) {
  return std::make_unique<ShortestJobFirstPolicy>();
}

std::unique_ptr<SchedulerPolicy> make_energy_greedy(const PolicyContext&) {
  return std::make_unique<EnergyGreedyPolicy>();
}

std::unique_ptr<SchedulerPolicy> make_random(const PolicyContext& ctx) {
  return std::make_unique<RandomPolicy>(ctx.seed ^ kRandomPolicySalt);
}

std::unique_ptr<SchedulerPolicy> make_oracle(const PolicyContext& ctx) {
  return std::make_unique<OraclePolicy>(*ctx.suite);
}

std::unique_ptr<SchedulerPolicy> make_cp_aware(const PolicyContext& ctx) {
  return std::make_unique<CpAwarePolicy>(*ctx.predictor);
}

}  // namespace

PolicyRegistry::PolicyRegistry() {
  // Registration order is load-bearing: it is the portfolio tie-break
  // order, the order names_help() lists, and the order sweeps trust.
  entries_.push_back({"base", false, false, &make_base});
  entries_.push_back({"optimal", false, false, &make_optimal});
  entries_.push_back({"energy-centric", true, false, &make_energy_centric});
  entries_.push_back({"proposed", true, false, &make_proposed});
  entries_.push_back({"realtime", true, false, &make_realtime});
  entries_.push_back({"sjf", false, false, &make_sjf});
  entries_.push_back({"energy-greedy", false, false, &make_energy_greedy});
  entries_.push_back({"random", false, false, &make_random});
  entries_.push_back({"oracle", false, true, &make_oracle});
  // Appended after oracle: existing portfolio tie-breaks, help strings
  // and sweep grids keep their order.
  entries_.push_back({"cp-aware", true, false, &make_cp_aware});
  names_.reserve(entries_.size());
  for (const Registration& entry : entries_) {
    names_.push_back(entry.name);
  }
}

const PolicyRegistry& PolicyRegistry::instance() {
  static const PolicyRegistry registry;
  return registry;
}

const PolicyRegistry::Registration* PolicyRegistry::find(
    const std::string& name) const {
  for (const Registration& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

bool PolicyRegistry::is_portfolio_spec(const std::string& spec) {
  return spec.rfind(kPortfolioPrefix, 0) == 0;
}

std::optional<PortfolioSpec> PolicyRegistry::parse_portfolio(
    const std::string& spec) const {
  if (!is_portfolio_spec(spec)) return std::nullopt;
  std::string body = spec.substr(kPortfolioPrefix.size());

  PortfolioSpec parsed;
  const std::size_t at = body.find('@');
  if (at != std::string::npos) {
    const std::string cycles = body.substr(at + 1);
    body.resize(at);
    if (cycles.empty()) return std::nullopt;
    SimTime value = 0;
    const auto [ptr, ec] = std::from_chars(
        cycles.data(), cycles.data() + cycles.size(), value);
    if (ec != std::errc{} || ptr != cycles.data() + cycles.size() ||
        value == 0) {
      return std::nullopt;
    }
    parsed.window_cycles = value;
  }

  std::size_t start = 0;
  while (start <= body.size()) {
    const std::size_t plus = body.find('+', start);
    const std::string name =
        body.substr(start, plus == std::string::npos ? std::string::npos
                                                     : plus - start);
    if (name.empty() || find(name) == nullptr) return std::nullopt;
    for (const std::string& existing : parsed.contenders) {
      if (existing == name) return std::nullopt;  // duplicate contender
    }
    parsed.contenders.push_back(name);
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  if (parsed.contenders.empty()) return std::nullopt;
  return parsed;
}

bool PolicyRegistry::known(const std::string& spec) const {
  if (is_portfolio_spec(spec)) return parse_portfolio(spec).has_value();
  return find(spec) != nullptr;
}

bool PolicyRegistry::needs_predictor(const std::string& spec) const {
  if (is_portfolio_spec(spec)) {
    const auto parsed = parse_portfolio(spec);
    if (!parsed.has_value()) return false;
    for (const std::string& name : parsed->contenders) {
      if (find(name)->needs_predictor) return true;
    }
    return false;
  }
  const Registration* entry = find(spec);
  return entry != nullptr && entry->needs_predictor;
}

std::unique_ptr<SchedulerPolicy> PolicyRegistry::make(
    const std::string& spec, const PolicyContext& ctx) const {
  if (is_portfolio_spec(spec)) {
    const auto parsed = parse_portfolio(spec);
    HETSCHED_REQUIRE(parsed.has_value() && "malformed portfolio policy spec");
    std::vector<std::unique_ptr<SchedulerPolicy>> contenders;
    contenders.reserve(parsed->contenders.size());
    for (const std::string& name : parsed->contenders) {
      contenders.push_back(make(name, ctx));
    }
    return std::make_unique<PortfolioPolicy>(
        std::move(contenders), parsed->contenders, parsed->window_cycles);
  }
  const Registration* entry = find(spec);
  HETSCHED_REQUIRE(entry != nullptr && "unknown policy name");
  HETSCHED_REQUIRE((!entry->needs_predictor || ctx.predictor != nullptr) &&
                   "policy requires a trained predictor");
  HETSCHED_REQUIRE((!entry->needs_suite || ctx.suite != nullptr) &&
                   "policy requires the characterised suite");
  return entry->make(ctx);
}

std::string PolicyRegistry::names_help() const {
  std::string help;
  for (const std::string& name : names_) {
    if (!help.empty()) help += '|';
    help += name;
  }
  help += "|portfolio:<a>+<b>[@cycles]";
  return help;
}

}  // namespace hetsched
