// Name-addressable policy construction (ROADMAP item 2).
//
// Every scheduler the CLI, scenario format, and sweep grids can name is
// registered here, in one fixed order, so "policy lookup" is data instead
// of per-call-site if-chains. A spec is either a registered base name
// ("proposed", "sjf", ...) or a portfolio composition
//
//   portfolio:<name>+<name>[+<name>...][@<window-cycles>]
//
// which builds a PortfolioPolicy over the named contenders (the optional
// @ suffix overrides the selector's window width; default
// PortfolioPolicy::kDefaultWindowCycles). Specs are single
// whitespace-free tokens on purpose: they survive .scn files,
// --sweep-policies comma lists, and checkpoint fingerprints unchanged.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/portfolio_policy.hpp"
#include "core/scheduler.hpp"

namespace hetsched {

class SizePredictor;
class CharacterizedSuite;

// Everything a factory might need. Pointers may stay null when the chosen
// policy does not use them; make() enforces presence per policy.
struct PolicyContext {
  const SizePredictor* predictor = nullptr;   // ANN-driven policies
  const CharacterizedSuite* suite = nullptr;  // oracle ground truth
  std::uint64_t seed = 0;                     // seeded-randomness policies
};

// Parsed portfolio:... spec.
struct PortfolioSpec {
  std::vector<std::string> contenders;
  SimTime window_cycles = PortfolioPolicy::kDefaultWindowCycles;
};

class PolicyRegistry {
 public:
  // The one global registry; construction order is the registration
  // order, fixed at build time (no cross-TU static-init dependence).
  static const PolicyRegistry& instance();

  // Base policy names in registration order (no portfolio specs).
  const std::vector<std::string>& names() const { return names_; }

  // True for registered names and well-formed portfolio specs.
  bool known(const std::string& spec) const;

  // Whether building `spec` requires a trained SizePredictor (for a
  // portfolio: whether any contender does). False for unknown specs.
  bool needs_predictor(const std::string& spec) const;

  // Builds the policy; throws via HETSCHED_REQUIRE on unknown specs or a
  // context missing something the policy needs.
  std::unique_ptr<SchedulerPolicy> make(const std::string& spec,
                                        const PolicyContext& ctx) const;

  // Cheap syntactic test: does the spec carry the portfolio prefix?
  static bool is_portfolio_spec(const std::string& spec);

  // Full validation + parse; nullopt when malformed (bad window, unknown
  // or duplicate contender, nested portfolio, empty roster).
  std::optional<PortfolioSpec> parse_portfolio(const std::string& spec) const;

  // "base|optimal|...|portfolio:<a>+<b>[@cycles]" for error messages.
  std::string names_help() const;

 private:
  struct Registration {
    std::string name;
    bool needs_predictor = false;
    bool needs_suite = false;
    std::unique_ptr<SchedulerPolicy> (*make)(const PolicyContext&) = nullptr;
  };

  PolicyRegistry();
  const Registration* find(const std::string& name) const;

  std::vector<Registration> entries_;
  std::vector<std::string> names_;
};

}  // namespace hetsched
