#include "core/portfolio_policy.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {
namespace {

namespace st = snapshot_text;

// Cost charged for a window whose placements the profiling table knows
// nothing about yet (e.g. a contender that only stalled). Far above any
// real per-job energy, so evidence-free contenders never beat measured
// ones on a fluke zero.
constexpr double kUnknownEnergyPriorNj = 1e15;

}  // namespace

std::string portfolio_switch_jsonl(const PortfolioStats& stats) {
  std::ostringstream out;
  for (const PortfolioStats::Switch& s : stats.switches) {
    out << "{\"event\":\"policy_switch\",\"window\":" << s.window
        << ",\"time\":" << s.time << ",\"from\":\"" << s.from
        << "\",\"to\":\"" << s.to << "\"}\n";
  }
  return out.str();
}

PortfolioPolicy::PortfolioPolicy(
    std::vector<std::unique_ptr<SchedulerPolicy>> contenders,
    std::vector<std::string> labels, SimTime window_cycles)
    : contenders_(std::move(contenders)), labels_(std::move(labels)),
      window_cycles_(window_cycles), window_end_(window_cycles) {
  HETSCHED_REQUIRE(!contenders_.empty());
  HETSCHED_REQUIRE(labels_.size() == contenders_.size());
  HETSCHED_REQUIRE(window_cycles_ >= 1);
  score_.assign(contenders_.size(), 0.0);
  scored_.assign(contenders_.size(), 0);
  led_.assign(contenders_.size(), 0);
}

bool PortfolioPolicy::can_preempt() const {
  return contenders_[active_]->can_preempt();
}

void PortfolioPolicy::on_profiled(std::size_t benchmark_id,
                                  SystemView& view) {
  // Every contender sees the profiling event, so whichever one is active
  // when the job next schedules has its prediction in place. The ANN
  // contenders all derive the identical predicted_best_size_bytes, so
  // order does not matter.
  for (auto& contender : contenders_) {
    contender->on_profiled(benchmark_id, view);
  }
}

double PortfolioPolicy::window_cost() const {
  const WindowAccount& a = account_;
  const double energy_per_job =
      a.known_jobs > 0 ? a.known_energy_nj / static_cast<double>(a.known_jobs)
                       : kUnknownEnergyPriorNj;
  const double stall_ratio =
      a.decisions > 0
          ? static_cast<double>(a.stalls) / static_cast<double>(a.decisions)
          : 0.0;
  // Contenders that never emit predictions are scored neutrally (factor
  // 1); prediction-driven ones earn up to a 2x discount at a perfect hit
  // rate.
  const double hit_rate =
      a.predicted > 0
          ? static_cast<double>(a.hits) / static_cast<double>(a.predicted)
          : 1.0;
  return energy_per_job * (1.0 + stall_ratio) * (2.0 - hit_rate);
}

std::size_t PortfolioPolicy::select_next() const {
  // Exploration: sample every contender once before trusting the scores.
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    if (scored_[i] == 0) return i;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < contenders_.size(); ++i) {
    if (score_[i] < score_[best]) best = i;
  }
  return best;
}

void PortfolioPolicy::roll_windows(SimTime now) {
  while (now >= window_end_) {
    ++led_[active_];
    // Idle windows (no decisions at all) carry no evidence either way and
    // leave the score untouched; the contender stays due for sampling.
    if (account_.decisions > 0) {
      const double cost = window_cost();
      score_[active_] =
          scored_[active_] == 0 ? cost : 0.5 * score_[active_] + 0.5 * cost;
      ++scored_[active_];
    }
    account_ = WindowAccount{};

    const std::size_t next = select_next();
    if (next != active_) {
      switches_.push_back(PortfolioStats::Switch{
          window_index_ + 1, window_end_, labels_[active_], labels_[next]});
      active_ = next;
    }
    ++window_index_;
    window_end_ += window_cycles_;
  }
}

Decision PortfolioPolicy::decide(const Job& job, SystemView& view) {
  roll_windows(view.now());
  const Decision decision = contenders_[active_]->decide(job, view);

  ++account_.decisions;
  if (decision.kind == Decision::Kind::kStall) {
    ++account_.stalls;
  } else {
    ++account_.placed;
    const ProfilingTable::Entry& entry =
        view.table().entry(job.benchmark_id);
    if (entry.predicted_best_size_bytes.has_value()) {
      ++account_.predicted;
      if (view.core(decision.core).spec.cache_size_bytes ==
          *entry.predicted_best_size_bytes) {
        ++account_.hits;
      }
    }
    if (const Observation* obs = entry.find(decision.config)) {
      ++account_.known_jobs;
      account_.known_energy_nj += obs->total_energy.value();
    }
  }
  return decision;
}

PortfolioStats PortfolioPolicy::stats() const {
  PortfolioStats stats;
  stats.contenders = labels_;
  stats.windows_active = led_;
  stats.windows_scored = scored_;
  stats.switches = switches_;
  stats.windows_closed = window_index_;
  stats.active = labels_[active_];
  stats.window_cycles = window_cycles_;
  return stats;
}

void PortfolioPolicy::save_state(std::ostream& out) const {
  out << "policy-state portfolio " << contenders_.size() << "\n";
  out << "window " << window_index_ << " " << window_end_ << " " << active_
      << "\n";
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    out << labels_[i] << " " << scored_[i] << " " << led_[i] << " ";
    st::write_double(out, score_[i]);
    out << "\n";
  }
  out << "account " << account_.decisions << " " << account_.stalls << " "
      << account_.placed << " " << account_.predicted << " " << account_.hits
      << " " << account_.known_jobs << " ";
  st::write_double(out, account_.known_energy_nj);
  out << "\n";
  out << "switches " << switches_.size() << "\n";
  for (const PortfolioStats::Switch& s : switches_) {
    out << s.window << " " << s.time << " " << s.from << " " << s.to << "\n";
  }
  for (const auto& contender : contenders_) {
    contender->save_state(out);
  }
}

void PortfolioPolicy::restore_state(std::istream& in,
                                    const std::string& context) {
  const auto header = st::read_value<std::string>(in, "policy tag", context);
  const auto tag = st::read_value<std::string>(in, "policy name", context);
  if (header != "policy-state" || tag != "portfolio") {
    st::fail(context, "mismatched portfolio policy state header");
  }
  const auto count =
      st::read_value<std::size_t>(in, "contender count", context);
  if (count != contenders_.size()) {
    st::fail(context, "portfolio contender count mismatch");
  }
  const auto window_tag = st::read_value<std::string>(in, "window tag", context);
  if (window_tag != "window") st::fail(context, "expected window tag");
  window_index_ = st::read_value<std::uint64_t>(in, "window index", context);
  window_end_ = st::read_value<SimTime>(in, "window end", context);
  active_ = st::read_value<std::size_t>(in, "active contender", context);
  if (active_ >= contenders_.size()) {
    st::fail(context, "active contender out of range");
  }
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    const auto label =
        st::read_value<std::string>(in, "contender label", context);
    if (label != labels_[i]) {
      st::fail(context, "portfolio contender roster mismatch");
    }
    scored_[i] = st::read_value<std::uint64_t>(in, "scored windows", context);
    led_[i] = st::read_value<std::uint64_t>(in, "led windows", context);
    score_[i] = st::read_value<double>(in, "score", context);
  }
  const auto account_tag =
      st::read_value<std::string>(in, "account tag", context);
  if (account_tag != "account") st::fail(context, "expected account tag");
  account_.decisions = st::read_value<std::uint64_t>(in, "decisions", context);
  account_.stalls = st::read_value<std::uint64_t>(in, "stalls", context);
  account_.placed = st::read_value<std::uint64_t>(in, "placed", context);
  account_.predicted = st::read_value<std::uint64_t>(in, "predicted", context);
  account_.hits = st::read_value<std::uint64_t>(in, "hits", context);
  account_.known_jobs =
      st::read_value<std::uint64_t>(in, "known jobs", context);
  account_.known_energy_nj = st::read_value<double>(in, "known energy", context);
  const auto switches_tag =
      st::read_value<std::string>(in, "switches tag", context);
  if (switches_tag != "switches") st::fail(context, "expected switches tag");
  const auto switch_count =
      st::read_value<std::size_t>(in, "switch count", context);
  switches_.clear();
  switches_.reserve(switch_count);
  for (std::size_t i = 0; i < switch_count; ++i) {
    PortfolioStats::Switch s;
    s.window = st::read_value<std::uint64_t>(in, "switch window", context);
    s.time = st::read_value<SimTime>(in, "switch time", context);
    s.from = st::read_value<std::string>(in, "switch from", context);
    s.to = st::read_value<std::string>(in, "switch to", context);
    switches_.push_back(std::move(s));
  }
  for (auto& contender : contenders_) {
    contender->restore_state(in, context);
  }
}

}  // namespace hetsched
