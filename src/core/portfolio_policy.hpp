// Agon-style competitive meta-scheduler (PAPERS.md, arXiv 2109.00665).
//
// PortfolioPolicy owns a fixed roster of contender policies and, at every
// window boundary of simulated time, hands the machine to the contender
// its score table currently favours. Scoring is self-accounted inside
// decide(): the portfolio looks only at its own decisions and at the
// profiling table (the same information model every honest policy lives
// under) — it never consumes ScheduleObserver telemetry, so the "observers
// never feed back into the simulation" invariant holds and a run with
// observers detached is bit-identical to an observed one.
//
// Selection is deterministic: a round-robin exploration phase samples
// every contender once, then the lowest-EWMA-cost contender wins each
// window (ties to registration order). The full selector state — window
// cursor, scores, switch history, and each contender's own state —
// serialises through save_state/restore_state, so checkpoint resume,
// stream-vs-batch, and HETSCHED_THREADS all preserve byte identity.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.hpp"

namespace hetsched {

// Snapshot of the selector outcome for reporting (RunReport + JSONL).
struct PortfolioStats {
  struct Switch {
    std::uint64_t window = 0;  // window the new contender takes over
    SimTime time = 0;          // start time of that window
    std::string from;
    std::string to;
  };

  std::vector<std::string> contenders;       // roster, registration order
  std::vector<std::uint64_t> windows_active; // windows each one led
  std::vector<std::uint64_t> windows_scored; // windows that updated its score
  std::vector<Switch> switches;
  std::uint64_t windows_closed = 0;
  std::string active;  // contender leading when the run ended
  SimTime window_cycles = 0;
};

// One JSONL line per switch event, appended after the window records in
// the --windows-out stream.
std::string portfolio_switch_jsonl(const PortfolioStats& stats);

class PortfolioPolicy final : public SchedulerPolicy {
 public:
  static constexpr SimTime kDefaultWindowCycles = 1'000'000;

  // `labels` are the registry names of `contenders`, index-parallel;
  // requires at least one contender and window_cycles >= 1.
  PortfolioPolicy(std::vector<std::unique_ptr<SchedulerPolicy>> contenders,
                  std::vector<std::string> labels, SimTime window_cycles);

  std::string_view name() const override { return "portfolio"; }
  Decision decide(const Job& job, SystemView& view) override;
  bool can_preempt() const override;
  void on_profiled(std::size_t benchmark_id, SystemView& view) override;
  void save_state(std::ostream& out) const override;
  void restore_state(std::istream& in, const std::string& context) override;

  PortfolioStats stats() const;

 private:
  // Per-window evidence about the active contender, reset at boundaries.
  struct WindowAccount {
    std::uint64_t decisions = 0;
    std::uint64_t stalls = 0;
    std::uint64_t placed = 0;
    std::uint64_t predicted = 0;  // placements where a prediction existed
    std::uint64_t hits = 0;       // ... and landed on the predicted size
    std::uint64_t known_jobs = 0; // placements with an observed energy
    double known_energy_nj = 0.0;
  };

  void roll_windows(SimTime now);
  double window_cost() const;
  std::size_t select_next() const;

  std::vector<std::unique_ptr<SchedulerPolicy>> contenders_;
  std::vector<std::string> labels_;
  SimTime window_cycles_;

  std::uint64_t window_index_ = 0;
  SimTime window_end_;
  std::size_t active_ = 0;
  std::vector<double> score_;
  std::vector<std::uint64_t> scored_;
  std::vector<std::uint64_t> led_;
  std::vector<PortfolioStats::Switch> switches_;
  WindowAccount account_;
};

}  // namespace hetsched
