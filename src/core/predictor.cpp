#include "core/predictor.hpp"

#include "ann/metrics.hpp"
#include "util/contracts.hpp"
#include "workload/dataset_builder.hpp"

namespace hetsched {

BestSizePredictor::BestSizePredictor(const Dataset& data,
                                     const PredictorConfig& config,
                                     Rng& rng) {
  HETSCHED_REQUIRE(data.consistent());
  HETSCHED_REQUIRE(data.size() >= 4);
  HETSCHED_REQUIRE(data.feature_count() == kNumExecutionStatistics);

  report_.dataset_rows = data.size();

  // 70/15/15 split on the raw dataset, stratified by application so every
  // kernel contributes training rows.
  DataSplit split =
      data.groups.empty()
          ? split_dataset(data, config.train_fraction,
                          config.validation_fraction, rng)
          : split_dataset_stratified(data, config.train_fraction,
                                     config.validation_fraction, rng);

  // Feature selection fitted on training rows only.
  selected_ = select_features(split.train, config.selection);
  report_.selected_features = selected_.indices.size();

  Dataset train = selected_.project(split.train);
  Dataset validation = selected_.project(split.validation);
  Dataset test = selected_.project(split.test);

  scaler_.fit(train.features);
  train.features = scaler_.transform(train.features);
  if (validation.size() > 0) {
    validation.features = scaler_.transform(validation.features);
  }
  if (test.size() > 0) {
    test.features = scaler_.transform(test.features);
  }

  BaggingConfig bagging;
  bagging.ensemble_size = config.ensemble_size;
  bagging.net.layer_sizes.clear();
  bagging.net.layer_sizes.push_back(selected_.indices.size());
  for (std::size_t h : config.hidden) {
    bagging.net.layer_sizes.push_back(h);
  }
  bagging.net.layer_sizes.push_back(1);
  bagging.trainer = config.trainer;

  ensemble_ =
      std::make_unique<BaggedEnsemble>(bagging, train, validation, rng);

  report_.train_rows = train.size();
  report_.validation_rows = validation.size();
  report_.test_rows = test.size();
  report_.train_accuracy = snapped_accuracy(
      ensemble_->predict(train.features), train.targets,
      size_target_classes());
  if (test.size() > 0) {
    const Matrix predictions = ensemble_->predict(test.features);
    report_.test_mse = mean_squared_error(predictions, test.targets);
    report_.test_accuracy = snapped_accuracy(predictions, test.targets,
                                             size_target_classes());
  }
}

double BestSizePredictor::predict_raw(
    const ExecutionStatistics& stats) const {
  auto raw = stats.to_vector();
  // Same feature transform the training dataset was built with.
  for (std::size_t c = 0; c < raw.size(); ++c) {
    raw[c] = transform_statistic(c, raw[c]);
  }
  const std::vector<double> projected = selected_.project_row(raw);
  const std::vector<double> scaled = scaler_.transform_row(projected);
  return ensemble_->predict_one(scaled).front();
}

std::uint32_t BestSizePredictor::predict_size_bytes(
    const ExecutionStatistics& stats) const {
  return target_to_size(predict_raw(stats));
}

}  // namespace hetsched
