// Best-core (best cache size) predictor: the full ANN pipeline of
// Section IV.C/IV.D.
//
// 18 execution statistics → feature selection (top 10 by relevance) →
// standardisation → bagged ensemble of 30 {10,18,5,1} MLPs trained on a
// 70/15/15 split → single regression output snapped to {2,4,8} KB.
#pragma once

#include <memory>
#include <optional>

#include "ann/bagging.hpp"
#include "ann/dataset.hpp"
#include "ann/feature_selection.hpp"
#include "trace/counters.hpp"

namespace hetsched {

struct PredictorConfig {
  FeatureSelectionConfig selection{};      // max_features = 10
  std::vector<std::size_t> hidden{18, 5};  // {n, 18, 5, 1} topology
  std::size_t ensemble_size = 30;
  double train_fraction = 0.70;
  double validation_fraction = 0.15;
  TrainerConfig trainer{};
};

struct PredictorReport {
  std::size_t dataset_rows = 0;
  std::size_t selected_features = 0;
  std::size_t train_rows = 0;
  std::size_t validation_rows = 0;
  std::size_t test_rows = 0;
  double test_mse = 0.0;
  double test_accuracy = 0.0;   // snapped to {2,4,8} KB classes
  double train_accuracy = 0.0;
};

// Interface the scheduler policies consume. The production implementation
// is the ANN (BestSizePredictor); tests and ablation benches substitute an
// oracle or a fixed answer.
class SizePredictor {
 public:
  virtual ~SizePredictor() = default;

  // Best cache size (bytes) for the application with the given profiled
  // statistics. `benchmark_id` identifies the profiling-table entry; the
  // ANN ignores it, oracles use it.
  virtual std::uint32_t predict(std::size_t benchmark_id,
                                const ExecutionStatistics& stats) const = 0;
};

class BestSizePredictor final : public SizePredictor {
 public:
  // `data`: rows of 18 statistics with log2(best KB) targets (see
  // workload/dataset_builder). Training is deterministic given `rng`.
  BestSizePredictor(const Dataset& data, const PredictorConfig& config,
                    Rng& rng);

  // Predicts the best cache size in bytes for an application's profiled
  // statistics.
  std::uint32_t predict_size_bytes(const ExecutionStatistics& stats) const;

  std::uint32_t predict(std::size_t benchmark_id,
                        const ExecutionStatistics& stats) const override {
    (void)benchmark_id;
    return predict_size_bytes(stats);
  }

  // Raw (un-snapped) ensemble output, for diagnostics.
  double predict_raw(const ExecutionStatistics& stats) const;

  const PredictorReport& report() const { return report_; }
  const SelectedFeatures& selected_features() const { return selected_; }
  const StandardScaler& scaler() const { return scaler_; }
  const BaggedEnsemble& ensemble() const { return *ensemble_; }

 private:
  SelectedFeatures selected_;
  StandardScaler scaler_;
  std::unique_ptr<BaggedEnsemble> ensemble_;
  PredictorReport report_;
};

}  // namespace hetsched
