#include "core/profiling_table.hpp"

#include "util/contracts.hpp"

namespace hetsched {
namespace {

std::size_t config_index(const CacheConfig& config) {
  const auto idx = DesignSpace::index_of(config);
  HETSCHED_REQUIRE(idx.has_value());
  return *idx;
}

}  // namespace

std::size_t ProfilingTable::Entry::observed_count() const {
  std::size_t n = 0;
  for (const auto& o : observations) {
    if (o.has_value()) ++n;
  }
  return n;
}

std::size_t ProfilingTable::Entry::observed_count_for_size(
    std::uint32_t size_bytes) const {
  const auto& space = DesignSpace::all();
  std::size_t n = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (space[i].size_bytes == size_bytes && observations[i].has_value()) {
      ++n;
    }
  }
  return n;
}

const Observation* ProfilingTable::Entry::find(
    const CacheConfig& config) const {
  const auto& obs = observations[config_index(config)];
  return obs.has_value() ? &*obs : nullptr;
}

std::optional<CacheConfig> ProfilingTable::Entry::best_observed() const {
  const auto& space = DesignSpace::all();
  std::optional<CacheConfig> best;
  NanoJoules best_energy;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (!observations[i].has_value()) continue;
    if (!best.has_value() || observations[i]->total_energy < best_energy) {
      best = space[i];
      best_energy = observations[i]->total_energy;
    }
  }
  return best;
}

std::optional<CacheConfig> ProfilingTable::Entry::best_observed_for_size(
    std::uint32_t size_bytes) const {
  const auto& space = DesignSpace::all();
  std::optional<CacheConfig> best;
  NanoJoules best_energy;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (space[i].size_bytes != size_bytes) continue;
    if (!observations[i].has_value()) continue;
    if (!best.has_value() || observations[i]->total_energy < best_energy) {
      best = space[i];
      best_energy = observations[i]->total_energy;
    }
  }
  return best;
}

std::optional<CacheConfig> ProfilingTable::Entry::next_unexplored_for_size(
    std::uint32_t size_bytes) const {
  const auto& space = DesignSpace::all();
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (space[i].size_bytes == size_bytes && !observations[i].has_value()) {
      return space[i];
    }
  }
  return std::nullopt;
}

ProfilingTable::ProfilingTable(std::size_t benchmark_count)
    : entries_(benchmark_count) {
  HETSCHED_REQUIRE(benchmark_count > 0);
  HETSCHED_ASSERT(DesignSpace::all().size() == kConfigCount);
}

ProfilingTable::Entry& ProfilingTable::entry(std::size_t benchmark_id) {
  HETSCHED_REQUIRE(benchmark_id < entries_.size());
  return entries_[benchmark_id];
}

const ProfilingTable::Entry& ProfilingTable::entry(
    std::size_t benchmark_id) const {
  HETSCHED_REQUIRE(benchmark_id < entries_.size());
  return entries_[benchmark_id];
}

void ProfilingTable::record(std::size_t benchmark_id,
                            const CacheConfig& config,
                            const Observation& obs) {
  HETSCHED_REQUIRE(benchmark_id < entries_.size());
  entries_[benchmark_id].observations[config_index(config)] = obs;
}

}  // namespace hetsched
