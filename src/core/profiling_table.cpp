#include "core/profiling_table.hpp"

#include <istream>
#include <ostream>

#include "util/contracts.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {
namespace {

std::size_t config_index(const CacheConfig& config) {
  const auto idx = DesignSpace::index_of(config);
  HETSCHED_REQUIRE(idx.has_value());
  return *idx;
}

}  // namespace

std::size_t ProfilingTable::Entry::observed_count() const {
  std::size_t n = 0;
  for (const auto& o : observations) {
    if (o.has_value()) ++n;
  }
  return n;
}

std::size_t ProfilingTable::Entry::observed_count_for_size(
    std::uint32_t size_bytes) const {
  const auto& space = DesignSpace::all();
  std::size_t n = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (space[i].size_bytes == size_bytes && observations[i].has_value()) {
      ++n;
    }
  }
  return n;
}

const Observation* ProfilingTable::Entry::find(
    const CacheConfig& config) const {
  const auto& obs = observations[config_index(config)];
  return obs.has_value() ? &*obs : nullptr;
}

std::optional<CacheConfig> ProfilingTable::Entry::best_observed() const {
  const auto& space = DesignSpace::all();
  std::optional<CacheConfig> best;
  NanoJoules best_energy;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (!observations[i].has_value()) continue;
    if (!best.has_value() || observations[i]->total_energy < best_energy) {
      best = space[i];
      best_energy = observations[i]->total_energy;
    }
  }
  return best;
}

std::optional<CacheConfig> ProfilingTable::Entry::best_observed_for_size(
    std::uint32_t size_bytes) const {
  const auto& space = DesignSpace::all();
  std::optional<CacheConfig> best;
  NanoJoules best_energy;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (space[i].size_bytes != size_bytes) continue;
    if (!observations[i].has_value()) continue;
    if (!best.has_value() || observations[i]->total_energy < best_energy) {
      best = space[i];
      best_energy = observations[i]->total_energy;
    }
  }
  return best;
}

std::optional<CacheConfig> ProfilingTable::Entry::next_unexplored_for_size(
    std::uint32_t size_bytes) const {
  const auto& space = DesignSpace::all();
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (space[i].size_bytes == size_bytes && !observations[i].has_value()) {
      return space[i];
    }
  }
  return std::nullopt;
}

ProfilingTable::ProfilingTable(std::size_t benchmark_count)
    : entries_(benchmark_count) {
  HETSCHED_REQUIRE(benchmark_count > 0);
  HETSCHED_ASSERT(DesignSpace::all().size() == kConfigCount);
}

ProfilingTable::Entry& ProfilingTable::entry(std::size_t benchmark_id) {
  HETSCHED_REQUIRE(benchmark_id < entries_.size());
  return entries_[benchmark_id];
}

const ProfilingTable::Entry& ProfilingTable::entry(
    std::size_t benchmark_id) const {
  HETSCHED_REQUIRE(benchmark_id < entries_.size());
  return entries_[benchmark_id];
}

void ProfilingTable::record(std::size_t benchmark_id,
                            const CacheConfig& config,
                            const Observation& obs) {
  HETSCHED_REQUIRE(benchmark_id < entries_.size());
  Entry& entry = entries_[benchmark_id];
  auto& slot = entry.observations[config_index(config)];
  // Executions replay characterised values, so in steady state every
  // record() overwrites its slot with the bit-identical observation; the
  // walk memos only need invalidating when a slot actually changes.
  if (slot.has_value() && slot->total_energy == obs.total_energy &&
      slot->dynamic_energy == obs.dynamic_energy &&
      slot->cycles == obs.cycles) {
    return;
  }
  slot = obs;
  ++entry.version;  // invalidates the walk memos
}

void ProfilingTable::save_state(std::ostream& out) const {
  out << "profiling-table " << entries_.size() << "\n";
  for (std::size_t id = 0; id < entries_.size(); ++id) {
    const Entry& entry = entries_[id];
    out << "entry " << id << ' ' << (entry.profiled ? 1 : 0);
    for (const double v : entry.statistics.to_vector()) {
      out << ' ';
      snapshot_text::write_double(out, v);
    }
    out << "\n";
    if (entry.predicted_best_size_bytes.has_value()) {
      out << "prediction 1 " << *entry.predicted_best_size_bytes << "\n";
    } else {
      out << "prediction 0\n";
    }
    out << "observations " << entry.observed_count() << "\n";
    for (std::size_t i = 0; i < kConfigCount; ++i) {
      const auto& obs = entry.observations[i];
      if (!obs.has_value()) continue;
      out << i << ' ';
      snapshot_text::write_double(out, obs->total_energy.value());
      out << ' ';
      snapshot_text::write_double(out, obs->dynamic_energy.value());
      out << ' ' << obs->cycles << "\n";
    }
  }
}

void ProfilingTable::restore_state(std::istream& in,
                                   const std::string& context) {
  std::string token;
  if (!(in >> token) || token != "profiling-table") {
    snapshot_text::fail(context, "expected 'profiling-table'");
  }
  const auto count =
      snapshot_text::read_value<std::size_t>(in, "table size", context);
  if (count != entries_.size()) {
    snapshot_text::fail(context,
                        "profiling table benchmark count does not match");
  }
  for (std::size_t id = 0; id < entries_.size(); ++id) {
    if (!(in >> token) || token != "entry") {
      snapshot_text::fail(context, "expected 'entry'");
    }
    const auto got =
        snapshot_text::read_value<std::size_t>(in, "entry id", context);
    if (got != id) snapshot_text::fail(context, "entry ids out of order");
    Entry entry;
    entry.profiled =
        snapshot_text::read_value<int>(in, "profiled flag", context) != 0;
    auto& s = entry.statistics;
    double* const fields[kNumExecutionStatistics] = {
        &s.total_instructions, &s.cycles,        &s.loads,
        &s.stores,             &s.branches,      &s.taken_branches,
        &s.int_ops,            &s.fp_ops,        &s.l1_accesses,
        &s.l1_misses,          &s.l1_miss_rate,  &s.compulsory_misses,
        &s.writebacks,         &s.working_set_bytes, &s.load_fraction,
        &s.mem_intensity,      &s.compute_intensity, &s.branch_fraction};
    for (double* field : fields) {
      *field = snapshot_text::read_value<double>(in, "statistic", context);
    }
    if (!(in >> token) || token != "prediction") {
      snapshot_text::fail(context, "expected 'prediction'");
    }
    if (snapshot_text::read_value<int>(in, "prediction flag", context) != 0) {
      entry.predicted_best_size_bytes = snapshot_text::read_value<
          std::uint32_t>(in, "predicted size", context);
    }
    if (!(in >> token) || token != "observations") {
      snapshot_text::fail(context, "expected 'observations'");
    }
    const auto observed =
        snapshot_text::read_value<std::size_t>(in, "observation count",
                                               context);
    if (observed > kConfigCount) {
      snapshot_text::fail(context, "too many observations");
    }
    for (std::size_t n = 0; n < observed; ++n) {
      const auto idx = snapshot_text::read_value<std::size_t>(
          in, "observation index", context);
      if (idx >= kConfigCount) {
        snapshot_text::fail(context, "observation index out of range");
      }
      Observation obs;
      obs.total_energy = NanoJoules(snapshot_text::read_value<double>(
          in, "observation total energy", context));
      obs.dynamic_energy = NanoJoules(snapshot_text::read_value<double>(
          in, "observation dynamic energy", context));
      obs.cycles =
          snapshot_text::read_value<Cycles>(in, "observation cycles", context);
      entry.observations[idx] = obs;
    }
    entries_[id] = entry;
  }
}

}  // namespace hetsched
