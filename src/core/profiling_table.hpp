// Profiling table (Section IV.A/IV.B).
//
// Core 4 stores, per application: the execution statistics recorded during
// the base-configuration profiling run, the ANN's best-size prediction,
// and the energy/performance of every configuration explored so far. This
// persistence is what lets the tuning heuristic "continue where the
// exploration left off" across executions, and what feeds the
// energy-advantageous decision. Core 3 (secondary profiling core) reads
// the same table over the on-chip network.
//
// Policies may ONLY learn about a benchmark through this table — the
// characterised ground truth is hidden from them until an execution
// deposits an observation here.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_config.hpp"
#include "trace/counters.hpp"
#include "util/units.hpp"

namespace hetsched {

// Measured outcome of one execution in one configuration.
struct Observation {
  NanoJoules total_energy;
  NanoJoules dynamic_energy;
  Cycles cycles = 0;
};

class ProfilingTable {
 public:
  static constexpr std::size_t kConfigCount = 18;

  struct Entry {
    bool profiled = false;
    ExecutionStatistics statistics;
    std::optional<std::uint32_t> predicted_best_size_bytes;
    // Indexed parallel to DesignSpace::all().
    std::array<std::optional<Observation>, kConfigCount> observations;

    std::size_t observed_count() const;
    std::size_t observed_count_for_size(std::uint32_t size_bytes) const;
    bool fully_explored() const { return observed_count() == kConfigCount; }

    const Observation* find(const CacheConfig& config) const;

    // Lowest-total-energy observed configuration (overall or per size);
    // nullopt when nothing relevant has been observed yet.
    std::optional<CacheConfig> best_observed() const;
    std::optional<CacheConfig> best_observed_for_size(
        std::uint32_t size_bytes) const;
    // First unobserved Table-1 configuration of the size, canonical order
    // (drives the optimal system's exhaustive exploration).
    std::optional<CacheConfig> next_unexplored_for_size(
        std::uint32_t size_bytes) const;

    // Monotone change counter, bumped on every observation write, so
    // derived caches (the tuning heuristic's walk memo below) detect
    // staleness exactly. Not serialized: a restored entry starts at 0
    // with empty memos, which forces recomputation — derived state only.
    std::uint64_t version = 0;

    // Memoised TuningHeuristic::walk result for one design-space size,
    // valid while `version` matches. The walk is a pure function of the
    // observations, so a memo hit is bit-identical to recomputing; it
    // turns the per-decision complete()/best_known() pair from repeated
    // table scans into two counter compares.
    struct WalkMemo {
      std::uint64_t version = ~std::uint64_t{0};  // never matches fresh
      bool has_next = false;
      CacheConfig next{};
      CacheConfig best{};
      std::size_t explored = 0;
    };
    mutable std::array<WalkMemo, 3> walk_memo{};  // per size: 2/4/8KB
  };

  explicit ProfilingTable(std::size_t benchmark_count);

  std::size_t size() const { return entries_.size(); }
  Entry& entry(std::size_t benchmark_id);
  const Entry& entry(std::size_t benchmark_id) const;

  // Records a measured execution. Re-executions overwrite (the system is
  // deterministic, so values are identical).
  void record(std::size_t benchmark_id, const CacheConfig& config,
              const Observation& obs);

  // Checkpoint support: serializes every entry (profiled statistics,
  // prediction, observations) as whitespace tokens with doubles in
  // hexfloat, so a restored table is bit-identical. restore_state
  // requires a table constructed with the same benchmark count and
  // throws std::runtime_error (tagged with `context`) on malformed or
  // mismatched input.
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in, const std::string& context);

 private:
  std::vector<Entry> entries_;
};

}  // namespace hetsched
