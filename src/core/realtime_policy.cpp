#include "core/realtime_policy.hpp"

#include <limits>

#include "core/policies.hpp"
#include "core/tuning_heuristic.hpp"
#include "util/contracts.hpp"

namespace hetsched {

void RealtimeEdfPolicy::on_profiled(std::size_t benchmark_id,
                                    SystemView& view) {
  ProfilingTable::Entry& entry = view.table().entry(benchmark_id);
  entry.predicted_best_size_bytes = policy_detail::predict_best_size(
      *predictor_, benchmark_id, entry, view);
}

Decision RealtimeEdfPolicy::decide(const Job& job, SystemView& view) {
  if (const auto profiling = policy_detail::profiling_decision(job, view)) {
    return *profiling;
  }
  const ProfilingTable::Entry& entry = view.table().entry(job.benchmark_id);
  HETSCHED_ASSERT(entry.predicted_best_size_bytes.has_value());
  const std::uint32_t best_size =
      view.clamp_to_online(*entry.predicted_best_size_bytes);

  // Idle best core first (fastest known placement for this job).
  const std::size_t best_idle = view.first_idle_with_size(best_size);
  if (best_idle != SystemView::npos) {
    return policy_detail::run_with_heuristic(best_idle, best_size, entry);
  }
  // Otherwise run on an idle core whose cache is *larger* than the best
  // size: a bigger cache never slows the job in this architecture,
  // whereas a smaller one can stretch it 2-3x and blow the very deadline
  // the placement was meant to save. Smaller idle cores are left for the
  // jobs they fit (smallest sufficient cache, lowest index wins).
  const std::size_t chosen = view.first_idle_with_size_at_least(best_size);
  if (chosen != SystemView::npos) {
    return policy_detail::run_with_heuristic(
        chosen, view.core(chosen).spec.cache_size_bytes, entry);
  }

  // All cores busy: EDF eviction. Find the running job with the latest
  // deadline (best-effort jobs count as infinitely late); preempt it if
  // this job is strictly more urgent. This stays an index-ascending
  // linear scan on purpose: the victim is a property of *running* jobs
  // (deadlines change per dispatch, unlike the static clusters), it is
  // only reached when every sufficient core is busy, and the tie-break
  // (first maximum in index order) must match the pre-index scan
  // bit-for-bit.
  if (allow_preemption_ && job.deadline.has_value()) {
    std::size_t victim_core = view.core_count();
    SimTime victim_deadline = 0;
    for (std::size_t core = 0; core < view.core_count(); ++core) {
      if (view.core(core).running_kind == ExecutionKind::kProfiling) {
        continue;  // profiling runs are never preempted
      }
      if (view.core(core).spec.cache_size_bytes < best_size) {
        continue;  // an undersized core would just trade one miss for another
      }
      const Job* running = view.running_job(core);
      if (running == nullptr) continue;
      const SimTime running_deadline = running->deadline.value_or(
          std::numeric_limits<SimTime>::max());
      if (victim_core == view.core_count() ||
          running_deadline > victim_deadline) {
        victim_core = core;
        victim_deadline = running_deadline;
      }
    }
    if (victim_core < view.core_count() &&
        *job.deadline < victim_deadline) {
      const std::uint32_t size =
          view.core(victim_core).spec.cache_size_bytes;
      const Decision run =
          policy_detail::run_with_heuristic(victim_core, size, entry);
      return Decision::preempt(victim_core, run.config, run.exec);
    }
  }
  return Decision::stall();
}

}  // namespace hetsched
