// Real-time scheduler policy (paper future work, §VIII).
//
// Builds on the proposed system's machinery — ANN best-size prediction
// and Figure-5 tuning — but targets deadlines instead of energy:
//   * prefers an idle best core; otherwise any idle core (capacity is
//     never left idle while deadline work waits);
//   * when no core is idle, preempts the running job with the latest
//     deadline, provided the queued job's deadline is strictly earlier
//     (classic EDF eviction; profiling runs are never preempted);
//   * designed to run under QueueDiscipline::kEdf so the queue offers
//     the most urgent job first.
#pragma once

#include "core/predictor.hpp"
#include "core/scheduler.hpp"

namespace hetsched {

class RealtimeEdfPolicy final : public SchedulerPolicy {
 public:
  explicit RealtimeEdfPolicy(const SizePredictor& predictor,
                             bool allow_preemption = true)
      : predictor_(&predictor), allow_preemption_(allow_preemption) {}

  std::string_view name() const override { return "realtime-edf"; }
  bool can_preempt() const override { return allow_preemption_; }

  void on_profiled(std::size_t benchmark_id, SystemView& view) override;
  Decision decide(const Job& job, SystemView& view) override;

 private:
  const SizePredictor* predictor_;
  bool allow_preemption_;
};

}  // namespace hetsched
