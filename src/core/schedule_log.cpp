#include "core/schedule_log.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "core/simulator.hpp"
#include "util/contracts.hpp"

namespace hetsched {

bool ScheduleLog::well_formed() const {
  std::map<std::size_t, std::vector<std::pair<SimTime, SimTime>>> by_core;
  for (const ScheduledSlice& slice : slices_) {
    if (slice.end <= slice.start) return false;
    by_core[slice.core].emplace_back(slice.start, slice.end);
  }
  for (auto& [core, intervals] : by_core) {
    (void)core;
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].first < intervals[i - 1].second) return false;
    }
  }
  return true;
}

std::vector<Cycles> ScheduleLog::busy_cycles(std::size_t core_count) const {
  std::vector<Cycles> busy(core_count, 0);
  for (const ScheduledSlice& slice : slices_) {
    // A slice on a core the caller does not know about means either the
    // caller passed the wrong core count or the simulator mis-attributed
    // a slice; silently dropping it would hide the accounting bug.
    HETSCHED_REQUIRE(slice.core < core_count);
    busy[slice.core] += slice.end - slice.start;
  }
  return busy;
}

void ScheduleLog::write_csv(std::ostream& out) const {
  out << "job,benchmark,core,start,end,config,kind,completed\n";
  for (const ScheduledSlice& slice : slices_) {
    out << slice.job_id << ',' << slice.benchmark_id << ',' << slice.core
        << ',' << slice.start << ',' << slice.end << ','
        << slice.config.name() << ',' << to_string(slice.kind) << ','
        << (slice.completed ? 1 : 0) << '\n';
  }
}

std::string_view to_string(FaultRecord::Kind kind) {
  switch (kind) {
    case FaultRecord::Kind::kCoreFailure: return "core-failure";
    case FaultRecord::Kind::kCoreRecovery: return "core-recovery";
    case FaultRecord::Kind::kReconfigFailure: return "reconfig-failure";
    case FaultRecord::Kind::kCounterCorruption: return "counter-corruption";
    case FaultRecord::Kind::kWatchdogFire: return "watchdog-fire";
  }
  return "unknown";
}

void ScheduleLog::write_fault_csv(std::ostream& out) const {
  out << "time,core,job,kind\n";
  for (const FaultRecord& record : faults_) {
    out << record.time << ',' << record.core << ',' << record.job_id << ','
        << to_string(record.kind) << '\n';
  }
}

}  // namespace hetsched
