// Schedule observation: a hook the simulator drives with every executed
// slice (complete executions and preempted fragments), plus a concrete
// recorder that retains the full schedule, validates its invariants and
// exports it as CSV for external Gantt visualisation.
#pragma once

#include <iosfwd>
#include <utility>
#include <vector>

#include "core/job.hpp"
#include "cache/cache_config.hpp"

namespace hetsched {

// One contiguous occupancy of one core by one job.
struct ScheduledSlice {
  std::uint64_t job_id = 0;
  std::size_t benchmark_id = 0;
  std::size_t core = 0;
  SimTime start = 0;
  SimTime end = 0;
  CacheConfig config{};
  ExecutionKind kind = ExecutionKind::kNormal;
  // False when the slice ended in a preemption rather than completion.
  bool completed = true;
};

// One fault the simulator applied (fault-injection runs only).
struct FaultRecord {
  enum class Kind {
    kCoreFailure,
    kCoreRecovery,
    kReconfigFailure,
    kCounterCorruption,
    kWatchdogFire,
  };

  SimTime time = 0;
  std::size_t core = 0;         // meaningless for counter corruption
  std::uint64_t job_id = 0;     // 0 when no job was involved
  Kind kind = Kind::kCoreFailure;
};

std::string_view to_string(FaultRecord::Kind kind);

// A job entering execution on a core (the moment the dispatch decision
// took effect, before the execution's completion is known).
struct DispatchEvent {
  SimTime time = 0;  // decision time; execution starts at time + backoff
  std::size_t core = 0;
  std::uint64_t job_id = 0;
  std::size_t benchmark_id = 0;
  ExecutionKind kind = ExecutionKind::kNormal;
  Cycles backoff = 0;    // reconfiguration-retry wait before first cycle
  Cycles duration = 0;   // planned busy window (watchdog timeout if hung)
  bool hung = false;     // injected stuck execution
};

// One reconfiguration attempt (fault-free runs emit exactly one
// successful attempt per configuration change).
struct ReconfigEvent {
  SimTime time = 0;
  std::size_t core = 0;
  std::uint64_t job_id = 0;
  std::uint32_t attempt = 0;  // 0 = first try
  bool success = true;
  Cycles backoff_wait = 0;  // wait charged before the *next* attempt
};

// A closed idle interval on one core (emitted when the interval ends).
struct IdleEvent {
  std::size_t core = 0;
  SimTime from = 0;
  SimTime to = 0;
};

// A preemption: the victim's executed portion (if any) is reported
// separately through on_slice with completed == false.
struct PreemptEvent {
  SimTime time = 0;
  std::size_t core = 0;
  std::uint64_t job_id = 0;  // the victim
  bool was_hung = false;     // wedged victim: no slice was emitted
};

// A job admitted into the ready queue (the birth of its lifecycle span:
// arrival -> first dispatch -> slices -> retirement). Emitted once per
// job from the simulator's single admission point, so batch run() and
// run_stream produce identical arrival streams.
struct ArrivalEvent {
  SimTime time = 0;
  std::uint64_t job_id = 0;
  std::size_t benchmark_id = 0;
  int priority = 0;
  std::uint32_t cp_rank = 0;  // critical-path rank (0 off a DAG)
};

// A scheduling pass declined to place this job anywhere (Section IV.A:
// the job waits for a better core instead of migrating to a worse one).
struct StallEvent {
  SimTime time = 0;
  std::uint64_t job_id = 0;
  std::size_t benchmark_id = 0;
};

// Ready-queue depth observed once per simulation event round, after
// arrivals are admitted and before the scheduling pass — the per-round
// high-water mark of queued work.
struct QueueSample {
  SimTime time = 0;
  std::size_t depth = 0;
};

// A DAG successor became eligible: its last predecessor retired. Emitted
// by DagArrivalSource (not the simulator) when the completion slice that
// released the node is observed, stamped at that slice's end time so the
// event stream stays monotone in SimTime.
struct DagReleaseEvent {
  SimTime time = 0;          // release cycle (= releasing slice's end)
  std::size_t node = 0;      // node index in the scenario's DAG
  std::size_t ready_depth = 0;  // eligible-set size after this release
  Cycles latency = 0;        // release cycle - nominal generated arrival
  std::uint32_t slack = 0;   // max_rank - cp_rank (0 on a critical path)
};

class ScheduleObserver {
 public:
  virtual ~ScheduleObserver() = default;
  virtual void on_slice(const ScheduledSlice& slice) = 0;
  // Every other notification is optional; defaults ignore them. All
  // callbacks fire on the simulation thread in event order, keyed on
  // SimTime — never wall clock — so any recording observer is
  // deterministic across runs and thread counts.
  virtual void on_fault(const FaultRecord& record) { (void)record; }
  virtual void on_arrival(const ArrivalEvent& event) { (void)event; }
  virtual void on_dispatch(const DispatchEvent& event) { (void)event; }
  virtual void on_reconfig(const ReconfigEvent& event) { (void)event; }
  virtual void on_idle(const IdleEvent& event) { (void)event; }
  virtual void on_preempt(const PreemptEvent& event) { (void)event; }
  virtual void on_stall(const StallEvent& event) { (void)event; }
  virtual void on_queue_depth(const QueueSample& sample) { (void)sample; }
  virtual void on_dag_release(const DagReleaseEvent& event) { (void)event; }
};

// Forwards every callback to a fixed list of observers, in order. Lets
// one simulator run feed several independent recorders (e.g. StreamStats
// plus a WindowedCollector plus an EventTracer) without any of them
// knowing about the others. Null entries are skipped.
class FanoutObserver final : public ScheduleObserver {
 public:
  explicit FanoutObserver(std::vector<ScheduleObserver*> observers)
      : observers_(std::move(observers)) {}

  void on_slice(const ScheduledSlice& slice) override {
    for (ScheduleObserver* o : observers_) {
      if (o != nullptr) o->on_slice(slice);
    }
  }
  void on_fault(const FaultRecord& record) override {
    for (ScheduleObserver* o : observers_) {
      if (o != nullptr) o->on_fault(record);
    }
  }
  void on_arrival(const ArrivalEvent& event) override {
    for (ScheduleObserver* o : observers_) {
      if (o != nullptr) o->on_arrival(event);
    }
  }
  void on_dispatch(const DispatchEvent& event) override {
    for (ScheduleObserver* o : observers_) {
      if (o != nullptr) o->on_dispatch(event);
    }
  }
  void on_reconfig(const ReconfigEvent& event) override {
    for (ScheduleObserver* o : observers_) {
      if (o != nullptr) o->on_reconfig(event);
    }
  }
  void on_idle(const IdleEvent& event) override {
    for (ScheduleObserver* o : observers_) {
      if (o != nullptr) o->on_idle(event);
    }
  }
  void on_preempt(const PreemptEvent& event) override {
    for (ScheduleObserver* o : observers_) {
      if (o != nullptr) o->on_preempt(event);
    }
  }
  void on_stall(const StallEvent& event) override {
    for (ScheduleObserver* o : observers_) {
      if (o != nullptr) o->on_stall(event);
    }
  }
  void on_queue_depth(const QueueSample& sample) override {
    for (ScheduleObserver* o : observers_) {
      if (o != nullptr) o->on_queue_depth(sample);
    }
  }
  void on_dag_release(const DagReleaseEvent& event) override {
    for (ScheduleObserver* o : observers_) {
      if (o != nullptr) o->on_dag_release(event);
    }
  }

 private:
  std::vector<ScheduleObserver*> observers_;
};

class ScheduleLog final : public ScheduleObserver {
 public:
  void on_slice(const ScheduledSlice& slice) override {
    slices_.push_back(slice);
  }
  void on_fault(const FaultRecord& record) override {
    faults_.push_back(record);
  }

  const std::vector<ScheduledSlice>& slices() const { return slices_; }
  const std::vector<FaultRecord>& faults() const { return faults_; }

  // Schedule invariants: every slice well-formed, and no two slices on
  // the same core overlap in time.
  bool well_formed() const;

  // Busy cycles per core, reconstructed from the slices.
  std::vector<Cycles> busy_cycles(std::size_t core_count) const;

  // CSV: job,benchmark,core,start,end,config,kind,completed
  void write_csv(std::ostream& out) const;

  // CSV: time,core,job,kind — one row per injected fault.
  void write_fault_csv(std::ostream& out) const;

 private:
  std::vector<ScheduledSlice> slices_;
  std::vector<FaultRecord> faults_;
};

}  // namespace hetsched
