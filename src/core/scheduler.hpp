// Scheduler policy interface and the system view policies decide against.
//
// The simulator owns all machine state; a policy sees it only through
// SystemView (core occupancy, current configurations, remaining busy
// cycles) plus the shared profiling table — never the characterised
// ground truth. This enforces the paper's information model: everything a
// scheduler knows, it learnt from profiling/tuning executions.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "core/job.hpp"
#include "core/profiling_table.hpp"
#include "core/system_config.hpp"
#include "energy/energy_model.hpp"

namespace hetsched {

// Live state of one core inside the simulation.
struct CoreRuntime {
  CoreSpec spec;
  CacheConfig current_config;
  bool busy = false;
  // False while the core is failed (powered off): it runs nothing,
  // accrues no idle energy, and policies must not schedule onto it.
  bool online = true;
  SimTime busy_until = 0;
  std::uint64_t running_job_id = 0;
  std::size_t running_benchmark = 0;
  ExecutionKind running_kind = ExecutionKind::kNormal;
  SimTime idle_since = 0;

  // Cumulative accounting.
  Cycles busy_cycles = 0;
  std::uint64_t executions = 0;
};

// Fault-injection and degraded-mode accounting for one run. Lives inside
// SimulationResult; policies reach it through SystemView to report
// prediction-sanity fallbacks.
struct FaultStats {
  std::uint64_t injected = 0;  // total faults applied, all classes
  std::uint64_t core_failures = 0;
  std::uint64_t core_recoveries = 0;
  std::uint64_t jobs_requeued = 0;  // by core failure or watchdog
  std::uint64_t counter_corruptions = 0;
  std::uint64_t reconfig_failures = 0;  // individual failed attempts
  std::uint64_t reconfig_retries = 0;   // backoff retries taken
  std::uint64_t degraded_executions = 0;  // ran in a stale configuration
  std::uint64_t prediction_fallbacks = 0;  // sanity guard chose base
  std::uint64_t watchdog_fires = 0;

  bool any() const {
    return injected != 0 || prediction_fallbacks != 0 ||
           degraded_executions != 0;
  }
};

class SystemView {
 public:
  SystemView(SimTime now, const SystemConfig& system,
             std::span<const CoreRuntime> cores, ProfilingTable& table,
             const EnergyModel& energy,
             std::span<const Job> running_jobs = {},
             FaultStats* faults = nullptr)
      : now_(now), system_(&system), cores_(cores), table_(&table),
        energy_(&energy), running_jobs_(running_jobs), faults_(faults) {}

  SimTime now() const { return now_; }
  const SystemConfig& system() const { return *system_; }
  std::size_t core_count() const { return cores_.size(); }
  const CoreRuntime& core(std::size_t i) const { return cores_[i]; }

  // A core a job can be dispatched to right now: online and not busy.
  bool available(std::size_t i) const {
    return cores_[i].online && !cores_[i].busy;
  }

  std::vector<std::size_t> idle_cores() const {
    std::vector<std::size_t> idle;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (available(i)) idle.push_back(i);
    }
    return idle;
  }

  // Cycles until the core frees up (0 when idle).
  Cycles remaining_cycles(std::size_t i) const {
    const CoreRuntime& c = cores_[i];
    if (!c.busy || c.busy_until <= now_) return 0;
    return c.busy_until - now_;
  }

  ProfilingTable& table() const { return *table_; }
  const EnergyModel& energy() const { return *energy_; }

  // The job currently executing on a busy core (nullptr when idle or when
  // the view was built without job visibility).
  const Job* running_job(std::size_t i) const {
    if (running_jobs_.empty() || !cores_[i].busy) return nullptr;
    return &running_jobs_[i];
  }

  // Degraded-mode channel: a policy whose prediction sanity guard
  // rejected the ANN output (non-finite features or an illegal size)
  // reports the fallback here.
  void note_prediction_fallback() const {
    if (faults_ != nullptr) ++faults_->prediction_fallbacks;
  }

 private:
  SimTime now_;
  const SystemConfig* system_;
  std::span<const CoreRuntime> cores_;
  ProfilingTable* table_;
  const EnergyModel* energy_;
  std::span<const Job> running_jobs_;
  FaultStats* faults_ = nullptr;
};

// What the policy wants done with the job at the head of the ready queue.
struct Decision {
  enum class Kind { kRun, kStall, kPreempt };

  Kind kind = Kind::kStall;
  std::size_t core = 0;
  CacheConfig config{};
  ExecutionKind exec = ExecutionKind::kNormal;

  static Decision run(std::size_t core, const CacheConfig& config,
                      ExecutionKind exec = ExecutionKind::kNormal) {
    return Decision{Kind::kRun, core, config, exec};
  }
  // Stall: the job is re-enqueued at the back of the ready queue
  // (Section IV.A) and reconsidered at the next scheduling event.
  static Decision stall() { return Decision{}; }
  // Real-time extension: evict the job running on `core` (it returns to
  // the front of the ready queue with its remaining fraction) and run
  // this job instead. Only honoured for policies whose can_preempt() is
  // true, and never against a profiling execution.
  static Decision preempt(std::size_t core, const CacheConfig& config,
                          ExecutionKind exec = ExecutionKind::kNormal) {
    return Decision{Kind::kPreempt, core, config, exec};
  }
};

// Order in which the ready queue is offered to the policy.
enum class QueueDiscipline {
  kFifo,      // paper baseline: first come, first served
  kEdf,       // earliest absolute deadline first (best-effort jobs last)
  kPriority,  // highest priority first, FIFO within a priority level
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual std::string_view name() const = 0;

  // Called for the job at the head of the ready queue whenever at least
  // one core is idle (or, for preempting policies, on every scheduling
  // event). A kRun decision's core must be idle; a kPreempt decision's
  // core must be busy with a non-profiling execution.
  virtual Decision decide(const Job& job, SystemView& view) = 0;

  // Policies that may return Decision::preempt() opt in here; the
  // simulator then consults them even when no core is idle.
  virtual bool can_preempt() const { return false; }

  // Called after a profiling execution completed and the benchmark's
  // statistics were deposited in the profiling table; ANN-based policies
  // attach their best-size prediction here.
  virtual void on_profiled(std::size_t benchmark_id, SystemView& view) {
    (void)benchmark_id;
    (void)view;
  }
};

}  // namespace hetsched
