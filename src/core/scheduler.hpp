// Scheduler policy interface and the system view policies decide against.
//
// The simulator owns all machine state; a policy sees it only through
// SystemView (core occupancy, current configurations, remaining busy
// cycles) plus the shared profiling table — never the characterised
// ground truth. This enforces the paper's information model: everything a
// scheduler knows, it learnt from profiling/tuning executions.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/dispatch_index.hpp"
#include "core/job.hpp"
#include "core/profiling_table.hpp"
#include "core/system_config.hpp"
#include "energy/energy_model.hpp"

namespace hetsched {

// Live state of one core inside the simulation.
struct CoreRuntime {
  CoreSpec spec;
  CacheConfig current_config;
  bool busy = false;
  // False while the core is failed (powered off): it runs nothing,
  // accrues no idle energy, and policies must not schedule onto it.
  bool online = true;
  SimTime busy_until = 0;
  std::uint64_t running_job_id = 0;
  std::size_t running_benchmark = 0;
  ExecutionKind running_kind = ExecutionKind::kNormal;
  SimTime idle_since = 0;

  // Cumulative accounting.
  Cycles busy_cycles = 0;
  std::uint64_t executions = 0;
};

// Fault-injection and degraded-mode accounting for one run. Lives inside
// SimulationResult; policies reach it through SystemView to report
// prediction-sanity fallbacks.
struct FaultStats {
  std::uint64_t injected = 0;  // total faults applied, all classes
  std::uint64_t core_failures = 0;
  std::uint64_t core_recoveries = 0;
  std::uint64_t jobs_requeued = 0;  // by core failure or watchdog
  std::uint64_t counter_corruptions = 0;
  std::uint64_t reconfig_failures = 0;  // individual failed attempts
  std::uint64_t reconfig_retries = 0;   // backoff retries taken
  std::uint64_t degraded_executions = 0;  // ran in a stale configuration
  std::uint64_t prediction_fallbacks = 0;  // sanity guard chose base
  std::uint64_t watchdog_fires = 0;

  bool any() const {
    return injected != 0 || prediction_fallbacks != 0 ||
           degraded_executions != 0;
  }
};

class SystemView {
 public:
  static constexpr std::size_t npos = DispatchIndex::npos;

  // `index` (when non-null) answers the idle/size selection queries in
  // O(size classes) instead of O(cores); `naive` forces the reference
  // linear scans even when an index is present (the differential-fuzz
  // switch). Both paths answer every query identically — the index is
  // a pure mechanical-sympathy optimisation.
  SystemView(SimTime now, const SystemConfig& system,
             std::span<const CoreRuntime> cores, ProfilingTable& table,
             const EnergyModel& energy,
             std::span<const Job> running_jobs = {},
             FaultStats* faults = nullptr,
             const DispatchIndex* index = nullptr, bool naive = false)
      : now_(now), system_(&system), cores_(cores), table_(&table),
        energy_(&energy), running_jobs_(running_jobs), faults_(faults),
        index_(index), naive_(naive) {}

  SimTime now() const { return now_; }
  const SystemConfig& system() const { return *system_; }
  std::size_t core_count() const { return cores_.size(); }
  const CoreRuntime& core(std::size_t i) const { return cores_[i]; }

  // A core a job can be dispatched to right now: online and not busy.
  bool available(std::size_t i) const {
    return cores_[i].online && !cores_[i].busy;
  }

  // Allocates; kept for custom out-of-tree policies and examples. The
  // in-tree decide paths use the allocation-free queries below.
  std::vector<std::size_t> idle_cores() const {
    std::vector<std::size_t> idle;
    for_each_idle([&](std::size_t i) {
      idle.push_back(i);
      return false;
    });
    return idle;
  }

  // --- Indexed selection queries --------------------------------------
  // Each query is bit-identical to the naive lowest-index-first linear
  // scan it replaces (and falls back to that scan when no index is
  // attached or naive mode is forced).

  bool any_idle() const {
    if (indexed()) return index_->any_idle();
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (available(i)) return true;
    }
    return false;
  }

  // Lowest-index idle core, npos when every core is busy or offline.
  std::size_t first_idle() const {
    if (indexed()) return index_->first_idle();
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (available(i)) return i;
    }
    return npos;
  }

  // Lowest-index idle core with exactly this cache size.
  std::size_t first_idle_with_size(std::uint32_t size_bytes) const {
    if (indexed()) return index_->first_idle_with_size(size_bytes);
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (available(i) && cores_[i].spec.cache_size_bytes == size_bytes) {
        return i;
      }
    }
    return npos;
  }

  // Idle core minimising (cache size, index) among sizes >= min_size —
  // the real-time "smallest sufficient cache" placement.
  std::size_t first_idle_with_size_at_least(std::uint32_t min_size) const {
    if (indexed()) return index_->first_idle_with_size_at_least(min_size);
    std::size_t chosen = npos;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (!available(i)) continue;
      const std::uint32_t size = cores_[i].spec.cache_size_bytes;
      if (size < min_size) continue;
      if (chosen == npos || size < cores_[chosen].spec.cache_size_bytes) {
        chosen = i;
      }
    }
    return chosen;
  }

  // Ascending iteration over idle cores; stops when `fn` returns true.
  template <typename Fn>
  bool for_each_idle(Fn&& fn) const {
    if (indexed()) return index_->for_each_idle(fn);
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (available(i) && fn(i)) return true;
    }
    return false;
  }

  // Ascending iteration over all cores (busy or not) of one cache size.
  template <typename Fn>
  void for_each_core_with_size(std::uint32_t size_bytes, Fn&& fn) const {
    if (index_ != nullptr) {  // static membership; valid in naive mode too
      for (const std::size_t core : index_->cores_with_size(size_bytes)) {
        fn(core);
      }
      return;
    }
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (cores_[i].spec.cache_size_bytes == size_bytes) fn(i);
    }
  }

  // Size snapping (semantics in policies.hpp); served from the index's
  // per-(size, topology-epoch) cache when available.
  std::uint32_t clamp_to_available(std::uint32_t size_bytes) const {
    if (indexed()) return index_->clamp_to_available(size_bytes);
    return clamp_to_available_naive(size_bytes);
  }

  std::uint32_t clamp_to_online(std::uint32_t size_bytes) const {
    if (indexed()) return index_->clamp_to_online(size_bytes);
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (cores_[i].online &&
          cores_[i].spec.cache_size_bytes == size_bytes) {
        return size_bytes;
      }
    }
    return clamp_to_available_naive(size_bytes);
  }

  // Cycles until the core frees up (0 when idle).
  Cycles remaining_cycles(std::size_t i) const {
    const CoreRuntime& c = cores_[i];
    if (!c.busy || c.busy_until <= now_) return 0;
    return c.busy_until - now_;
  }

  ProfilingTable& table() const { return *table_; }
  const EnergyModel& energy() const { return *energy_; }

  // The job currently executing on a busy core (nullptr when idle or when
  // the view was built without job visibility).
  const Job* running_job(std::size_t i) const {
    if (running_jobs_.empty() || !cores_[i].busy) return nullptr;
    return &running_jobs_[i];
  }

  // Degraded-mode channel: a policy whose prediction sanity guard
  // rejected the ANN output (non-finite features or an illegal size)
  // reports the fallback here.
  void note_prediction_fallback() const {
    if (faults_ != nullptr) ++faults_->prediction_fallbacks;
  }

 private:
  bool indexed() const { return index_ != nullptr && !naive_; }

  // Reference implementation the index must agree with: nearest
  // available size, ties upward; online cores first, all cores as the
  // mass-failure fallback.
  std::uint32_t clamp_to_available_naive(std::uint32_t size_bytes) const {
    for (const bool online_only : {true, false}) {
      std::uint32_t best = 0;
      std::uint64_t best_distance = ~0ULL;
      for (std::size_t i = 0; i < cores_.size(); ++i) {
        if (online_only && !cores_[i].online) continue;
        const std::uint32_t size = cores_[i].spec.cache_size_bytes;
        const std::uint64_t distance =
            size >= size_bytes ? size - size_bytes : size_bytes - size;
        if (distance < best_distance ||
            (distance == best_distance && size > best)) {
          best_distance = distance;
          best = size;
        }
      }
      if (best != 0) return best;
    }
    return size_bytes;
  }

  SimTime now_;
  const SystemConfig* system_;
  std::span<const CoreRuntime> cores_;
  ProfilingTable* table_;
  const EnergyModel* energy_;
  std::span<const Job> running_jobs_;
  FaultStats* faults_ = nullptr;
  const DispatchIndex* index_ = nullptr;
  bool naive_ = false;
};

// What the policy wants done with the job at the head of the ready queue.
struct Decision {
  enum class Kind { kRun, kStall, kPreempt };

  Kind kind = Kind::kStall;
  std::size_t core = 0;
  CacheConfig config{};
  ExecutionKind exec = ExecutionKind::kNormal;

  static Decision run(std::size_t core, const CacheConfig& config,
                      ExecutionKind exec = ExecutionKind::kNormal) {
    return Decision{Kind::kRun, core, config, exec};
  }
  // Stall: the job is re-enqueued at the back of the ready queue
  // (Section IV.A) and reconsidered at the next scheduling event.
  static Decision stall() { return Decision{}; }
  // Real-time extension: evict the job running on `core` (it returns to
  // the front of the ready queue with its remaining fraction) and run
  // this job instead. Only honoured for policies whose can_preempt() is
  // true, and never against a profiling execution.
  static Decision preempt(std::size_t core, const CacheConfig& config,
                          ExecutionKind exec = ExecutionKind::kNormal) {
    return Decision{Kind::kPreempt, core, config, exec};
  }
};

// Order in which the ready queue is offered to the policy.
enum class QueueDiscipline {
  kFifo,      // paper baseline: first come, first served
  kEdf,       // earliest absolute deadline first (best-effort jobs last)
  kPriority,  // highest priority first, FIFO within a priority level
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual std::string_view name() const = 0;

  // Called for the job at the head of the ready queue whenever at least
  // one core is idle (or, for preempting policies, on every scheduling
  // event). A kRun decision's core must be idle; a kPreempt decision's
  // core must be busy with a non-profiling execution.
  virtual Decision decide(const Job& job, SystemView& view) = 0;

  // Policies that may return Decision::preempt() opt in here; the
  // simulator then consults them even when no core is idle.
  virtual bool can_preempt() const { return false; }

  // Called after a profiling execution completed and the benchmark's
  // statistics were deposited in the profiling table; ANN-based policies
  // attach their best-size prediction here.
  virtual void on_profiled(std::size_t benchmark_id, SystemView& view) {
    (void)benchmark_id;
    (void)view;
  }

  // Checkpoint support. Policies carrying mutable decision state beyond
  // the profiling table (a seeded Rng, the portfolio selector) override
  // both so a restored run replays bit-identically; the default writes a
  // stateless marker and restore_state verifies it (throwing
  // std::runtime_error tagged with `context` on mismatch). Stateless
  // policies need nothing else — everything they know lives in the
  // profiling table, which the checkpoint already captures.
  virtual void save_state(std::ostream& out) const;
  virtual void restore_state(std::istream& in, const std::string& context);
};

}  // namespace hetsched
