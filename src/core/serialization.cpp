#include "core/serialization.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/contracts.hpp"
#include "util/snapshot_text.hpp"
#include "workload/dataset_builder.hpp"

namespace hetsched {
namespace {

constexpr std::string_view kMagic = "hetsched-predictor";
constexpr int kVersion = 1;
const std::string kContext = "PredictorSnapshot::load";

using snapshot_text::write_double;

[[noreturn]] void fail(const std::string& what) {
  snapshot_text::fail(kContext, what);
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  return snapshot_text::read_value<T>(in, what, kContext);
}

Matrix read_matrix(std::istream& in, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (double& v : m.flat()) {
    v = read_value<double>(in, "matrix element");
    if (!std::isfinite(v)) fail("non-finite network parameter");
  }
  return m;
}

}  // namespace

PredictorSnapshot PredictorSnapshot::from(
    const BestSizePredictor& predictor) {
  PredictorSnapshot snapshot;
  snapshot.selected_ = predictor.selected_features();
  snapshot.scaler_ = predictor.scaler();
  const BaggedEnsemble& ensemble = predictor.ensemble();
  snapshot.members_.reserve(ensemble.size());
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    snapshot.members_.push_back(ensemble.member(i));
  }
  return snapshot;
}

void PredictorSnapshot::save(std::ostream& raw_out) const {
  // The body is built in memory so a checksum over its exact bytes can
  // be appended; load() verifies it when present.
  std::ostringstream out;
  out << kMagic << " v" << kVersion << "\n";

  out << "features " << selected_.indices.size();
  for (std::size_t idx : selected_.indices) out << ' ' << idx;
  out << "\n";

  out << "scaler " << scaler_.means().size();
  for (double m : scaler_.means()) {
    out << ' ';
    write_double(out, m);
  }
  for (double s : scaler_.stddevs()) {
    out << ' ';
    write_double(out, s);
  }
  out << "\n";

  out << "members " << members_.size() << "\n";
  for (const Mlp& net : members_) {
    const auto& sizes = net.config().layer_sizes;
    out << "mlp " << sizes.size();
    for (std::size_t s : sizes) out << ' ' << s;
    out << ' ' << static_cast<int>(net.config().hidden_activation) << ' '
        << static_cast<int>(net.config().output_activation) << "\n";
    for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
      for (double v : net.weights()[l].flat()) {
        write_double(out, v);
        out << ' ';
      }
      for (double v : net.biases()[l].flat()) {
        write_double(out, v);
        out << ' ';
      }
      out << "\n";
    }
  }

  snapshot_text::write_with_checksum(raw_out, out.str());
}

PredictorSnapshot PredictorSnapshot::load(std::istream& raw_in) {
  // The optional trailing checksum line covers the exact bytes of
  // everything before it, so it is split off (and verified) before
  // token-level parsing. Files from before the checksum was introduced
  // simply lack the line and are still accepted.
  std::istringstream in(snapshot_text::read_verified(raw_in, kContext));
  std::string magic, version;
  if (!(in >> magic >> version) || magic != kMagic ||
      version != "v" + std::to_string(kVersion)) {
    fail("bad header");
  }

  PredictorSnapshot snapshot;

  std::string token;
  in >> token;
  if (token != "features") fail("expected 'features'");
  const auto n_features = read_value<std::size_t>(in, "feature count");
  if (n_features == 0 || n_features > kNumExecutionStatistics) {
    fail("implausible feature count");
  }
  snapshot.selected_.indices.resize(n_features);
  for (auto& idx : snapshot.selected_.indices) {
    idx = read_value<std::size_t>(in, "feature index");
    if (idx >= kNumExecutionStatistics) fail("feature index out of range");
  }
  snapshot.selected_.relevance.assign(kNumExecutionStatistics, 0.0);

  in >> token;
  if (token != "scaler") fail("expected 'scaler'");
  const auto d = read_value<std::size_t>(in, "scaler width");
  if (d != n_features) fail("scaler width mismatch");
  std::vector<double> means(d), stds(d);
  for (auto& v : means) {
    v = read_value<double>(in, "scaler mean");
    if (!std::isfinite(v)) fail("non-finite scaler mean");
  }
  for (auto& v : stds) {
    v = read_value<double>(in, "scaler stddev");
    if (!std::isfinite(v) || v <= 0.0) {
      fail("scaler stddev not finite and positive");
    }
  }
  snapshot.scaler_ =
      StandardScaler::from_moments(std::move(means), std::move(stds));

  in >> token;
  if (token != "members") fail("expected 'members'");
  const auto n_members = read_value<std::size_t>(in, "member count");
  if (n_members == 0 || n_members > 10000) fail("implausible member count");
  snapshot.members_.reserve(n_members);
  for (std::size_t m = 0; m < n_members; ++m) {
    in >> token;
    if (token != "mlp") fail("expected 'mlp'");
    const auto n_layers = read_value<std::size_t>(in, "layer count");
    if (n_layers < 2 || n_layers > 64) fail("implausible layer count");
    MlpConfig config;
    config.layer_sizes.resize(n_layers);
    for (auto& s : config.layer_sizes) {
      s = read_value<std::size_t>(in, "layer size");
      if (s == 0 || s > 100000) fail("implausible layer size");
    }
    if (config.layer_sizes.front() != n_features) {
      fail("net input width does not match feature count");
    }
    config.hidden_activation =
        static_cast<Activation>(read_value<int>(in, "hidden activation"));
    config.output_activation =
        static_cast<Activation>(read_value<int>(in, "output activation"));

    std::vector<Matrix> weights, biases;
    for (std::size_t l = 0; l + 1 < n_layers; ++l) {
      weights.push_back(read_matrix(in, config.layer_sizes[l],
                                    config.layer_sizes[l + 1]));
      biases.push_back(read_matrix(in, 1, config.layer_sizes[l + 1]));
    }
    snapshot.members_.push_back(Mlp::from_parameters(
        std::move(config), std::move(weights), std::move(biases)));
  }
  if (in >> token) fail("trailing garbage after last member");
  return snapshot;
}

double PredictorSnapshot::predict_raw(
    const ExecutionStatistics& stats) const {
  HETSCHED_REQUIRE(!members_.empty());
  auto raw = stats.to_vector();
  for (std::size_t c = 0; c < raw.size(); ++c) {
    raw[c] = transform_statistic(c, raw[c]);
  }
  const std::vector<double> projected = selected_.project_row(raw);
  const std::vector<double> scaled = scaler_.transform_row(projected);
  double sum = 0.0;
  for (const Mlp& net : members_) {
    sum += net.predict_one(scaled).front();
  }
  return sum / static_cast<double>(members_.size());
}

std::uint32_t PredictorSnapshot::predict(
    std::size_t benchmark_id, const ExecutionStatistics& stats) const {
  (void)benchmark_id;
  return target_to_size(predict_raw(stats));
}

}  // namespace hetsched
