// Predictor persistence.
//
// A deployed scheduler trains its ANN offline (Section IV.D) and ships
// the weights; this module snapshots a trained best-size predictor —
// selected features, scaler moments, and every bagged net's parameters —
// to a versioned text format and reloads it as a ready-to-use
// SizePredictor. Doubles are written in hexfloat so round trips are
// bit-exact.
#pragma once

#include <iosfwd>
#include <vector>

#include "ann/mlp.hpp"
#include "core/predictor.hpp"

namespace hetsched {

// A self-contained, loadable predictor: the inference side of
// BestSizePredictor without the training machinery.
class PredictorSnapshot final : public SizePredictor {
 public:
  // Snapshot a trained predictor.
  static PredictorSnapshot from(const BestSizePredictor& predictor);

  // Serialisation. save() writes the versioned text format; load()
  // throws std::runtime_error on malformed input.
  void save(std::ostream& out) const;
  static PredictorSnapshot load(std::istream& in);

  std::uint32_t predict(std::size_t benchmark_id,
                        const ExecutionStatistics& stats) const override;
  double predict_raw(const ExecutionStatistics& stats) const;

  std::size_t member_count() const { return members_.size(); }
  const SelectedFeatures& selected_features() const { return selected_; }

 private:
  PredictorSnapshot() = default;

  SelectedFeatures selected_;
  StandardScaler scaler_;
  std::vector<Mlp> members_;
};

}  // namespace hetsched
