#include "core/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/contracts.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {

namespace {

namespace st = snapshot_text;

void write_job(std::ostream& out, const Job& job) {
  out << job.job_id << ' ' << job.benchmark_id << ' ' << job.arrival << ' '
      << job.priority << ' ' << (job.deadline.has_value() ? 1 : 0);
  if (job.deadline.has_value()) out << ' ' << *job.deadline;
  out << ' ' << job.cp_rank << ' ';
  st::write_double(out, job.remaining_fraction);
  out << "\n";
}

Job read_job(std::istream& in, const std::string& context) {
  Job job;
  job.job_id = st::read_value<std::uint64_t>(in, "job id", context);
  job.benchmark_id = st::read_value<std::size_t>(in, "benchmark id", context);
  job.arrival = st::read_value<SimTime>(in, "job arrival", context);
  job.priority = st::read_value<int>(in, "job priority", context);
  if (st::read_value<int>(in, "deadline flag", context) != 0) {
    job.deadline = st::read_value<SimTime>(in, "job deadline", context);
  }
  job.cp_rank = st::read_value<std::uint32_t>(in, "job cp rank", context);
  job.remaining_fraction =
      st::read_value<double>(in, "remaining fraction", context);
  return job;
}

void expect_token(std::istream& in, const char* token,
                  const std::string& context) {
  std::string got;
  if (!(in >> got) || got != token) {
    st::fail(context, std::string("expected '") + token + "'");
  }
}

}  // namespace

void save_simulation_result(std::ostream& out, const SimulationResult& r) {
  out << "result\nenergies";
  for (const NanoJoules e :
       {r.idle_energy, r.dynamic_energy, r.busy_static_energy, r.cpu_energy,
        r.reconfig_energy, r.profiling_energy, r.tuning_energy}) {
    out << ' ';
    st::write_double(out, e.value());
  }
  out << "\ncounts " << r.makespan << ' ' << r.total_execution_cycles << ' '
      << r.completed_jobs << ' ' << r.stall_events << ' '
      << r.profiling_runs << ' ' << r.tuning_runs << ' '
      << r.reconfigurations << ' ' << r.preemptions << ' '
      << r.jobs_with_deadline << ' ' << r.deadline_misses << ' '
      << r.total_response_cycles << "\n";
  const FaultStats& f = r.faults;
  out << "faults " << f.injected << ' ' << f.core_failures << ' '
      << f.core_recoveries << ' ' << f.jobs_requeued << ' '
      << f.counter_corruptions << ' ' << f.reconfig_failures << ' '
      << f.reconfig_retries << ' ' << f.degraded_executions << ' '
      << f.prediction_fallbacks << ' ' << f.watchdog_fires << "\n";
  out << "per-priority " << r.per_priority.size() << "\n";
  for (const auto& [priority, stats] : r.per_priority) {
    out << priority << ' ' << stats.completed << ' '
        << stats.total_response_cycles << ' ' << stats.deadline_misses
        << "\n";
  }
  out << "per-core " << r.per_core.size() << "\n";
  for (const CoreUsage& usage : r.per_core) {
    out << usage.busy_cycles << ' ' << usage.executions << ' ';
    st::write_double(out, usage.utilization);
    out << "\n";
  }
}

void load_simulation_result(std::istream& in, SimulationResult& r,
                            const std::string& context) {
  expect_token(in, "result", context);
  expect_token(in, "energies", context);
  for (NanoJoules* e :
       {&r.idle_energy, &r.dynamic_energy, &r.busy_static_energy,
        &r.cpu_energy, &r.reconfig_energy, &r.profiling_energy,
        &r.tuning_energy}) {
    *e = NanoJoules(st::read_value<double>(in, "energy", context));
  }
  expect_token(in, "counts", context);
  r.makespan = st::read_value<Cycles>(in, "makespan", context);
  r.total_execution_cycles =
      st::read_value<Cycles>(in, "total execution cycles", context);
  r.completed_jobs =
      st::read_value<std::uint64_t>(in, "completed jobs", context);
  r.stall_events = st::read_value<std::uint64_t>(in, "stall events", context);
  r.profiling_runs =
      st::read_value<std::uint64_t>(in, "profiling runs", context);
  r.tuning_runs = st::read_value<std::uint64_t>(in, "tuning runs", context);
  r.reconfigurations =
      st::read_value<std::uint64_t>(in, "reconfigurations", context);
  r.preemptions = st::read_value<std::uint64_t>(in, "preemptions", context);
  r.jobs_with_deadline =
      st::read_value<std::uint64_t>(in, "jobs with deadline", context);
  r.deadline_misses =
      st::read_value<std::uint64_t>(in, "deadline misses", context);
  r.total_response_cycles =
      st::read_value<Cycles>(in, "total response cycles", context);
  expect_token(in, "faults", context);
  FaultStats& f = r.faults;
  for (std::uint64_t* field :
       {&f.injected, &f.core_failures, &f.core_recoveries, &f.jobs_requeued,
        &f.counter_corruptions, &f.reconfig_failures, &f.reconfig_retries,
        &f.degraded_executions, &f.prediction_fallbacks,
        &f.watchdog_fires}) {
    *field = st::read_value<std::uint64_t>(in, "fault counter", context);
  }
  expect_token(in, "per-priority", context);
  const auto priorities =
      st::read_value<std::size_t>(in, "priority count", context);
  r.per_priority.clear();
  for (std::size_t i = 0; i < priorities; ++i) {
    const int priority = st::read_value<int>(in, "priority level", context);
    SimulationResult::PriorityStats stats;
    stats.completed =
        st::read_value<std::uint64_t>(in, "priority completed", context);
    stats.total_response_cycles =
        st::read_value<Cycles>(in, "priority response cycles", context);
    stats.deadline_misses =
        st::read_value<std::uint64_t>(in, "priority misses", context);
    r.per_priority.emplace(priority, stats);
  }
  expect_token(in, "per-core", context);
  const auto core_count =
      st::read_value<std::size_t>(in, "core usage count", context);
  r.per_core.assign(core_count, CoreUsage{});
  for (CoreUsage& usage : r.per_core) {
    usage.busy_cycles = st::read_value<Cycles>(in, "core busy", context);
    usage.executions =
        st::read_value<std::uint64_t>(in, "core executions", context);
    usage.utilization =
        st::read_value<double>(in, "core utilization", context);
  }
}

std::string_view to_string(ExecutionKind k) {
  switch (k) {
    case ExecutionKind::kNormal: return "normal";
    case ExecutionKind::kProfiling: return "profiling";
    case ExecutionKind::kTuning: return "tuning";
  }
  return "unknown";
}

MulticoreSimulator::MulticoreSimulator(const SystemConfig& system,
                                       const CharacterizedSuite& suite,
                                       const EnergyModel& energy,
                                       SchedulerPolicy& policy,
                                       QueueDiscipline discipline)
    : system_(system), suite_(suite), energy_(energy), policy_(policy),
      discipline_(discipline), index_(system_), table_(suite.size()) {
  HETSCHED_REQUIRE(system_.valid());
  HETSCHED_REQUIRE(suite_.size() > 0);
  cores_.reserve(system_.cores.size());
  for (const CoreSpec& spec : system_.cores) {
    CoreRuntime core;
    core.spec = spec;
    core.current_config = spec.initial_config;
    cores_.push_back(core);
  }
  running_jobs_.resize(cores_.size());
  started_at_.resize(cores_.size(), 0);
  running_profile_.resize(cores_.size(), nullptr);
  hung_.resize(cores_.size(), 0);
  result_.per_core.resize(cores_.size());
}

void MulticoreSimulator::set_fault_injector(FaultInjector* injector,
                                            ResilienceConfig resilience) {
  HETSCHED_REQUIRE(!ran_);
  if (injector != nullptr) {
    for (const CoreFaultEvent& event : injector->plan().core_events) {
      HETSCHED_REQUIRE(event.core < cores_.size());
    }
  }
  injector_ = injector;
  resilience_ = resilience;
}

SystemView MulticoreSimulator::make_view(SimTime now) {
  return SystemView(now, system_, cores_, table_, energy_, running_jobs_,
                    &result_.faults, &index_, naive_dispatch_);
}

void MulticoreSimulator::record_fault(FaultRecord::Kind kind, SimTime now,
                                      std::size_t core,
                                      std::uint64_t job_id) {
  if (observer_ != nullptr) {
    observer_->on_fault(FaultRecord{now, core, job_id, kind});
  }
}

void MulticoreSimulator::accrue_idle(std::size_t core, SimTime until) {
  CoreRuntime& c = cores_[core];
  HETSCHED_ASSERT(!c.busy);
  if (until > c.idle_since) {
    const double idle_cycles = static_cast<double>(until - c.idle_since);
    result_.idle_energy +=
        energy_.idle_per_cycle(c.current_config) * idle_cycles;
    if (observer_ != nullptr) {
      observer_->on_idle(IdleEvent{core, c.idle_since, until});
    }
    c.idle_since = until;
  }
}

Cycles MulticoreSimulator::reconfigure_with_retries(
    std::size_t core_index, const CacheConfig& wanted,
    std::uint64_t job_id, SimTime now) {
  CoreRuntime& core = cores_[core_index];
  // Each attempt drives the tuner: charge write-back traffic for (on
  // average) half the lines being dirty.
  const auto charge_flush = [&] {
    const double flushed =
        static_cast<double>(core.current_config.num_lines()) / 2.0;
    result_.reconfig_energy +=
        energy_.writeback_energy(core.current_config) * flushed;
  };

  if (injector_ == nullptr ||
      injector_->plan().reconfig_failure_rate <= 0.0) {
    charge_flush();
    ++result_.reconfigurations;
    core.current_config = wanted;
    if (observer_ != nullptr) {
      observer_->on_reconfig(
          ReconfigEvent{now, core_index, job_id, 0, true, 0});
    }
    return 0;
  }

  // Injected reconfiguration failures leave the cache stuck in its
  // previous configuration; retry with exponential backoff, then degrade
  // to running as-is.
  Cycles backoff = 0;
  Cycles wait = resilience_.reconfig_backoff_base;
  for (std::uint32_t attempt = 0;
       attempt <= resilience_.reconfig_max_retries; ++attempt) {
    charge_flush();
    if (!injector_->reconfig_fails(core_index, job_id,
                                   static_cast<int>(attempt))) {
      ++result_.reconfigurations;
      core.current_config = wanted;
      if (observer_ != nullptr) {
        observer_->on_reconfig(
            ReconfigEvent{now, core_index, job_id, attempt, true, 0});
      }
      return backoff;
    }
    ++result_.faults.injected;
    ++result_.faults.reconfig_failures;
    record_fault(FaultRecord::Kind::kReconfigFailure, now, core_index,
                 job_id);
    const bool retries = attempt < resilience_.reconfig_max_retries;
    if (observer_ != nullptr) {
      observer_->on_reconfig(ReconfigEvent{now, core_index, job_id, attempt,
                                           false, retries ? wait : 0});
    }
    if (retries) {
      backoff += wait;
      wait *= 2;
      ++result_.faults.reconfig_retries;
    }
  }
  ++result_.faults.degraded_executions;
  return backoff;
}

void MulticoreSimulator::start_execution(const Job& job,
                                         const Decision& decision,
                                         SimTime now) {
  HETSCHED_REQUIRE(decision.core < cores_.size());
  CoreRuntime& core = cores_[decision.core];
  HETSCHED_REQUIRE(!core.busy);
  HETSCHED_REQUIRE(core.online);
  HETSCHED_REQUIRE(decision.config.valid());
  HETSCHED_REQUIRE(decision.config.size_bytes ==
                   core.spec.cache_size_bytes);
  HETSCHED_REQUIRE(decision.exec != ExecutionKind::kProfiling ||
                   core.spec.can_profile);
  HETSCHED_REQUIRE(job.remaining_fraction > 0.0 &&
                   job.remaining_fraction <= 1.0);

  // Close the idle interval under the outgoing configuration.
  accrue_idle(decision.core, now);

  // Reconfigure the L1 if the decision asks for a different shape; under
  // injected failures this may stall (backoff) or leave the previous
  // configuration in place (degraded execution).
  Cycles backoff = 0;
  if (!(core.current_config == decision.config)) {
    backoff = reconfigure_with_retries(decision.core, decision.config,
                                       job.job_id, now);
    if (backoff > 0) {
      // The core sits waiting between retry attempts.
      result_.idle_energy += energy_.idle_per_cycle(core.current_config) *
                             static_cast<double>(backoff);
    }
  }

  // The execution replays the configuration actually in effect — the
  // stale one when reconfiguration degraded.
  const BenchmarkProfile& profile = suite_.benchmark(job.benchmark_id);
  const ConfigProfile& cp = profile.profile_for(core.current_config);
  running_profile_[decision.core] = &cp;
  const auto duration = std::max<Cycles>(
      1, static_cast<Cycles>(std::llround(
             job.remaining_fraction *
             static_cast<double>(cp.energy.total_cycles))));

  // Stuck-job injection: the execution wedges and holds the core until
  // the watchdog timeout instead of completing. Jobs whose watchdog
  // retry budget is spent are dispatched normally.
  bool hangs = false;
  if (injector_ != nullptr && injector_->plan().stuck_job_rate > 0.0) {
    const auto it = watchdog_counts_.find(job.job_id);
    const std::uint32_t fires =
        it == watchdog_counts_.end() ? 0 : it->second;
    if (fires < resilience_.watchdog_max_retries) {
      hangs = injector_->job_hangs(job.job_id);
    }
  }

  core.busy = true;
  index_.mark_busy(decision.core);
  core.busy_until = hangs ? now + resilience_.watchdog_timeout
                          : now + backoff + duration;
  core.running_job_id = job.job_id;
  core.running_benchmark = job.benchmark_id;
  core.running_kind = decision.exec;
  ++core.executions;
  running_jobs_[decision.core] = job;
  started_at_[decision.core] = hangs ? now : now + backoff;
  hung_[decision.core] = hangs ? 1 : 0;

  if (observer_ != nullptr) {
    observer_->on_dispatch(DispatchEvent{
        now, decision.core, job.job_id, job.benchmark_id, decision.exec,
        backoff, hangs ? resilience_.watchdog_timeout : duration, hangs});
  }

  completions_.push(Completion{core.busy_until, decision.core, job.job_id});
}

double MulticoreSimulator::settle_execution(std::size_t core_index,
                                            SimTime now) {
  CoreRuntime& core = cores_[core_index];
  HETSCHED_ASSERT(core.busy);
  const ConfigProfile& cp = *running_profile_[core_index];

  // `started_at` can still lie ahead of `now` if the execution is cut
  // down during a reconfiguration-retry backoff window: nothing ran yet.
  const Cycles executed = now > started_at_[core_index]
                              ? now - started_at_[core_index]
                              : 0;
  const double portion = static_cast<double>(executed) /
                         static_cast<double>(cp.energy.total_cycles);

  result_.dynamic_energy += cp.energy.dynamic_energy * portion;
  result_.busy_static_energy += cp.energy.static_energy * portion;
  result_.cpu_energy += cp.energy.cpu_energy * portion;
  core.busy_cycles += executed;
  result_.total_execution_cycles += executed;
  return portion;
}

void MulticoreSimulator::finish_execution(std::size_t core_index,
                                          SimTime now) {
  CoreRuntime& core = cores_[core_index];
  HETSCHED_ASSERT(core.busy);
  HETSCHED_ASSERT(core.busy_until == now);

  const double portion = settle_execution(core_index, now);
  const std::size_t benchmark = core.running_benchmark;
  const ConfigProfile& cp = *running_profile_[core_index];
  const Job& job = running_jobs_[core_index];

  ++result_.completed_jobs;
  result_.total_response_cycles += now - job.arrival;
  if (cached_level_ == nullptr || cached_priority_ != job.priority) {
    cached_priority_ = job.priority;
    cached_level_ = &result_.per_priority[job.priority];
  }
  SimulationResult::PriorityStats& level = *cached_level_;
  ++level.completed;
  level.total_response_cycles += now - job.arrival;
  if (job.deadline.has_value()) {
    ++result_.jobs_with_deadline;
    if (now > *job.deadline) {
      ++result_.deadline_misses;
      ++level.deadline_misses;
    }
  }

  switch (core.running_kind) {
    case ExecutionKind::kProfiling:
      ++result_.profiling_runs;
      result_.profiling_energy += cp.energy.total() * portion;
      break;
    case ExecutionKind::kTuning:
      ++result_.tuning_runs;
      result_.tuning_energy += cp.energy.total() * portion;
      break;
    case ExecutionKind::kNormal:
      break;
  }

  // Hardware counters: the measured energy/cycles of a complete execution
  // in this configuration land in the profiling table regardless of
  // policy. (Recorded values are full-execution magnitudes.)
  table_.record(benchmark, core.current_config,
                Observation{cp.energy.total(), cp.energy.dynamic_energy,
                            cp.energy.total_cycles});

  const bool was_profiling = core.running_kind == ExecutionKind::kProfiling;
  if (was_profiling) {
    const BenchmarkProfile& profile = suite_.benchmark(benchmark);
    ProfilingTable::Entry& entry = table_.entry(benchmark);
    entry.profiled = true;
    entry.statistics = profile.base_statistics;
    // Counter corruption: the recorded statistics — the only channel to
    // the policy — may be noisy or garbage. The policy's sanity guard is
    // responsible for surviving this.
    if (injector_ != nullptr &&
        injector_->corrupt_statistics(benchmark, entry.statistics)) {
      ++result_.faults.injected;
      ++result_.faults.counter_corruptions;
      record_fault(FaultRecord::Kind::kCounterCorruption, now, core_index,
                   job.job_id);
    }
  }

  if (observer_ != nullptr && now > started_at_[core_index]) {
    observer_->on_slice(ScheduledSlice{job.job_id, benchmark, core_index,
                                       started_at_[core_index], now,
                                       core.current_config,
                                       core.running_kind, true});
  }

  core.busy = false;
  index_.mark_idle(core_index);
  core.idle_since = now;
  result_.makespan = std::max(result_.makespan, now);

  if (was_profiling) {
    SystemView view = make_view(now);
    policy_.on_profiled(benchmark, view);
  }
}

void MulticoreSimulator::preempt_execution(std::size_t core_index,
                                           SimTime now) {
  CoreRuntime& core = cores_[core_index];
  HETSCHED_REQUIRE(core.busy);
  HETSCHED_REQUIRE(core.running_kind != ExecutionKind::kProfiling &&
                   "profiling runs cannot be preempted");

  if (hung_[core_index]) {
    // Preempting a wedged execution: no progress to settle; the stuck
    // window burned idle power. The victim re-queues unprogressed.
    if (now > started_at_[core_index]) {
      result_.idle_energy +=
          energy_.idle_per_cycle(core.current_config) *
          static_cast<double>(now - started_at_[core_index]);
    }
    ready_.push_front(running_jobs_[core_index]);
    ++result_.preemptions;
    if (observer_ != nullptr) {
      observer_->on_preempt(PreemptEvent{
          now, core_index, running_jobs_[core_index].job_id, true});
    }
    hung_[core_index] = 0;
    core.busy = false;
    index_.mark_idle(core_index);
    core.idle_since = now;
    return;
  }

  const double portion = settle_execution(core_index, now);
  Job victim = running_jobs_[core_index];
  victim.remaining_fraction =
      std::max(0.0, victim.remaining_fraction - portion);
  if (victim.remaining_fraction < 1e-9) {
    // Degenerate preempt-at-completion-boundary: keep a token remainder
    // so the victim still flows through a final (1-cycle) execution and
    // completion accounting stays uniform.
    victim.remaining_fraction = 1e-9;
  }
  if (observer_ != nullptr && now > started_at_[core_index]) {
    observer_->on_slice(ScheduledSlice{
        victim.job_id, victim.benchmark_id, core_index,
        started_at_[core_index], now, core.current_config,
        core.running_kind, false});
  }
  ready_.push_front(victim);
  ++result_.preemptions;
  if (observer_ != nullptr) {
    observer_->on_preempt(PreemptEvent{now, core_index, victim.job_id,
                                       false});
  }

  core.busy = false;
  index_.mark_idle(core_index);
  core.idle_since = now;
  // The stale completion entry for this execution is skipped via job_id
  // validation when it surfaces.
}

void MulticoreSimulator::apply_core_event(const CoreFaultEvent& event,
                                          SimTime now) {
  CoreRuntime& core = cores_[event.core];
  if (event.fail) {
    if (!core.online) return;  // already down: redundant event
    ++result_.faults.injected;
    ++result_.faults.core_failures;
    std::uint64_t victim_id = 0;
    if (core.busy) {
      // The core dies mid-execution: settle the running job pro-rata
      // (the preemption model) and re-queue it to resume elsewhere.
      Job victim = running_jobs_[event.core];
      victim_id = victim.job_id;
      if (hung_[event.core]) {
        // A wedged execution made no progress; the stuck window burned
        // idle power.
        if (now > started_at_[event.core]) {
          result_.idle_energy +=
              energy_.idle_per_cycle(core.current_config) *
              static_cast<double>(now - started_at_[event.core]);
        }
        hung_[event.core] = 0;
      } else {
        const double portion = settle_execution(event.core, now);
        victim.remaining_fraction =
            std::max(1e-9, victim.remaining_fraction - portion);
        if (observer_ != nullptr && now > started_at_[event.core]) {
          observer_->on_slice(ScheduledSlice{
              victim.job_id, victim.benchmark_id, event.core,
              started_at_[event.core], now, core.current_config,
              core.running_kind, false});
        }
      }
      ready_.push_front(victim);
      ++result_.faults.jobs_requeued;
      core.busy = false;
      // The stale completion entry is discarded via the liveness check
      // when it surfaces.
    } else {
      // Close the idle interval: a powered-off core stops leaking.
      accrue_idle(event.core, now);
    }
    core.online = false;
    // mark_offline handles both prior states: clears the idle bit when
    // the core was idle, no-op on the bit when it was busy.
    index_.mark_offline(event.core);
    record_fault(FaultRecord::Kind::kCoreFailure, now, event.core,
                 victim_id);
  } else {
    if (core.online) return;  // redundant recovery
    ++result_.faults.core_recoveries;
    core.online = true;
    index_.mark_online(event.core);
    core.idle_since = now;
    record_fault(FaultRecord::Kind::kCoreRecovery, now, event.core, 0);
  }
}

void MulticoreSimulator::expire_watchdog(std::size_t core_index,
                                         SimTime now) {
  CoreRuntime& core = cores_[core_index];
  HETSCHED_ASSERT(core.busy && hung_[core_index]);
  const Job& victim = running_jobs_[core_index];

  ++result_.faults.injected;
  ++result_.faults.watchdog_fires;
  ++result_.faults.jobs_requeued;
  ++watchdog_counts_[victim.job_id];

  // The wedged core burned idle power for the whole stuck window; the
  // job made no progress and re-queues at the front for re-dispatch.
  if (now > started_at_[core_index]) {
    result_.idle_energy +=
        energy_.idle_per_cycle(core.current_config) *
        static_cast<double>(now - started_at_[core_index]);
  }
  ready_.push_front(victim);
  record_fault(FaultRecord::Kind::kWatchdogFire, now, core_index,
               victim.job_id);

  hung_[core_index] = 0;
  core.busy = false;
  index_.mark_idle(core_index);
  core.idle_since = now;
}

void MulticoreSimulator::apply_discipline() {
  if (discipline_ == QueueDiscipline::kFifo || ready_.size() < 2) return;
  if (discipline_ == QueueDiscipline::kEdf) {
    std::stable_sort(ready_.begin(), ready_.end(),
                     [](const Job& a, const Job& b) {
                       const SimTime da = a.deadline.value_or(
                           std::numeric_limits<SimTime>::max());
                       const SimTime db = b.deadline.value_or(
                           std::numeric_limits<SimTime>::max());
                       return da < db;
                     });
  } else {  // kPriority
    std::stable_sort(ready_.begin(), ready_.end(),
                     [](const Job& a, const Job& b) {
                       if (a.priority != b.priority) {
                         return a.priority > b.priority;
                       }
                       return a.arrival < b.arrival;
                     });
  }
}

void MulticoreSimulator::try_schedule(SimTime now) {
  apply_discipline();

  // Consider each currently queued job at most once per invocation;
  // stalled jobs go to the back of the queue (Section IV.A).
  std::size_t attempts = ready_.size();
  bool any_started = false;
  while (attempts-- > 0 && !ready_.empty()) {
    const bool has_idle =
        naive_dispatch_
            ? std::any_of(cores_.begin(), cores_.end(),
                          [](const CoreRuntime& c) {
                            return !c.busy && c.online;
                          })
            : index_.any_idle();
    if (!has_idle && !policy_.can_preempt()) break;

    Job job = ready_.front();
    ready_.pop_front();

    SystemView view = make_view(now);
    index_.note_decision();
    const Decision decision = policy_.decide(job, view);
    switch (decision.kind) {
      case Decision::Kind::kRun:
        start_execution(job, decision, now);
        any_started = true;
        break;
      case Decision::Kind::kPreempt:
        HETSCHED_REQUIRE(policy_.can_preempt());
        preempt_execution(decision.core, now);
        start_execution(job, decision, now);
        any_started = true;
        break;
      case Decision::Kind::kStall:
        ++result_.stall_events;
        if (observer_ != nullptr) {
          observer_->on_stall(StallEvent{now, job.job_id, job.benchmark_id});
        }
        ready_.push_back(job);
        break;
    }
  }

  // Liveness: with every core idle a sound policy must schedule something
  // (its best core is idle by definition), otherwise the simulation could
  // deadlock with no future event. Under fault injection a stall can be
  // legitimate (e.g. every profiling core offline until its scheduled
  // recovery); the run loop then advances to the next fault event or
  // reports the deadlock.
  if (!ready_.empty() && completions_.empty() && injector_ == nullptr) {
    HETSCHED_REQUIRE(any_started);
  }
}

SimulationResult MulticoreSimulator::run(
    const std::vector<JobArrival>& arrivals) {
  HETSCHED_REQUIRE(!arrivals.empty());
  HETSCHED_REQUIRE(std::is_sorted(
      arrivals.begin(), arrivals.end(),
      [](const JobArrival& a, const JobArrival& b) {
        return a.arrival < b.arrival;
      }));
  VectorArrivalSource source(arrivals);
  return run_stream(source);
}

SimulationResult MulticoreSimulator::run_stream(ArrivalSource& source) {
  start_stream(source);
  advance_stream_until(source, std::numeric_limits<SimTime>::max());
  return finish_stream();
}

void MulticoreSimulator::start_stream(ArrivalSource& source) {
  HETSCHED_REQUIRE(!ran_);
  ran_ = true;
  streaming_ = true;
  // One-arrival lookahead: the only piece of the stream ever held.
  pending_ = source.next();
  HETSCHED_REQUIRE(pending_.has_value() && "empty arrival stream");
}

bool MulticoreSimulator::advance_stream_until(ArrivalSource& source,
                                              SimTime limit) {
  HETSCHED_REQUIRE(streaming_);

  while (pending_.has_value() || !completions_.empty() || !ready_.empty()) {
    // Next event time: earliest completion, arrival or fault event (a
    // scheduled recovery can be the only event able to unblock queued
    // work).
    const bool have_completion = !completions_.empty();
    const bool have_arrival = pending_.has_value();
    const std::optional<SimTime> fault_time =
        injector_ != nullptr ? injector_->next_core_event_time()
                             : std::nullopt;
    if (!have_completion && !have_arrival && !fault_time.has_value()) {
      // Only reachable under fault injection: the liveness guard in
      // try_schedule forbids this state in fault-free runs.
      HETSCHED_ASSERT(injector_ != nullptr);
      throw std::runtime_error(
          "MulticoreSimulator: deadlock — " +
          std::to_string(ready_.size()) +
          " job(s) pending with every event source exhausted (cores "
          "offline without a scheduled recovery?)");
    }
    SimTime now = std::numeric_limits<SimTime>::max();
    if (have_completion) now = std::min(now, completions_.top().time);
    if (have_arrival) now = std::min(now, pending_->arrival);
    if (fault_time.has_value()) now = std::min(now, *fault_time);

    // Pause at the limit without touching anything scheduled at or after
    // it: the caller can serialize here (or just breathe) and a later
    // advance call resumes bit-identically.
    if (now >= limit) return true;

    // Retire every live completion at `now` (deterministic core order);
    // entries orphaned by preemption or core failure are discarded, and
    // hung executions surface as watchdog expiries.
    while (!completions_.empty() && completions_.top().time == now) {
      const Completion completion = completions_.top();
      completions_.pop();
      const CoreRuntime& core = cores_[completion.core];
      const bool live = core.busy &&
                        core.running_job_id == completion.job_id &&
                        core.busy_until == completion.time;
      if (live) {
        if (hung_[completion.core]) {
          expire_watchdog(completion.core, now);
        } else {
          finish_execution(completion.core, now);
        }
      }
    }
    // Apply every due core failure/recovery (jobs finishing exactly at
    // the failure cycle above still completed).
    if (injector_ != nullptr) {
      for (const CoreFaultEvent& event : injector_->take_core_events(now)) {
        apply_core_event(event, now);
      }
    }
    // Completions retired above may have fed back into the arrival
    // source (DAG release-on-completion): a successor released at `now`
    // can sort before the held lookahead, or refill an exhausted stream.
    // Push the stale lookahead back and re-poll before admitting.
    if (source.lookahead_stale()) {
      if (pending_.has_value()) source.unget(*pending_);
      pending_ = source.next();
      HETSCHED_REQUIRE((!pending_.has_value() || pending_->arrival >= now) &&
                       "released arrival must not precede its trigger");
    }
    // Admit every arrival at `now`.
    while (pending_.has_value() && pending_->arrival == now) {
      Job job;
      job.job_id = next_job_id_++;
      job.benchmark_id = pending_->benchmark_id;
      job.arrival = now;
      job.priority = pending_->priority;
      job.deadline = pending_->deadline;
      job.cp_rank = pending_->cp_rank;
      ready_.push_back(job);
      ++admitted_;
      if (observer_ != nullptr) {
        observer_->on_arrival(ArrivalEvent{now, job.job_id,
                                           job.benchmark_id, job.priority,
                                           job.cp_rank});
      }
      pending_ = source.next();
      HETSCHED_REQUIRE((!pending_.has_value() || pending_->arrival >= now) &&
                       "arrival stream must be non-decreasing in time");
    }

    // Queue depth after admission, before scheduling: the round's
    // high-water mark of queued work.
    if (observer_ != nullptr) {
      observer_->on_queue_depth(QueueSample{now, ready_.size()});
    }

    try_schedule(now);
  }
  return false;
}

SimulationResult MulticoreSimulator::finish_stream() {
  HETSCHED_REQUIRE(streaming_);
  HETSCHED_REQUIRE(!pending_.has_value() && completions_.empty() &&
                   ready_.empty() && "stream not drained");
  streaming_ = false;

  // Close every core's trailing idle interval at the makespan; cores
  // still offline at the end accrued nothing since their failure.
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    HETSCHED_ASSERT(!cores_[i].busy);
    if (cores_[i].online) accrue_idle(i, result_.makespan);
  }

  for (std::size_t i = 0; i < cores_.size(); ++i) {
    result_.per_core[i].busy_cycles = cores_[i].busy_cycles;
    result_.per_core[i].executions = cores_[i].executions;
    result_.per_core[i].utilization =
        result_.makespan == 0
            ? 0.0
            : static_cast<double>(cores_[i].busy_cycles) /
                  static_cast<double>(result_.makespan);
  }
  HETSCHED_ASSERT(result_.completed_jobs == admitted_);
  return result_;
}

void MulticoreSimulator::save_stream_state(std::ostream& out) const {
  HETSCHED_REQUIRE(streaming_);
  out << "simulator " << cores_.size() << "\n";
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const CoreRuntime& c = cores_[i];
    out << "core " << i << ' ' << c.current_config.name() << ' '
        << (c.busy ? 1 : 0) << ' ' << (c.online ? 1 : 0) << ' '
        << c.busy_until << ' ' << c.running_job_id << ' '
        << c.running_benchmark << ' ' << static_cast<int>(c.running_kind)
        << ' ' << c.idle_since << ' ' << c.busy_cycles << ' '
        << c.executions << "\n";
  }
  // Every running-job slot verbatim (stale slots included) so restored
  // memory is byte-stable, not just behaviourally equivalent.
  out << "running-jobs " << running_jobs_.size() << "\n";
  for (const Job& job : running_jobs_) write_job(out, job);
  out << "started-at";
  for (const SimTime t : started_at_) out << ' ' << t;
  out << "\nhung";
  for (const char h : hung_) out << ' ' << static_cast<int>(h);
  out << "\nready " << ready_.size() << "\n";
  for (const Job& job : ready_) write_job(out, job);
  // Drain a copy of the completion heap: pops come out sorted by
  // (time, core), a canonical order independent of heap layout.
  auto heap = completions_;
  out << "completions " << heap.size() << "\n";
  while (!heap.empty()) {
    const Completion c = heap.top();
    heap.pop();
    out << c.time << ' ' << c.core << ' ' << c.job_id << "\n";
  }
  out << "watchdog " << watchdog_counts_.size() << "\n";
  for (const auto& [job_id, fires] : watchdog_counts_) {
    out << job_id << ' ' << fires << "\n";
  }
  table_.save_state(out);
  save_simulation_result(out, result_);
  out << "pending " << (pending_.has_value() ? 1 : 0);
  if (pending_.has_value()) {
    out << ' ' << pending_->benchmark_id << ' ' << pending_->arrival << ' '
        << pending_->priority << ' '
        << (pending_->deadline.has_value() ? 1 : 0);
    if (pending_->deadline.has_value()) out << ' ' << *pending_->deadline;
    out << ' ' << pending_->cp_rank;
  }
  out << "\nadmitted " << admitted_ << ' ' << next_job_id_ << "\n";
}

void MulticoreSimulator::restore_stream_state(std::istream& in,
                                              const std::string& context) {
  HETSCHED_REQUIRE(!ran_);
  expect_token(in, "simulator", context);
  const auto cores = st::read_value<std::size_t>(in, "core count", context);
  if (cores != cores_.size()) {
    st::fail(context, "core count does not match the configured system");
  }
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    expect_token(in, "core", context);
    if (st::read_value<std::size_t>(in, "core index", context) != i) {
      st::fail(context, "core indices out of order");
    }
    CoreRuntime& c = cores_[i];
    std::string config_name;
    if (!(in >> config_name)) {
      st::fail(context, "cannot read core configuration");
    }
    const auto config = CacheConfig::parse(config_name);
    if (!config.has_value() ||
        config->size_bytes != c.spec.cache_size_bytes) {
      st::fail(context, "core configuration '" + config_name +
                            "' is invalid for this system");
    }
    c.current_config = *config;
    c.busy = st::read_value<int>(in, "core busy", context) != 0;
    c.online = st::read_value<int>(in, "core online", context) != 0;
    c.busy_until = st::read_value<SimTime>(in, "core busy-until", context);
    c.running_job_id =
        st::read_value<std::uint64_t>(in, "core running job", context);
    c.running_benchmark =
        st::read_value<std::size_t>(in, "core running benchmark", context);
    const int kind = st::read_value<int>(in, "core running kind", context);
    if (kind < 0 || kind > static_cast<int>(ExecutionKind::kTuning)) {
      st::fail(context, "core running kind out of range");
    }
    c.running_kind = static_cast<ExecutionKind>(kind);
    c.idle_since = st::read_value<SimTime>(in, "core idle-since", context);
    c.busy_cycles = st::read_value<Cycles>(in, "core busy cycles", context);
    c.executions =
        st::read_value<std::uint64_t>(in, "core executions", context);
    if (c.running_benchmark >= suite_.size()) {
      st::fail(context, "core running benchmark out of range");
    }
  }
  // Derived per-core state: the running-execution profile pointer is
  // re-resolved from the restored (benchmark, configuration) pair.
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    running_profile_[i] =
        cores_[i].busy
            ? &suite_.benchmark(cores_[i].running_benchmark)
                   .profile_for(cores_[i].current_config)
            : nullptr;
  }
  expect_token(in, "running-jobs", context);
  if (st::read_value<std::size_t>(in, "running-job count", context) !=
      running_jobs_.size()) {
    st::fail(context, "running-job count does not match core count");
  }
  for (Job& job : running_jobs_) job = read_job(in, context);
  expect_token(in, "started-at", context);
  for (SimTime& t : started_at_) {
    t = st::read_value<SimTime>(in, "started-at", context);
  }
  expect_token(in, "hung", context);
  for (char& h : hung_) {
    h = static_cast<char>(st::read_value<int>(in, "hung flag", context));
  }
  expect_token(in, "ready", context);
  const auto queued =
      st::read_value<std::size_t>(in, "ready-queue size", context);
  ready_.clear();
  for (std::size_t i = 0; i < queued; ++i) {
    Job job = read_job(in, context);
    if (job.benchmark_id >= suite_.size()) {
      st::fail(context, "queued benchmark id out of range");
    }
    ready_.push_back(job);
  }
  expect_token(in, "completions", context);
  const auto in_flight =
      st::read_value<std::size_t>(in, "completion count", context);
  while (!completions_.empty()) completions_.pop();
  for (std::size_t i = 0; i < in_flight; ++i) {
    Completion c;
    c.time = st::read_value<SimTime>(in, "completion time", context);
    c.core = st::read_value<std::size_t>(in, "completion core", context);
    c.job_id = st::read_value<std::uint64_t>(in, "completion job", context);
    if (c.core >= cores_.size()) {
      st::fail(context, "completion core out of range");
    }
    completions_.push(c);
  }
  expect_token(in, "watchdog", context);
  const auto watchdogs =
      st::read_value<std::size_t>(in, "watchdog count", context);
  watchdog_counts_.clear();
  for (std::size_t i = 0; i < watchdogs; ++i) {
    const auto job_id =
        st::read_value<std::uint64_t>(in, "watchdog job", context);
    watchdog_counts_[job_id] =
        st::read_value<std::uint32_t>(in, "watchdog fires", context);
  }
  table_.restore_state(in, context);
  load_simulation_result(in, result_, context);
  cached_level_ = nullptr;  // result_ was replaced; map nodes are new
  if (result_.per_core.size() != cores_.size()) {
    st::fail(context, "per-core usage count does not match");
  }
  expect_token(in, "pending", context);
  pending_.reset();
  if (st::read_value<int>(in, "pending flag", context) != 0) {
    JobArrival arrival;
    arrival.benchmark_id =
        st::read_value<std::size_t>(in, "pending benchmark", context);
    arrival.arrival = st::read_value<SimTime>(in, "pending arrival", context);
    arrival.priority = st::read_value<int>(in, "pending priority", context);
    if (st::read_value<int>(in, "pending deadline flag", context) != 0) {
      arrival.deadline =
          st::read_value<SimTime>(in, "pending deadline", context);
    }
    arrival.cp_rank =
        st::read_value<std::uint32_t>(in, "pending cp rank", context);
    if (arrival.benchmark_id >= suite_.size()) {
      st::fail(context, "pending benchmark id out of range");
    }
    pending_ = arrival;
  }
  expect_token(in, "admitted", context);
  admitted_ = st::read_value<std::uint64_t>(in, "admitted count", context);
  next_job_id_ = st::read_value<std::uint64_t>(in, "next job id", context);
  // The index is derived state: rebuild it from the restored cores
  // instead of serializing it, so checkpoints stay format-stable and the
  // resumed run is bit-identical by construction.
  index_.rebuild(cores_);
  ran_ = true;
  streaming_ = true;
}

}  // namespace hetsched
