#include "core/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace hetsched {

std::string_view to_string(ExecutionKind k) {
  switch (k) {
    case ExecutionKind::kNormal: return "normal";
    case ExecutionKind::kProfiling: return "profiling";
    case ExecutionKind::kTuning: return "tuning";
  }
  return "unknown";
}

MulticoreSimulator::MulticoreSimulator(const SystemConfig& system,
                                       const CharacterizedSuite& suite,
                                       const EnergyModel& energy,
                                       SchedulerPolicy& policy,
                                       QueueDiscipline discipline)
    : system_(system), suite_(suite), energy_(energy), policy_(policy),
      discipline_(discipline), table_(suite.size()) {
  HETSCHED_REQUIRE(system_.valid());
  HETSCHED_REQUIRE(suite_.size() > 0);
  cores_.reserve(system_.cores.size());
  for (const CoreSpec& spec : system_.cores) {
    CoreRuntime core;
    core.spec = spec;
    core.current_config = spec.initial_config;
    cores_.push_back(core);
  }
  running_jobs_.resize(cores_.size());
  started_at_.resize(cores_.size(), 0);
  result_.per_core.resize(cores_.size());
}

SystemView MulticoreSimulator::make_view(SimTime now) {
  return SystemView(now, system_, cores_, table_, energy_, running_jobs_);
}

void MulticoreSimulator::accrue_idle(std::size_t core, SimTime until) {
  CoreRuntime& c = cores_[core];
  HETSCHED_ASSERT(!c.busy);
  if (until > c.idle_since) {
    const double idle_cycles = static_cast<double>(until - c.idle_since);
    result_.idle_energy +=
        energy_.idle_per_cycle(c.current_config) * idle_cycles;
    c.idle_since = until;
  }
}

void MulticoreSimulator::start_execution(const Job& job,
                                         const Decision& decision,
                                         SimTime now) {
  HETSCHED_REQUIRE(decision.core < cores_.size());
  CoreRuntime& core = cores_[decision.core];
  HETSCHED_REQUIRE(!core.busy);
  HETSCHED_REQUIRE(decision.config.valid());
  HETSCHED_REQUIRE(decision.config.size_bytes ==
                   core.spec.cache_size_bytes);
  HETSCHED_REQUIRE(decision.exec != ExecutionKind::kProfiling ||
                   core.spec.can_profile);
  HETSCHED_REQUIRE(job.remaining_fraction > 0.0 &&
                   job.remaining_fraction <= 1.0);

  // Close the idle interval under the outgoing configuration.
  accrue_idle(decision.core, now);

  // Reconfigure the L1 if the decision asks for a different shape. The
  // tuner flushes: charge write-back traffic for (on average) half the
  // lines being dirty.
  if (!(core.current_config == decision.config)) {
    const double flushed =
        static_cast<double>(core.current_config.num_lines()) / 2.0;
    result_.reconfig_energy +=
        energy_.writeback_energy(core.current_config) * flushed;
    ++result_.reconfigurations;
    core.current_config = decision.config;
  }

  const BenchmarkProfile& profile = suite_.benchmark(job.benchmark_id);
  const ConfigProfile& cp = profile.profile_for(decision.config);
  const auto duration = std::max<Cycles>(
      1, static_cast<Cycles>(std::llround(
             job.remaining_fraction *
             static_cast<double>(cp.energy.total_cycles))));

  core.busy = true;
  core.busy_until = now + duration;
  core.running_job_id = job.job_id;
  core.running_benchmark = job.benchmark_id;
  core.running_kind = decision.exec;
  ++core.executions;
  running_jobs_[decision.core] = job;
  started_at_[decision.core] = now;

  completions_.push(Completion{core.busy_until, decision.core, job.job_id});
}

double MulticoreSimulator::settle_execution(std::size_t core_index,
                                            SimTime now) {
  CoreRuntime& core = cores_[core_index];
  HETSCHED_ASSERT(core.busy);
  const BenchmarkProfile& profile =
      suite_.benchmark(core.running_benchmark);
  const ConfigProfile& cp = profile.profile_for(core.current_config);

  const Cycles executed = now - started_at_[core_index];
  const double portion = static_cast<double>(executed) /
                         static_cast<double>(cp.energy.total_cycles);

  result_.dynamic_energy += cp.energy.dynamic_energy * portion;
  result_.busy_static_energy += cp.energy.static_energy * portion;
  result_.cpu_energy += cp.energy.cpu_energy * portion;
  core.busy_cycles += executed;
  result_.total_execution_cycles += executed;
  return portion;
}

void MulticoreSimulator::finish_execution(std::size_t core_index,
                                          SimTime now) {
  CoreRuntime& core = cores_[core_index];
  HETSCHED_ASSERT(core.busy);
  HETSCHED_ASSERT(core.busy_until == now);

  const double portion = settle_execution(core_index, now);
  const std::size_t benchmark = core.running_benchmark;
  const BenchmarkProfile& profile = suite_.benchmark(benchmark);
  const ConfigProfile& cp = profile.profile_for(core.current_config);
  const Job& job = running_jobs_[core_index];

  ++result_.completed_jobs;
  result_.total_response_cycles += now - job.arrival;
  SimulationResult::PriorityStats& level =
      result_.per_priority[job.priority];
  ++level.completed;
  level.total_response_cycles += now - job.arrival;
  if (job.deadline.has_value()) {
    ++result_.jobs_with_deadline;
    if (now > *job.deadline) {
      ++result_.deadline_misses;
      ++level.deadline_misses;
    }
  }

  switch (core.running_kind) {
    case ExecutionKind::kProfiling:
      ++result_.profiling_runs;
      result_.profiling_energy += cp.energy.total() * portion;
      break;
    case ExecutionKind::kTuning:
      ++result_.tuning_runs;
      result_.tuning_energy += cp.energy.total() * portion;
      break;
    case ExecutionKind::kNormal:
      break;
  }

  // Hardware counters: the measured energy/cycles of a complete execution
  // in this configuration land in the profiling table regardless of
  // policy. (Recorded values are full-execution magnitudes.)
  table_.record(benchmark, core.current_config,
                Observation{cp.energy.total(), cp.energy.dynamic_energy,
                            cp.energy.total_cycles});

  const bool was_profiling = core.running_kind == ExecutionKind::kProfiling;
  if (was_profiling) {
    ProfilingTable::Entry& entry = table_.entry(benchmark);
    entry.profiled = true;
    entry.statistics = profile.base_statistics;
  }

  if (observer_ != nullptr && now > started_at_[core_index]) {
    observer_->on_slice(ScheduledSlice{job.job_id, benchmark, core_index,
                                       started_at_[core_index], now,
                                       core.current_config,
                                       core.running_kind, true});
  }

  core.busy = false;
  core.idle_since = now;
  result_.makespan = std::max(result_.makespan, now);

  if (was_profiling) {
    SystemView view = make_view(now);
    policy_.on_profiled(benchmark, view);
  }
}

void MulticoreSimulator::preempt_execution(std::size_t core_index,
                                           SimTime now) {
  CoreRuntime& core = cores_[core_index];
  HETSCHED_REQUIRE(core.busy);
  HETSCHED_REQUIRE(core.running_kind != ExecutionKind::kProfiling &&
                   "profiling runs cannot be preempted");

  const double portion = settle_execution(core_index, now);
  Job victim = running_jobs_[core_index];
  victim.remaining_fraction =
      std::max(0.0, victim.remaining_fraction - portion);
  if (victim.remaining_fraction < 1e-9) {
    // Degenerate preempt-at-completion-boundary: keep a token remainder
    // so the victim still flows through a final (1-cycle) execution and
    // completion accounting stays uniform.
    victim.remaining_fraction = 1e-9;
  }
  if (observer_ != nullptr && now > started_at_[core_index]) {
    observer_->on_slice(ScheduledSlice{
        victim.job_id, victim.benchmark_id, core_index,
        started_at_[core_index], now, core.current_config,
        core.running_kind, false});
  }
  ready_.push_front(victim);
  ++result_.preemptions;

  core.busy = false;
  core.idle_since = now;
  // The stale completion entry for this execution is skipped via job_id
  // validation when it surfaces.
}

void MulticoreSimulator::apply_discipline() {
  if (discipline_ == QueueDiscipline::kFifo || ready_.size() < 2) return;
  if (discipline_ == QueueDiscipline::kEdf) {
    std::stable_sort(ready_.begin(), ready_.end(),
                     [](const Job& a, const Job& b) {
                       const SimTime da = a.deadline.value_or(
                           std::numeric_limits<SimTime>::max());
                       const SimTime db = b.deadline.value_or(
                           std::numeric_limits<SimTime>::max());
                       return da < db;
                     });
  } else {  // kPriority
    std::stable_sort(ready_.begin(), ready_.end(),
                     [](const Job& a, const Job& b) {
                       if (a.priority != b.priority) {
                         return a.priority > b.priority;
                       }
                       return a.arrival < b.arrival;
                     });
  }
}

void MulticoreSimulator::try_schedule(SimTime now) {
  apply_discipline();

  // Consider each currently queued job at most once per invocation;
  // stalled jobs go to the back of the queue (Section IV.A).
  std::size_t attempts = ready_.size();
  bool any_started = false;
  while (attempts-- > 0 && !ready_.empty()) {
    const bool has_idle =
        std::any_of(cores_.begin(), cores_.end(),
                    [](const CoreRuntime& c) { return !c.busy; });
    if (!has_idle && !policy_.can_preempt()) break;

    Job job = ready_.front();
    ready_.pop_front();

    SystemView view = make_view(now);
    const Decision decision = policy_.decide(job, view);
    switch (decision.kind) {
      case Decision::Kind::kRun:
        start_execution(job, decision, now);
        any_started = true;
        break;
      case Decision::Kind::kPreempt:
        HETSCHED_REQUIRE(policy_.can_preempt());
        preempt_execution(decision.core, now);
        start_execution(job, decision, now);
        any_started = true;
        break;
      case Decision::Kind::kStall:
        ++result_.stall_events;
        ready_.push_back(job);
        break;
    }
  }

  // Liveness: with every core idle a sound policy must schedule something
  // (its best core is idle by definition), otherwise the simulation could
  // deadlock with no future event.
  if (!ready_.empty() && completions_.empty()) {
    HETSCHED_REQUIRE(any_started);
  }
}

SimulationResult MulticoreSimulator::run(
    const std::vector<JobArrival>& arrivals) {
  HETSCHED_REQUIRE(!ran_);
  ran_ = true;
  HETSCHED_REQUIRE(!arrivals.empty());
  HETSCHED_REQUIRE(std::is_sorted(
      arrivals.begin(), arrivals.end(),
      [](const JobArrival& a, const JobArrival& b) {
        return a.arrival < b.arrival;
      }));

  std::size_t next_arrival = 0;
  std::uint64_t next_job_id = 0;

  while (next_arrival < arrivals.size() || !completions_.empty() ||
         !ready_.empty()) {
    // Next event time: earliest completion or arrival.
    SimTime now;
    const bool have_completion = !completions_.empty();
    const bool have_arrival = next_arrival < arrivals.size();
    HETSCHED_ASSERT(have_completion || have_arrival);
    if (have_completion &&
        (!have_arrival ||
         completions_.top().time <= arrivals[next_arrival].arrival)) {
      now = completions_.top().time;
    } else {
      now = arrivals[next_arrival].arrival;
    }

    // Retire every live completion at `now` (deterministic core order);
    // entries orphaned by preemption are discarded.
    while (!completions_.empty() && completions_.top().time == now) {
      const Completion completion = completions_.top();
      completions_.pop();
      const CoreRuntime& core = cores_[completion.core];
      const bool live = core.busy &&
                        core.running_job_id == completion.job_id &&
                        core.busy_until == completion.time;
      if (live) {
        finish_execution(completion.core, now);
      }
    }
    // Admit every arrival at `now`.
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].arrival == now) {
      Job job;
      job.job_id = next_job_id++;
      job.benchmark_id = arrivals[next_arrival].benchmark_id;
      job.arrival = now;
      job.priority = arrivals[next_arrival].priority;
      job.deadline = arrivals[next_arrival].deadline;
      ready_.push_back(job);
      ++next_arrival;
    }

    try_schedule(now);
  }

  // Close every core's trailing idle interval at the makespan.
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    HETSCHED_ASSERT(!cores_[i].busy);
    accrue_idle(i, result_.makespan);
  }

  for (std::size_t i = 0; i < cores_.size(); ++i) {
    result_.per_core[i].busy_cycles = cores_[i].busy_cycles;
    result_.per_core[i].executions = cores_[i].executions;
    result_.per_core[i].utilization =
        result_.makespan == 0
            ? 0.0
            : static_cast<double>(cores_[i].busy_cycles) /
                  static_cast<double>(result_.makespan);
  }
  HETSCHED_ASSERT(result_.completed_jobs == arrivals.size());
  return result_;
}

}  // namespace hetsched
