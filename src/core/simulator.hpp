// Event-driven multicore scheduling simulator (the paper's MATLAB system
// simulation, Section V) plus the paper's future-work real-time extension
// (§VIII): priorities, deadlines, queue disciplines and preemption.
//
// Jobs arrive into a ready queue; the scheduler policy is invoked
// whenever a benchmark arrives or a core becomes idle. Executions replay
// the characterised (cycles, energy) of the benchmark in the chosen
// configuration; idle cores accrue idle energy (cache leakage + core idle
// power); reconfigurations charge tuner flush traffic. All observations
// land in the profiling table, which is the only channel back to the
// policy.
//
// Preemption model: a preempted job is settled pro-rata (energy and
// cycles for the portion it executed), returns to the front of the ready
// queue carrying its remaining fraction, and resumes under whatever
// configuration the policy next assigns.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <queue>

#include "core/schedule_log.hpp"
#include "core/scheduler.hpp"
#include "workload/arrivals.hpp"
#include "workload/characterization.hpp"

namespace hetsched {

struct CoreUsage {
  Cycles busy_cycles = 0;
  std::uint64_t executions = 0;
  double utilization = 0.0;  // busy cycles / makespan
};

struct SimulationResult {
  // Energy buckets (Figure 6 reports idle / dynamic / total).
  NanoJoules idle_energy;         // idle-period leakage + core idle power
  NanoJoules dynamic_energy;      // execution dynamic energy
  NanoJoules busy_static_energy;  // leakage while executing
  NanoJoules cpu_energy;          // core pipeline active energy
  NanoJoules reconfig_energy;     // tuner flush traffic

  // Overhead attribution (subsets of the execution energy above).
  NanoJoules profiling_energy;
  NanoJoules tuning_energy;

  Cycles makespan = 0;  // completion time of the last job
  // Total execution cycles summed over all executions (the paper's
  // "performance in number of cycles" metric: work performed, which —
  // unlike makespan — also reflects executions in slow configurations
  // that finish before the last arrival).
  Cycles total_execution_cycles = 0;

  std::uint64_t completed_jobs = 0;
  std::uint64_t stall_events = 0;
  std::uint64_t profiling_runs = 0;
  std::uint64_t tuning_runs = 0;
  std::uint64_t reconfigurations = 0;

  // Real-time extension metrics.
  std::uint64_t preemptions = 0;
  std::uint64_t jobs_with_deadline = 0;
  std::uint64_t deadline_misses = 0;
  Cycles total_response_cycles = 0;  // sum of (completion - arrival)

  // Response-time accounting split by priority level.
  struct PriorityStats {
    std::uint64_t completed = 0;
    Cycles total_response_cycles = 0;
    std::uint64_t deadline_misses = 0;

    double mean_response_cycles() const {
      return completed == 0 ? 0.0
                            : static_cast<double>(total_response_cycles) /
                                  static_cast<double>(completed);
    }
  };
  std::map<int, PriorityStats> per_priority;

  std::vector<CoreUsage> per_core;

  NanoJoules total_energy() const {
    return idle_energy + dynamic_energy + busy_static_energy + cpu_energy +
           reconfig_energy;
  }
  // Static + idle bucket some reports use.
  NanoJoules static_energy() const {
    return idle_energy + busy_static_energy;
  }
  double deadline_miss_rate() const {
    return jobs_with_deadline == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(jobs_with_deadline);
  }
  double mean_response_cycles() const {
    return completed_jobs == 0
               ? 0.0
               : static_cast<double>(total_response_cycles) /
                     static_cast<double>(completed_jobs);
  }
};

class MulticoreSimulator {
 public:
  MulticoreSimulator(const SystemConfig& system,
                     const CharacterizedSuite& suite,
                     const EnergyModel& energy, SchedulerPolicy& policy,
                     QueueDiscipline discipline = QueueDiscipline::kFifo);

  // Runs the arrival stream to completion and returns the accounting.
  // May be called once per simulator instance.
  SimulationResult run(const std::vector<JobArrival>& arrivals);

  // Final profiling-table state (exploration counts etc.); valid after
  // run().
  const ProfilingTable& table() const { return table_; }

  // Optional schedule observer (e.g. a ScheduleLog); receives every
  // executed slice. Must outlive run(). Set before run().
  void set_observer(ScheduleObserver* observer) { observer_ = observer; }

 private:
  struct Completion {
    SimTime time = 0;
    std::size_t core = 0;
    std::uint64_t job_id = 0;  // stale-entry detection after preemption
    // Min-heap on (time, core) for deterministic ordering.
    friend bool operator>(const Completion& a, const Completion& b) {
      return a.time != b.time ? a.time > b.time : a.core > b.core;
    }
  };

  void start_execution(const Job& job, const Decision& decision,
                       SimTime now);
  // Charges energy/cycles for the portion of the current execution that
  // ran until `now`; returns that portion of a full benchmark execution.
  double settle_execution(std::size_t core, SimTime now);
  void finish_execution(std::size_t core, SimTime now);
  void preempt_execution(std::size_t core, SimTime now);
  void try_schedule(SimTime now);
  void apply_discipline();
  void accrue_idle(std::size_t core, SimTime until);
  SystemView make_view(SimTime now);

  const SystemConfig system_;
  const CharacterizedSuite& suite_;
  const EnergyModel& energy_;
  SchedulerPolicy& policy_;
  const QueueDiscipline discipline_;

  std::vector<CoreRuntime> cores_;
  ProfilingTable table_;
  std::deque<Job> ready_;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions_;
  std::vector<Job> running_jobs_;    // per core, valid while busy
  std::vector<SimTime> started_at_;  // per core, valid while busy

  SimulationResult result_;
  ScheduleObserver* observer_ = nullptr;
  bool ran_ = false;
};

}  // namespace hetsched
