// Event-driven multicore scheduling simulator (the paper's MATLAB system
// simulation, Section V) plus the paper's future-work real-time extension
// (§VIII): priorities, deadlines, queue disciplines and preemption.
//
// Jobs arrive into a ready queue; the scheduler policy is invoked
// whenever a benchmark arrives or a core becomes idle. Executions replay
// the characterised (cycles, energy) of the benchmark in the chosen
// configuration; idle cores accrue idle energy (cache leakage + core idle
// power); reconfigurations charge tuner flush traffic. All observations
// land in the profiling table, which is the only channel back to the
// policy.
//
// Preemption model: a preempted job is settled pro-rata (energy and
// cycles for the portion it executed), returns to the front of the ready
// queue carrying its remaining fraction, and resumes under whatever
// configuration the policy next assigns.
//
// Fault model (optional, attach with set_fault_injector): scheduled core
// failures settle the running job pro-rata via the preemption machinery
// and re-queue it; offline cores are powered off (no idle energy, skipped
// by policies) until their recovery event. Stuck executions are cleared
// by a watchdog that re-dispatches the job after a timeout, with a
// bounded retry budget per job. Failed reconfigurations retry with
// exponential backoff and finally degrade to running in the stale
// configuration. A zero-fault plan is bit-identical to running without
// an injector.
#pragma once

#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <queue>
#include <string>

#include "core/schedule_log.hpp"
#include "core/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "util/contracts.hpp"
#include "workload/arrivals.hpp"
#include "workload/characterization.hpp"

namespace hetsched {

struct CoreUsage {
  Cycles busy_cycles = 0;
  std::uint64_t executions = 0;
  double utilization = 0.0;  // busy cycles / makespan
};

struct SimulationResult {
  // Energy buckets (Figure 6 reports idle / dynamic / total).
  NanoJoules idle_energy;         // idle-period leakage + core idle power
  NanoJoules dynamic_energy;      // execution dynamic energy
  NanoJoules busy_static_energy;  // leakage while executing
  NanoJoules cpu_energy;          // core pipeline active energy
  NanoJoules reconfig_energy;     // tuner flush traffic

  // Overhead attribution (subsets of the execution energy above).
  NanoJoules profiling_energy;
  NanoJoules tuning_energy;

  Cycles makespan = 0;  // completion time of the last job
  // Total execution cycles summed over all executions (the paper's
  // "performance in number of cycles" metric: work performed, which —
  // unlike makespan — also reflects executions in slow configurations
  // that finish before the last arrival).
  Cycles total_execution_cycles = 0;

  std::uint64_t completed_jobs = 0;
  std::uint64_t stall_events = 0;
  std::uint64_t profiling_runs = 0;
  std::uint64_t tuning_runs = 0;
  std::uint64_t reconfigurations = 0;

  // Real-time extension metrics.
  std::uint64_t preemptions = 0;
  std::uint64_t jobs_with_deadline = 0;
  std::uint64_t deadline_misses = 0;
  Cycles total_response_cycles = 0;  // sum of (completion - arrival)

  // Fault-injection and degraded-mode accounting (all zero when no
  // injector was attached or the plan was empty).
  FaultStats faults;

  // Response-time accounting split by priority level.
  struct PriorityStats {
    std::uint64_t completed = 0;
    Cycles total_response_cycles = 0;
    std::uint64_t deadline_misses = 0;

    double mean_response_cycles() const {
      return completed == 0 ? 0.0
                            : static_cast<double>(total_response_cycles) /
                                  static_cast<double>(completed);
    }
  };
  std::map<int, PriorityStats> per_priority;

  std::vector<CoreUsage> per_core;

  NanoJoules total_energy() const {
    return idle_energy + dynamic_energy + busy_static_energy + cpu_energy +
           reconfig_energy;
  }
  // Static + idle bucket some reports use.
  NanoJoules static_energy() const {
    return idle_energy + busy_static_energy;
  }
  double deadline_miss_rate() const {
    return jobs_with_deadline == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(jobs_with_deadline);
  }
  double mean_response_cycles() const {
    return completed_jobs == 0
               ? 0.0
               : static_cast<double>(total_response_cycles) /
                     static_cast<double>(completed_jobs);
  }
};

// Checkpoint support: serializes/parses a SimulationResult as whitespace
// tokens with energies in hexfloat, so accounting restored mid-run (or a
// sweep-cell result replayed from a shard manifest) is bit-identical.
// load_simulation_result throws std::runtime_error (tagged with
// `context`) on malformed input.
void save_simulation_result(std::ostream& out, const SimulationResult& r);
void load_simulation_result(std::istream& in, SimulationResult& r,
                            const std::string& context);

// How the simulated system reacts to injected faults.
struct ResilienceConfig {
  // Cycles a stuck execution occupies its core before the watchdog
  // clears it and re-queues the job.
  Cycles watchdog_timeout = 200000;
  // Watchdog re-dispatches per job before hangs are no longer injected
  // (bounds how long one pathological job can thrash).
  std::uint32_t watchdog_max_retries = 3;
  // Reconfiguration retry budget after a failed attempt; exhausting it
  // degrades the execution to the core's current (stale) configuration.
  std::uint32_t reconfig_max_retries = 3;
  // First retry waits this many cycles; each further retry doubles it.
  Cycles reconfig_backoff_base = 1000;
};

class MulticoreSimulator {
 public:
  MulticoreSimulator(const SystemConfig& system,
                     const CharacterizedSuite& suite,
                     const EnergyModel& energy, SchedulerPolicy& policy,
                     QueueDiscipline discipline = QueueDiscipline::kFifo);

  // Runs the arrival stream to completion and returns the accounting.
  // May be called once per simulator instance.
  SimulationResult run(const std::vector<JobArrival>& arrivals);

  // Streaming variant: pulls arrivals one at a time from `source`
  // (non-decreasing arrival order required), so unbounded streams run in
  // memory bounded by the in-flight population — never the stream
  // length. run(vector) is exactly run_stream over a vector source.
  SimulationResult run_stream(ArrivalSource& source);

  // Stepping interface underneath run_stream, for checkpointed and
  // supervised execution. start_stream pulls the first arrival;
  // advance_stream_until processes events strictly before `limit` and
  // returns true when it paused at the limit (false when the stream
  // drained); finish_stream closes trailing idle intervals and returns
  // the accounting. run_stream(source) is exactly
  //   start_stream(source);
  //   advance_stream_until(source, SimTime max);
  //   finish_stream();
  // so stepping in any number of slices is bit-identical to one shot.
  void start_stream(ArrivalSource& source);
  bool advance_stream_until(ArrivalSource& source, SimTime limit);
  SimulationResult finish_stream();

  // Checkpoint support: serializes the complete mid-stream execution
  // state (cores, queues, in-flight jobs, profiling table, accounting)
  // as whitespace tokens with doubles in hexfloat. restore_stream_state
  // must be called on a freshly constructed simulator with the identical
  // system/suite/energy/policy/discipline (and injector when the saved
  // run had one) before any run; the caller also restores the arrival
  // source to its saved position, after which advance_stream_until
  // continues bit-identically. Throws std::runtime_error (tagged with
  // `context`) on malformed or mismatched input.
  void save_stream_state(std::ostream& out) const;
  void restore_stream_state(std::istream& in, const std::string& context);

  // Final profiling-table state (exploration counts etc.); valid after
  // run().
  const ProfilingTable& table() const { return table_; }

  // Optional schedule observer (e.g. a ScheduleLog); receives every
  // executed slice. Must outlive run(). Set before run().
  void set_observer(ScheduleObserver* observer) { observer_ = observer; }

  // Optional fault injector; must outlive run(). Set before run(). With
  // a zero-fault plan the run is bit-identical to an injector-free run.
  void set_fault_injector(FaultInjector* injector,
                          ResilienceConfig resilience = {});

  // Differential-testing switch: forces policies onto the reference
  // linear scans instead of the dispatch index. Decisions are identical
  // either way (the fuzz suite proves it); only speed differs. Set
  // before run().
  void set_naive_dispatch(bool naive) {
    HETSCHED_REQUIRE(!ran_);
    naive_dispatch_ = naive;
  }

  // Dispatch-path counters (decisions, bitmap words scanned, clamp-cache
  // hits, rebuilds); valid any time, cumulative over the run.
  const DispatchTelemetry& dispatch_telemetry() const {
    return index_.telemetry();
  }

 private:
  struct Completion {
    SimTime time = 0;
    std::size_t core = 0;
    std::uint64_t job_id = 0;  // stale-entry detection after preemption
    // Min-heap on (time, core) for deterministic ordering.
    friend bool operator>(const Completion& a, const Completion& b) {
      return a.time != b.time ? a.time > b.time : a.core > b.core;
    }
  };

  void start_execution(const Job& job, const Decision& decision,
                       SimTime now);
  // Charges energy/cycles for the portion of the current execution that
  // ran until `now`; returns that portion of a full benchmark execution.
  double settle_execution(std::size_t core, SimTime now);
  void finish_execution(std::size_t core, SimTime now);
  void preempt_execution(std::size_t core, SimTime now);
  void try_schedule(SimTime now);
  void apply_discipline();
  void accrue_idle(std::size_t core, SimTime until);
  SystemView make_view(SimTime now);

  // Fault machinery (no-ops unless an injector is attached).
  // Reconfigures towards `wanted` with retry/backoff under injected
  // failures; returns the backoff delay spent before the execution can
  // start (0 on first-try success).
  Cycles reconfigure_with_retries(std::size_t core_index,
                                  const CacheConfig& wanted,
                                  std::uint64_t job_id, SimTime now);
  void apply_core_event(const CoreFaultEvent& event, SimTime now);
  // Clears a hung execution: charges idle energy for the stuck window,
  // re-queues the job unprogressed, and counts the watchdog fire.
  void expire_watchdog(std::size_t core_index, SimTime now);
  void record_fault(FaultRecord::Kind kind, SimTime now, std::size_t core,
                    std::uint64_t job_id);

  const SystemConfig system_;
  const CharacterizedSuite& suite_;
  const EnergyModel& energy_;
  SchedulerPolicy& policy_;
  const QueueDiscipline discipline_;

  std::vector<CoreRuntime> cores_;
  // Incrementally maintained idle/size-class bitmaps; every core.busy /
  // core.online transition below is mirrored into it.
  DispatchIndex index_;
  bool naive_dispatch_ = false;
  ProfilingTable table_;
  std::deque<Job> ready_;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions_;
  std::vector<Job> running_jobs_;    // per core, valid while busy
  std::vector<SimTime> started_at_;  // per core, valid while busy
  // Per core, while busy: the characterised profile of the running
  // (benchmark, configuration) pair, resolved once at dispatch so
  // settle/finish never repeat the lookup. Derived state — rebuilt on
  // checkpoint restore, never serialized.
  std::vector<const ConfigProfile*> running_profile_;

  SimulationResult result_;
  // One-entry memo for result_.per_priority lookups: streams are
  // usually single-priority, and std::map nodes are pointer-stable, so
  // the common case skips the tree walk. Reset when result_ is replaced
  // wholesale (checkpoint restore).
  int cached_priority_ = 0;
  SimulationResult::PriorityStats* cached_level_ = nullptr;
  ScheduleObserver* observer_ = nullptr;
  FaultInjector* injector_ = nullptr;
  ResilienceConfig resilience_;
  std::vector<char> hung_;  // per core: current execution is stuck
  std::map<std::uint64_t, std::uint32_t> watchdog_counts_;  // per job

  // Streaming-loop state, members so a run can pause at a checkpoint
  // boundary and serialize (one-arrival lookahead is the only piece of
  // the stream ever held).
  std::optional<JobArrival> pending_;
  std::uint64_t admitted_ = 0;
  std::uint64_t next_job_id_ = 0;
  bool ran_ = false;
  bool streaming_ = false;  // between start_stream and finish_stream
};

}  // namespace hetsched
