#include "core/system_config.hpp"

#include "util/contracts.hpp"

namespace hetsched {

SystemConfig SystemConfig::paper_quadcore() {
  SystemConfig config;
  auto spec = [](std::uint32_t size, bool profiling) {
    CoreSpec s;
    s.cache_size_bytes = size;
    // Boot in the smallest associativity / line size Table 1 offers for
    // the size; the tuner reconfigures on demand.
    s.initial_config =
        CacheConfig{size, DesignSpace::associativities_for(size).front(),
                    DesignSpace::line_sizes().front()};
    s.can_profile = profiling;
    return s;
  };
  config.cores = {spec(2048, false), spec(4096, false), spec(8192, true),
                  spec(8192, true)};
  config.primary_profiling_core = 3;
  config.secondary_profiling_core = 2;
  HETSCHED_ASSERT(config.valid());
  return config;
}

SystemConfig SystemConfig::fixed_base(std::size_t n) {
  HETSCHED_REQUIRE(n >= 1);
  SystemConfig config;
  CoreSpec s;
  s.cache_size_bytes = DesignSpace::base_config().size_bytes;
  s.initial_config = DesignSpace::base_config();
  s.can_profile = false;
  config.cores.assign(n, s);
  config.primary_profiling_core = n - 1;
  config.secondary_profiling_core = n >= 2 ? n - 2 : n - 1;
  return config;
}

SystemConfig SystemConfig::scaled_heterogeneous(std::size_t n) {
  HETSCHED_REQUIRE(n >= 2);
  SystemConfig config;
  auto spec = [](std::uint32_t size, bool profiling) {
    CoreSpec s;
    s.cache_size_bytes = size;
    s.initial_config =
        CacheConfig{size, DesignSpace::associativities_for(size).front(),
                    DesignSpace::line_sizes().front()};
    s.can_profile = profiling;
    return s;
  };
  static constexpr std::uint32_t kPattern[] = {2048, 4096, 8192, 8192};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t size = kPattern[i % 4];
    config.cores.push_back(spec(size, size == 8192));
  }
  // Guarantee a profiling core: the last core is always 8 KB.
  config.cores.back() = spec(8192, true);
  config.primary_profiling_core = n - 1;
  // Secondary: the next 8 KB profiling core below the primary, if any.
  config.secondary_profiling_core = n - 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    if (config.cores[i].can_profile) {
      config.secondary_profiling_core = i;
      break;
    }
  }
  HETSCHED_ASSERT(config.valid());
  return config;
}

std::vector<std::size_t> SystemConfig::cores_with_size(
    std::uint32_t size_bytes) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (cores[i].cache_size_bytes == size_bytes) out.push_back(i);
  }
  return out;
}

bool SystemConfig::valid() const {
  if (cores.empty()) return false;
  if (primary_profiling_core >= cores.size()) return false;
  if (secondary_profiling_core >= cores.size()) return false;
  for (const CoreSpec& core : cores) {
    if (!core.initial_config.valid()) return false;
    if (core.initial_config.size_bytes != core.cache_size_bytes) return false;
  }
  return true;
}

}  // namespace hetsched
