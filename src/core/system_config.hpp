// System architecture description (Figure 1): a set of cores, each with a
// fixed L1 cache size, a tunable L1 configuration, and optionally the
// ability to act as a profiling core.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_config.hpp"

namespace hetsched {

struct CoreSpec {
  std::uint32_t cache_size_bytes = 8192;
  // Configuration the core boots with.
  CacheConfig initial_config{8192, 4, 64};
  // Profiling cores host the scheduler/ANN and the profiling table
  // (Cores 3 and 4 in the paper).
  bool can_profile = false;
};

struct SystemConfig {
  std::vector<CoreSpec> cores;
  std::size_t primary_profiling_core = 3;
  std::size_t secondary_profiling_core = 2;

  std::size_t core_count() const { return cores.size(); }

  // Paper architecture: Cores 1-4 with 2/4/8/8 KB caches; Core 4 is the
  // primary profiling core and Core 3 the secondary (0-based 3 and 2).
  static SystemConfig paper_quadcore();

  // Homogeneous baseline: `n` cores all fixed at the base configuration,
  // no profiling capability (base system, Section V).
  static SystemConfig fixed_base(std::size_t n = 4);

  // Section III: "this general structure could be scaled up or down".
  // Builds an n-core machine repeating the paper's 2/4/8/8 KB mix; the
  // last core is always an 8 KB profiling core and every 8 KB core can
  // profile. Requires n >= 2.
  static SystemConfig scaled_heterogeneous(std::size_t n);

  // Cores whose fixed L1 size equals `size_bytes` (ascending indices).
  std::vector<std::size_t> cores_with_size(std::uint32_t size_bytes) const;

  bool valid() const;
};

}  // namespace hetsched
