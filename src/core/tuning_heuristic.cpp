#include "core/tuning_heuristic.hpp"

#include "util/contracts.hpp"

namespace hetsched {

TuningHeuristic::WalkState TuningHeuristic::walk(
    const ProfilingTable::Entry& entry, std::uint32_t size_bytes) {
  HETSCHED_REQUIRE(!DesignSpace::associativities_for(size_bytes).empty());

  // Memo fast path: the walk is a pure function of the entry's
  // observations, which only change through record() (bumping
  // entry.version), so a version match means the cached result is
  // bit-identical to recomputing. decide() consults complete() /
  // best_known() / next_config() several times per dispatch; in steady
  // state they all collapse to this compare.
  const std::size_t slot =
      size_bytes == 2048 ? 0 : (size_bytes == 4096 ? 1 : 2);
  ProfilingTable::Entry::WalkMemo& memo = entry.walk_memo[slot];
  if (memo.version == entry.version) {
    WalkState cached;
    if (memo.has_next) cached.next = memo.next;
    cached.best = memo.best;
    cached.explored = memo.explored;
    return cached;
  }

  const WalkState state = walk_uncached(entry, size_bytes);
  memo.version = entry.version;
  memo.has_next = state.next.has_value();
  memo.next = state.next.value_or(CacheConfig{});
  memo.best = state.best;
  memo.explored = state.explored;
  return state;
}

TuningHeuristic::WalkState TuningHeuristic::walk_uncached(
    const ProfilingTable::Entry& entry, std::uint32_t size_bytes) {
  const auto& assocs = DesignSpace::associativities_for(size_bytes);
  const auto& lines = DesignSpace::line_sizes();

  WalkState state;
  auto energy_of = [&](std::uint32_t ways,
                       std::uint32_t line) -> const Observation* {
    return entry.find(CacheConfig{size_bytes, ways, line});
  };

  // --- Phase 1: associativity, line fixed at the smallest value ---
  const std::uint32_t line0 = lines.front();
  const Observation* current = energy_of(assocs.front(), line0);
  if (current == nullptr) {
    state.next = CacheConfig{size_bytes, assocs.front(), line0};
    return state;
  }
  state.explored = 1;
  std::uint32_t best_ways = assocs.front();
  for (std::size_t i = 1; i < assocs.size(); ++i) {
    const Observation* candidate = energy_of(assocs[i], line0);
    if (candidate == nullptr) {
      state.next = CacheConfig{size_bytes, assocs[i], line0};
      return state;
    }
    ++state.explored;
    if (candidate->total_energy < current->total_energy) {
      best_ways = assocs[i];
      current = candidate;
    } else {
      break;  // energy stopped improving: freeze associativity
    }
  }

  // --- Phase 2: line size, associativity frozen at best_ways ---
  std::uint32_t best_line = lines.front();
  for (std::size_t j = 1; j < lines.size(); ++j) {
    const Observation* candidate = energy_of(best_ways, lines[j]);
    if (candidate == nullptr) {
      state.next = CacheConfig{size_bytes, best_ways, lines[j]};
      return state;
    }
    ++state.explored;
    if (candidate->total_energy < current->total_energy) {
      best_line = lines[j];
      current = candidate;
    } else {
      break;  // freeze line size
    }
  }

  state.best = CacheConfig{size_bytes, best_ways, best_line};
  return state;
}

std::optional<CacheConfig> TuningHeuristic::next_config(
    const ProfilingTable::Entry& entry, std::uint32_t size_bytes) {
  return walk(entry, size_bytes).next;
}

bool TuningHeuristic::complete(const ProfilingTable::Entry& entry,
                               std::uint32_t size_bytes) {
  return !walk(entry, size_bytes).next.has_value();
}

CacheConfig TuningHeuristic::best_known(const ProfilingTable::Entry& entry,
                                        std::uint32_t size_bytes) {
  const WalkState state = walk(entry, size_bytes);
  HETSCHED_REQUIRE(!state.next.has_value());
  return state.best;
}

std::size_t TuningHeuristic::explored_count(
    const ProfilingTable::Entry& entry, std::uint32_t size_bytes) {
  return walk(entry, size_bytes).explored;
}

}  // namespace hetsched
