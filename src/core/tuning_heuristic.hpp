// Cache tuning heuristic (Figure 5, Section IV.F).
//
// On a core with a fixed cache size, the heuristic explores associativity
// first (second-largest energy impact after size), then line size, each
// from smallest to largest to minimise cache flushing. Exploration starts
// at the smallest value of both parameters; a parameter is increased while
// the measured total energy keeps improving, then frozen at the best
// value. Each step is one physical execution whose result lands in the
// profiling table, so the heuristic is expressed *statelessly* over the
// table entry: given what has been observed, it derives the next
// configuration to try — which is exactly how the paper's heuristic
// "continues where the exploration left off" across executions.
#pragma once

#include <optional>

#include "core/profiling_table.hpp"

namespace hetsched {

class TuningHeuristic {
 public:
  // Next configuration to execute for this benchmark on a core of
  // `size_bytes`, or nullopt when tuning for that size is complete.
  static std::optional<CacheConfig> next_config(
      const ProfilingTable::Entry& entry, std::uint32_t size_bytes);

  // True when the heuristic has converged for that size.
  static bool complete(const ProfilingTable::Entry& entry,
                       std::uint32_t size_bytes);

  // The converged configuration; requires complete().
  static CacheConfig best_known(const ProfilingTable::Entry& entry,
                                std::uint32_t size_bytes);

  // Number of configurations the heuristic has executed for this size
  // (counts observations along the heuristic's path only).
  static std::size_t explored_count(const ProfilingTable::Entry& entry,
                                    std::uint32_t size_bytes);

  struct WalkState {
    std::optional<CacheConfig> next;  // config to try, if any
    CacheConfig best;                 // best converged-so-far config
    std::size_t explored = 0;         // observations consumed by the walk
  };
  // Full walk state in one (memoised) query. Hot decision paths should
  // call this once instead of separate complete() / best_known() /
  // next_config() calls, which each repeat the memo lookup.
  static WalkState walk(const ProfilingTable::Entry& entry,
                        std::uint32_t size_bytes);

 private:
  static WalkState walk_uncached(const ProfilingTable::Entry& entry,
                                 std::uint32_t size_bytes);
};

}  // namespace hetsched
