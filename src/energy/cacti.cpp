#include "energy/cacti.hpp"

#include <bit>
#include <cmath>

#include "util/contracts.hpp"

namespace hetsched {

CactiModel::CactiModel(CactiCoefficients coeffs) : coeffs_(coeffs) {
  HETSCHED_REQUIRE(coeffs.data_array_per_way_byte > 0.0);
  HETSCHED_REQUIRE(coeffs.write_factor > 0.0);
}

std::uint32_t CactiModel::index_bits(const CacheConfig& config) const {
  HETSCHED_REQUIRE(config.valid());
  return static_cast<std::uint32_t>(std::bit_width(config.num_sets()) - 1);
}

std::uint32_t CactiModel::tag_bits(const CacheConfig& config) const {
  HETSCHED_REQUIRE(config.valid());
  const std::uint32_t offset_bits = static_cast<std::uint32_t>(
      std::bit_width(config.line_bytes) - 1);
  return coeffs_.address_bits - offset_bits - index_bits(config);
}

NanoJoules CactiModel::read_energy(const CacheConfig& config) const {
  HETSCHED_REQUIRE(config.valid());
  const double ways = config.associativity;
  const double data = coeffs_.data_array_per_way_byte * ways *
                      static_cast<double>(config.line_bytes);
  const double tag = coeffs_.tag_per_way_bit * ways *
                     static_cast<double>(tag_bits(config));
  const double decode =
      coeffs_.decode_per_index_bit * static_cast<double>(index_bits(config));
  return NanoJoules(data + tag + decode + coeffs_.sense_fixed);
}

NanoJoules CactiModel::write_energy(const CacheConfig& config) const {
  return read_energy(config) * coeffs_.write_factor;
}

NanoJoules CactiModel::fill_energy(const CacheConfig& config) const {
  HETSCHED_REQUIRE(config.valid());
  return NanoJoules(coeffs_.fill_per_byte *
                    static_cast<double>(config.line_bytes)) +
         NanoJoules(coeffs_.sense_fixed * 0.5);
}

}  // namespace hetsched
