// Analytical SRAM energy model standing in for CACTI 2.0 at 0.18 µm.
//
// The paper obtained per-access dynamic energies from CACTI; we reproduce
// the properties the scheduler depends on with a closed-form model:
//   * reading a set activates every way's data and tag subarrays, so
//     per-access energy grows with associativity × line size;
//   * decoder energy grows with the number of sets;
//   * leakage grows with total capacity.
// Coefficients are calibrated so the base 8KB_4W_64B configuration lands
// near the ~1 nJ/access CACTI 2.0 reports at 0.18 µm, and the cheapest
// 2KB_1W_16B configuration near ~0.2 nJ — the relative spread that drives
// all scheduling decisions.
#pragma once

#include "cache/cache_config.hpp"
#include "util/units.hpp"

namespace hetsched {

struct CactiCoefficients {
  // nJ per (way × data byte) activated on a read.
  double data_array_per_way_byte = 0.0035;
  // nJ per tag bit compared across the activated ways.
  double tag_per_way_bit = 0.0012;
  // nJ per set-index bit through the row decoder.
  double decode_per_index_bit = 0.010;
  // Fixed sense-amp / output-driver cost per access, nJ.
  double sense_fixed = 0.080;
  // Write drivers touch a single way: relative cost of a write vs read.
  double write_factor = 1.05;
  // nJ per byte written during a line fill (single-way write burst).
  double fill_per_byte = 0.0030;
  // Physical tag width assumes a 32-bit address space.
  std::uint32_t address_bits = 32;
};

class CactiModel {
 public:
  explicit CactiModel(CactiCoefficients coeffs = {});

  // E(hit): dynamic energy of one read access.
  NanoJoules read_energy(const CacheConfig& config) const;
  // Dynamic energy of one write access (hit).
  NanoJoules write_energy(const CacheConfig& config) const;
  // E(cache_fill): writing one full line into the data array.
  NanoJoules fill_energy(const CacheConfig& config) const;

  std::uint32_t tag_bits(const CacheConfig& config) const;
  std::uint32_t index_bits(const CacheConfig& config) const;

  const CactiCoefficients& coefficients() const { return coeffs_; }

 private:
  CactiCoefficients coeffs_;
};

}  // namespace hetsched
