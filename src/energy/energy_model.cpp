#include "energy/energy_model.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace hetsched {

EnergyModel::EnergyModel(CactiModel cacti, EnergyModelParams params,
                         CacheConfig base_config)
    : cacti_(cacti), params_(params), base_config_(base_config) {
  HETSCHED_REQUIRE(base_config_.valid());
  HETSCHED_REQUIRE(params_.beat_bytes > 0);
  HETSCHED_REQUIRE(params_.base_cpi > 0.0);
  // E(per KB) = static_fraction * E(dyn of base cache) / base_KB.
  static_per_kb_per_cycle_ =
      cacti_.read_energy(base_config_) * params_.static_fraction /
      static_cast<double>(base_config_.size_kb());
}

Cycles EnergyModel::stall_cycles_per_miss(const CacheConfig& config) const {
  HETSCHED_REQUIRE(config.valid());
  const Cycles beats =
      (config.line_bytes + params_.beat_bytes - 1) / params_.beat_bytes;
  return params_.miss_latency + beats * params_.bandwidth_cycles_per_beat;
}

Cycles EnergyModel::miss_cycles(const CacheConfig& config,
                                std::uint64_t misses) const {
  return misses * stall_cycles_per_miss(config);
}

NanoJoules EnergyModel::hit_energy(const CacheConfig& config) const {
  return cacti_.read_energy(config);
}

NanoJoules EnergyModel::miss_energy(const CacheConfig& config) const {
  const Cycles beats =
      (config.line_bytes + params_.beat_bytes - 1) / params_.beat_bytes;
  const NanoJoules offchip =
      params_.offchip_access +
      params_.offchip_per_beat * static_cast<double>(beats);
  const NanoJoules stall =
      params_.cpu_stall_per_cycle *
      static_cast<double>(stall_cycles_per_miss(config));
  return offchip + stall + cacti_.fill_energy(config);
}

NanoJoules EnergyModel::static_per_cycle(const CacheConfig& config) const {
  HETSCHED_REQUIRE(config.valid());
  return static_per_kb_per_cycle_ * static_cast<double>(config.size_kb());
}

NanoJoules EnergyModel::idle_per_cycle(const CacheConfig& config) const {
  return static_per_cycle(config) + params_.core_idle_per_cycle;
}

NanoJoules EnergyModel::writeback_energy(const CacheConfig& config) const {
  const Cycles beats =
      (config.line_bytes + params_.beat_bytes - 1) / params_.beat_bytes;
  return params_.offchip_access * 0.5 +
         params_.offchip_per_beat * static_cast<double>(beats);
}

EnergyBreakdown EnergyModel::evaluate(const RawCounters& counters,
                                      const CacheSimResult& sim) const {
  HETSCHED_REQUIRE(sim.config.valid());
  EnergyBreakdown out;
  out.miss_cycles = miss_cycles(sim.config, sim.stats.misses);
  const double instr_cycles =
      static_cast<double>(counters.total_instructions()) * params_.base_cpi;
  out.total_cycles =
      static_cast<Cycles>(std::llround(instr_cycles)) + out.miss_cycles;

  NanoJoules dynamic =
      hit_energy(sim.config) * static_cast<double>(sim.stats.hits) +
      miss_energy(sim.config) * static_cast<double>(sim.stats.misses);
  if (params_.include_writebacks) {
    dynamic += writeback_energy(sim.config) *
               static_cast<double>(sim.stats.writebacks);
  }
  out.dynamic_energy = dynamic;
  out.static_energy = static_per_cycle(sim.config) *
                      static_cast<double>(out.total_cycles);
  out.cpu_energy = params_.core_active_per_cycle *
                   static_cast<double>(out.total_cycles);
  return out;
}

}  // namespace hetsched
