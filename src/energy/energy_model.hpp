// Figure-4 energy model.
//
//   E(total)   = E(sta) + E(dynamic)
//   E(dynamic) = hits * E(hit) + misses * E(miss)
//   E(miss)    = E(off-chip access) + stall_cycles * E(CPU stall)
//                + E(cache fill)
//   miss cycles = misses * miss_latency
//                + misses * (line/16) * memory_bandwidth
//   E(sta)     = total_cycles * E(static per cycle)
//   E(static per cycle) = E(per KB) * size_KB,
//   E(per KB)  = 10% * E(dyn of base cache) / base_KB
//
// with the paper's stated assumptions: main-memory fetch is 40× an L1
// fetch and memory bandwidth costs 50% of the miss penalty per 16-byte
// beat. Off-chip access energy follows a low-power SDRAM profile.
#pragma once

#include "cache/cache.hpp"
#include "energy/cacti.hpp"
#include "trace/counters.hpp"
#include "util/units.hpp"

namespace hetsched {

struct EnergyModelParams {
  // Cycles for the main-memory portion of a miss ("40× an L1 fetch").
  Cycles miss_latency = 40;
  // Transfer beat granularity and per-beat cycles ("50% of miss penalty").
  std::uint32_t beat_bytes = 16;
  Cycles bandwidth_cycles_per_beat = 20;
  // Off-chip (low-power SDRAM) energies.
  NanoJoules offchip_access{6.0};   // fixed per transaction
  NanoJoules offchip_per_beat{1.5}; // per 16-byte beat transferred
  // CPU energy burnt per stall cycle waiting on a miss.
  NanoJoules cpu_stall_per_cycle{0.05};
  // E(per KB) = static_fraction * E(dyn of base) / base_KB.
  double static_fraction = 0.10;
  // Cycles per (non-stalled) instruction.
  double base_cpi = 1.0;
  // Idle power of the core pipeline itself, on top of cache leakage.
  NanoJoules core_idle_per_cycle{0.30};
  // Active power of the core pipeline per busy cycle. Configuration
  // independent per cycle, so configurations that stretch execution pay
  // proportionally (this is the CPU component of E(CPU stall) extended to
  // the whole execution).
  NanoJoules core_active_per_cycle{0.20};
  // Charge dirty-eviction writeback traffic (not in Figure 4; enabled by
  // the extended-model ablation).
  bool include_writebacks = false;
};

// Energy and timing of one complete application execution in one
// configuration.
struct EnergyBreakdown {
  Cycles miss_cycles = 0;
  Cycles total_cycles = 0;
  NanoJoules static_energy;
  NanoJoules dynamic_energy;
  // Core pipeline active energy over the execution.
  NanoJoules cpu_energy;

  NanoJoules total() const {
    return static_energy + dynamic_energy + cpu_energy;
  }
};

class EnergyModel {
 public:
  EnergyModel(CactiModel cacti, EnergyModelParams params = {},
              CacheConfig base_config = DesignSpace::base_config());

  const EnergyModelParams& params() const { return params_; }
  const CactiModel& cacti() const { return cacti_; }

  // --- Figure-4 pieces, exposed for tests and reports ---

  // Stall cycles incurred by a single miss (latency + line transfer).
  Cycles stall_cycles_per_miss(const CacheConfig& config) const;
  // Total miss cycles for `misses` misses in `config`.
  Cycles miss_cycles(const CacheConfig& config, std::uint64_t misses) const;
  // E(hit) for one access.
  NanoJoules hit_energy(const CacheConfig& config) const;
  // E(miss) for one miss.
  NanoJoules miss_energy(const CacheConfig& config) const;
  // E(static per cycle) = E(per KB) * size_KB.
  NanoJoules static_per_cycle(const CacheConfig& config) const;
  // Per-cycle energy of an idle core whose cache sits in `config`.
  NanoJoules idle_per_cycle(const CacheConfig& config) const;
  // Energy to write back one dirty line off-chip.
  NanoJoules writeback_energy(const CacheConfig& config) const;

  // Full evaluation of one execution: cycles from the instruction count
  // plus miss stalls, energy from the equations above.
  EnergyBreakdown evaluate(const RawCounters& counters,
                           const CacheSimResult& sim) const;

 private:
  CactiModel cacti_;
  EnergyModelParams params_;
  CacheConfig base_config_;
  NanoJoules static_per_kb_per_cycle_;
};

}  // namespace hetsched
