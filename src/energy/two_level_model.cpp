#include "energy/two_level_model.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace hetsched {

TwoLevelEnergyModel::TwoLevelEnergyModel(CactiModel cacti,
                                         EnergyModelParams params,
                                         TwoLevelParams two_level)
    : l1_model_(cacti, params), two_level_(two_level) {
  HETSCHED_REQUIRE(two_level_.l2_config.valid());
  HETSCHED_REQUIRE(two_level_.l2_hit_latency > 0);
  HETSCHED_REQUIRE(two_level_.l2_static_fraction > 0.0);
}

Cycles TwoLevelEnergyModel::stall_cycles(const CacheConfig& l1_config,
                                         std::uint64_t l2_served,
                                         std::uint64_t offchip_misses) const {
  const auto& p = l1_model_.params();
  const Cycles l1_beats =
      (l1_config.line_bytes + p.beat_bytes - 1) / p.beat_bytes;
  // L2-served fill: L2 latency plus the on-chip line transfer (cheap: one
  // cycle per beat rather than the off-chip bandwidth cost).
  const Cycles l2_fill = two_level_.l2_hit_latency + l1_beats;
  // Off-chip: the Figure-4 path for the L2 line.
  const Cycles l2_beats =
      (two_level_.l2_config.line_bytes + p.beat_bytes - 1) / p.beat_bytes;
  const Cycles offchip =
      p.miss_latency + l2_beats * p.bandwidth_cycles_per_beat;
  return l2_served * l2_fill + offchip_misses * offchip;
}

NanoJoules TwoLevelEnergyModel::l2_access_energy() const {
  return l1_model_.cacti().read_energy(two_level_.l2_config);
}

NanoJoules TwoLevelEnergyModel::offchip_miss_energy() const {
  const auto& p = l1_model_.params();
  const Cycles l2_beats =
      (two_level_.l2_config.line_bytes + p.beat_bytes - 1) / p.beat_bytes;
  return p.offchip_access +
         p.offchip_per_beat * static_cast<double>(l2_beats) +
         l1_model_.cacti().fill_energy(two_level_.l2_config);
}

NanoJoules TwoLevelEnergyModel::static_per_cycle(
    const CacheConfig& l1_config) const {
  const NanoJoules l1 = l1_model_.static_per_cycle(l1_config);
  // Reuse the Figure-4 E(per KB) derivation scaled by the density factor.
  const NanoJoules per_kb =
      l1_model_.static_per_cycle(CacheConfig{1024, 1, 16});
  return l1 + per_kb * two_level_.l2_static_fraction *
                  static_cast<double>(two_level_.l2_config.size_kb());
}

EnergyBreakdown TwoLevelEnergyModel::evaluate(
    const RawCounters& counters, const HierarchyStats& stats,
    const CacheConfig& l1_config) const {
  HETSCHED_REQUIRE(l1_config.valid());
  const auto& p = l1_model_.params();

  const std::uint64_t l1_misses = stats.l1.misses;
  const std::uint64_t offchip = std::min(stats.l2.misses, l1_misses);
  const std::uint64_t l2_served = l1_misses - offchip;

  EnergyBreakdown out;
  out.miss_cycles = stall_cycles(l1_config, l2_served, offchip);
  const double instr_cycles =
      static_cast<double>(counters.total_instructions()) * p.base_cpi;
  out.total_cycles =
      static_cast<Cycles>(std::llround(instr_cycles)) + out.miss_cycles;

  const NanoJoules l1_fill =
      l1_model_.cacti().fill_energy(l1_config);
  NanoJoules dynamic =
      l1_model_.hit_energy(l1_config) *
          static_cast<double>(stats.l1.hits) +
      (l2_access_energy() + l1_fill) * static_cast<double>(l1_misses) +
      offchip_miss_energy() * static_cast<double>(offchip) +
      p.cpu_stall_per_cycle * static_cast<double>(out.miss_cycles);
  out.dynamic_energy = dynamic;

  out.static_energy =
      static_per_cycle(l1_config) * static_cast<double>(out.total_cycles);
  out.cpu_energy = p.core_active_per_cycle *
                   static_cast<double>(out.total_cycles);
  return out;
}

}  // namespace hetsched
