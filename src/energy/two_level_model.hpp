// Two-level energy model (paper future work, §VIII: "additional levels of
// private and shared caches").
//
// The paper's Figure-4 model charges every L1 miss the full off-chip
// path, matching its evaluation setup. This extension prices the
// Figure-1 architecture's private L2: an L1 miss that hits in L2 costs an
// L2 access and a short stall; only L2 misses pay the off-chip latency
// and energy. Everything else (static-energy derivation, CPU terms)
// follows the Figure-4 conventions so results remain comparable.
#pragma once

#include "cache/hierarchy.hpp"
#include "energy/energy_model.hpp"

namespace hetsched {

struct TwoLevelParams {
  CacheConfig l2_config = CacheHierarchy::default_l2_config();
  // Stall cycles for an L1 miss served by the L2.
  Cycles l2_hit_latency = 8;
  // L2 arrays are denser/slower than L1: leakage per KB relative to the
  // Figure-4 E(per KB) rate.
  double l2_static_fraction = 0.25;
};

class TwoLevelEnergyModel {
 public:
  TwoLevelEnergyModel(CactiModel cacti, EnergyModelParams params = {},
                      TwoLevelParams two_level = {});

  const TwoLevelParams& two_level() const { return two_level_; }
  const EnergyModel& l1_model() const { return l1_model_; }

  // Stall cycles for one execution: L2-served misses pay the short L2
  // latency; L2 misses pay the Figure-4 off-chip path for the L2 line.
  Cycles stall_cycles(const CacheConfig& l1_config,
                      std::uint64_t l2_served,
                      std::uint64_t offchip_misses) const;

  // Per-event energies.
  NanoJoules l2_access_energy() const;
  NanoJoules offchip_miss_energy() const;

  // Combined leakage of the L1 (in `l1_config`) plus the private L2.
  NanoJoules static_per_cycle(const CacheConfig& l1_config) const;

  // Full evaluation of one execution from hierarchy statistics.
  EnergyBreakdown evaluate(const RawCounters& counters,
                           const HierarchyStats& stats,
                           const CacheConfig& l1_config) const;

 private:
  EnergyModel l1_model_;
  TwoLevelParams two_level_;
};

}  // namespace hetsched
