#include "experiment/experiment.hpp"

#include "util/contracts.hpp"
#include "util/thread_pool.hpp"
#include "workload/profile_cache.hpp"

namespace hetsched {
namespace {

CharacterizedSuite build_suite(const EnergyModel& energy,
                               const ExperimentOptions& options) {
  if (!options.profile_cache_path.empty()) {
    return load_or_build_suite(options.profile_cache_path, energy,
                               options.suite);
  }
  return CharacterizedSuite::build(energy, options.suite);
}

}  // namespace

ExperimentOptions ExperimentOptions::quick() {
  ExperimentOptions opts;
  opts.suite.kernel_scale = 0.25;
  opts.suite.variants_per_kernel = 2;
  opts.arrivals.count = 300;
  opts.arrivals.mean_interarrival_cycles = 60000.0;
  opts.predictor.ensemble_size = 5;
  opts.predictor.trainer.max_epochs = 120;
  return opts;
}

NormalizedEnergy normalize(const SimulationResult& system,
                           const SimulationResult& reference) {
  NormalizedEnergy n;
  auto ratio = [](NanoJoules a, NanoJoules b) {
    return b.value() > 0.0 ? a / b : 1.0;
  };
  n.idle = ratio(system.idle_energy, reference.idle_energy);
  n.dynamic = ratio(system.dynamic_energy, reference.dynamic_energy);
  n.total = ratio(system.total_energy(), reference.total_energy());
  n.cycles =
      reference.total_execution_cycles > 0
          ? static_cast<double>(system.total_execution_cycles) /
                static_cast<double>(reference.total_execution_cycles)
          : 1.0;
  n.makespan = reference.makespan > 0
                   ? static_cast<double>(system.makespan) /
                         static_cast<double>(reference.makespan)
                   : 1.0;
  return n;
}

Experiment::Experiment(const ExperimentOptions& options)
    : options_(options),
      energy_(CactiModel{}, options.energy_params),
      suite_(build_suite(energy_, options_)) {
  // Train the ANN on the variant>0 instances; schedule the variant-0
  // instances (held-out inputs of the same kernels). With a single
  // variant per kernel, train on everything (the paper trains and
  // evaluates on the same EEMBC suite).
  std::vector<std::size_t> train_ids = suite_.training_ids();
  if (train_ids.empty()) {
    train_ids.resize(suite_.size());
    for (std::size_t i = 0; i < train_ids.size(); ++i) train_ids[i] = i;
  }
  const Dataset dataset = build_ann_dataset(suite_, train_ids);

  Rng train_rng(options_.seed);
  predictor_ = std::make_unique<BestSizePredictor>(dataset,
                                                   options_.predictor,
                                                   train_rng);

  scheduling_ids_ = suite_.scheduling_ids();
  HETSCHED_ASSERT(!scheduling_ids_.empty());
  Rng arrival_rng(options_.seed ^ 0xa5a5a5a5ULL);
  arrivals_ =
      generate_arrivals(scheduling_ids_, options_.arrivals, arrival_rng);
}

SystemRun Experiment::run_policy(const SystemConfig& system,
                                 SchedulerPolicy& policy, std::string name,
                                 ScheduleObserver* observer) const {
  MulticoreSimulator simulator(system, suite_, energy_, policy);
  if (observer != nullptr) simulator.set_observer(observer);
  SystemRun run;
  run.name = std::move(name);
  run.result = simulator.run(arrivals_);
  run.explored_configs.reserve(scheduling_ids_.size());
  for (std::size_t id : scheduling_ids_) {
    run.explored_configs.push_back(
        simulator.table().entry(id).observed_count());
  }
  return run;
}

SystemConfig Experiment::heterogeneous_system() const {
  return options_.core_count == 4
             ? SystemConfig::paper_quadcore()
             : SystemConfig::scaled_heterogeneous(options_.core_count);
}

SystemConfig Experiment::base_system() const {
  return SystemConfig::fixed_base(options_.core_count);
}

SystemRun Experiment::run_base(ScheduleObserver* observer) const {
  BasePolicy policy;
  return run_policy(base_system(), policy, "base", observer);
}

SystemRun Experiment::run_optimal(ScheduleObserver* observer) const {
  OptimalPolicy policy;
  return run_policy(heterogeneous_system(), policy, "optimal", observer);
}

SystemRun Experiment::run_energy_centric(ScheduleObserver* observer) const {
  EnergyCentricPolicy policy(*predictor_);
  return run_policy(heterogeneous_system(), policy, "energy-centric",
                    observer);
}

SystemRun Experiment::run_proposed(ScheduleObserver* observer) const {
  ProposedPolicy policy(*predictor_);
  return run_policy(heterogeneous_system(), policy, "proposed", observer);
}

Experiment::StandardRuns Experiment::run_standard_systems() const {
  return run_standard_systems(StandardObservers{});
}

Experiment::StandardRuns Experiment::run_standard_systems(
    const StandardObservers& observers) const {
  StandardRuns runs;
  SystemRun* const slots[4] = {&runs.base, &runs.optimal,
                               &runs.energy_centric, &runs.proposed};
  ThreadPool::global().parallel_for(4, [&](std::size_t i) {
    switch (i) {
      case 0: *slots[0] = run_base(observers.base); break;
      case 1: *slots[1] = run_optimal(observers.optimal); break;
      case 2:
        *slots[2] = run_energy_centric(observers.energy_centric);
        break;
      default: *slots[3] = run_proposed(observers.proposed); break;
    }
  });
  return runs;
}

SystemRun Experiment::run_proposed_with(const SizePredictor& predictor,
                                        std::string name) const {
  ProposedPolicy policy(predictor);
  return run_policy(heterogeneous_system(), policy, std::move(name));
}

SystemRun Experiment::run_energy_centric_with(const SizePredictor& predictor,
                                              std::string name) const {
  EnergyCentricPolicy policy(predictor);
  return run_policy(heterogeneous_system(), policy, std::move(name));
}

}  // namespace hetsched
