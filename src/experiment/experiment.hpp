// End-to-end experiment harness (Section V): builds the characterised
// suite, trains the ANN predictor, generates the 5000-job arrival stream,
// and runs the four evaluated systems over the *same* stream. Every bench
// binary and example builds on this class.
#pragma once

#include <memory>
#include <string>

#include "core/policies.hpp"
#include "core/simulator.hpp"
#include "workload/dataset_builder.hpp"

namespace hetsched {

struct ExperimentOptions {
  SuiteOptions suite{};
  ArrivalOptions arrivals{};
  PredictorConfig predictor{};
  EnergyModelParams energy_params{};
  std::uint64_t seed = 42;
  // Number of cores in every evaluated system. 4 (the default) reproduces
  // the paper machines exactly; other values use the scaled heterogeneous
  // layout (system_config.hpp) for the reconfigurable systems and a
  // same-sized fixed-base machine for the baseline.
  std::size_t core_count = 4;
  // When non-empty, characterisation is served from this snapshot file
  // when it is present and keyed to (suite, energy_params); otherwise it
  // is built and the file refreshed (workload/profile_cache.hpp).
  std::string profile_cache_path;

  // Scaled-down preset for unit/integration tests: smaller kernels, fewer
  // arrivals, lighter ANN training.
  static ExperimentOptions quick();
};

// Oracle predictor for ablations: answers with the characterised best
// size (what a perfect ANN would say).
class OracleSizePredictor final : public SizePredictor {
 public:
  explicit OracleSizePredictor(const CharacterizedSuite& suite)
      : suite_(&suite) {}

  std::uint32_t predict(std::size_t benchmark_id,
                        const ExecutionStatistics& stats) const override {
    (void)stats;
    return suite_->benchmark(benchmark_id).oracle_best_size();
  }

 private:
  const CharacterizedSuite* suite_;
};

struct SystemRun {
  std::string name;
  SimulationResult result;
  // Per scheduled benchmark: configurations observed by the end of the run
  // (the tuning-footprint data behind the Figure-5 discussion).
  std::vector<std::size_t> explored_configs;
};

// Ratios relative to a reference system (Figures 6 and 7 are built from
// these).
struct NormalizedEnergy {
  double idle = 1.0;
  double dynamic = 1.0;
  double total = 1.0;
  double cycles = 1.0;    // total execution cycles (work)
  double makespan = 1.0;  // completion time of the last job
};

NormalizedEnergy normalize(const SimulationResult& system,
                           const SimulationResult& reference);

class Experiment {
 public:
  explicit Experiment(const ExperimentOptions& options = {});

  const ExperimentOptions& options() const { return options_; }
  const EnergyModel& energy() const { return energy_; }
  const CharacterizedSuite& suite() const { return suite_; }
  const BestSizePredictor& predictor() const { return *predictor_; }
  const std::vector<JobArrival>& arrivals() const { return arrivals_; }
  const std::vector<std::size_t>& scheduling_ids() const {
    return scheduling_ids_;
  }

  // The four systems of Section V. Each runs the identical arrival stream
  // on a fresh machine. An optional observer (ScheduleLog, EventTracer)
  // receives that run's schedule events.
  SystemRun run_base(ScheduleObserver* observer = nullptr) const;
  SystemRun run_optimal(ScheduleObserver* observer = nullptr) const;
  SystemRun run_energy_centric(ScheduleObserver* observer = nullptr) const;
  SystemRun run_proposed(ScheduleObserver* observer = nullptr) const;

  // All four Section-V systems, fanned out over the shared thread pool.
  // The runs are independent (fresh simulator and policy each, read-only
  // suite/energy/predictor), so the results are identical to calling the
  // four run_*() methods serially.
  struct StandardRuns {
    SystemRun base;
    SystemRun optimal;
    SystemRun energy_centric;
    SystemRun proposed;
  };
  // One optional observer per system; each receives only its own run's
  // events (on that run's simulation thread), so per-run recorders need
  // no synchronisation and their contents are thread-count independent.
  struct StandardObservers {
    ScheduleObserver* base = nullptr;
    ScheduleObserver* optimal = nullptr;
    ScheduleObserver* energy_centric = nullptr;
    ScheduleObserver* proposed = nullptr;
  };
  StandardRuns run_standard_systems() const;
  StandardRuns run_standard_systems(const StandardObservers& observers) const;

  // Ablation entry point: the proposed/energy-centric systems with an
  // arbitrary predictor (e.g. OracleSizePredictor).
  SystemRun run_proposed_with(const SizePredictor& predictor,
                              std::string name) const;
  SystemRun run_energy_centric_with(const SizePredictor& predictor,
                                    std::string name) const;

 private:
  SystemRun run_policy(const SystemConfig& system, SchedulerPolicy& policy,
                       std::string name,
                       ScheduleObserver* observer = nullptr) const;
  // The reconfigurable machine under evaluation: the paper quad-core at
  // the default core_count, the scaled heterogeneous layout otherwise.
  SystemConfig heterogeneous_system() const;
  SystemConfig base_system() const;

  ExperimentOptions options_;
  EnergyModel energy_;
  CharacterizedSuite suite_;
  std::unique_ptr<BestSizePredictor> predictor_;
  std::vector<std::size_t> scheduling_ids_;
  std::vector<JobArrival> arrivals_;
};

}  // namespace hetsched
