#include "experiment/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <limits>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "obs/observability.hpp"
#include "obs/windowed.hpp"
#include "util/atomic_file.hpp"
#include "util/contracts.hpp"
#include "util/hash.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {

Scenario SweepGrid::cell_scenario(std::size_t index) const {
  HETSCHED_REQUIRE(index < cell_count());
  const std::size_t policy_i = index % policies.size();
  const std::size_t gap_i = (index / policies.size()) % mean_gaps.size();
  const std::size_t core_i = index / (policies.size() * mean_gaps.size());

  Scenario cell = base;
  cell.cores = core_counts[core_i];
  cell.arrivals.mean_interarrival_cycles = mean_gaps[gap_i];
  cell.policy = policies[policy_i];
  if (cell.policy == "base") {
    cell.system = Scenario::SystemKind::kFixedBase;
  } else if (cell.cores == 4) {
    cell.system = Scenario::SystemKind::kPaperQuad;
  } else {
    cell.system = Scenario::SystemKind::kScaledHeterogeneous;
  }
  cell.name = base.name + "-cell" + std::to_string(index);
  return cell;
}

Scenario SweepGrid::context_scenario() const {
  Scenario ctx = base;
  for (const std::string& policy : policies) {
    ctx.policy = policy;
    if (ctx.needs_predictor()) break;
  }
  return ctx;
}

void SweepGrid::validate() const {
  HETSCHED_REQUIRE(!core_counts.empty() && !mean_gaps.empty() &&
                   !policies.empty() && "sweep grid axes must be non-empty");
  for (std::size_t i = 0; i < cell_count(); ++i) cell_scenario(i).validate();
}

std::vector<SweepCell> run_sweep(
    const SweepGrid& grid, const ScenarioContext& context,
    std::size_t shards, ThreadPool& pool,
    std::span<ScheduleObserver* const> cell_observers) {
  grid.validate();
  HETSCHED_REQUIRE(shards >= 1 && "shards must be >= 1");
  const std::size_t cells = grid.cell_count();
  HETSCHED_REQUIRE((cell_observers.empty() ||
                    cell_observers.size() == cells) &&
                   "cell_observers must be empty or one per cell");
  shards = std::min(shards, cells);

  std::vector<SweepCell> results(cells);
  // Shard s owns the contiguous index range [s*cells/shards,
  // (s+1)*cells/shards); each cell writes only its own slot, so the
  // ThreadPool determinism contract makes the merge order-independent.
  pool.parallel_for(shards, [&](std::size_t shard) {
    const std::size_t begin = shard * cells / shards;
    const std::size_t end = (shard + 1) * cells / shards;
    for (std::size_t i = begin; i < end; ++i) {
      const Scenario scenario = grid.cell_scenario(i);
      ScheduleObserver* extra =
          cell_observers.empty() ? nullptr : cell_observers[i];
      const ScenarioOutcome outcome = run_scenario(scenario, context, extra);

      SweepCell& cell = results[i];
      cell.index = i;
      cell.cores = scenario.cores;
      cell.mean_gap = scenario.arrivals.mean_interarrival_cycles;
      cell.policy = scenario.policy;
      const std::size_t gap_i =
          (i / grid.policies.size()) % grid.mean_gaps.size();
      cell.label = "c" + std::to_string(cell.cores) + ".g" +
                   std::to_string(gap_i) + "." + cell.policy;
      cell.result = outcome.result;
      cell.stream_digest = outcome.stream.digest();
      cell.invariant_violations = outcome.stream.invariant_violations();
    }
  });
  return results;
}

std::vector<SweepCell> run_sweep(
    const SweepGrid& grid, const ScenarioContext& context,
    std::span<ScheduleObserver* const> cell_observers) {
  return run_sweep(grid, context, grid.cell_count(), ThreadPool::global(),
                   cell_observers);
}

namespace {

namespace st = snapshot_text;

constexpr int kManifestVersion = 1;

// Identity fields shared by every path that materializes a cell record.
void fill_cell_identity(SweepCell& cell, const SweepGrid& grid,
                        std::size_t index) {
  const Scenario scenario = grid.cell_scenario(index);
  cell.index = index;
  cell.cores = scenario.cores;
  cell.mean_gap = scenario.arrivals.mean_interarrival_cycles;
  cell.policy = scenario.policy;
  const std::size_t gap_i =
      (index / grid.policies.size()) % grid.mean_gaps.size();
  cell.label = "c" + std::to_string(cell.cores) + ".g" +
               std::to_string(gap_i) + "." + cell.policy;
}

// Runs one cell to completion under a cooperative wall-clock deadline:
// the simulation advances in fixed simulated-time slices and the clock
// is checked between slices, so a runaway cell is abandoned at a
// deterministic simulation state boundary without detaching threads.
SweepCell run_supervised_cell(const SweepGrid& grid, std::size_t index,
                              const ScenarioContext& context,
                              const SweepSupervisorOptions& options) {
  const Scenario scenario = grid.cell_scenario(index);
  std::optional<WindowedCollector> collector;
  if (options.window_cycles > 0) {
    collector.emplace(scenario.make_system().core_count(),
                      WindowedOptions{options.window_cycles, 0},
                      &context.suite());
  }
  ScenarioRun run(scenario, context,
                  collector.has_value() ? &*collector : nullptr);
  run.start();

  if (options.cell_timeout_ms == 0) {
    run.advance_until(std::numeric_limits<SimTime>::max());
  } else {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options.cell_timeout_ms);
    const SimTime slice = options.supervision_slice_cycles > 0
                              ? options.supervision_slice_cycles
                              : SimTime{1'000'000};
    for (std::uint64_t k = 1; run.advance_until(k * slice); ++k) {
      if (std::chrono::steady_clock::now() >= deadline) {
        throw SweepTimeoutError(
            "cell exceeded its wall-clock budget of " +
            std::to_string(options.cell_timeout_ms) + " ms");
      }
    }
  }

  SweepCell cell;
  fill_cell_identity(cell, grid, index);
  cell.result = run.finish();
  cell.stream_digest = run.stats().digest();
  cell.invariant_violations = run.stats().invariant_violations();
  if (collector.has_value()) {
    collector->finalize();
    cell.windows_closed = collector->windows_closed();
    cell.dropped_windows = collector->dropped_windows();
    for (const WindowRecord& w : collector->windows()) {
      cell.window_jobs_completed += w.jobs_completed;
      cell.window_energy_mj += w.energy_mj;
    }
    std::ostringstream jsonl;
    collector->write_jsonl(jsonl);
    cell.windows_jsonl = jsonl.str();
  }
  return cell;
}

std::string load_manifest_text(const SweepSupervisorOptions& options) {
  if (!options.resume_manifest_text.empty()) {
    return options.resume_manifest_text;
  }
  std::ifstream in(options.resume_manifest, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read sweep manifest: " +
                             options.resume_manifest);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::uint64_t sweep_grid_fingerprint(const SweepGrid& grid) {
  std::ostringstream out;
  grid.base.save(out);
  out << "core-counts";
  for (const std::size_t c : grid.core_counts) out << ' ' << c;
  out << "\nmean-gaps";
  for (const double g : grid.mean_gaps) {
    out << ' ';
    st::write_double(out, g);
  }
  out << "\npolicies";
  for (const std::string& p : grid.policies) out << ' ' << p;
  out << "\n";
  return fnv1a(out.str());
}

std::string serialize_sweep_manifest(const SweepGrid& grid,
                                     const std::vector<SweepCell>& cells) {
  std::ostringstream body;
  body << "hetsched-sweep-manifest " << kManifestVersion << "\n";
  body << "grid-hash " << sweep_grid_fingerprint(grid) << "\n";
  std::size_t completed = 0;
  for (const SweepCell& cell : cells) {
    if (cell.completed) ++completed;
  }
  body << "cells " << grid.cell_count() << ' ' << completed << "\n";
  for (const SweepCell& cell : cells) {
    if (!cell.completed) continue;
    body << "cell " << cell.index << ' ' << cell.label << "\n";
    save_simulation_result(body, cell.result);
    body << "stream " << cell.stream_digest << ' '
         << cell.invariant_violations << "\n";
    body << "windows " << cell.windows_closed << ' '
         << cell.dropped_windows << ' ' << cell.window_jobs_completed
         << ' ';
    st::write_double(body, cell.window_energy_mj);
    // Raw JSONL bytes, length-prefixed: content is opaque to the
    // manifest parser and reproduced byte-for-byte on resume.
    body << "\nwindows-jsonl " << cell.windows_jsonl.size() << "\n"
         << cell.windows_jsonl << "\n";
  }
  std::ostringstream out;
  st::write_with_checksum(out, body.str());
  return out.str();
}

std::vector<SweepCell> parse_sweep_manifest(const std::string& text,
                                            const SweepGrid& grid,
                                            const std::string& context) {
  std::istringstream raw(text);
  const std::string body = st::read_verified(raw, context);
  std::istringstream in(body);

  std::string token;
  if (!(in >> token) || token != "hetsched-sweep-manifest") {
    st::fail(context, "not a hetsched sweep manifest");
  }
  if (st::read_value<int>(in, "version", context) != kManifestVersion) {
    st::fail(context, "unsupported manifest version");
  }
  if (!(in >> token) || token != "grid-hash") {
    st::fail(context, "expected 'grid-hash'");
  }
  if (st::read_value<std::uint64_t>(in, "grid hash", context) !=
      sweep_grid_fingerprint(grid)) {
    st::fail(context, "manifest was written for a different sweep grid");
  }
  if (!(in >> token) || token != "cells") {
    st::fail(context, "expected 'cells'");
  }
  if (st::read_value<std::size_t>(in, "cell count", context) !=
      grid.cell_count()) {
    st::fail(context, "manifest cell count does not match the grid");
  }
  const auto completed =
      st::read_value<std::size_t>(in, "completed count", context);
  if (completed > grid.cell_count()) {
    st::fail(context, "completed count exceeds the grid");
  }

  std::vector<SweepCell> cells;
  std::size_t last_index = 0;
  for (std::size_t n = 0; n < completed; ++n) {
    if (!(in >> token) || token != "cell") {
      st::fail(context, "expected 'cell'");
    }
    const auto index =
        st::read_value<std::size_t>(in, "cell index", context);
    if (index >= grid.cell_count()) {
      st::fail(context, "cell index out of range");
    }
    if (n > 0 && index <= last_index) {
      st::fail(context, "cell indices out of order");
    }
    last_index = index;
    SweepCell cell;
    fill_cell_identity(cell, grid, index);
    std::string label;
    if (!(in >> label) || label != cell.label) {
      st::fail(context, "cell label does not match the grid");
    }
    load_simulation_result(in, cell.result, context);
    if (!(in >> token) || token != "stream") {
      st::fail(context, "expected 'stream'");
    }
    cell.stream_digest =
        st::read_value<std::uint64_t>(in, "stream digest", context);
    cell.invariant_violations =
        st::read_value<std::uint64_t>(in, "invariant violations", context);
    if (!(in >> token) || token != "windows") {
      st::fail(context, "expected 'windows'");
    }
    cell.windows_closed =
        st::read_value<std::uint64_t>(in, "windows closed", context);
    cell.dropped_windows =
        st::read_value<std::uint64_t>(in, "dropped windows", context);
    cell.window_jobs_completed =
        st::read_value<std::uint64_t>(in, "window jobs", context);
    cell.window_energy_mj =
        st::read_value<double>(in, "window energy", context);
    if (!(in >> token) || token != "windows-jsonl") {
      st::fail(context, "expected 'windows-jsonl'");
    }
    const auto bytes =
        st::read_value<std::size_t>(in, "jsonl byte count", context);
    in.get();  // the newline terminating the length prefix
    cell.windows_jsonl.resize(bytes);
    if (bytes > 0 &&
        !in.read(cell.windows_jsonl.data(),
                 static_cast<std::streamsize>(bytes))) {
      st::fail(context, "truncated window JSONL payload");
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

SupervisedSweepResult run_sweep_supervised(
    const SweepGrid& grid, const ScenarioContext& context,
    std::size_t shards, ThreadPool& pool,
    const SweepSupervisorOptions& options) {
  grid.validate();
  HETSCHED_REQUIRE(shards >= 1 && "shards must be >= 1");
  HETSCHED_REQUIRE(options.max_attempts >= 1);
  const std::size_t cells = grid.cell_count();
  shards = std::min(shards, cells);

  SupervisedSweepResult sweep;
  sweep.cells.resize(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    fill_cell_identity(sweep.cells[i], grid, i);
    sweep.cells[i].completed = false;
  }

  if (!options.resume_manifest.empty() ||
      !options.resume_manifest_text.empty()) {
    const std::string context_name = options.resume_manifest.empty()
                                         ? std::string("sweep manifest")
                                         : options.resume_manifest;
    for (SweepCell& done :
         parse_sweep_manifest(load_manifest_text(options), grid,
                              context_name)) {
      const std::size_t index = done.index;
      done.completed = true;
      sweep.cells[index] = std::move(done);
      ++sweep.resumed_cells;
    }
  }

  // Serializes manifest rewrites and the failure list; cell payloads are
  // lock-free (each cell owns its index-ordered slot).
  std::mutex bookkeeping;
  const auto persist_manifest = [&] {
    if (options.manifest_out.empty()) return;
    const std::string text = serialize_sweep_manifest(grid, sweep.cells);
    if (!atomic_write_file(options.manifest_out, text)) {
      throw std::runtime_error("cannot write sweep manifest: " +
                               options.manifest_out);
    }
  };

  pool.parallel_for(shards, [&](std::size_t shard) {
    const std::size_t begin = shard * cells / shards;
    const std::size_t end = (shard + 1) * cells / shards;
    for (std::size_t i = begin; i < end; ++i) {
      if (sweep.cells[i].completed) continue;  // resumed from manifest

      SweepFailure failure;
      failure.index = i;
      failure.label = sweep.cells[i].label;
      bool done = false;
      for (std::uint32_t attempt = 1; attempt <= options.max_attempts;
           ++attempt) {
        failure.attempts = attempt;
        try {
          SweepCell cell = run_supervised_cell(grid, i, context, options);
          cell.completed = true;
          sweep.cells[i] = std::move(cell);
          done = true;
          break;
        } catch (const SweepTimeoutError& e) {
          failure.timed_out = true;
          failure.reason = e.what();
        } catch (const std::exception& e) {
          failure.timed_out = false;
          failure.reason = e.what();
        }
        if (attempt < options.max_attempts &&
            options.retry_backoff_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options.retry_backoff_ms));
        }
      }

      const std::lock_guard<std::mutex> lock(bookkeeping);
      if (done) {
        persist_manifest();
      } else {
        sweep.failed.push_back(std::move(failure));
      }
    }
  });

  std::sort(sweep.failed.begin(), sweep.failed.end(),
            [](const SweepFailure& a, const SweepFailure& b) {
              return a.index < b.index;
            });
  return sweep;
}

void record_sweep_metrics(MetricsRegistry& metrics,
                          const std::string& prefix,
                          const std::vector<SweepCell>& cells) {
  for (const SweepCell& cell : cells) {
    const std::string cell_prefix = prefix + cell.label + ".";
    metrics.gauge(cell_prefix + "cores")
        .set(static_cast<double>(cell.cores));
    metrics.gauge(cell_prefix + "mean_gap_cycles").set(cell.mean_gap);
    record_result_metrics(metrics, cell_prefix, cell.result);
    metrics.counter(cell_prefix + "stream.digest").add(cell.stream_digest);
    metrics.counter(cell_prefix + "stream.invariant_violations")
        .add(cell.invariant_violations);
  }
}

}  // namespace hetsched
