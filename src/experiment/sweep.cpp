#include "experiment/sweep.hpp"

#include <algorithm>

#include "obs/observability.hpp"
#include "util/contracts.hpp"

namespace hetsched {

Scenario SweepGrid::cell_scenario(std::size_t index) const {
  HETSCHED_REQUIRE(index < cell_count());
  const std::size_t policy_i = index % policies.size();
  const std::size_t gap_i = (index / policies.size()) % mean_gaps.size();
  const std::size_t core_i = index / (policies.size() * mean_gaps.size());

  Scenario cell = base;
  cell.cores = core_counts[core_i];
  cell.arrivals.mean_interarrival_cycles = mean_gaps[gap_i];
  cell.policy = policies[policy_i];
  if (cell.policy == "base") {
    cell.system = Scenario::SystemKind::kFixedBase;
  } else if (cell.cores == 4) {
    cell.system = Scenario::SystemKind::kPaperQuad;
  } else {
    cell.system = Scenario::SystemKind::kScaledHeterogeneous;
  }
  cell.name = base.name + "-cell" + std::to_string(index);
  return cell;
}

Scenario SweepGrid::context_scenario() const {
  Scenario ctx = base;
  for (const std::string& policy : policies) {
    ctx.policy = policy;
    if (ctx.needs_predictor()) break;
  }
  return ctx;
}

void SweepGrid::validate() const {
  HETSCHED_REQUIRE(!core_counts.empty() && !mean_gaps.empty() &&
                   !policies.empty() && "sweep grid axes must be non-empty");
  for (std::size_t i = 0; i < cell_count(); ++i) cell_scenario(i).validate();
}

std::vector<SweepCell> run_sweep(
    const SweepGrid& grid, const ScenarioContext& context,
    std::size_t shards, ThreadPool& pool,
    std::span<ScheduleObserver* const> cell_observers) {
  grid.validate();
  HETSCHED_REQUIRE(shards >= 1 && "shards must be >= 1");
  const std::size_t cells = grid.cell_count();
  HETSCHED_REQUIRE((cell_observers.empty() ||
                    cell_observers.size() == cells) &&
                   "cell_observers must be empty or one per cell");
  shards = std::min(shards, cells);

  std::vector<SweepCell> results(cells);
  // Shard s owns the contiguous index range [s*cells/shards,
  // (s+1)*cells/shards); each cell writes only its own slot, so the
  // ThreadPool determinism contract makes the merge order-independent.
  pool.parallel_for(shards, [&](std::size_t shard) {
    const std::size_t begin = shard * cells / shards;
    const std::size_t end = (shard + 1) * cells / shards;
    for (std::size_t i = begin; i < end; ++i) {
      const Scenario scenario = grid.cell_scenario(i);
      ScheduleObserver* extra =
          cell_observers.empty() ? nullptr : cell_observers[i];
      const ScenarioOutcome outcome = run_scenario(scenario, context, extra);

      SweepCell& cell = results[i];
      cell.index = i;
      cell.cores = scenario.cores;
      cell.mean_gap = scenario.arrivals.mean_interarrival_cycles;
      cell.policy = scenario.policy;
      const std::size_t gap_i =
          (i / grid.policies.size()) % grid.mean_gaps.size();
      cell.label = "c" + std::to_string(cell.cores) + ".g" +
                   std::to_string(gap_i) + "." + cell.policy;
      cell.result = outcome.result;
      cell.stream_digest = outcome.stream.digest();
      cell.invariant_violations = outcome.stream.invariant_violations();
    }
  });
  return results;
}

std::vector<SweepCell> run_sweep(
    const SweepGrid& grid, const ScenarioContext& context,
    std::span<ScheduleObserver* const> cell_observers) {
  return run_sweep(grid, context, grid.cell_count(), ThreadPool::global(),
                   cell_observers);
}

void record_sweep_metrics(MetricsRegistry& metrics,
                          const std::string& prefix,
                          const std::vector<SweepCell>& cells) {
  for (const SweepCell& cell : cells) {
    const std::string cell_prefix = prefix + cell.label + ".";
    metrics.gauge(cell_prefix + "cores")
        .set(static_cast<double>(cell.cores));
    metrics.gauge(cell_prefix + "mean_gap_cycles").set(cell.mean_gap);
    record_result_metrics(metrics, cell_prefix, cell.result);
    metrics.counter(cell_prefix + "stream.digest").add(cell.stream_digest);
    metrics.counter(cell_prefix + "stream.invariant_violations")
        .add(cell.invariant_violations);
  }
}

}  // namespace hetsched
