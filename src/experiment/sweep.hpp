// Sharded scenario sweeps: a grid of (core count x arrival rate x
// policy) cells, each an independent deterministic scenario run, fanned
// out over the shared thread pool in contiguous shards. Because every
// cell is self-contained (fresh simulator, read-only shared context) and
// lands in its own index-ordered slot, the merged results are
// bit-identical for every shard count and every HETSCHED_THREADS value.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "scenario/scenario_runner.hpp"
#include "util/thread_pool.hpp"

namespace hetsched {

struct SweepGrid {
  // Template scenario: seed, suite, discipline, job count, distribution,
  // faults... everything the axes below do not override.
  Scenario base;
  std::vector<std::size_t> core_counts{4};
  std::vector<double> mean_gaps{60000.0};
  std::vector<std::string> policies{"base", "proposed"};

  std::size_t cell_count() const {
    return core_counts.size() * mean_gaps.size() * policies.size();
  }

  // The concrete scenario for cell `index` (row-major over core_counts,
  // then mean_gaps, then policies). The base policy runs on a same-sized
  // fixed-base machine, every other policy on the reconfigurable one
  // (paper layout at 4 cores, scaled layout otherwise) — the Experiment
  // convention.
  Scenario cell_scenario(std::size_t index) const;

  // `base` with its policy swapped for the most demanding one on the
  // policies axis, so one ScenarioContext built from it (with a trained
  // predictor iff some cell needs it) serves the whole sweep.
  Scenario context_scenario() const;

  void validate() const;
};

struct SweepCell {
  std::size_t index = 0;
  std::size_t cores = 0;
  double mean_gap = 0.0;
  std::string policy;
  std::string label;  // "c<cores>.g<gap index>.<policy>", metric-key safe
  SimulationResult result;
  std::uint64_t stream_digest = 0;  // StreamStats event-stream digest
  std::uint64_t invariant_violations = 0;

  // Supervised execution extensions. `completed` is false for a cell
  // that failed or timed out under supervision (its result fields are
  // default-initialized, only the identity fields above are valid).
  bool completed = true;
  // Windowed-telemetry summary and raw JSONL lines, captured when the
  // supervisor runs cells with window_cycles > 0; carried through the
  // shard manifest so a resumed sweep reproduces the merged window
  // output byte-identically without re-running completed cells.
  std::uint64_t windows_closed = 0;
  std::uint64_t dropped_windows = 0;
  std::uint64_t window_jobs_completed = 0;
  double window_energy_mj = 0.0;
  std::string windows_jsonl;
};

// Runs every cell of `grid`, splitting the cell list into `shards`
// contiguous chunks executed via pool.parallel_for. Returns the cells in
// grid order. `context` must come from grid.context_scenario() (or any
// scenario with identical suite/predictor parameters).
// `cell_observers` is either empty or one observer per cell (nulls
// allowed): observer i receives cell i's event stream. Each observer is
// touched only by the shard running its cell, so per-cell recorders
// need no locking; cells may run concurrently, so one observer must not
// be aliased across cells.
std::vector<SweepCell> run_sweep(
    const SweepGrid& grid, const ScenarioContext& context,
    std::size_t shards, ThreadPool& pool,
    std::span<ScheduleObserver* const> cell_observers = {});

// Convenience: shards == cell count, shared global pool.
std::vector<SweepCell> run_sweep(
    const SweepGrid& grid, const ScenarioContext& context,
    std::span<ScheduleObserver* const> cell_observers = {});

// Deposits one result bucket per cell under `prefix` + cell label, plus
// the per-cell stream digest and invariant-violation counters.
void record_sweep_metrics(MetricsRegistry& metrics,
                          const std::string& prefix,
                          const std::vector<SweepCell>& cells);

// --- Supervised sweeps: timeout, retry, quarantine, resume --------------

// Thrown inside a supervised cell whose wall-clock budget expired; the
// supervisor converts it into a quarantined-cell record.
class SweepTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SweepSupervisorOptions {
  // Wall-clock budget per cell attempt in milliseconds; 0 disables the
  // timeout (cells then only fail by throwing).
  std::uint64_t cell_timeout_ms = 0;
  // Attempts per cell before it is quarantined (>= 1).
  std::uint32_t max_attempts = 1;
  // Sleep between attempts of one cell.
  std::uint64_t retry_backoff_ms = 0;
  // Simulated-time slice between timeout checks: the cell is driven
  // cooperatively in slices of this many cycles, so the deadline is
  // honoured without detaching threads (sanitizer-clean).
  SimTime supervision_slice_cycles = 1'000'000;
  // Per-cell windowed telemetry width; 0 runs cells without a collector.
  SimTime window_cycles = 0;
  // Shard-manifest path, atomically rewritten after every completed
  // cell; empty = no manifest persistence.
  std::string manifest_out;
  // Resume source: a manifest file path, or the literal manifest text
  // (tests; takes precedence when non-empty). Cells recorded there are
  // merged instead of re-run; the merged sweep is byte-identical to a
  // clean run.
  std::string resume_manifest;
  std::string resume_manifest_text;
};

// One quarantined cell.
struct SweepFailure {
  std::size_t index = 0;
  std::string label;
  std::uint32_t attempts = 0;
  bool timed_out = false;
  std::string reason;  // what() of the last failure
};

struct SupervisedSweepResult {
  // All cells in grid order; failed cells have completed == false.
  std::vector<SweepCell> cells;
  std::vector<SweepFailure> failed;  // sorted by index
  std::uint64_t resumed_cells = 0;   // skipped thanks to the manifest
};

// Supervised variant of run_sweep: each cell runs under a cooperative
// wall-clock timeout with bounded retry; failures are quarantined into
// `failed` instead of aborting the sweep. Deterministic for the
// completed set: a cell's payload does not depend on timing, shard
// count or which other cells failed. Throws std::runtime_error on an
// unreadable/corrupted/mismatched resume manifest or an unwritable
// manifest path.
SupervisedSweepResult run_sweep_supervised(
    const SweepGrid& grid, const ScenarioContext& context,
    std::size_t shards, ThreadPool& pool,
    const SweepSupervisorOptions& options);

// Shard-manifest round trip (exposed for tests and tooling). The
// manifest records the grid fingerprint plus every completed cell's full
// payload (result, digest, window summary and raw window JSONL,
// length-prefixed), checksummed like every snapshot format.
// parse_sweep_manifest validates against `grid` and throws
// std::runtime_error (tagged with `context`) on malformed, truncated or
// mismatched input.
std::string serialize_sweep_manifest(const SweepGrid& grid,
                                     const std::vector<SweepCell>& cells);
std::vector<SweepCell> parse_sweep_manifest(const std::string& text,
                                            const SweepGrid& grid,
                                            const std::string& context);

// FNV-1a fingerprint of the grid definition (base scenario plus axes);
// stamped into manifests so one cannot resume a different sweep.
std::uint64_t sweep_grid_fingerprint(const SweepGrid& grid);

}  // namespace hetsched
