// Sharded scenario sweeps: a grid of (core count x arrival rate x
// policy) cells, each an independent deterministic scenario run, fanned
// out over the shared thread pool in contiguous shards. Because every
// cell is self-contained (fresh simulator, read-only shared context) and
// lands in its own index-ordered slot, the merged results are
// bit-identical for every shard count and every HETSCHED_THREADS value.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "scenario/scenario_runner.hpp"
#include "util/thread_pool.hpp"

namespace hetsched {

struct SweepGrid {
  // Template scenario: seed, suite, discipline, job count, distribution,
  // faults... everything the axes below do not override.
  Scenario base;
  std::vector<std::size_t> core_counts{4};
  std::vector<double> mean_gaps{60000.0};
  std::vector<std::string> policies{"base", "proposed"};

  std::size_t cell_count() const {
    return core_counts.size() * mean_gaps.size() * policies.size();
  }

  // The concrete scenario for cell `index` (row-major over core_counts,
  // then mean_gaps, then policies). The base policy runs on a same-sized
  // fixed-base machine, every other policy on the reconfigurable one
  // (paper layout at 4 cores, scaled layout otherwise) — the Experiment
  // convention.
  Scenario cell_scenario(std::size_t index) const;

  // `base` with its policy swapped for the most demanding one on the
  // policies axis, so one ScenarioContext built from it (with a trained
  // predictor iff some cell needs it) serves the whole sweep.
  Scenario context_scenario() const;

  void validate() const;
};

struct SweepCell {
  std::size_t index = 0;
  std::size_t cores = 0;
  double mean_gap = 0.0;
  std::string policy;
  std::string label;  // "c<cores>.g<gap index>.<policy>", metric-key safe
  SimulationResult result;
  std::uint64_t stream_digest = 0;  // StreamStats event-stream digest
  std::uint64_t invariant_violations = 0;
};

// Runs every cell of `grid`, splitting the cell list into `shards`
// contiguous chunks executed via pool.parallel_for. Returns the cells in
// grid order. `context` must come from grid.context_scenario() (or any
// scenario with identical suite/predictor parameters).
// `cell_observers` is either empty or one observer per cell (nulls
// allowed): observer i receives cell i's event stream. Each observer is
// touched only by the shard running its cell, so per-cell recorders
// need no locking; cells may run concurrently, so one observer must not
// be aliased across cells.
std::vector<SweepCell> run_sweep(
    const SweepGrid& grid, const ScenarioContext& context,
    std::size_t shards, ThreadPool& pool,
    std::span<ScheduleObserver* const> cell_observers = {});

// Convenience: shards == cell count, shared global pool.
std::vector<SweepCell> run_sweep(
    const SweepGrid& grid, const ScenarioContext& context,
    std::span<ScheduleObserver* const> cell_observers = {});

// Deposits one result bucket per cell under `prefix` + cell label, plus
// the per-cell stream digest and invariant-violation counters.
void record_sweep_metrics(MetricsRegistry& metrics,
                          const std::string& prefix,
                          const std::vector<SweepCell>& cells);

}  // namespace hetsched
