#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numbers>
#include <ostream>
#include <set>

#include "util/rng.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {
namespace {

// Distinct per-fault-class stream tags keep the hash draws independent.
constexpr std::uint64_t kStreamReconfig = 0x5265636f6e666967ULL;
constexpr std::uint64_t kStreamStuck = 0x537475636b4a6f62ULL;
constexpr std::uint64_t kStreamCounter = 0x436f756e74657273ULL;

std::uint64_t mix(std::uint64_t seed, std::uint64_t stream, std::uint64_t a,
                  std::uint64_t b) {
  SplitMix64 sm(seed ^ stream);
  // Feed the identifiers through the generator state so nearby ids land
  // far apart.
  std::uint64_t h = sm.next() ^ (a * 0x9e3779b97f4a7c15ULL);
  h = SplitMix64(h).next() ^ (b * 0xbf58476d1ce4e5b9ULL);
  return SplitMix64(h).next();
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
  std::stable_sort(plan_.core_events.begin(), plan_.core_events.end(),
                   [](const CoreFaultEvent& a, const CoreFaultEvent& b) {
                     return a.at != b.at ? a.at < b.at : a.core < b.core;
                   });
}

std::optional<SimTime> FaultInjector::next_core_event_time() const {
  if (cursor_ >= plan_.core_events.size()) return std::nullopt;
  return plan_.core_events[cursor_].at;
}

std::vector<CoreFaultEvent> FaultInjector::take_core_events(SimTime now) {
  std::vector<CoreFaultEvent> due;
  while (cursor_ < plan_.core_events.size() &&
         plan_.core_events[cursor_].at <= now) {
    due.push_back(plan_.core_events[cursor_++]);
  }
  return due;
}

double FaultInjector::hash_uniform(std::uint64_t stream, std::uint64_t a,
                                   std::uint64_t b) const {
  return to_unit(mix(plan_.seed, stream, a, b));
}

double FaultInjector::hash_normal(std::uint64_t stream, std::uint64_t a,
                                  std::uint64_t b) const {
  // Box-Muller over two independent hash uniforms; u1 nudged off zero.
  const double u1 =
      std::max(to_unit(mix(plan_.seed, stream, a, b * 2 + 1)), 0x1.0p-53);
  const double u2 = to_unit(mix(plan_.seed, stream, a, b * 2 + 2));
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool FaultInjector::reconfig_fails(std::size_t core, std::uint64_t job_id,
                                   int attempt) {
  if (plan_.reconfig_failure_rate <= 0.0) return false;
  return hash_uniform(kStreamReconfig,
                      job_id * 64 + static_cast<std::uint64_t>(attempt),
                      core) < plan_.reconfig_failure_rate;
}

bool FaultInjector::job_hangs(std::uint64_t job_id) {
  if (plan_.stuck_job_rate <= 0.0) return false;
  if (jobs_hung_.contains(job_id)) return false;
  if (hash_uniform(kStreamStuck, job_id, 0) >= plan_.stuck_job_rate) {
    return false;
  }
  jobs_hung_.insert(job_id);
  return true;
}

bool FaultInjector::corrupt_statistics(std::size_t benchmark_id,
                                       ExecutionStatistics& stats) {
  if (plan_.counter_corruption_rate <= 0.0) return false;
  if (hash_uniform(kStreamCounter, benchmark_id, 0) >=
      plan_.counter_corruption_rate) {
    return false;
  }

  double* fields[kNumExecutionStatistics] = {
      &stats.total_instructions, &stats.cycles,
      &stats.loads,              &stats.stores,
      &stats.branches,           &stats.taken_branches,
      &stats.int_ops,            &stats.fp_ops,
      &stats.l1_accesses,        &stats.l1_misses,
      &stats.l1_miss_rate,       &stats.compulsory_misses,
      &stats.writebacks,         &stats.working_set_bytes,
      &stats.load_fraction,      &stats.mem_intensity,
      &stats.compute_intensity,  &stats.branch_fraction};

  switch (plan_.counter_mode) {
    case FaultPlan::CounterMode::kGaussian:
      for (std::size_t i = 0; i < kNumExecutionStatistics; ++i) {
        *fields[i] *= 1.0 + plan_.counter_noise_stddev *
                                hash_normal(kStreamCounter, benchmark_id,
                                            i + 1);
      }
      break;
    case FaultPlan::CounterMode::kNaN: {
      const std::size_t victim =
          mix(plan_.seed, kStreamCounter, benchmark_id, 1) %
          kNumExecutionStatistics;
      *fields[victim] = std::numeric_limits<double>::quiet_NaN();
      break;
    }
    case FaultPlan::CounterMode::kZero:
      for (double* field : fields) *field = 0.0;
      break;
    case FaultPlan::CounterMode::kSaturate:
      for (double* field : fields) *field = 1e30;
      break;
  }
  return true;
}

void FaultInjector::save_state(std::ostream& out) const {
  out << "fault-injector " << cursor_ << "\n";
  // Sorted order: serialization must not depend on unordered_set layout.
  const std::set<std::uint64_t> hung(jobs_hung_.begin(), jobs_hung_.end());
  out << "hung-jobs " << hung.size() << "\n";
  for (const std::uint64_t job_id : hung) out << job_id << "\n";
}

void FaultInjector::restore_state(std::istream& in,
                                  const std::string& context) {
  namespace st = snapshot_text;
  std::string token;
  if (!(in >> token) || token != "fault-injector") {
    st::fail(context, "expected 'fault-injector'");
  }
  cursor_ = st::read_value<std::size_t>(in, "event cursor", context);
  if (cursor_ > plan_.core_events.size()) {
    st::fail(context, "event cursor beyond the plan");
  }
  if (!(in >> token) || token != "hung-jobs") {
    st::fail(context, "expected 'hung-jobs'");
  }
  const auto hung =
      st::read_value<std::size_t>(in, "hung-job count", context);
  jobs_hung_.clear();
  for (std::size_t i = 0; i < hung; ++i) {
    jobs_hung_.insert(
        st::read_value<std::uint64_t>(in, "hung job id", context));
  }
}

}  // namespace hetsched
