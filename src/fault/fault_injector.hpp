// Fault injector: the runtime side of a FaultPlan.
//
// The simulator owns one injector per run (attach with
// MulticoreSimulator::set_fault_injector). Scheduled core events are
// consumed in time order through next_core_event_time()/take_core_events();
// rate-driven faults are decided by pure hashes of
// (plan seed, fault stream, identifiers) so the same plan produces the
// same faults on every run, independent of how many decisions were made
// before — determinism the tests rely on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "fault/fault_plan.hpp"
#include "trace/counters.hpp"

namespace hetsched {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  // ---- scheduled core events -------------------------------------
  // Time of the earliest unconsumed core event, if any.
  std::optional<SimTime> next_core_event_time() const;
  // Consumes and returns every unconsumed event with at <= now, in
  // (time, core) order.
  std::vector<CoreFaultEvent> take_core_events(SimTime now);

  // ---- rate-driven faults ----------------------------------------
  // Whether reconfiguration attempt `attempt` on `core` fails for this
  // job (the cache then stays in its previous configuration).
  bool reconfig_fails(std::size_t core, std::uint64_t job_id, int attempt);

  // Whether this job's next execution hangs. A job hangs at most once:
  // the fault models a transient wedge that a watchdog re-dispatch
  // clears.
  bool job_hangs(std::uint64_t job_id);

  // Applies the plan's counter-corruption mode to freshly profiled
  // statistics; returns true when they were corrupted.
  bool corrupt_statistics(std::size_t benchmark_id,
                          ExecutionStatistics& stats);

  // Checkpoint support: serializes the consumed-event cursor and the
  // jobs-already-hung set (rate faults are pure hashes and need no
  // state). restore_state requires an injector built from the identical
  // plan and throws std::runtime_error (tagged with `context`) on
  // malformed or mismatched input.
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in, const std::string& context);

 private:
  // Pure uniform draw in [0, 1) from (seed, stream, a, b).
  double hash_uniform(std::uint64_t stream, std::uint64_t a,
                      std::uint64_t b) const;
  // Pure standard-normal draw (Box-Muller over two hash uniforms).
  double hash_normal(std::uint64_t stream, std::uint64_t a,
                     std::uint64_t b) const;

  FaultPlan plan_;
  std::size_t cursor_ = 0;  // into plan_.core_events (sorted)
  std::unordered_set<std::uint64_t> jobs_hung_;
};

}  // namespace hetsched
