#include "fault/fault_plan.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hetsched {
namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("fault plan line " + std::to_string(line) +
                           ": " + what);
}

bool valid_rate(double p) { return std::isfinite(p) && p >= 0.0 && p <= 1.0; }

}  // namespace

std::string_view to_string(FaultPlan::CounterMode mode) {
  switch (mode) {
    case FaultPlan::CounterMode::kGaussian: return "gaussian";
    case FaultPlan::CounterMode::kNaN: return "nan";
    case FaultPlan::CounterMode::kZero: return "zero";
    case FaultPlan::CounterMode::kSaturate: return "saturate";
  }
  return "unknown";
}

bool FaultPlan::empty() const {
  return core_events.empty() && reconfig_failure_rate == 0.0 &&
         stuck_job_rate == 0.0 && counter_corruption_rate == 0.0;
}

void FaultPlan::validate() const {
  if (!valid_rate(reconfig_failure_rate) || !valid_rate(stuck_job_rate) ||
      !valid_rate(counter_corruption_rate)) {
    throw std::invalid_argument(
        "FaultPlan: fault rates must be finite and within [0, 1]");
  }
  if (!std::isfinite(counter_noise_stddev) || counter_noise_stddev < 0.0) {
    throw std::invalid_argument(
        "FaultPlan: counter noise stddev must be finite and >= 0");
  }
}

FaultPlan FaultPlan::uniform(double rate, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.reconfig_failure_rate = rate;
  plan.stuck_job_rate = rate;
  plan.counter_corruption_rate = rate;
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::parse(std::istream& in) {
  FaultPlan plan;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive) || directive[0] == '#') continue;

    auto read_rate = [&](double& out) {
      if (!(tokens >> out) || !valid_rate(out)) {
        parse_fail(line_number,
                   "'" + directive + "' expects a probability in [0, 1]");
      }
    };
    auto read_event = [&](bool fail) {
      CoreFaultEvent ev;
      ev.fail = fail;
      if (!(tokens >> ev.core >> ev.at)) {
        parse_fail(line_number,
                   "'" + directive + "' expects CORE and CYCLE");
      }
      plan.core_events.push_back(ev);
    };

    if (directive == "seed") {
      if (!(tokens >> plan.seed)) {
        parse_fail(line_number, "'seed' expects an integer");
      }
    } else if (directive == "fail") {
      read_event(true);
    } else if (directive == "recover") {
      read_event(false);
    } else if (directive == "reconfig-failure-rate") {
      read_rate(plan.reconfig_failure_rate);
    } else if (directive == "stuck-rate") {
      read_rate(plan.stuck_job_rate);
    } else if (directive == "counter-corruption-rate") {
      read_rate(plan.counter_corruption_rate);
    } else if (directive == "counter-noise") {
      if (!(tokens >> plan.counter_noise_stddev) ||
          !std::isfinite(plan.counter_noise_stddev) ||
          plan.counter_noise_stddev < 0.0) {
        parse_fail(line_number, "'counter-noise' expects a finite value >= 0");
      }
    } else if (directive == "counter-mode") {
      std::string mode;
      if (!(tokens >> mode)) parse_fail(line_number, "missing counter mode");
      if (mode == "gaussian") {
        plan.counter_mode = CounterMode::kGaussian;
      } else if (mode == "nan") {
        plan.counter_mode = CounterMode::kNaN;
      } else if (mode == "zero") {
        plan.counter_mode = CounterMode::kZero;
      } else if (mode == "saturate") {
        plan.counter_mode = CounterMode::kSaturate;
      } else {
        parse_fail(line_number, "unknown counter mode '" + mode + "'");
      }
    } else {
      parse_fail(line_number, "unknown directive '" + directive + "'");
    }

    std::string trailing;
    if (tokens >> trailing && trailing[0] != '#') {
      parse_fail(line_number, "trailing garbage '" + trailing + "'");
    }
  }
  return plan;
}

void FaultPlan::save(std::ostream& out) const {
  out << "seed " << seed << "\n";
  for (const CoreFaultEvent& ev : core_events) {
    out << (ev.fail ? "fail " : "recover ") << ev.core << ' ' << ev.at
        << "\n";
  }
  out << "reconfig-failure-rate " << reconfig_failure_rate << "\n";
  out << "stuck-rate " << stuck_job_rate << "\n";
  out << "counter-corruption-rate " << counter_corruption_rate << "\n";
  out << "counter-mode " << to_string(counter_mode) << "\n";
  out << "counter-noise " << counter_noise_stddev << "\n";
}

}  // namespace hetsched
