// Fault plan: a declarative, seed-driven description of the faults to
// inject into one simulation run.
//
// Two kinds of faults coexist:
//   * scheduled core events — a core fails (goes offline, its running job
//     is settled pro-rata and re-queued) or recovers at a given cycle;
//   * rate-driven faults — reconfiguration failures, stuck-job hangs and
//     hardware-counter corruption, each decided per occurrence by a
//     deterministic hash of (seed, fault stream, identifiers), so a plan
//     replays bit-identically regardless of call order.
//
// A default-constructed plan is the zero-fault plan: attaching it to a
// simulator produces bit-identical results to running without an
// injector at all (pay-for-what-you-use).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace hetsched {

// One scheduled core failure or recovery.
struct CoreFaultEvent {
  SimTime at = 0;
  std::size_t core = 0;
  bool fail = true;  // false = recovery

  friend bool operator==(const CoreFaultEvent&,
                         const CoreFaultEvent&) = default;
};

struct FaultPlan {
  // How counter corruption mangles the profiled statistics.
  enum class CounterMode {
    kGaussian,  // multiplicative Gaussian noise on every statistic
    kNaN,       // one statistic replaced by NaN
    kZero,      // all statistics zeroed
    kSaturate,  // all statistics saturated to a huge magnitude
  };

  std::uint64_t seed = 1;
  std::vector<CoreFaultEvent> core_events;

  // Probability that one reconfiguration attempt fails, leaving the
  // cache stuck in its previous configuration.
  double reconfig_failure_rate = 0.0;
  // Probability that a job's execution hangs (at most once per job; the
  // watchdog re-dispatches it).
  double stuck_job_rate = 0.0;
  // Probability that a profiling run's counter statistics are corrupted.
  double counter_corruption_rate = 0.0;
  CounterMode counter_mode = CounterMode::kGaussian;
  // Relative noise for CounterMode::kGaussian (0.1 = 10% stddev).
  double counter_noise_stddev = 0.1;

  // True for the zero-fault plan (no events, all rates zero).
  bool empty() const;
  // Rates in [0,1], finite noise, events sorted check not required (the
  // injector sorts); throws std::invalid_argument when violated.
  void validate() const;

  // Shorthand used by benches and the CLI: applies `rate` to every
  // rate-driven fault class (reconfiguration failures, stuck jobs and
  // counter corruption).
  static FaultPlan uniform(double rate, std::uint64_t seed);

  // Text format, one directive per line ('#' comments allowed):
  //   seed N
  //   fail CORE CYCLE
  //   recover CORE CYCLE
  //   reconfig-failure-rate P
  //   stuck-rate P
  //   counter-corruption-rate P
  //   counter-mode gaussian|nan|zero|saturate
  //   counter-noise X
  // parse() throws std::runtime_error with the offending line number.
  static FaultPlan parse(std::istream& in);
  void save(std::ostream& out) const;
};

std::string_view to_string(FaultPlan::CounterMode mode);

}  // namespace hetsched
