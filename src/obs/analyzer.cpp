#include "obs/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "obs/bench_diff.hpp"
#include "util/csv.hpp"

namespace hetsched {
namespace {

using Flat = std::vector<std::pair<std::string, double>>;

std::map<std::string, double> to_map(const Flat& flat) {
  return std::map<std::string, double>(flat.begin(), flat.end());
}

double get(const std::map<std::string, double>& m, const std::string& key,
           double fallback = 0.0) {
  const auto it = m.find(key);
  return it == m.end() ? fallback : it->second;
}

bool has(const std::map<std::string, double>& m, const std::string& key) {
  return m.find(key) != m.end();
}

// Fixed printf renderings: deterministic for identical doubles, and far
// more readable in a table than max_digits10.
std::string num0(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

std::string num1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string rpad(std::string s, std::size_t width) {
  while (s.size() < width) s.push_back(' ');
  return s;
}

std::string lpad(std::string s, std::size_t width) {
  while (s.size() < width) s.insert(s.begin(), ' ');
  return s;
}

// Percentage of `part` in `whole`, "-" when the whole is zero.
std::string share(double part, double whole) {
  if (whole <= 0.0) return "-";
  return num0(100.0 * part / whole) + "%";
}

// One latency-breakdown table row from the stats object at `base`
// ("latency.overall" or "latency.policies.<name>").
std::string latency_row(const std::map<std::string, double>& m,
                        const std::string& label, const std::string& base) {
  std::string row = rpad(label, 28);
  row += lpad(num0(get(m, base + ".jobs")), 8);
  for (const char* metric : {"queue", "service", "stall"}) {
    row += lpad(num0(get(m, base + "." + metric + ".p50")), 11);
    row += lpad(num0(get(m, base + "." + metric + ".p99")), 11);
  }
  row += lpad(num0(get(m, base + ".sojourn.p50")), 11);
  row += lpad(num0(get(m, base + ".sojourn.p95")), 11);
  row += lpad(num0(get(m, base + ".sojourn.p99")), 11);
  row += lpad(num0(get(m, base + ".sojourn.max")), 11);
  return row + "\n";
}

// Policy labels recovered from the flattened paths, in document order
// (the report emits them name-sorted).
std::vector<std::string> policy_labels(const Flat& flat) {
  const std::string prefix = "latency.policies.";
  const std::string suffix = ".jobs";
  std::vector<std::string> labels;
  for (const auto& [path, value] : flat) {
    if (path.size() > prefix.size() + suffix.size() &&
        path.compare(0, prefix.size(), prefix) == 0 &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      labels.push_back(path.substr(
          prefix.size(), path.size() - prefix.size() - suffix.size()));
    }
  }
  return labels;
}

// Per-line maps of the windows JSONL stream, in stream order. Lines are
// independent JSON objects; pre-schema-5 lines simply lack the lat_*
// keys and read as zero.
std::vector<std::map<std::string, double>> parse_windows(
    std::string_view jsonl) {
  std::vector<std::map<std::string, double>> windows;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string_view::npos) end = jsonl.size();
    const std::string_view line = jsonl.substr(start, end - start);
    start = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    windows.push_back(to_map(flatten_json_numbers(line)));
  }
  return windows;
}

}  // namespace

std::string analyze_run(std::string_view report_json,
                        std::string_view windows_jsonl,
                        const AnalyzeOptions& options) {
  const Flat flat = flatten_json_numbers(report_json);
  const std::map<std::string, double> m = to_map(flat);
  std::string out;

  out += "hetsched analyze (report schema " + num0(get(m, "schema")) +
         ")\n";
  out += "jobs: " + num0(get(m, "result.completed_jobs"));
  out += "  makespan: " + num0(get(m, "result.makespan"));
  out += "  energy_mj: " + num1(get(m, "result.total_energy_mj"));
  out += "  windows: " + num0(get(m, "windows.closed")) + "\n";

  out += "\n== latency breakdown (cycles) ==\n";
  if (has(m, "latency.overall.jobs")) {
    out += rpad("population", 28) + lpad("jobs", 8);
    for (const char* col :
         {"q.p50", "q.p99", "svc.p50", "svc.p99", "stl.p50", "stl.p99",
          "soj.p50", "soj.p95", "soj.p99", "soj.max"}) {
      out += lpad(col, 11);
    }
    out += "\n";
    out += latency_row(m, "overall", "latency.overall");
    for (const std::string& label : policy_labels(flat)) {
      out += latency_row(m, label, "latency.policies." + label);
    }
  } else {
    out += "(no latency section — run with a span collector, report "
           "schema >= 5)\n";
  }

  out += "\n== slowest jobs ==\n";
  if (has(m, "latency.slowest[0].job")) {
    out += lpad("job", 8) + lpad("benchmark", 10) + lpad("arrival", 14) +
           lpad("queue", 12) + lpad("service", 12) + lpad("stall", 12) +
           lpad("sojourn", 12) + lpad("slices", 8) +
           "   q/svc/stall share\n";
    for (std::size_t i = 0; i < options.top; ++i) {
      const std::string base = "latency.slowest[" + std::to_string(i) + "]";
      if (!has(m, base + ".job")) break;
      const double sojourn = get(m, base + ".sojourn");
      const double queue = get(m, base + ".queue");
      const double service = get(m, base + ".service");
      const double stall = get(m, base + ".stall");
      out += lpad(num0(get(m, base + ".job")), 8);
      out += lpad(num0(get(m, base + ".benchmark")), 10);
      out += lpad(num0(get(m, base + ".arrival")), 14);
      out += lpad(num0(queue), 12);
      out += lpad(num0(service), 12);
      out += lpad(num0(stall), 12);
      out += lpad(num0(sojourn), 12);
      out += lpad(num0(get(m, base + ".slices")), 8);
      out += "   " + share(queue, sojourn) + "/" + share(service, sojourn) +
             "/" + share(stall, sojourn) + "\n";
    }
  } else {
    out += "(none recorded)\n";
  }

  if (!windows_jsonl.empty()) {
    const auto windows = parse_windows(windows_jsonl);
    std::uint64_t retired = 0;
    for (const auto& w : windows) {
      retired += static_cast<std::uint64_t>(get(w, "lat_jobs"));
    }
    out += "\n== windows ==\n";
    out += "windows: " + std::to_string(windows.size()) +
           "  retired jobs: " + std::to_string(retired) + "\n";
    // Hottest windows by p99 sojourn (productive windows only), p99
    // descending with window index as the deterministic tie-break.
    std::vector<const std::map<std::string, double>*> hot;
    for (const auto& w : windows) {
      if (get(w, "lat_jobs") > 0.0) hot.push_back(&w);
    }
    std::stable_sort(hot.begin(), hot.end(),
                     [](const auto* a, const auto* b) {
                       const double pa = get(*a, "lat_p99");
                       const double pb = get(*b, "lat_p99");
                       if (pa != pb) return pa > pb;
                       return get(*a, "window") < get(*b, "window");
                     });
    if (hot.size() > options.top) hot.resize(options.top);
    if (!hot.empty()) {
      out += "hottest windows by p99 sojourn:\n";
      out += lpad("window", 8) + lpad("jobs", 8) + lpad("p50", 12) +
             lpad("p95", 12) + lpad("p99", 12) + lpad("max", 12) + "\n";
      for (const auto* w : hot) {
        out += lpad(num0(get(*w, "window")), 8);
        out += lpad(num0(get(*w, "lat_jobs")), 8);
        out += lpad(num0(get(*w, "lat_p50")), 12);
        out += lpad(num0(get(*w, "lat_p95")), 12);
        out += lpad(num0(get(*w, "lat_p99")), 12);
        out += lpad(num0(get(*w, "lat_max")), 12);
        out += "\n";
      }
    } else {
      out += "(no windows with latency columns)\n";
    }
  }

  if (has(m, "dag.releases")) {
    out += "\n== dag releases ==\n";
    const double releases = get(m, "dag.releases");
    out += "nodes: " + num0(get(m, "dag.nodes"));
    out += "  edges: " + num0(get(m, "dag.edges"));
    out += "  releases: " + num0(releases);
    out += "  ready_peak: " + num0(get(m, "dag.ready_peak"));
    out += "  max_rank: " + num0(get(m, "dag.max_rank")) + "\n";
    const double latency = get(m, "dag.release_latency_cycles");
    out += "release latency: " + num0(latency) + " cycles total";
    if (releases > 0.0) {
      out += ", " + num1(latency / releases) + " per release";
    }
    out += "  cp_slack_total: " + num0(get(m, "dag.cp_slack_total")) + "\n";
  }

  return out;
}

std::string analyze_diff(std::string_view baseline_json,
                         std::string_view current_json, double tolerance,
                         bool* regressed) {
  const Flat base_flat = flatten_json_numbers(baseline_json);
  const Flat cur_flat = flatten_json_numbers(current_json);
  const std::map<std::string, double> base = to_map(base_flat);
  const std::map<std::string, double> cur = to_map(cur_flat);

  // Wall-clock phase timings differ between any two real runs and carry
  // no quality signal — exclude them entirely.
  const auto excluded = [](const std::string& path) {
    return path.rfind("phases_ms.", 0) == 0;
  };

  std::string out;
  std::size_t deltas = 0;
  std::size_t failed = 0;
  for (const auto& [path, a] : base_flat) {
    if (excluded(path)) continue;
    const auto it = cur.find(path);
    if (it == cur.end()) {
      out += "missing " + path + " (baseline " + CsvWriter::number(a) +
             ")\n";
      ++deltas;
      ++failed;
      continue;
    }
    const double b = it->second;
    if (a == b) continue;
    ++deltas;
    const MetricDirection dir = classify_metric(path);
    bool worse = false;
    if (a > 0.0) {
      if (dir == MetricDirection::kLowerIsBetter) {
        worse = b > a * (1.0 + tolerance);
      } else if (dir == MetricDirection::kHigherIsBetter) {
        worse = b < a / (1.0 + tolerance);
      }
    }
    if (worse) ++failed;
    out += "delta " + path + ": " + CsvWriter::number(a) + " -> " +
           CsvWriter::number(b);
    if (dir == MetricDirection::kLowerIsBetter) out += " [lower-is-better]";
    if (dir == MetricDirection::kHigherIsBetter) {
      out += " [higher-is-better]";
    }
    if (worse) out += " REGRESSED";
    out += "\n";
  }
  for (const auto& [path, b] : cur_flat) {
    if (excluded(path)) continue;
    if (base.find(path) != base.end()) continue;
    out += "new-metric " + path + " = " + CsvWriter::number(b) + "\n";
    ++deltas;
  }
  out += "deltas: " + std::to_string(deltas) + "\n";
  out += failed == 0 ? "analyze-diff: ok\n" : "analyze-diff: REGRESSED\n";
  if (regressed != nullptr) *regressed = failed != 0;
  return out;
}

}  // namespace hetsched
