// Offline trace forensics behind `hetsched analyze`: turns a RunReport
// JSON document plus (optionally) its windows JSONL stream into a
// human-readable latency post-mortem — per-policy breakdown table,
// slowest jobs with per-phase attribution, hottest windows by tail
// latency, and a DAG release-latency breakdown when the report carries a
// `dag` section. A second mode diffs two reports metric-by-metric using
// the bench_diff classifier.
//
// Everything is driven off flatten_json_numbers: the analyzer consumes
// only numeric leaves (policy names are recovered from the flattened
// path), so it tolerates schema evolution — absent sections or columns
// (pre-schema-5 files have no `schema` field and no `lat_*` columns)
// simply leave their table empty instead of failing.
//
// Determinism: output is a pure function of the input documents; doubles
// render through fixed printf formats.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hetsched {

struct AnalyzeOptions {
  // Rows shown in the slowest-jobs and hottest-windows tables.
  std::size_t top = 8;
};

// Renders the forensics report. `windows_jsonl` may be empty (the
// windows section is then omitted). Throws std::runtime_error on
// malformed JSON.
std::string analyze_run(std::string_view report_json,
                        std::string_view windows_jsonl,
                        const AnalyzeOptions& options);

// Compares every numeric leaf of two report documents (baseline vs
// current), classifying each changed path with the bench_diff rules;
// wall-clock "phases_ms" entries are excluded. Sets *regressed when a
// classified metric moved beyond `tolerance` or a baseline metric
// vanished. A report diffed against itself yields "deltas: 0".
std::string analyze_diff(std::string_view baseline_json,
                         std::string_view current_json, double tolerance,
                         bool* regressed);

}  // namespace hetsched
