#include "obs/bench_diff.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>

#include "util/csv.hpp"

namespace hetsched {
namespace {

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

// Recursive-descent walker over the JSON subset the benches emit.
class Flattener {
 public:
  explicit Flattener(std::string_view json) : text_(json) {}

  std::vector<std::pair<std::string, double>> run() {
    skip_ws();
    value("");
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return std::move(out_);
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("bench-diff: malformed JSON at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("bench-diff: unexpected end of JSON");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string string_token() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Bench names are ASCII; keep the escape verbatim.
            out += "\\u";
            break;
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  void value(const std::string& path) {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      object(path);
    } else if (c == '[') {
      array(path);
    } else if (c == '"') {
      (void)string_token();
    } else if (c == 't') {
      literal("true");
    } else if (c == 'f') {
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      number(path);
    }
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("bad literal");
    pos_ += word.size();
  }

  void number(const std::string& path) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    out_.emplace_back(path.empty() ? "value" : path, parsed);
  }

  void object(const std::string& path) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = string_token();
      skip_ws();
      expect(':');
      value(path.empty() ? key : path + "." + key);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void array(const std::string& path) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    std::size_t index = 0;
    while (true) {
      value(path + "[" + std::to_string(index++) + "]");
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::vector<std::pair<std::string, double>> out_;
};

}  // namespace

std::vector<std::pair<std::string, double>> flatten_json_numbers(
    std::string_view json) {
  return Flattener(json).run();
}

MetricDirection classify_metric(std::string_view path) {
  // Strip array indices so "runs[3].wall_ms" classifies like "wall_ms".
  // Match on the final path segment only: a parent object's name must
  // not decide the direction of an unrelated child.
  const std::size_t dot = path.rfind('.');
  std::string_view leaf =
      dot == std::string_view::npos ? path : path.substr(dot + 1);

  // Format markers are never a quality axis: a file gaining (or an old
  // baseline lacking) a "schema" field must not gate the diff.
  if (leaf == "schema") return MetricDirection::kIgnored;
  if (leaf.ends_with("_ms") || contains(leaf, "overhead") ||
      contains(leaf, "rss") || contains(leaf, "growth") ||
      contains(leaf, "violation") || contains(leaf, "dropped")) {
    return MetricDirection::kLowerIsBetter;
  }
  if (contains(leaf, "per_sec") || contains(leaf, "speedup") ||
      contains(leaf, "accuracy") || contains(leaf, "hit_rate")) {
    return MetricDirection::kHigherIsBetter;
  }
  return MetricDirection::kIgnored;
}

bool BenchDiffResult::regressed() const {
  if (!missing_in_current.empty()) return true;
  for (const BenchComparison& c : compared) {
    if (c.regressed) return true;
  }
  return false;
}

std::string BenchDiffResult::summary(double tolerance) const {
  std::string out;
  for (const BenchComparison& c : compared) {
    const char* dir =
        c.direction == MetricDirection::kLowerIsBetter ? "<=" : ">=";
    out += c.regressed ? "REGRESSED " : "ok        ";
    out += c.path + ": baseline " + CsvWriter::number(c.baseline) +
           ", current " + CsvWriter::number(c.current) + " (" + dir +
           " tolerance " + CsvWriter::number(tolerance) + ")\n";
  }
  for (const std::string& path : missing_in_current) {
    out += "MISSING   " + path + ": present in baseline, absent now\n";
  }
  for (const std::string& path : new_in_current) {
    out += "new-metric " + path +
           ": absent in baseline (informational; refresh the baseline to "
           "start gating it)\n";
  }
  out += regressed() ? "verdict: REGRESSION\n" : "verdict: pass\n";
  return out;
}

BenchDiffResult bench_diff(std::string_view baseline_json,
                           std::string_view current_json, double tolerance) {
  if (tolerance < 0.0) {
    throw std::runtime_error("bench-diff: tolerance must be >= 0");
  }
  const auto baseline = flatten_json_numbers(baseline_json);
  const auto current = flatten_json_numbers(current_json);
  std::unordered_map<std::string, double> current_by_path;
  for (const auto& [path, v] : current) current_by_path.emplace(path, v);

  BenchDiffResult result;
  for (const auto& [path, base] : baseline) {
    const MetricDirection direction = classify_metric(path);
    if (direction == MetricDirection::kIgnored) {
      result.skipped.push_back(path);
      continue;
    }
    const auto it = current_by_path.find(path);
    if (it == current_by_path.end()) {
      result.missing_in_current.push_back(path);
      continue;
    }
    if (base <= 0.0 || !std::isfinite(base)) {
      result.skipped.push_back(path);
      continue;
    }
    BenchComparison c;
    c.path = path;
    c.baseline = base;
    c.current = it->second;
    c.direction = direction;
    // A NaN/Inf candidate value is always a regression: NaN compares
    // false against everything, so without this guard a broken bench
    // would sail through the gate.
    c.regressed = !std::isfinite(c.current) ||
                  (direction == MetricDirection::kLowerIsBetter
                       ? c.current > base * (1.0 + tolerance)
                       : c.current < base / (1.0 + tolerance));
    result.compared.push_back(std::move(c));
  }

  // The reverse direction: metrics the candidate gained that the
  // baseline has never seen. Reported in the candidate's document order
  // (deterministic), never a gate failure — but never silent either.
  std::unordered_map<std::string, double> baseline_by_path;
  for (const auto& [path, v] : baseline) baseline_by_path.emplace(path, v);
  for (const auto& [path, v] : current) {
    (void)v;
    if (baseline_by_path.find(path) == baseline_by_path.end()) {
      result.new_in_current.push_back(path);
    }
  }
  return result;
}

}  // namespace hetsched
