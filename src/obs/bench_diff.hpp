// Bench regression gate: compare two BENCH_*.json result files and
// decide — deterministically — whether the current run regressed beyond
// a tolerance.
//
// The bench JSON files are flat-ish objects of numeric results (nested
// objects and arrays allowed); flatten_json_numbers walks one and
// returns every numeric leaf as a dotted path ("runs[2].wall_ms").
// Each path is classified by name into lower-is-better (wall times,
// overhead ratios, memory, drop/violation counts), higher-is-better
// (throughput, speedups, accuracy) or ignored (configuration echoes
// like core counts, seeds and digests — values that are not a quality
// axis). A lower-is-better metric regresses when
//   current > baseline * (1 + tolerance)
// and a higher-is-better one when
//   current < baseline / (1 + tolerance).
// A baseline key missing from the current file is always a regression
// (a silently vanished metric must not pass the gate); new keys in the
// current file never fail the gate but are surfaced as `new-metric`
// lines, so a refreshed baseline cannot silently absorb added keys.
// Non-positive baselines are skipped — no meaningful ratio exists.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hetsched {

enum class MetricDirection { kLowerIsBetter, kHigherIsBetter, kIgnored };

// Classification by path name alone (pure function; see header comment).
MetricDirection classify_metric(std::string_view path);

// Every numeric leaf of `json` as (dotted path, value), in document
// order. Minimal JSON subset: objects, arrays, numbers, strings,
// true/false/null. Throws std::runtime_error on malformed input.
std::vector<std::pair<std::string, double>> flatten_json_numbers(
    std::string_view json);

struct BenchComparison {
  std::string path;
  double baseline = 0.0;
  double current = 0.0;
  MetricDirection direction = MetricDirection::kIgnored;
  bool regressed = false;
};

struct BenchDiffResult {
  std::vector<BenchComparison> compared;       // classified, both files
  std::vector<std::string> missing_in_current; // baseline-only paths
  std::vector<std::string> new_in_current;     // current-only paths
  std::vector<std::string> skipped;            // ignored or no baseline
  bool regressed() const;

  // One line per compared metric plus a verdict, suitable for stdout.
  std::string summary(double tolerance) const;
};

// Compares two bench JSON documents under `tolerance` (0.5 = allow 50%
// slack before failing). Throws std::runtime_error on malformed JSON.
BenchDiffResult bench_diff(std::string_view baseline_json,
                           std::string_view current_json, double tolerance);

}  // namespace hetsched
