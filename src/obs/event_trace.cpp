#include "obs/event_trace.hpp"

#include <ostream>

#include "obs/metrics.hpp"

namespace hetsched {
namespace {

std::string u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

EventTracer::EventTracer(MetricsRegistry* metrics,
                         const std::string& prefix)
    : metrics_(metrics) {
  if (metrics_ == nullptr) return;
  dispatches_ = &metrics_->counter(prefix + "dispatches");
  slices_ = &metrics_->counter(prefix + "slices");
  completed_slices_ = &metrics_->counter(prefix + "completed_slices");
  preempted_slices_ = &metrics_->counter(prefix + "preempted_slices");
  preemptions_ = &metrics_->counter(prefix + "preemptions");
  reconfig_attempts_ = &metrics_->counter(prefix + "reconfig_attempts");
  reconfig_failures_ = &metrics_->counter(prefix + "reconfig_failures");
  idle_intervals_ = &metrics_->counter(prefix + "idle_intervals");
  idle_cycles_ = &metrics_->counter(prefix + "idle_cycles");
  faults_ = &metrics_->counter(prefix + "faults");
  watchdog_fires_ = &metrics_->counter(prefix + "watchdog_fires");
  dropped_counter_ = &metrics_->counter(prefix + "dropped_trace_events");
  slice_cycles_ =
      &metrics_->histogram(prefix + "slice_cycles", 0.0, 1e6, 20);
}

bool EventTracer::retain() {
  if (max_events_ != 0 && events_.size() >= max_events_) {
    ++dropped_events_;
    if (dropped_counter_ != nullptr) dropped_counter_->add();
    return false;
  }
  return true;
}

void EventTracer::on_slice(const ScheduledSlice& slice) {
  if (retain()) {
    events_.push_back(TraceEvent{
        'X', std::string("exec:") + std::string(to_string(slice.kind)),
        slice.start, slice.end - slice.start,
        static_cast<std::uint32_t>(slice.core),
        {{"job", u64(slice.job_id)},
         {"benchmark", u64(slice.benchmark_id)},
         {"config", slice.config.name()},
         {"completed", slice.completed ? "1" : "0"}}});
  }
  // The retiring slice closes the job's async lifecycle span.
  if (job_spans_ && slice.completed && retain()) {
    events_.push_back(TraceEvent{'e', "job", slice.end, 0,
                                 static_cast<std::uint32_t>(slice.core),
                                 {},
                                 slice.job_id});
  }
  if (metrics_ == nullptr) return;
  slices_->add();
  (slice.completed ? completed_slices_ : preempted_slices_)->add();
  slice_cycles_->record(static_cast<double>(slice.end - slice.start));
}

void EventTracer::on_fault(const FaultRecord& record) {
  if (retain()) {
    events_.push_back(TraceEvent{
        'i', std::string("fault:") + std::string(to_string(record.kind)),
        record.time, 0, static_cast<std::uint32_t>(record.core),
        {{"job", u64(record.job_id)}}});
  }
  if (metrics_ == nullptr) return;
  faults_->add();
  if (record.kind == FaultRecord::Kind::kWatchdogFire) {
    watchdog_fires_->add();
  }
}

void EventTracer::on_arrival(const ArrivalEvent& event) {
  // Arrivals only materialise in the trace as span-begin events; the
  // disabled path stays byte-identical to pre-span traces (and burns no
  // retention budget).
  if (!job_spans_) return;
  if (!retain()) return;
  events_.push_back(TraceEvent{'b', "job", event.time, 0, 0,
                               {{"benchmark", u64(event.benchmark_id)},
                                {"priority", std::to_string(event.priority)},
                                {"cp_rank", std::to_string(event.cp_rank)}},
                               event.job_id});
}

void EventTracer::on_dispatch(const DispatchEvent& event) {
  if (retain()) {
    events_.push_back(TraceEvent{
        'i', "dispatch", event.time, 0,
        static_cast<std::uint32_t>(event.core),
        {{"job", u64(event.job_id)},
         {"benchmark", u64(event.benchmark_id)},
         {"kind", std::string(to_string(event.kind))},
         {"backoff", u64(event.backoff)},
         {"duration", u64(event.duration)},
         {"hung", event.hung ? "1" : "0"}}});
  }
  if (dispatches_ != nullptr) dispatches_->add();
}

void EventTracer::on_reconfig(const ReconfigEvent& event) {
  if (retain()) {
    events_.push_back(TraceEvent{
        'i', event.success ? "reconfig" : "reconfig-retry", event.time, 0,
        static_cast<std::uint32_t>(event.core),
        {{"job", u64(event.job_id)},
         {"attempt", std::to_string(event.attempt)},
         {"success", event.success ? "1" : "0"},
         {"backoff_wait", u64(event.backoff_wait)}}});
  }
  if (metrics_ == nullptr) return;
  reconfig_attempts_->add();
  if (!event.success) reconfig_failures_->add();
}

void EventTracer::on_idle(const IdleEvent& event) {
  if (retain()) {
    events_.push_back(TraceEvent{'X', "idle", event.from,
                                 event.to - event.from,
                                 static_cast<std::uint32_t>(event.core),
                                 {}});
  }
  if (metrics_ == nullptr) return;
  idle_intervals_->add();
  idle_cycles_->add(event.to - event.from);
}

void EventTracer::on_preempt(const PreemptEvent& event) {
  if (retain()) {
    events_.push_back(TraceEvent{
        'i', "preempt", event.time, 0,
        static_cast<std::uint32_t>(event.core),
        {{"job", u64(event.job_id)},
         {"was_hung", event.was_hung ? "1" : "0"}}});
  }
  if (preemptions_ != nullptr) preemptions_->add();
}

void EventTracer::add_span(
    std::string name, SimTime ts, SimTime dur, std::uint32_t tid,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!retain()) return;
  events_.push_back(
      TraceEvent{'X', std::move(name), ts, dur, tid, std::move(args)});
}

void EventTracer::add_instant(
    std::string name, SimTime ts, std::uint32_t tid,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!retain()) return;
  events_.push_back(
      TraceEvent{'i', std::move(name), ts, 0, tid, std::move(args)});
}

void write_chrome_trace(
    std::ostream& out,
    std::span<const std::pair<std::string, const EventTracer*>> processes) {
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (std::size_t pid = 0; pid < processes.size(); ++pid) {
    sep();
    out << R"({"name":"process_name","ph":"M","pid":)" << pid
        << R"(,"tid":0,"args":{"name":")"
        << json_escape(processes[pid].first) << "\"}}";
    for (const TraceEvent& event : processes[pid].second->events()) {
      sep();
      out << "{\"name\":\"" << json_escape(event.name) << "\",\"ph\":\""
          << event.phase << "\",\"pid\":" << pid
          << ",\"tid\":" << event.tid << ",\"ts\":" << event.ts;
      if (event.phase == 'X') out << ",\"dur\":" << event.dur;
      // Async begin/end events need a category and an id so viewers can
      // pair them into one bar on an async track.
      if (event.phase == 'b' || event.phase == 'e') {
        out << ",\"cat\":\"" << json_escape(event.name)
            << "\",\"id\":" << event.id;
      }
      if (!event.args.empty()) {
        out << ",\"args\":{";
        for (std::size_t a = 0; a < event.args.size(); ++a) {
          out << (a == 0 ? "" : ",") << "\""
              << json_escape(event.args[a].first) << "\":\""
              << json_escape(event.args[a].second) << "\"";
        }
        out << "}";
      }
      out << "}";
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace hetsched
