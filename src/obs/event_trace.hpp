// Structured event tracer: records every simulator emit point (slices,
// dispatches, preemptions, reconfiguration attempts, idle intervals,
// faults) plus runtime events (thread-pool job spans, profile-cache
// hits/misses) and exports them as Chrome trace-event / Perfetto
// compatible JSON.
//
// Determinism: every timestamp is SimTime (or a logical tick for
// runtime events) — never wall clock — and events are appended in
// simulation event order on the single simulation thread, so the
// exported trace is byte-identical across runs and HETSCHED_THREADS
// values. In the exported JSON one trace "microsecond" is one simulated
// cycle; tid is the core index.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/schedule_log.hpp"
#include "obs/metrics.hpp"

namespace hetsched {

struct TraceEvent {
  // 'X' = complete (duration) event, 'i' = instant event, 'b'/'e' =
  // async span begin/end (a job's lifecycle bar; paired by `id`).
  char phase = 'X';
  std::string name;
  SimTime ts = 0;
  SimTime dur = 0;  // phase 'X' only
  std::uint32_t tid = 0;
  // Rendered into the event's "args" object; values are emitted as JSON
  // strings (escaped), keys in the given order.
  std::vector<std::pair<std::string, std::string>> args;
  // Async pairing id ('b'/'e' only); rendered with a "cat" so Chrome /
  // Perfetto match begin to end on (cat, id, name).
  std::uint64_t id = 0;
};

// A ScheduleObserver that retains the full event stream. When a
// MetricsRegistry is attached, the tracer also maintains counters and a
// slice-duration histogram under `prefix` (registered at construction,
// so registration order is the tracer construction order).
class EventTracer final : public ScheduleObserver {
 public:
  explicit EventTracer(MetricsRegistry* metrics = nullptr,
                       const std::string& prefix = "sim.");

  void on_slice(const ScheduledSlice& slice) override;
  void on_fault(const FaultRecord& record) override;
  void on_arrival(const ArrivalEvent& event) override;
  void on_dispatch(const DispatchEvent& event) override;
  void on_reconfig(const ReconfigEvent& event) override;
  void on_idle(const IdleEvent& event) override;
  void on_preempt(const PreemptEvent& event) override;

  // Direct appends for non-simulator tracks (pool spans, cache events).
  void add_span(std::string name, SimTime ts, SimTime dur,
                std::uint32_t tid,
                std::vector<std::pair<std::string, std::string>> args = {});
  void add_instant(std::string name, SimTime ts, std::uint32_t tid,
                   std::vector<std::pair<std::string, std::string>> args =
                       {});

  const std::vector<TraceEvent>& events() const { return events_; }

  // Retention cap: at most `max` events are kept (0 = unlimited); the
  // default bounds a million-job streaming trace. Once full, the
  // retained stream is the run's prefix — later events are counted in
  // dropped_events() (and the `dropped_trace_events` metric) but not
  // stored. Metric counters keep updating for dropped events, so the
  // registry totals stay exact.
  void set_max_events(std::size_t max) { max_events_ = max; }
  std::size_t max_events() const { return max_events_; }
  std::uint64_t dropped_events() const { return dropped_events_; }

  // Job lifecycle spans: when enabled, each arrival opens an async 'b'
  // event and the retiring slice closes it with an 'e', so every job's
  // life (admission to retirement) renders as one bar on an async track
  // in the trace UI. Off by default: the span events roughly double the
  // event volume and older byte-identity baselines predate them.
  void set_job_spans(bool on) { job_spans_ = on; }
  bool job_spans() const { return job_spans_; }

  static constexpr std::size_t kDefaultMaxEvents = 1'000'000;

 private:
  // False (and counts a drop) when the retention cap is exhausted.
  bool retain();

  std::vector<TraceEvent> events_;
  std::size_t max_events_ = kDefaultMaxEvents;
  std::uint64_t dropped_events_ = 0;
  bool job_spans_ = false;
  MetricsRegistry* metrics_ = nullptr;
  // Registered up front (null when metrics_ is null).
  Counter* dispatches_ = nullptr;
  Counter* slices_ = nullptr;
  Counter* completed_slices_ = nullptr;
  Counter* preempted_slices_ = nullptr;
  Counter* preemptions_ = nullptr;
  Counter* reconfig_attempts_ = nullptr;
  Counter* reconfig_failures_ = nullptr;
  Counter* idle_intervals_ = nullptr;
  Counter* idle_cycles_ = nullptr;
  Counter* faults_ = nullptr;
  Counter* watchdog_fires_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  FixedHistogram* slice_cycles_ = nullptr;
};

// Renders one or more tracers as a single Chrome trace-event JSON
// document: process i gets pid = i and a process_name metadata record,
// events keep their append order. Byte-identical output for identical
// event streams.
void write_chrome_trace(
    std::ostream& out,
    std::span<const std::pair<std::string, const EventTracer*>> processes);

}  // namespace hetsched
