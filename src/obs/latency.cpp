#include "obs/latency.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>

#include "obs/run_report.hpp"
#include "util/contracts.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {
namespace {

namespace st = snapshot_text;

std::size_t bucket_of(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

// Sojourn-descending, job-id-ascending: the deterministic slowest-first
// order of the top-K list.
bool slower(const SlowJob& a, const SlowJob& b) {
  if (a.sojourn != b.sojourn) return a.sojourn > b.sojourn;
  return a.job_id < b.job_id;
}

}  // namespace

void Log2Histogram::record(std::uint64_t value) {
  ++buckets_[bucket_of(value)];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

void Log2Histogram::merge(const Log2Histogram& other) {
  for (std::size_t k = 0; k < kBuckets; ++k) buckets_[k] += other.buckets_[k];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double Log2Histogram::percentile(double p) const {
  HETSCHED_REQUIRE(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0.0;
  const double pos = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    if (buckets_[k] == 0) continue;
    const std::uint64_t next = cum + buckets_[k];
    if (pos <= static_cast<double>(next)) {
      // Interpolate inside [2^(k-1), 2^k) by the value's position among
      // the bucket's occupants; bucket 0 holds only the value 0.
      if (k == 0) return 0.0;
      const double lo = std::ldexp(1.0, static_cast<int>(k) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(k));
      double frac = (pos - static_cast<double>(cum)) /
                    static_cast<double>(buckets_[k]);
      frac = std::clamp(frac, 0.0, 1.0);
      return std::min(lo + frac * (hi - lo), static_cast<double>(max_));
    }
    cum = next;
  }
  // pos <= count_ and the cumulative walk ends at count_, so the loop
  // always returns.
  HETSCHED_ASSERT(false);
  return static_cast<double>(max_);
}

void Log2Histogram::save_state(std::ostream& out) const {
  std::size_t nonzero = 0;
  for (const std::uint64_t b : buckets_) nonzero += b != 0 ? 1 : 0;
  out << "hist " << count_ << ' ' << sum_ << ' ' << max_ << ' ' << nonzero
      << "\n";
  for (std::size_t k = 0; k < kBuckets; ++k) {
    if (buckets_[k] != 0) out << k << ' ' << buckets_[k] << "\n";
  }
}

void Log2Histogram::restore_state(std::istream& in,
                                  const std::string& context) {
  std::string token;
  if (!(in >> token) || token != "hist") {
    st::fail(context, "expected 'hist'");
  }
  count_ = st::read_value<std::uint64_t>(in, "histogram count", context);
  sum_ = st::read_value<std::uint64_t>(in, "histogram sum", context);
  max_ = st::read_value<std::uint64_t>(in, "histogram max", context);
  const auto nonzero =
      st::read_value<std::size_t>(in, "histogram bucket count", context);
  buckets_.fill(0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nonzero; ++i) {
    const auto k = st::read_value<std::size_t>(in, "bucket index", context);
    if (k >= kBuckets) st::fail(context, "bucket index out of range");
    buckets_[k] = st::read_value<std::uint64_t>(in, "bucket value", context);
    total += buckets_[k];
  }
  if (total != count_) {
    st::fail(context, "histogram bucket counts do not sum to the count");
  }
}

void LatencyAccumulator::merge(const LatencyAccumulator& other) {
  queue.merge(other.queue);
  service.merge(other.service);
  stall.merge(other.stall);
  sojourn.merge(other.sojourn);
}

JobSpanCollector::JobSpanCollector(std::string policy_label,
                                   SimTime window_cycles, std::size_t top_k)
    : policy_label_(std::move(policy_label)),
      window_cycles_(window_cycles),
      top_k_(top_k) {
  HETSCHED_REQUIRE(window_cycles_ > 0);
  HETSCHED_REQUIRE(top_k_ > 0);
}

void JobSpanCollector::advance(SimTime t) {
  HETSCHED_REQUIRE(!finalized_ &&
                   "JobSpanCollector received an event after finalize()");
  saw_event_ = true;
  while (t >= window_start_ + window_cycles_) {
    close_window();
    window_start_ += window_cycles_;
    ++window_index_;
  }
}

void JobSpanCollector::close_window() {
  WindowLatency lat;
  lat.index = window_index_;
  lat.jobs = window_sojourn_.count();
  lat.p50 = window_sojourn_.percentile(50.0);
  lat.p95 = window_sojourn_.percentile(95.0);
  lat.p99 = window_sojourn_.percentile(99.0);
  lat.max = window_sojourn_.max();
  ring_[window_index_ % kWindowRing] = lat;
  window_sojourn_ = Log2Histogram{};
}

WindowLatency JobSpanCollector::window_latency(std::uint64_t index) const {
  // Closed windows are those the clock advanced past, plus the trailing
  // window finalize() closed in place.
  const std::uint64_t closed =
      window_index_ + ((finalized_ && saw_event_) ? 1 : 0);
  HETSCHED_REQUIRE(index < closed && "window not closed yet");
  const WindowLatency& entry = ring_[index % kWindowRing];
  HETSCHED_REQUIRE(entry.index == index &&
                   "window digest evicted from the ring (or the collector "
                   "was restored past it)");
  return entry;
}

void JobSpanCollector::on_arrival(const ArrivalEvent& event) {
  // Arrivals do not advance the window clock: the simulator always emits
  // a queue-depth sample at the same SimTime right after admission, and
  // keeping the clock in lockstep with the WindowedCollector (which has
  // no arrival callback) guarantees both close window k in the same
  // event delivery.
  Span span;
  span.benchmark_id = event.benchmark_id;
  span.arrival = event.time;
  const bool inserted = spans_.emplace(event.job_id, span).second;
  HETSCHED_REQUIRE(inserted && "duplicate arrival for one job id");
}

void JobSpanCollector::on_dispatch(const DispatchEvent& event) {
  advance(event.time);
  const auto it = spans_.find(event.job_id);
  HETSCHED_REQUIRE(it != spans_.end() &&
                   "dispatch for a job whose arrival was not observed — "
                   "attach the span collector before the run starts");
  if (!it->second.dispatched) {
    it->second.dispatched = true;
    it->second.first_dispatch = event.time;
  }
}

void JobSpanCollector::retire(const ScheduledSlice& slice, Span& span) {
  HETSCHED_REQUIRE(span.dispatched);
  const SimTime end = slice.end;
  HETSCHED_REQUIRE(end >= span.arrival);
  HETSCHED_REQUIRE(span.first_dispatch >= span.arrival);
  const Cycles sojourn = end - span.arrival;
  const Cycles queue = span.first_dispatch - span.arrival;
  HETSCHED_REQUIRE(sojourn >= queue + span.service &&
                   "executed cycles exceed the post-dispatch lifetime");
  const Cycles stall = sojourn - queue - span.service;

  totals_.queue.record(queue);
  totals_.service.record(span.service);
  totals_.stall.record(stall);
  totals_.sojourn.record(sojourn);
  window_sojourn_.record(sojourn);

  SlowJob job;
  job.job_id = slice.job_id;
  job.benchmark_id = span.benchmark_id;
  job.arrival = span.arrival;
  job.queue = queue;
  job.service = span.service;
  job.stall = stall;
  job.sojourn = sojourn;
  job.slices = span.slices;
  const auto at =
      std::upper_bound(slowest_.begin(), slowest_.end(), job, slower);
  if (at != slowest_.end() || slowest_.size() < top_k_) {
    slowest_.insert(at, job);
    if (slowest_.size() > top_k_) slowest_.pop_back();
  }
}

void JobSpanCollector::on_slice(const ScheduledSlice& slice) {
  advance(slice.end);
  const auto it = spans_.find(slice.job_id);
  HETSCHED_REQUIRE(it != spans_.end() &&
                   "slice for a job whose arrival was not observed — "
                   "attach the span collector before the run starts");
  if (slice.end > slice.start) {
    it->second.service += slice.end - slice.start;
  }
  ++it->second.slices;
  if (!slice.completed) return;
  retire(slice, it->second);
  spans_.erase(it);
}

void JobSpanCollector::on_fault(const FaultRecord& record) {
  advance(record.time);
}

void JobSpanCollector::on_reconfig(const ReconfigEvent& event) {
  advance(event.time);
}

void JobSpanCollector::on_idle(const IdleEvent& event) { advance(event.to); }

void JobSpanCollector::on_preempt(const PreemptEvent& event) {
  advance(event.time);
}

void JobSpanCollector::on_stall(const StallEvent& event) {
  advance(event.time);
}

void JobSpanCollector::on_queue_depth(const QueueSample& sample) {
  advance(sample.time);
}

void JobSpanCollector::on_dag_release(const DagReleaseEvent& event) {
  advance(event.time);
}

void JobSpanCollector::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Mirror WindowedCollector::finalize: close the in-progress window only
  // when the run advanced the clock at all, so both collectors close the
  // same window sequence.
  if (saw_event_) close_window();
}

void JobSpanCollector::save_state(std::ostream& out) const {
  out << "spans " << window_cycles_ << ' ' << top_k_ << "\n";
  out << "clock " << window_index_ << ' ' << window_start_ << ' '
      << (saw_event_ ? 1 : 0) << ' ' << (finalized_ ? 1 : 0) << "\n";
  window_sojourn_.save_state(out);
  totals_.queue.save_state(out);
  totals_.service.save_state(out);
  totals_.stall.save_state(out);
  totals_.sojourn.save_state(out);
  out << "slowest " << slowest_.size() << "\n";
  for (const SlowJob& job : slowest_) {
    out << job.job_id << ' ' << job.benchmark_id << ' ' << job.arrival << ' '
        << job.queue << ' ' << job.service << ' ' << job.stall << ' '
        << job.sojourn << ' ' << job.slices << "\n";
  }
  // In-flight spans in sorted order: the serialized form must not depend
  // on unordered_map iteration.
  const std::map<std::uint64_t, Span> sorted(spans_.begin(), spans_.end());
  out << "inflight " << sorted.size() << "\n";
  for (const auto& [job_id, span] : sorted) {
    out << job_id << ' ' << span.benchmark_id << ' ' << span.arrival << ' '
        << span.first_dispatch << ' ' << (span.dispatched ? 1 : 0) << ' '
        << span.service << ' ' << span.slices << "\n";
  }
}

void JobSpanCollector::restore_state(std::istream& in,
                                     const std::string& context) {
  std::string token;
  if (!(in >> token) || token != "spans") {
    st::fail(context, "expected 'spans'");
  }
  if (st::read_value<SimTime>(in, "span window width", context) !=
      window_cycles_) {
    st::fail(context, "span window width does not match");
  }
  if (st::read_value<std::size_t>(in, "span top-k", context) != top_k_) {
    st::fail(context, "span top-k does not match");
  }
  if (!(in >> token) || token != "clock") {
    st::fail(context, "expected 'clock'");
  }
  window_index_ = st::read_value<std::uint64_t>(in, "window index", context);
  window_start_ = st::read_value<SimTime>(in, "window start", context);
  saw_event_ = st::read_value<int>(in, "saw-event flag", context) != 0;
  finalized_ = st::read_value<int>(in, "finalized flag", context) != 0;
  window_sojourn_.restore_state(in, context);
  totals_.queue.restore_state(in, context);
  totals_.service.restore_state(in, context);
  totals_.stall.restore_state(in, context);
  totals_.sojourn.restore_state(in, context);
  if (!(in >> token) || token != "slowest") {
    st::fail(context, "expected 'slowest'");
  }
  const auto slow = st::read_value<std::size_t>(in, "slowest count", context);
  if (slow > top_k_) st::fail(context, "slowest list exceeds top-k");
  slowest_.clear();
  for (std::size_t i = 0; i < slow; ++i) {
    SlowJob job;
    job.job_id = st::read_value<std::uint64_t>(in, "slow job id", context);
    job.benchmark_id =
        st::read_value<std::size_t>(in, "slow benchmark", context);
    job.arrival = st::read_value<SimTime>(in, "slow arrival", context);
    job.queue = st::read_value<Cycles>(in, "slow queue", context);
    job.service = st::read_value<Cycles>(in, "slow service", context);
    job.stall = st::read_value<Cycles>(in, "slow stall", context);
    job.sojourn = st::read_value<Cycles>(in, "slow sojourn", context);
    job.slices = st::read_value<std::uint64_t>(in, "slow slices", context);
    if (i > 0 && slower(job, slowest_.back())) {
      st::fail(context, "slowest list is not in slowest-first order");
    }
    slowest_.push_back(job);
  }
  if (!(in >> token) || token != "inflight") {
    st::fail(context, "expected 'inflight'");
  }
  const auto inflight =
      st::read_value<std::size_t>(in, "in-flight count", context);
  spans_.clear();
  ring_.fill(WindowLatency{});
  for (std::size_t i = 0; i < inflight; ++i) {
    const auto job_id =
        st::read_value<std::uint64_t>(in, "in-flight job id", context);
    Span span;
    span.benchmark_id =
        st::read_value<std::size_t>(in, "in-flight benchmark", context);
    span.arrival = st::read_value<SimTime>(in, "in-flight arrival", context);
    span.first_dispatch =
        st::read_value<SimTime>(in, "in-flight dispatch", context);
    span.dispatched =
        st::read_value<int>(in, "in-flight dispatched flag", context) != 0;
    span.service = st::read_value<Cycles>(in, "in-flight service", context);
    span.slices = st::read_value<std::uint64_t>(in, "in-flight slices",
                                                context);
    spans_[job_id] = span;
  }
}

namespace {

RunReport::LatencyMetric to_metric(const Log2Histogram& h) {
  RunReport::LatencyMetric m;
  m.p50 = h.percentile(50.0);
  m.p95 = h.percentile(95.0);
  m.p99 = h.percentile(99.0);
  m.max = h.max();
  m.sum = h.sum();
  return m;
}

RunReport::LatencyStats to_stats(const LatencyAccumulator& acc) {
  RunReport::LatencyStats stats;
  stats.jobs = acc.jobs();
  stats.queue = to_metric(acc.queue);
  stats.service = to_metric(acc.service);
  stats.stall = to_metric(acc.stall);
  stats.sojourn = to_metric(acc.sojourn);
  return stats;
}

}  // namespace

void attach_latency_summary(
    RunReport& report,
    const std::vector<const JobSpanCollector*>& collectors) {
  // Ordered map: per-policy sections emit in name order, independent of
  // collector wiring order.
  std::map<std::string, LatencyAccumulator> by_policy;
  LatencyAccumulator overall;
  std::vector<SlowJob> slowest;
  std::size_t top_k = JobSpanCollector::kDefaultTopK;
  for (const JobSpanCollector* collector : collectors) {
    if (collector == nullptr) continue;
    by_policy[collector->policy_label()].merge(collector->totals());
    overall.merge(collector->totals());
    slowest.insert(slowest.end(), collector->slowest().begin(),
                   collector->slowest().end());
    top_k = std::max(top_k, collector->top_k());
  }
  report.latency = to_stats(overall);
  report.latency_policies.clear();
  for (const auto& [policy, acc] : by_policy) {
    report.latency_policies.push_back({policy, to_stats(acc)});
  }
  std::sort(slowest.begin(), slowest.end(),
            [](const SlowJob& a, const SlowJob& b) { return slower(a, b); });
  if (slowest.size() > top_k) slowest.resize(top_k);
  report.latency_slowest.clear();
  for (const SlowJob& job : slowest) {
    report.latency_slowest.push_back({job.job_id, job.benchmark_id,
                                      job.arrival, job.queue, job.service,
                                      job.stall, job.sojourn, job.slices});
  }
}

}  // namespace hetsched
