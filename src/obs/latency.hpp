// Per-job lifecycle spans and deterministic latency distributions.
//
// A JobSpanCollector is a ScheduleObserver that follows every job from
// admission (on_arrival) through its first dispatch, slices, preemptions
// and re-queues to retirement (the completed slice), and folds each
// finished span into fixed-boundary log2 histograms for four exact
// integer decompositions of the job's life:
//
//   sojourn = retire - arrival            (end-to-end latency)
//   queue   = first dispatch - arrival    (initial queueing delay)
//   service = sum of executed slice cycles
//   stall   = sojourn - queue - service   (re-queue waits, backoff,
//                                          hung windows; always >= 0)
//
// Determinism: bucket counts are exact integers keyed on SimTime and the
// bucket boundaries are fixed powers of two, so the histograms — and the
// bucket-interpolated p50/p95/p99 derived from them — are byte-identical
// across HETSCHED_THREADS values, between run_stream and batch run(),
// and across checkpoint kill-resume (the collector state joins the
// checkpoint format; in-flight spans are rebuilt at every boundary).
//
// Memory: O(in-flight jobs + buckets). Completed spans collapse into the
// histograms immediately; only a bounded top-K list of the slowest jobs
// is retained for forensics.
//
// Window handshake: the collector tumbles on the same window clock as a
// WindowedCollector (same width, same per-event timestamps) and keeps a
// small ring of per-window sojourn digests. A WindowedCollector wired
// via set_span_source() pulls the matching digest when it closes a
// window — the source of the windows-JSONL `lat_*` columns. Because the
// span collector must sit BEFORE the windowed collector in the fanout,
// it has always closed window k by the time the windowed collector asks
// for it.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/schedule_log.hpp"

namespace hetsched {

// Exact-count histogram over unsigned 64-bit values with fixed power-of-
// two bucket boundaries: bucket 0 holds value 0, bucket k >= 1 holds
// values in [2^(k-1), 2^k). Fixed boundaries make merges and percentiles
// pure functions of the bucket counts — no data-dependent bin edges.
class Log2Histogram {
 public:
  // bit_width of a uint64 is at most 64, plus the zero bucket.
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t value);
  void merge(const Log2Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }

  // Bucket-interpolated percentile, p in [0, 100]: walks the cumulative
  // counts to the bucket containing the p-th value position and
  // interpolates linearly inside the bucket's value range (clamped to
  // the observed max). 0 for an empty histogram. Deterministic: a pure
  // function of the bucket counts evaluated in fixed order.
  double percentile(double p) const;

  // Snapshot-text round trip (sparse: only non-zero buckets).
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in, const std::string& context);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

// The four per-job latency metrics of one population of completed spans.
struct LatencyAccumulator {
  Log2Histogram queue;
  Log2Histogram service;
  Log2Histogram stall;
  Log2Histogram sojourn;

  std::uint64_t jobs() const { return sojourn.count(); }
  void merge(const LatencyAccumulator& other);
};

// Per-window sojourn digest handed to the windowed collector when the
// window closes (the `lat_*` JSONL columns).
struct WindowLatency {
  std::uint64_t index = 0;
  std::uint64_t jobs = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::uint64_t max = 0;
};

// One retired job retained in the bounded slowest-K list.
struct SlowJob {
  std::uint64_t job_id = 0;
  std::size_t benchmark_id = 0;
  SimTime arrival = 0;
  Cycles queue = 0;
  Cycles service = 0;
  Cycles stall = 0;
  Cycles sojourn = 0;
  std::uint64_t slices = 0;
};

class JobSpanCollector final : public ScheduleObserver {
 public:
  static constexpr std::size_t kDefaultTopK = 8;

  // `policy_label` names the population (the run's policy) for per-policy
  // report aggregation; `window_cycles` must match the WindowedCollector
  // this collector feeds (when it feeds one).
  JobSpanCollector(std::string policy_label, SimTime window_cycles,
                   std::size_t top_k = kDefaultTopK);

  void on_arrival(const ArrivalEvent& event) override;
  void on_dispatch(const DispatchEvent& event) override;
  void on_slice(const ScheduledSlice& slice) override;
  void on_fault(const FaultRecord& record) override;
  void on_reconfig(const ReconfigEvent& event) override;
  void on_idle(const IdleEvent& event) override;
  void on_preempt(const PreemptEvent& event) override;
  void on_stall(const StallEvent& event) override;
  void on_queue_depth(const QueueSample& sample) override;
  void on_dag_release(const DagReleaseEvent& event) override;

  // Closes the in-progress window (if any event advanced the clock).
  // Call BEFORE finalizing a WindowedCollector wired to this collector.
  // Idempotent.
  void finalize();

  const std::string& policy_label() const { return policy_label_; }
  SimTime window_cycles() const { return window_cycles_; }
  std::size_t top_k() const { return top_k_; }
  std::uint64_t jobs_completed() const { return totals_.jobs(); }
  std::size_t in_flight() const { return spans_.size(); }
  const LatencyAccumulator& totals() const { return totals_; }
  // Slowest completed jobs, sojourn-descending (ties: job id ascending),
  // at most top_k entries.
  const std::vector<SlowJob>& slowest() const { return slowest_; }

  // Sojourn digest of a closed window, served from a small ring of the
  // most recently closed windows. The windowed collector asks for window
  // k in the same event delivery that closed it, so the ring never needs
  // to be deep; asking for an evicted or never-closed window throws.
  WindowLatency window_latency(std::uint64_t index) const;

  // Checkpoint support: serializes the window clock, the histograms, the
  // slowest-K list and every in-flight span (sorted by job id, so the
  // text never depends on hash-map iteration order). restore_state
  // requires a collector constructed with the same window width and
  // top-K and throws std::runtime_error (tagged with `context`) on
  // malformed or mismatched input.
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in, const std::string& context);

 private:
  // An admitted job that has not retired yet.
  struct Span {
    std::size_t benchmark_id = 0;
    SimTime arrival = 0;
    SimTime first_dispatch = 0;
    bool dispatched = false;
    Cycles service = 0;
    std::uint64_t slices = 0;
  };

  static constexpr std::size_t kWindowRing = 64;

  void advance(SimTime t);  // same close rule as WindowedCollector
  void close_window();
  void retire(const ScheduledSlice& slice, Span& span);

  std::string policy_label_;
  SimTime window_cycles_ = 0;
  std::size_t top_k_ = kDefaultTopK;

  std::uint64_t window_index_ = 0;
  SimTime window_start_ = 0;
  bool saw_event_ = false;
  bool finalized_ = false;
  Log2Histogram window_sojourn_;  // retirements in the current window
  std::array<WindowLatency, kWindowRing> ring_{};

  LatencyAccumulator totals_;
  std::vector<SlowJob> slowest_;
  std::unordered_map<std::uint64_t, Span> spans_;
};

// Groups collectors by policy label (merging same-label populations),
// then fills the report's `latency` section: per-policy stats, the
// overall merge, and the slowest-K list re-merged across collectors.
// Declared here (not run_report.hpp) so the report stays plain data.
struct RunReport;
void attach_latency_summary(
    RunReport& report, const std::vector<const JobSpanCollector*>& collectors);

}  // namespace hetsched
