#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"
#include "util/csv.hpp"

namespace hetsched {

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t nbins)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(nbins)),
      buckets_(nbins, 0) {
  HETSCHED_REQUIRE(std::isfinite(lo) && std::isfinite(hi) && lo < hi);
  HETSCHED_REQUIRE(nbins > 0);
}

void FixedHistogram::record(double v) {
  HETSCHED_REQUIRE(std::isfinite(v));
  ++count_;
  if (v < lo_) {
    ++underflow_;
    return;
  }
  if (v >= hi_) {
    ++overflow_;
    return;
  }
  // v < hi_ bounds the quotient, but clamp anyway: FP round-up at the
  // last bucket boundary must not index past the end.
  const double scaled = std::min((v - lo_) / width_,
                                 static_cast<double>(buckets_.size() - 1));
  ++buckets_[static_cast<std::size_t>(scaled)];
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    HETSCHED_REQUIRE(it->second.first == Kind::kCounter);
    return *counters_[it->second.second].second;
  }
  index_.emplace(name, std::make_pair(Kind::kCounter, counters_.size()));
  counters_.emplace_back(name, std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    HETSCHED_REQUIRE(it->second.first == Kind::kGauge);
    return *gauges_[it->second.second].second;
  }
  index_.emplace(name, std::make_pair(Kind::kGauge, gauges_.size()));
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return *gauges_.back().second;
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name,
                                           double lo, double hi,
                                           std::size_t nbins) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    HETSCHED_REQUIRE(it->second.first == Kind::kHistogram);
    FixedHistogram& existing = *histograms_[it->second.second].second;
    HETSCHED_REQUIRE(existing.lo() == lo && existing.hi() == hi &&
                     existing.buckets().size() == nbins);
    return existing;
  }
  index_.emplace(name, std::make_pair(Kind::kHistogram, histograms_.size()));
  histograms_.emplace_back(name,
                           std::make_unique<FixedHistogram>(lo, hi, nbins));
  return *histograms_.back().second;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << json_escape(counters_[i].first)
        << "\": " << counters_[i].second->value();
  }
  out << (counters_.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << json_escape(gauges_[i].first)
        << "\": " << CsvWriter::number(gauges_[i].second->value());
  }
  out << (gauges_.empty() ? "}" : "\n  }") << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const FixedHistogram& h = *histograms_[i].second;
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << json_escape(histograms_[i].first) << "\": {\"lo\": "
        << CsvWriter::number(h.lo())
        << ", \"hi\": " << CsvWriter::number(h.hi())
        << ", \"count\": " << h.count()
        << ", \"underflow\": " << h.underflow()
        << ", \"overflow\": " << h.overflow() << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets().size(); ++b) {
      out << (b == 0 ? "" : ", ") << h.buckets()[b];
    }
    out << "]}";
  }
  out << (histograms_.empty() ? "}" : "\n  }") << "\n}\n";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

std::string json_escape(std::string_view text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += buf;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

}  // namespace hetsched
