// Metrics registry: named counters, gauges and fixed-bucket histograms
// with deterministic registration order and snapshot-to-JSON export.
//
// Determinism contract: the JSON snapshot is a pure function of the
// registered metrics and their values — keys appear in registration
// order, doubles render at max_digits10 — so two runs that perform the
// same work produce byte-identical snapshots regardless of thread count
// (counters are atomic; the final sums are order-independent).
//
// Writer model: counters may be bumped from any thread; gauges and
// histograms are single-writer (the simulation thread or the post-run
// recording pass). Registration is mutex-protected and returns stable
// references; register before fanning work out when names must have a
// fixed order.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hetsched {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Equal-width histogram over [lo, hi); samples outside the range land in
// the underflow/overflow counters instead of being clamped silently.
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, std::size_t nbins);

  void record(double v);  // v must be finite

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::uint64_t count() const { return count_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers on first use, returns the existing metric afterwards.
  // Registering one name as two different kinds (or a histogram with
  // different bounds) is a contract violation.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  FixedHistogram& histogram(const std::string& name, double lo, double hi,
                            std::size_t nbins);

  // Snapshot as JSON: {"counters": {...}, "gauges": {...},
  // "histograms": {...}}, keys in registration order. Call after the
  // instrumented work has quiesced.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<FixedHistogram>>>
      histograms_;
  std::map<std::string, std::pair<Kind, std::size_t>> index_;
};

// JSON string escaping for metric/trace names and string values.
std::string json_escape(std::string_view text);

}  // namespace hetsched
