#include "obs/observability.hpp"

namespace hetsched {

ProbeRecorder::ProbeRecorder(MetricsRegistry& metrics, EventTracer* tracer)
    : pool_jobs_(&metrics.counter("pool.jobs")),
      pool_units_(&metrics.counter("pool.units")),
      cache_hits_(&metrics.counter("profile_cache.hits")),
      cache_misses_(&metrics.counter("profile_cache.misses")),
      tracer_(tracer) {}

void ProbeRecorder::on_pool_job(std::size_t unit_count) {
  pool_jobs_->add();
  pool_units_->add(unit_count);
  if (tracer_ != nullptr) {
    tracer_->add_span("pool_job", pool_clock_, unit_count, 0,
                      {{"units", std::to_string(unit_count)}});
  }
  pool_clock_ += unit_count;
}

void ProbeRecorder::on_profile_cache(bool hit) {
  (hit ? cache_hits_ : cache_misses_)->add();
  if (tracer_ != nullptr) {
    tracer_->add_instant(hit ? "profile_cache:hit" : "profile_cache:miss",
                         pool_clock_, 1);
  }
}

void record_result_metrics(MetricsRegistry& metrics,
                           const std::string& prefix,
                           const SimulationResult& result) {
  metrics.gauge(prefix + "total_mJ")
      .set(result.total_energy().millijoules());
  metrics.gauge(prefix + "idle_mJ").set(result.idle_energy.millijoules());
  metrics.gauge(prefix + "dynamic_mJ")
      .set(result.dynamic_energy.millijoules());
  metrics.gauge(prefix + "busy_static_mJ")
      .set(result.busy_static_energy.millijoules());
  metrics.gauge(prefix + "cpu_mJ").set(result.cpu_energy.millijoules());
  metrics.gauge(prefix + "reconfig_mJ")
      .set(result.reconfig_energy.millijoules());
  metrics.gauge(prefix + "profiling_mJ")
      .set(result.profiling_energy.millijoules());
  metrics.gauge(prefix + "tuning_mJ")
      .set(result.tuning_energy.millijoules());

  metrics.counter(prefix + "makespan_cycles").add(result.makespan);
  metrics.counter(prefix + "execution_cycles")
      .add(result.total_execution_cycles);
  metrics.counter(prefix + "completed_jobs").add(result.completed_jobs);
  metrics.counter(prefix + "stall_events").add(result.stall_events);
  metrics.counter(prefix + "profiling_runs").add(result.profiling_runs);
  metrics.counter(prefix + "tuning_runs").add(result.tuning_runs);
  metrics.counter(prefix + "reconfigurations")
      .add(result.reconfigurations);
  metrics.counter(prefix + "preemptions").add(result.preemptions);
  metrics.counter(prefix + "deadline_misses").add(result.deadline_misses);
  metrics.counter(prefix + "faults_injected").add(result.faults.injected);
  metrics.counter(prefix + "watchdog_fires")
      .add(result.faults.watchdog_fires);
  metrics.counter(prefix + "degraded_executions")
      .add(result.faults.degraded_executions);

  for (std::size_t core = 0; core < result.per_core.size(); ++core) {
    const std::string core_prefix =
        prefix + "core" + std::to_string(core) + ".";
    metrics.counter(core_prefix + "busy_cycles")
        .add(result.per_core[core].busy_cycles);
    metrics.counter(core_prefix + "executions")
        .add(result.per_core[core].executions);
    metrics.gauge(core_prefix + "utilization")
        .set(result.per_core[core].utilization);
  }
}

}  // namespace hetsched
