// Glue between the generic observability primitives (MetricsRegistry,
// EventTracer) and the rest of the system: the ObsProbe adapter that
// captures thread-pool jobs and profile-cache outcomes, and the
// post-run pass that snapshots a SimulationResult into the registry.
#pragma once

#include <cstdint>
#include <string>

#include "core/simulator.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics.hpp"
#include "util/probes.hpp"

namespace hetsched {

// Records runtime (non-simulated) emit points into counters and,
// optionally, onto a tracer's "runtime" tracks: tid 0 carries pool-job
// spans on a logical clock that advances one tick per work unit (so
// spans abut instead of overlapping), tid 1 carries profile-cache
// events. Everything is keyed on that logical clock — never wall
// clock — so recorded streams are identical for every thread count.
class ProbeRecorder final : public ObsProbe {
 public:
  explicit ProbeRecorder(MetricsRegistry& metrics,
                         EventTracer* tracer = nullptr);

  void on_pool_job(std::size_t unit_count) override;
  void on_profile_cache(bool hit) override;

 private:
  Counter* pool_jobs_;
  Counter* pool_units_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  EventTracer* tracer_;
  std::uint64_t pool_clock_ = 0;
};

// Installs a probe for a scope; removes it on destruction.
class ScopedProbe {
 public:
  explicit ScopedProbe(ObsProbe* probe) { set_obs_probe(probe); }
  ~ScopedProbe() { set_obs_probe(nullptr); }
  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;
};

// Deposits a finished run's accounting under `prefix`: energy buckets
// as gauges (millijoules), event totals as counters. Deterministic:
// values come straight from the (deterministic) SimulationResult.
void record_result_metrics(MetricsRegistry& metrics,
                           const std::string& prefix,
                           const SimulationResult& result);

}  // namespace hetsched
