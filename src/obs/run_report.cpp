#include "obs/run_report.hpp"

#include <ostream>

#include "obs/metrics.hpp"
#include "util/csv.hpp"

namespace hetsched {

void PhaseTimers::record(const std::string& name, double ms) {
  entries_.emplace_back(name, ms);
}

void attach_window_summary(RunReport& report,
                           const WindowedCollector& collector,
                           const AnomalyConfig& config) {
  report.window_cycles = collector.window_cycles();
  report.windows_closed = collector.windows_closed();
  report.dropped_windows = collector.dropped_windows();
  report.window_jobs_completed = 0;
  report.window_energy_mj = 0.0;
  for (const WindowRecord& w : collector.windows()) {
    report.window_jobs_completed += w.jobs_completed;
    report.window_energy_mj += w.energy_mj;
  }
  report.anomalies = detect_anomalies(collector.windows(), config);
}

std::string anomaly_to_json(const Anomaly& a) {
  std::string out = "{\"rule\":\"" + std::string(to_string(a.rule)) + "\"";
  out += ",\"window\":" + std::to_string(a.window);
  if (a.core != SIZE_MAX) out += ",\"core\":" + std::to_string(a.core);
  out += ",\"value\":" + CsvWriter::number(a.value);
  out += ",\"reference\":" + CsvWriter::number(a.reference);
  out += ",\"message\":\"" + json_escape(a.message) + "\"}";
  return out;
}

namespace {

std::string latency_metric_to_json(const RunReport::LatencyMetric& m) {
  std::string out = "{\"p50\": " + CsvWriter::number(m.p50);
  out += ", \"p95\": " + CsvWriter::number(m.p95);
  out += ", \"p99\": " + CsvWriter::number(m.p99);
  out += ", \"max\": " + std::to_string(m.max);
  out += ", \"sum\": " + std::to_string(m.sum) + "}";
  return out;
}

std::string latency_stats_to_json(const RunReport::LatencyStats& s) {
  std::string out = "{\"jobs\": " + std::to_string(s.jobs);
  out += ", \"queue\": " + latency_metric_to_json(s.queue);
  out += ", \"service\": " + latency_metric_to_json(s.service);
  out += ", \"stall\": " + latency_metric_to_json(s.stall);
  out += ", \"sojourn\": " + latency_metric_to_json(s.sojourn) + "}";
  return out;
}

}  // namespace

std::string run_report_to_json(const RunReport& r) {
  std::string out = "{\n  \"schema\": " +
                    std::to_string(kTelemetrySchemaVersion) + ",\n";
  out += "  \"command\": \"" + json_escape(r.command) + "\",\n";
  out += "  \"config\": {";
  out += "\"name\": \"" + json_escape(r.name) + "\"";
  out += ", \"policy\": \"" + json_escape(r.policy) + "\"";
  out += ", \"system\": \"" + json_escape(r.system) + "\"";
  out += ", \"discipline\": \"" + json_escape(r.discipline) + "\"";
  out += ", \"cores\": " + std::to_string(r.cores);
  out += ", \"seed\": " + std::to_string(r.seed);
  out += ", \"jobs\": " + std::to_string(r.jobs);
  out += ", \"suite_key\": " + std::to_string(r.suite_key);
  out += "},\n";
  out += "  \"result\": {";
  out += "\"completed_jobs\": " + std::to_string(r.completed_jobs);
  out += ", \"makespan\": " + std::to_string(r.makespan);
  out += ", \"total_energy_mj\": " + CsvWriter::number(r.total_energy_mj);
  out += ", \"stream_digest\": " + std::to_string(r.stream_digest);
  out += "},\n";
  out += "  \"metrics\": " + r.metrics_json + ",\n";
  out += "  \"windows\": {";
  out += "\"window_cycles\": " + std::to_string(r.window_cycles);
  out += ", \"closed\": " + std::to_string(r.windows_closed);
  out += ", \"dropped\": " + std::to_string(r.dropped_windows);
  out += ", \"jobs_completed\": " + std::to_string(r.window_jobs_completed);
  out += ", \"energy_mj\": " + CsvWriter::number(r.window_energy_mj);
  out += ", \"anomalies\": [";
  for (std::size_t i = 0; i < r.anomalies.size(); ++i) {
    out += (i == 0 ? "" : ", ") + anomaly_to_json(r.anomalies[i]);
  }
  out += "]},\n";
  if (r.latency.has_value()) {
    out += "  \"latency\": {";
    out += "\"overall\": " + latency_stats_to_json(*r.latency);
    // Policies keyed by name (not an array): the analyzer recovers the
    // policy label from the flattened numeric path.
    out += ", \"policies\": {";
    for (std::size_t i = 0; i < r.latency_policies.size(); ++i) {
      out += (i == 0 ? "" : ", ");
      out += "\"" + json_escape(r.latency_policies[i].policy) +
             "\": " + latency_stats_to_json(r.latency_policies[i].stats);
    }
    out += "}, \"slowest\": [";
    for (std::size_t i = 0; i < r.latency_slowest.size(); ++i) {
      const RunReport::SlowestJob& j = r.latency_slowest[i];
      out += (i == 0 ? "" : ", ");
      out += "{\"job\": " + std::to_string(j.job_id);
      out += ", \"benchmark\": " + std::to_string(j.benchmark_id);
      out += ", \"arrival\": " + std::to_string(j.arrival);
      out += ", \"queue\": " + std::to_string(j.queue);
      out += ", \"service\": " + std::to_string(j.service);
      out += ", \"stall\": " + std::to_string(j.stall);
      out += ", \"sojourn\": " + std::to_string(j.sojourn);
      out += ", \"slices\": " + std::to_string(j.slices) + "}";
    }
    out += "]},\n";
  }
  if (!r.policy_win_rates.empty() || !r.policy_switches.empty()) {
    out += "  \"portfolio\": {";
    out += "\"win_rates\": [";
    for (std::size_t i = 0; i < r.policy_win_rates.size(); ++i) {
      const RunReport::PolicyWinRate& w = r.policy_win_rates[i];
      out += (i == 0 ? "" : ", ");
      out += "{\"policy\": \"" + json_escape(w.name) + "\"";
      out += ", \"windows_won\": " + std::to_string(w.windows_won);
      out += ", \"win_rate\": " + CsvWriter::number(w.win_rate) + "}";
    }
    out += "], \"switches\": [";
    for (std::size_t i = 0; i < r.policy_switches.size(); ++i) {
      const RunReport::PolicySwitch& s = r.policy_switches[i];
      out += (i == 0 ? "" : ", ");
      out += "{\"window\": " + std::to_string(s.window);
      out += ", \"time\": " + std::to_string(s.time);
      out += ", \"from\": \"" + json_escape(s.from) + "\"";
      out += ", \"to\": \"" + json_escape(s.to) + "\"}";
    }
    out += "]},\n";
  }
  if (r.dag.has_value()) {
    const RunReport::DagSummary& d = *r.dag;
    out += "  \"dag\": {";
    out += "\"nodes\": " + std::to_string(d.nodes);
    out += ", \"edges\": " + std::to_string(d.edges);
    out += ", \"releases\": " + std::to_string(d.releases);
    out += ", \"ready_peak\": " + std::to_string(d.ready_peak);
    out += ", \"max_rank\": " + std::to_string(d.max_rank);
    out += ", \"release_latency_cycles\": " +
           std::to_string(d.release_latency_cycles);
    out += ", \"cp_slack_total\": " + std::to_string(d.cp_slack_total);
    out += "},\n";
  }
  out += "  \"failed_cells\": [";
  for (std::size_t i = 0; i < r.failed_cells.size(); ++i) {
    const RunReport::FailedCell& cell = r.failed_cells[i];
    out += (i == 0 ? "" : ", ");
    out += "{\"label\": \"" + json_escape(cell.label) + "\"";
    out += ", \"attempts\": " + std::to_string(cell.attempts);
    out += ", \"timed_out\": ";
    out += cell.timed_out ? "true" : "false";
    out += ", \"reason\": \"" + json_escape(cell.reason) + "\"}";
  }
  out += "],\n";
  out += "  \"phases_ms\": {";
  if (r.include_phases) {
    for (std::size_t i = 0; i < r.phases_ms.size(); ++i) {
      out += (i == 0 ? "" : ", ");
      out += "\"" + json_escape(r.phases_ms[i].first) +
             "\": " + CsvWriter::number(r.phases_ms[i].second);
    }
  }
  out += "}\n}\n";
  return out;
}

void write_run_report(std::ostream& out, const RunReport& report) {
  out << run_report_to_json(report);
}

}  // namespace hetsched
