// Unified run report: one JSON document that captures what ran (config
// echo + suite cache key), what came out (final result numbers and the
// metrics-registry snapshot), how it evolved (window summary + anomaly
// verdicts from the windowed collector) and how long the wall-clock
// phases took. Written by the CLI behind --report-out on run, scenario
// and sweep commands.
//
// Everything except the phase timers is deterministic: two identical
// runs differ only inside "phases_ms". Tests that compare reports strip
// or ignore that section.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/windowed.hpp"

namespace hetsched {

// Named wall-clock phase durations (setup / run / export ...). Scopes
// time themselves with a steady clock; entries keep insertion order.
class PhaseTimers {
 public:
  class Scope {
   public:
    Scope(PhaseTimers& owner, std::string name)
        : owner_(owner),
          name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}
    ~Scope() {
      const auto stop = std::chrono::steady_clock::now();
      owner_.record(name_,
                    std::chrono::duration<double, std::milli>(stop - start_)
                        .count());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTimers& owner_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

  Scope scope(std::string name) { return Scope(*this, std::move(name)); }
  void record(const std::string& name, double ms);
  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

struct RunReport {
  // What ran. The CLI fills these from its command line / scenario; the
  // obs layer deliberately knows nothing about Scenario.
  std::string command;    // run | scenario | sweep
  std::string name;       // scenario/run label
  std::string policy;
  std::string system;
  std::string discipline;
  std::size_t cores = 0;
  std::uint64_t seed = 0;
  std::uint64_t jobs = 0;
  std::uint64_t suite_key = 0;  // suite_cache_key of the characterisation

  // Final outcome.
  std::uint64_t completed_jobs = 0;
  std::uint64_t makespan = 0;
  double total_energy_mj = 0.0;
  std::uint64_t stream_digest = 0;  // 0 when the run kept no StreamStats

  // Full metrics-registry snapshot, embedded verbatim ("{}" when the
  // run kept no registry).
  std::string metrics_json = "{}";

  // Window summary (zero/empty without a windowed collector).
  std::uint64_t window_cycles = 0;
  std::uint64_t windows_closed = 0;
  std::uint64_t dropped_windows = 0;
  std::uint64_t window_jobs_completed = 0;
  double window_energy_mj = 0.0;
  std::vector<Anomaly> anomalies;

  // Per-job latency distributions (absent without a span collector).
  // Plain data filled by attach_latency_summary (obs/latency.hpp) from
  // JobSpanCollector histograms; all cycle quantities are exact integers
  // except the bucket-interpolated percentiles.
  struct LatencyMetric {
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
  };
  struct LatencyStats {
    std::uint64_t jobs = 0;
    LatencyMetric queue;
    LatencyMetric service;
    LatencyMetric stall;
    LatencyMetric sojourn;
  };
  struct PolicyLatency {
    std::string policy;
    LatencyStats stats;
  };
  struct SlowestJob {
    std::uint64_t job_id = 0;
    std::uint64_t benchmark_id = 0;
    std::uint64_t arrival = 0;
    std::uint64_t queue = 0;
    std::uint64_t service = 0;
    std::uint64_t stall = 0;
    std::uint64_t sojourn = 0;
    std::uint64_t slices = 0;
  };
  std::optional<LatencyStats> latency;
  std::vector<PolicyLatency> latency_policies;
  std::vector<SlowestJob> latency_slowest;

  // Portfolio meta-scheduler summary (empty unless the run's policy was
  // a portfolio). Plain data filled by the scenario/CLI layer from core
  // PortfolioStats — the obs layer deliberately doesn't link core.
  struct PolicyWinRate {
    std::string name;
    std::uint64_t windows_won = 0;  // windows this contender was active
    double win_rate = 0.0;          // windows_won / closed windows
  };
  struct PolicySwitch {
    std::uint64_t window = 0;  // window index the switch took effect at
    std::uint64_t time = 0;    // simulated boundary time of the switch
    std::string from;
    std::string to;
  };
  std::vector<PolicyWinRate> policy_win_rates;
  std::vector<PolicySwitch> policy_switches;

  // DAG task-graph summary (absent for independent-job runs). Plain data
  // filled by the scenario/CLI layer from scenario DagStats — the obs
  // layer deliberately doesn't link scenario.
  struct DagSummary {
    std::uint64_t nodes = 0;
    std::uint64_t edges = 0;
    std::uint64_t releases = 0;    // dependent (non-root) releases
    std::uint64_t ready_peak = 0;  // eligible-set high-water mark
    std::uint32_t max_rank = 0;    // critical-path length in edges
    std::uint64_t release_latency_cycles = 0;  // sum over releases
    std::uint64_t cp_slack_total = 0;          // sum over releases
  };
  std::optional<DagSummary> dag;

  // Supervised-sweep quarantine: cells that failed or timed out and were
  // excluded from the merged results (empty for unsupervised runs).
  struct FailedCell {
    std::string label;
    std::uint32_t attempts = 0;
    bool timed_out = false;
    std::string reason;
  };
  std::vector<FailedCell> failed_cells;

  std::vector<std::pair<std::string, double>> phases_ms;
  // When false, "phases_ms" is emitted empty — the deterministic-report
  // mode used to compare a resumed run against an uninterrupted one
  // byte-for-byte.
  bool include_phases = true;
};

// Copies a finalized collector's summary and anomaly verdicts into the
// report.
void attach_window_summary(RunReport& report,
                           const WindowedCollector& collector,
                           const AnomalyConfig& config);

std::string anomaly_to_json(const Anomaly& anomaly);
std::string run_report_to_json(const RunReport& report);
void write_run_report(std::ostream& out, const RunReport& report);

}  // namespace hetsched
