#include "obs/windowed.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>

#include "obs/latency.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {
namespace {

namespace st = snapshot_text;

void write_window(std::ostream& out, const WindowRecord& w) {
  out << w.index << ' ' << w.start << ' ' << w.end << ' '
      << w.jobs_completed << ' ' << w.slices << ' ' << w.dispatches << ' '
      << w.preemptions << ' ' << w.stalls << ' ' << w.migrations << ' '
      << w.fault_migrations << ' '
      << w.queue_peak << ' ' << w.prediction_hits << ' '
      << w.prediction_misses << ' ' << w.reconfig_attempts << ' '
      << w.faults << ' ' << w.dag_releases << ' ' << w.dag_ready_peak << ' '
      << w.dag_release_latency << ' ' << w.dag_cp_slack << ' '
      << w.lat_jobs << ' ' << w.lat_max << ' ';
  st::write_double(out, w.lat_p50);
  out << ' ';
  st::write_double(out, w.lat_p95);
  out << ' ';
  st::write_double(out, w.lat_p99);
  out << ' ';
  st::write_double(out, w.energy_mj);
  for (const Cycles c : w.busy_cycles) out << ' ' << c;
  for (const Cycles c : w.idle_cycles) out << ' ' << c;
  out << "\n";
}

WindowRecord read_window(std::istream& in, std::size_t cores,
                         const std::string& context) {
  WindowRecord w;
  w.index = st::read_value<std::uint64_t>(in, "window index", context);
  w.start = st::read_value<SimTime>(in, "window start", context);
  w.end = st::read_value<SimTime>(in, "window end", context);
  for (std::uint64_t* field :
       {&w.jobs_completed, &w.slices, &w.dispatches, &w.preemptions,
        &w.stalls, &w.migrations, &w.fault_migrations, &w.queue_peak,
        &w.prediction_hits, &w.prediction_misses, &w.reconfig_attempts,
        &w.faults, &w.dag_releases, &w.dag_ready_peak,
        &w.dag_release_latency, &w.dag_cp_slack, &w.lat_jobs, &w.lat_max}) {
    *field = st::read_value<std::uint64_t>(in, "window counter", context);
  }
  w.lat_p50 = st::read_value<double>(in, "window latency p50", context);
  w.lat_p95 = st::read_value<double>(in, "window latency p95", context);
  w.lat_p99 = st::read_value<double>(in, "window latency p99", context);
  w.energy_mj = st::read_value<double>(in, "window energy", context);
  w.busy_cycles.resize(cores, 0);
  w.idle_cycles.resize(cores, 0);
  for (Cycles& c : w.busy_cycles) {
    c = st::read_value<Cycles>(in, "window busy cycles", context);
  }
  for (Cycles& c : w.idle_cycles) {
    c = st::read_value<Cycles>(in, "window idle cycles", context);
  }
  return w;
}

}  // namespace

Cycles WindowRecord::total_busy_cycles() const {
  Cycles total = 0;
  for (const Cycles c : busy_cycles) total += c;
  return total;
}

Cycles WindowRecord::total_idle_cycles() const {
  Cycles total = 0;
  for (const Cycles c : idle_cycles) total += c;
  return total;
}

WindowedCollector::WindowedCollector(std::size_t core_count,
                                     WindowedOptions options,
                                     const CharacterizedSuite* suite)
    : options_(options), suite_(suite) {
  HETSCHED_REQUIRE(core_count > 0);
  HETSCHED_REQUIRE(options_.window_cycles > 0);
  current_.busy_cycles.resize(core_count, 0);
  current_.idle_cycles.resize(core_count, 0);
  current_.start = 0;
  current_.end = options_.window_cycles;
}

void WindowedCollector::reset_current(SimTime start) {
  const std::size_t cores = current_.busy_cycles.size();
  const std::uint64_t index = current_.index + 1;
  current_ = WindowRecord{};
  current_.index = index;
  current_.start = start;
  current_.end = start + options_.window_cycles;
  current_.busy_cycles.resize(cores, 0);
  current_.idle_cycles.resize(cores, 0);
}

void WindowedCollector::set_span_source(const JobSpanCollector* spans) {
  HETSCHED_REQUIRE(spans == nullptr ||
                   spans->window_cycles() == options_.window_cycles);
  spans_ = spans;
}

void WindowedCollector::close_window() {
  if (spans_ != nullptr) {
    const WindowLatency lat = spans_->window_latency(current_.index);
    current_.lat_jobs = lat.jobs;
    current_.lat_p50 = lat.p50;
    current_.lat_p95 = lat.p95;
    current_.lat_p99 = lat.p99;
    current_.lat_max = lat.max;
  }
  ++windows_closed_;
  if (sink_ != nullptr) *sink_ << window_to_json(current_) << '\n';
  windows_.push_back(current_);
  if (options_.max_windows > 0 && windows_.size() > options_.max_windows) {
    windows_.erase(windows_.begin());
    ++dropped_windows_;
  }
}

void WindowedCollector::advance(SimTime t) {
  HETSCHED_REQUIRE(!finalized_ &&
                   "WindowedCollector received an event after finalize()");
  saw_event_ = true;
  while (t >= current_.end) {
    close_window();
    reset_current(current_.end);
  }
}

void WindowedCollector::on_slice(const ScheduledSlice& slice) {
  advance(slice.end);
  ++current_.slices;
  if (slice.core < current_.busy_cycles.size() && slice.end > slice.start) {
    current_.busy_cycles[slice.core] += slice.end - slice.start;
  }
  if (!slice.completed) {
    last_core_[slice.job_id] = LastCore{slice.core, false};
    return;
  }
  ++current_.jobs_completed;
  if (suite_ != nullptr) {
    const BenchmarkProfile& profile = suite_->benchmark(slice.benchmark_id);
    const ConfigProfile& cp = profile.profile_for(slice.config);
    const double portion =
        static_cast<double>(slice.end - slice.start) /
        static_cast<double>(cp.energy.total_cycles);
    current_.energy_mj += ((cp.energy.dynamic_energy +
                            cp.energy.static_energy + cp.energy.cpu_energy) *
                           portion)
                              .millijoules();
    if (slice.kind == ExecutionKind::kNormal) {
      if (slice.config.size_bytes == profile.oracle_best_size()) {
        ++current_.prediction_hits;
      } else {
        ++current_.prediction_misses;
      }
    }
  }
}

void WindowedCollector::on_fault(const FaultRecord& record) {
  advance(record.time);
  ++current_.faults;
  // A failed core's hung victim and a watchdog-cleared job re-queue
  // without a slice; remember their core for the migration detector.
  if (record.job_id != 0 &&
      (record.kind == FaultRecord::Kind::kCoreFailure ||
       record.kind == FaultRecord::Kind::kWatchdogFire)) {
    last_core_[record.job_id] = LastCore{record.core, true};
  }
}

void WindowedCollector::on_dispatch(const DispatchEvent& event) {
  advance(event.time);
  ++current_.dispatches;
  const auto it = last_core_.find(event.job_id);
  if (it != last_core_.end()) {
    if (it->second.core != event.core) {
      // Re-dispatch away from a failed/hung core is recovery the
      // watchdog forced, not a scheduling decision — count it apart.
      if (it->second.fault) {
        ++current_.fault_migrations;
      } else {
        ++current_.migrations;
      }
    }
    last_core_.erase(it);
  }
}

void WindowedCollector::on_reconfig(const ReconfigEvent& event) {
  advance(event.time);
  ++current_.reconfig_attempts;
}

void WindowedCollector::on_idle(const IdleEvent& event) {
  advance(event.to);
  if (event.core < current_.idle_cycles.size() && event.to > event.from) {
    current_.idle_cycles[event.core] += event.to - event.from;
  }
}

void WindowedCollector::on_preempt(const PreemptEvent& event) {
  advance(event.time);
  ++current_.preemptions;
  // A hung victim was evicted by watchdog machinery, not by a policy
  // placement choice.
  if (event.was_hung) last_core_[event.job_id] = LastCore{event.core, true};
}

void WindowedCollector::on_stall(const StallEvent& event) {
  advance(event.time);
  ++current_.stalls;
}

void WindowedCollector::on_queue_depth(const QueueSample& sample) {
  advance(sample.time);
  current_.queue_peak = std::max<std::uint64_t>(current_.queue_peak,
                                                sample.depth);
}

void WindowedCollector::on_dag_release(const DagReleaseEvent& event) {
  advance(event.time);
  ++current_.dag_releases;
  current_.dag_ready_peak = std::max<std::uint64_t>(current_.dag_ready_peak,
                                                    event.ready_depth);
  current_.dag_release_latency += event.latency;
  current_.dag_cp_slack += event.slack;
}

void WindowedCollector::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Close the in-progress window only if the run put anything into the
  // current window span (a run ending exactly on a boundary, or an
  // eventless collector, adds no trailing zero row).
  if (saw_event_) close_window();
}

void WindowedCollector::save_state(std::ostream& out) const {
  const std::size_t cores = current_.busy_cycles.size();
  out << "windowed " << cores << ' ' << options_.window_cycles << ' '
      << options_.max_windows << "\n";
  out << "state " << (saw_event_ ? 1 : 0) << ' ' << (finalized_ ? 1 : 0)
      << ' ' << windows_closed_ << ' ' << dropped_windows_ << "\n";
  out << "current ";
  write_window(out, current_);
  out << "retained " << windows_.size() << "\n";
  for (const WindowRecord& w : windows_) write_window(out, w);
  // last_core_ in sorted order: the serialized form must not depend on
  // unordered_map iteration.
  const std::map<std::uint64_t, LastCore> sorted(last_core_.begin(),
                                                 last_core_.end());
  out << "last-core " << sorted.size() << "\n";
  for (const auto& [job_id, last] : sorted) {
    out << job_id << ' ' << last.core << ' ' << (last.fault ? 1 : 0) << "\n";
  }
}

void WindowedCollector::restore_state(std::istream& in,
                                      const std::string& context) {
  const std::size_t cores = current_.busy_cycles.size();
  std::string token;
  if (!(in >> token) || token != "windowed") {
    st::fail(context, "expected 'windowed'");
  }
  if (st::read_value<std::size_t>(in, "core count", context) != cores) {
    st::fail(context, "windowed-collector core count does not match");
  }
  if (st::read_value<SimTime>(in, "window width", context) !=
      options_.window_cycles) {
    st::fail(context, "window width does not match");
  }
  if (st::read_value<std::size_t>(in, "retention limit", context) !=
      options_.max_windows) {
    st::fail(context, "window retention limit does not match");
  }
  if (!(in >> token) || token != "state") {
    st::fail(context, "expected 'state'");
  }
  saw_event_ = st::read_value<int>(in, "saw-event flag", context) != 0;
  finalized_ = st::read_value<int>(in, "finalized flag", context) != 0;
  windows_closed_ =
      st::read_value<std::uint64_t>(in, "windows closed", context);
  dropped_windows_ =
      st::read_value<std::uint64_t>(in, "dropped windows", context);
  if (!(in >> token) || token != "current") {
    st::fail(context, "expected 'current'");
  }
  current_ = read_window(in, cores, context);
  if (current_.end != current_.start + options_.window_cycles) {
    st::fail(context, "current window span does not match the width");
  }
  if (!(in >> token) || token != "retained") {
    st::fail(context, "expected 'retained'");
  }
  const auto retained =
      st::read_value<std::size_t>(in, "retained count", context);
  windows_.clear();
  for (std::size_t i = 0; i < retained; ++i) {
    windows_.push_back(read_window(in, cores, context));
  }
  if (!(in >> token) || token != "last-core") {
    st::fail(context, "expected 'last-core'");
  }
  const auto tracked =
      st::read_value<std::size_t>(in, "tracked job count", context);
  last_core_.clear();
  for (std::size_t i = 0; i < tracked; ++i) {
    const auto job_id =
        st::read_value<std::uint64_t>(in, "tracked job id", context);
    LastCore last;
    last.core = st::read_value<std::size_t>(in, "tracked core", context);
    last.fault = st::read_value<int>(in, "tracked fault flag", context) != 0;
    last_core_[job_id] = last;
  }
}

void WindowedCollector::write_jsonl(std::ostream& out) const {
  for (const WindowRecord& window : windows_) {
    out << window_to_json(window) << '\n';
  }
}

std::string window_to_json(const WindowRecord& w) {
  std::string line =
      "{\"schema\":" + std::to_string(kTelemetrySchemaVersion);
  line += ",\"window\":" + std::to_string(w.index);
  line += ",\"start\":" + std::to_string(w.start);
  line += ",\"end\":" + std::to_string(w.end);
  line += ",\"jobs_completed\":" + std::to_string(w.jobs_completed);
  line += ",\"slices\":" + std::to_string(w.slices);
  line += ",\"dispatches\":" + std::to_string(w.dispatches);
  line += ",\"preemptions\":" + std::to_string(w.preemptions);
  line += ",\"stalls\":" + std::to_string(w.stalls);
  line += ",\"migrations\":" + std::to_string(w.migrations);
  line += ",\"fault_migrations\":" + std::to_string(w.fault_migrations);
  line += ",\"queue_peak\":" + std::to_string(w.queue_peak);
  line += ",\"prediction_hits\":" + std::to_string(w.prediction_hits);
  line += ",\"prediction_misses\":" + std::to_string(w.prediction_misses);
  line += ",\"reconfig_attempts\":" + std::to_string(w.reconfig_attempts);
  line += ",\"faults\":" + std::to_string(w.faults);
  line += ",\"dag_releases\":" + std::to_string(w.dag_releases);
  line += ",\"dag_ready_peak\":" + std::to_string(w.dag_ready_peak);
  line += ",\"dag_release_latency\":" + std::to_string(w.dag_release_latency);
  line += ",\"dag_cp_slack\":" + std::to_string(w.dag_cp_slack);
  line += ",\"lat_jobs\":" + std::to_string(w.lat_jobs);
  line += ",\"lat_p50\":" + CsvWriter::number(w.lat_p50);
  line += ",\"lat_p95\":" + CsvWriter::number(w.lat_p95);
  line += ",\"lat_p99\":" + CsvWriter::number(w.lat_p99);
  line += ",\"lat_max\":" + std::to_string(w.lat_max);
  line += ",\"energy_mj\":" + CsvWriter::number(w.energy_mj);
  line += ",\"busy_cycles\":[";
  for (std::size_t i = 0; i < w.busy_cycles.size(); ++i) {
    line += (i == 0 ? "" : ",") + std::to_string(w.busy_cycles[i]);
  }
  line += "],\"idle_cycles\":[";
  for (std::size_t i = 0; i < w.idle_cycles.size(); ++i) {
    line += (i == 0 ? "" : ",") + std::to_string(w.idle_cycles[i]);
  }
  line += "]}";
  return line;
}

std::string_view to_string(Anomaly::Rule rule) {
  switch (rule) {
    case Anomaly::Rule::kCoreStarvation: return "core-starvation";
    case Anomaly::Rule::kIdleSpike: return "idle-spike";
    case Anomaly::Rule::kEnergyDrift: return "energy-drift";
    case Anomaly::Rule::kTailLatencySpike: return "tail-latency-spike";
  }
  return "unknown";
}

std::vector<Anomaly> detect_anomalies(std::span<const WindowRecord> windows,
                                      const AnomalyConfig& config) {
  std::vector<Anomaly> anomalies;
  if (windows.empty()) return anomalies;

  // Core starvation: zero busy cycles on one core across N consecutive
  // windows in which the system as a whole kept dispatching. Reported
  // once per streak, at the window where the threshold is crossed.
  const std::size_t cores = windows.front().busy_cycles.size();
  if (config.starvation_windows > 0) {
    for (std::size_t core = 0; core < cores; ++core) {
      std::size_t streak = 0;
      for (const WindowRecord& w : windows) {
        const bool starved = w.dispatches > 0 &&
                             core < w.busy_cycles.size() &&
                             w.busy_cycles[core] == 0;
        streak = starved ? streak + 1 : 0;
        if (streak == config.starvation_windows) {
          Anomaly a;
          a.rule = Anomaly::Rule::kCoreStarvation;
          a.window = w.index;
          a.core = core;
          a.value = static_cast<double>(streak);
          a.reference = static_cast<double>(config.starvation_windows);
          a.message = "core " + std::to_string(core) + " ran nothing for " +
                      std::to_string(streak) +
                      " consecutive windows with work dispatching";
          anomalies.push_back(std::move(a));
        }
      }
    }
  }

  // Idle spike: a window's total idle cycles far above the trailing mean.
  if (config.idle_spike_factor > 0.0 && config.trailing_windows > 0) {
    for (std::size_t i = config.trailing_windows; i < windows.size(); ++i) {
      double trailing = 0.0;
      for (std::size_t k = i - config.trailing_windows; k < i; ++k) {
        trailing += static_cast<double>(windows[k].total_idle_cycles());
      }
      const double mean =
          trailing / static_cast<double>(config.trailing_windows);
      const double idle = static_cast<double>(windows[i].total_idle_cycles());
      if (mean > 0.0 && idle > config.idle_spike_factor * mean) {
        Anomaly a;
        a.rule = Anomaly::Rule::kIdleSpike;
        a.window = windows[i].index;
        a.value = idle;
        a.reference = config.idle_spike_factor * mean;
        a.message = "idle cycles " + std::to_string(windows[i]
                                                        .total_idle_cycles()) +
                    " exceed " + CsvWriter::number(config.idle_spike_factor) +
                    "x the trailing mean";
        anomalies.push_back(std::move(a));
      }
    }
  }

  // Energy-per-job drift: compare each productive window against the mean
  // of the previous `trailing_windows` productive windows.
  if (config.energy_drift_factor > 0.0 && config.trailing_windows > 0) {
    std::vector<const WindowRecord*> productive;
    for (const WindowRecord& w : windows) {
      if (w.jobs_completed > 0) productive.push_back(&w);
    }
    for (std::size_t i = config.trailing_windows; i < productive.size();
         ++i) {
      // Bounded lookback: compacting to productive windows must not let
      // the rule reach across a long idle gap and judge this window
      // against stale history. If the oldest trailing productive window
      // is further away (in real window indices) than the bound allows,
      // there is not enough fresh evidence — the rule stays silent.
      const std::size_t oldest = i - config.trailing_windows;
      if (config.drift_lookback_windows > 0 &&
          productive[i]->index - productive[oldest]->index >
              config.drift_lookback_windows) {
        continue;
      }
      double trailing = 0.0;
      for (std::size_t k = oldest; k < i; ++k) {
        trailing += productive[k]->energy_per_job_mj();
      }
      const double mean =
          trailing / static_cast<double>(config.trailing_windows);
      const double per_job = productive[i]->energy_per_job_mj();
      if (mean > 0.0 && per_job > config.energy_drift_factor * mean) {
        Anomaly a;
        a.rule = Anomaly::Rule::kEnergyDrift;
        a.window = productive[i]->index;
        a.value = per_job;
        a.reference = config.energy_drift_factor * mean;
        a.message = "energy per job " + CsvWriter::number(per_job) +
                    " mJ exceeds " +
                    CsvWriter::number(config.energy_drift_factor) +
                    "x the trailing mean " + CsvWriter::number(mean) + " mJ";
        anomalies.push_back(std::move(a));
      }
    }
  }

  // Tail-latency spike: a window's p99 sojourn far above the trailing
  // mean p99 of productive windows, with the same bounded lookback as
  // the energy rule. Windows without latency columns (no span collector
  // wired) have lat_jobs == 0 and never participate.
  if (config.tail_latency_factor > 0.0 && config.trailing_windows > 0) {
    std::vector<const WindowRecord*> productive;
    for (const WindowRecord& w : windows) {
      if (w.lat_jobs > 0) productive.push_back(&w);
    }
    for (std::size_t i = config.trailing_windows; i < productive.size();
         ++i) {
      const std::size_t oldest = i - config.trailing_windows;
      if (config.drift_lookback_windows > 0 &&
          productive[i]->index - productive[oldest]->index >
              config.drift_lookback_windows) {
        continue;
      }
      double trailing = 0.0;
      for (std::size_t k = oldest; k < i; ++k) {
        trailing += productive[k]->lat_p99;
      }
      const double mean =
          trailing / static_cast<double>(config.trailing_windows);
      const double p99 = productive[i]->lat_p99;
      if (mean > 0.0 && p99 > config.tail_latency_factor * mean) {
        Anomaly a;
        a.rule = Anomaly::Rule::kTailLatencySpike;
        a.window = productive[i]->index;
        a.value = p99;
        a.reference = config.tail_latency_factor * mean;
        a.message = "p99 sojourn " + CsvWriter::number(p99) +
                    " cycles exceeds " +
                    CsvWriter::number(config.tail_latency_factor) +
                    "x the trailing mean " + CsvWriter::number(mean) +
                    " cycles";
        anomalies.push_back(std::move(a));
      }
    }
  }

  std::stable_sort(anomalies.begin(), anomalies.end(),
                   [](const Anomaly& a, const Anomaly& b) {
                     if (a.window != b.window) return a.window < b.window;
                     return static_cast<int>(a.rule) <
                            static_cast<int>(b.rule);
                   });
  if (anomalies.size() > config.max_anomalies) {
    anomalies.resize(config.max_anomalies);
  }
  return anomalies;
}

std::string window_interval_error(std::uint64_t window_cycles,
                                  std::uint64_t checkpoint_every) {
  // Ceiling chosen so that window advancement (start + window_cycles) and
  // the checkpoint stride product both stay far from uint64 wraparound —
  // a wrapped stride silently truncates a run instead of failing loudly.
  constexpr std::uint64_t kMaxCycles = std::uint64_t{1} << 61;
  if (window_cycles == 0) {
    return "window cycles must be >= 1";
  }
  if (checkpoint_every == 0) {
    return "checkpoint interval must be >= 1 window";
  }
  if (window_cycles > kMaxCycles) {
    return "window cycles too large (max 2^61)";
  }
  if (checkpoint_every > kMaxCycles / window_cycles) {
    return "window cycles x checkpoint interval overflows the simulated "
           "clock (max 2^61 cycles per checkpoint stride)";
  }
  return "";
}

}  // namespace hetsched
