// Windowed streaming telemetry: continuous per-window visibility into a
// run while it executes, instead of one end-of-run aggregate.
//
// A WindowedCollector is a ScheduleObserver that tumbles on simulated
// time: the run is cut into fixed-width windows [k*W, (k+1)*W) and every
// observer callback is folded into the window containing its primary
// timestamp (the time at which the simulator delivered it — slice end,
// idle-interval end, dispatch decision time). Intervals that span
// windows are attributed whole to the window in which they close; this
// keeps the collector single-pass with O(cores) state per window.
//
// Determinism: all callbacks arrive on the single simulation thread in
// event order keyed on SimTime, so the window stream — and its JSONL
// export — is byte-identical across runs, HETSCHED_THREADS values, and
// between run_stream and batch run() on the same arrival stream.
//
// Memory: bounded. Closed windows stream to an optional sink as JSONL
// and are retained up to `max_windows` (drop-oldest beyond that, with a
// drop counter), so a million-job run with a sink attached holds only
// the retention buffer.
//
// On top of the window stream, detect_anomalies applies deterministic
// threshold and trailing-window drift rules (core starvation, idle
// spikes, energy-per-job drift) — the SLO checker behind RunReport.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/schedule_log.hpp"
#include "workload/characterization.hpp"

namespace hetsched {

class JobSpanCollector;

// Shared schema marker for the windows JSONL stream and the RunReport
// document. Version 5 added the per-window `lat_*` latency columns, the
// report `latency` section and this very field on window lines.
inline constexpr int kTelemetrySchemaVersion = 5;

// One closed telemetry window.
struct WindowRecord {
  std::uint64_t index = 0;
  SimTime start = 0;
  SimTime end = 0;  // exclusive
  std::uint64_t jobs_completed = 0;
  std::uint64_t slices = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t stalls = 0;
  // Dispatches of a preempted/re-queued job onto a different core than
  // the one it last ran on, split by cause: `migrations` counts
  // policy-driven moves (ordinary preemption), `fault_migrations` counts
  // re-dispatch forced by a core failure or watchdog fire — recovery, not
  // a scheduling choice, so the two must not be conflated.
  std::uint64_t migrations = 0;
  std::uint64_t fault_migrations = 0;
  std::uint64_t queue_peak = 0;  // max ready-queue depth sampled
  // Completed normal executions whose configuration matches the
  // characterised oracle-best for the benchmark (requires a suite).
  std::uint64_t prediction_hits = 0;
  std::uint64_t prediction_misses = 0;
  std::uint64_t reconfig_attempts = 0;
  std::uint64_t faults = 0;
  // DAG release telemetry (zero for independent-job runs): successors
  // whose last predecessor retired in this window, the eligible-set
  // high-water mark among them, and the summed release latency
  // (release - nominal arrival) and critical-path slack at release.
  std::uint64_t dag_releases = 0;
  std::uint64_t dag_ready_peak = 0;
  std::uint64_t dag_release_latency = 0;
  std::uint64_t dag_cp_slack = 0;
  // Per-job latency of jobs retired in this window, pulled from an
  // attached JobSpanCollector when the window closes (all zero without
  // one): retirement count, bucket-interpolated sojourn percentiles and
  // the exact maximum sojourn in cycles.
  std::uint64_t lat_jobs = 0;
  double lat_p50 = 0.0;
  double lat_p95 = 0.0;
  double lat_p99 = 0.0;
  std::uint64_t lat_max = 0;
  // Execution energy (dynamic + busy static + cpu) of slices closed in
  // this window, in millijoules (requires a suite).
  double energy_mj = 0.0;
  std::vector<Cycles> busy_cycles;  // per core, slices closed here
  std::vector<Cycles> idle_cycles;  // per core, idle intervals closed here

  double energy_per_job_mj() const {
    return jobs_completed == 0
               ? 0.0
               : energy_mj / static_cast<double>(jobs_completed);
  }
  Cycles total_busy_cycles() const;
  Cycles total_idle_cycles() const;
};

struct WindowedOptions {
  // Window width in simulated cycles.
  SimTime window_cycles = 1'000'000;
  // Closed windows retained in memory; 0 = unlimited. Beyond the limit
  // the oldest retained window is dropped (and counted) — attach a sink
  // to keep the full stream without retaining it.
  std::size_t max_windows = 0;
};

class WindowedCollector final : public ScheduleObserver {
 public:
  // `suite` enables the energy and prediction-accuracy columns; when
  // null they stay zero. The suite must outlive the collector.
  WindowedCollector(std::size_t core_count, WindowedOptions options,
                    const CharacterizedSuite* suite = nullptr);

  // Streams each window as one JSONL line the moment it closes. The
  // stream must outlive the collector (or be cleared with nullptr).
  void set_sink(std::ostream* sink) { sink_ = sink; }

  // Wires a span collector as the source of the per-window `lat_*`
  // columns. The span collector must tumble on the same window width,
  // sit BEFORE this collector in the observer fanout (so it has closed
  // window k when this collector closes it) and be finalized first; it
  // must outlive the collector (or be cleared with nullptr).
  void set_span_source(const JobSpanCollector* spans);

  void on_slice(const ScheduledSlice& slice) override;
  void on_fault(const FaultRecord& record) override;
  void on_dispatch(const DispatchEvent& event) override;
  void on_reconfig(const ReconfigEvent& event) override;
  void on_idle(const IdleEvent& event) override;
  void on_preempt(const PreemptEvent& event) override;
  void on_stall(const StallEvent& event) override;
  void on_queue_depth(const QueueSample& sample) override;
  void on_dag_release(const DagReleaseEvent& event) override;

  // Closes the in-progress window (if it saw any event) after the run.
  // Idempotent; call before reading windows() / writing JSONL.
  void finalize();

  // Closed windows currently retained, oldest first.
  const std::vector<WindowRecord>& windows() const { return windows_; }
  std::uint64_t windows_closed() const { return windows_closed_; }
  std::uint64_t dropped_windows() const { return dropped_windows_; }
  SimTime window_cycles() const { return options_.window_cycles; }

  // Writes the retained windows as JSONL (one object per line).
  void write_jsonl(std::ostream& out) const;

  // Checkpoint support: serializes the in-progress window, the retained
  // closed windows and the migration-detector state, so a restored
  // collector folds the remaining events into the exact window stream
  // the uninterrupted run would produce. restore_state requires a
  // collector constructed with the same core count and window width and
  // throws std::runtime_error (tagged with `context`) on malformed or
  // mismatched input.
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in, const std::string& context);

 private:
  void advance(SimTime t);  // close windows until t falls in the current
  void close_window();
  void reset_current(SimTime start);

  WindowedOptions options_;
  const CharacterizedSuite* suite_;
  std::ostream* sink_ = nullptr;
  const JobSpanCollector* spans_ = nullptr;

  WindowRecord current_;
  bool saw_event_ = false;     // current window (or any before finalize)
  bool finalized_ = false;
  std::uint64_t windows_closed_ = 0;
  std::uint64_t dropped_windows_ = 0;
  std::vector<WindowRecord> windows_;
  // Last core of jobs whose latest execution did not complete (preempted,
  // watchdog-cleared or failed-core victims) — the migration detector.
  // `fault` distinguishes fault-recovery re-queues (core failure,
  // watchdog fire, hung-victim preemption) from policy preemption, so
  // the re-dispatch lands in the right migration counter. Bounded by the
  // re-queued population, not the stream length.
  struct LastCore {
    std::size_t core = 0;
    bool fault = false;
  };
  std::unordered_map<std::uint64_t, LastCore> last_core_;
};

// One JSONL line for a window (no trailing newline). Deterministic:
// integers verbatim, doubles at max_digits10.
std::string window_to_json(const WindowRecord& window);

// --- Anomaly / SLO rules over a window stream ---------------------------

struct AnomalyConfig {
  // A core with zero busy cycles for this many consecutive windows —
  // while the system dispatched work in each of them — is starved.
  std::size_t starvation_windows = 3;
  // Total idle cycles above `idle_spike_factor` x the trailing mean.
  double idle_spike_factor = 3.0;
  // Energy-per-job above `energy_drift_factor` x the trailing mean.
  double energy_drift_factor = 1.5;
  // Window p99 sojourn above `tail_latency_factor` x the trailing mean
  // p99 over productive windows (lat_jobs > 0). Fires only when the
  // window stream carries latency columns (a span collector was wired).
  double tail_latency_factor = 3.0;
  // Windows of history the drift rules average over.
  std::size_t trailing_windows = 4;
  // Maximum real-window index distance the energy-drift rule may look
  // back across its trailing productive windows. Sparse arrivals leave
  // long idle gaps between productive windows; without this bound a
  // window would be judged against stale data from arbitrarily far in
  // the past. 0 = unbounded (the pre-fix behaviour).
  std::size_t drift_lookback_windows = 16;
  // Hard cap on reported anomalies (the rest are counted, not stored).
  std::size_t max_anomalies = 64;
};

struct Anomaly {
  enum class Rule {
    kCoreStarvation,
    kIdleSpike,
    kEnergyDrift,
    kTailLatencySpike,
  };

  Rule rule = Rule::kCoreStarvation;
  std::uint64_t window = 0;         // window index the rule fired on
  std::size_t core = SIZE_MAX;      // starvation only; SIZE_MAX = n/a
  double value = 0.0;               // observed quantity
  double reference = 0.0;           // threshold it was compared against
  std::string message;
};

std::string_view to_string(Anomaly::Rule rule);

// Applies every rule to `windows` in order. Deterministic: pure function
// of the window stream and the config. Returns at most
// config.max_anomalies entries (earliest first).
std::vector<Anomaly> detect_anomalies(std::span<const WindowRecord> windows,
                                      const AnomalyConfig& config);

// Validates the telemetry/checkpoint interval pair before it reaches a
// collector or the checkpoint driver: both must be >= 1 and their product
// (the checkpoint stride in simulated cycles) must fit the simulated
// clock with headroom. Returns an empty string when valid, otherwise a
// human-readable rejection for the CLI to print.
std::string window_interval_error(std::uint64_t window_cycles,
                                  std::uint64_t checkpoint_every);

}  // namespace hetsched
