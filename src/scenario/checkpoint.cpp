#include "scenario/checkpoint.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/contracts.hpp"
#include "util/hash.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {
namespace {

namespace st = snapshot_text;

// Version 2 added the scheduler policy's own state block (seeded-Rng
// contenders, the portfolio selector) between the windowed collector and
// the fault section; version-1 snapshots are rejected rather than resumed
// with a silently reset policy. Version 3 added the DAG arrival source's
// frontier block (in-degrees, eligible heap, emission log) between the
// arrival generator and the stream stats, so a dependency-graph run
// resumes with the exact release frontier. Version 4 added the job span
// collector's block (window clock, latency histograms, slowest-K list,
// every in-flight span) between the stream stats and the windowed
// collector, so a resumed run rebuilds the exact latency distributions —
// older snapshots are rejected rather than resumed with reset spans.
constexpr int kCheckpointVersion = 4;

std::string make_checkpoint_text(const Scenario& scenario,
                                 const CheckpointRunOptions& options,
                                 std::uint64_t boundary, ScenarioRun& run,
                                 const JobSpanCollector& spans,
                                 const WindowedCollector& collector) {
  std::ostringstream body;
  body << "hetsched-checkpoint " << kCheckpointVersion << "\n";
  body << "scenario-hash " << scenario_fingerprint(scenario) << "\n";
  body << "window-cycles " << options.window_cycles << ' '
       << options.checkpoint_every << "\n";
  body << "boundary " << boundary << "\n";
  run.simulator().save_stream_state(body);
  run.arrivals().save_state(body);
  body << "dag " << (run.dag() != nullptr ? 1 : 0) << "\n";
  if (run.dag() != nullptr) run.dag()->save_state(body);
  run.stats().save_state(body);
  spans.save_state(body);
  collector.save_state(body);
  run.policy().save_state(body);
  body << "faults " << (run.injector() != nullptr ? 1 : 0) << "\n";
  if (run.injector() != nullptr) run.injector()->save_state(body);
  std::ostringstream out;
  st::write_with_checksum(out, body.str());
  return out.str();
}

// Parses and verifies `text`, restores every component into `run` and
// `collector`, and returns the stride boundary the snapshot was taken
// at. The ScenarioRun must be freshly constructed (not started).
std::uint64_t restore_checkpoint_text(const std::string& text,
                                      const Scenario& scenario,
                                      const CheckpointRunOptions& options,
                                      ScenarioRun& run,
                                      JobSpanCollector& spans,
                                      WindowedCollector& collector,
                                      const std::string& context) {
  std::istringstream raw(text);
  const std::string body = st::read_verified(raw, context);
  std::istringstream in(body);

  std::string token;
  if (!(in >> token) || token != "hetsched-checkpoint") {
    st::fail(context, "not a hetsched checkpoint");
  }
  if (st::read_value<int>(in, "version", context) != kCheckpointVersion) {
    st::fail(context, "unsupported checkpoint version");
  }
  if (!(in >> token) || token != "scenario-hash") {
    st::fail(context, "expected 'scenario-hash'");
  }
  if (st::read_value<std::uint64_t>(in, "scenario hash", context) !=
      scenario_fingerprint(scenario)) {
    st::fail(context,
             "checkpoint was taken for a different scenario definition");
  }
  if (!(in >> token) || token != "window-cycles") {
    st::fail(context, "expected 'window-cycles'");
  }
  if (st::read_value<SimTime>(in, "window cycles", context) !=
          options.window_cycles ||
      st::read_value<std::uint64_t>(in, "checkpoint stride", context) !=
          options.checkpoint_every) {
    st::fail(context,
             "checkpoint window/stride parameters do not match this run");
  }
  if (!(in >> token) || token != "boundary") {
    st::fail(context, "expected 'boundary'");
  }
  const auto boundary =
      st::read_value<std::uint64_t>(in, "boundary index", context);
  if (boundary == 0) st::fail(context, "boundary index must be positive");

  run.simulator().restore_stream_state(in, context);
  run.arrivals().restore_state(in, context);
  if (!(in >> token) || token != "dag") {
    st::fail(context, "expected 'dag'");
  }
  const bool had_dag = st::read_value<int>(in, "dag flag", context) != 0;
  if (had_dag != (run.dag() != nullptr)) {
    st::fail(context,
             "checkpoint DAG state does not match the scenario");
  }
  if (run.dag() != nullptr) run.dag()->restore_state(in, context);
  run.stats().restore_state(in, context);
  spans.restore_state(in, context);
  collector.restore_state(in, context);
  run.policy().restore_state(in, context);
  if (!(in >> token) || token != "faults") {
    st::fail(context, "expected 'faults'");
  }
  const bool had_injector =
      st::read_value<int>(in, "fault flag", context) != 0;
  if (had_injector != (run.injector() != nullptr)) {
    st::fail(context,
             "checkpoint fault-injection state does not match the scenario");
  }
  if (run.injector() != nullptr) {
    run.injector()->restore_state(in, context);
  }
  return boundary;
}

std::string load_resume_text(const CheckpointRunOptions& options) {
  if (!options.resume_text.empty()) return options.resume_text;
  std::ifstream in(options.resume_from, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read checkpoint file: " +
                             options.resume_from);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::uint64_t scenario_fingerprint(const Scenario& scenario) {
  std::ostringstream out;
  scenario.save(out);
  return fnv1a(out.str());
}

CheckpointRunOutcome run_scenario_checkpointed(
    const Scenario& scenario, const ScenarioContext& context,
    const CheckpointRunOptions& options) {
  const std::string interval_error =
      window_interval_error(options.window_cycles, options.checkpoint_every);
  if (!interval_error.empty()) {
    throw std::invalid_argument("checkpoint intervals: " + interval_error);
  }

  JobSpanCollector spans(scenario.policy, options.window_cycles);
  WindowedCollector collector(
      scenario.make_system().core_count(),
      WindowedOptions{options.window_cycles, 0}, &context.suite());
  collector.set_span_source(&spans);
  // Span collector first: it must have closed window k (and banked its
  // latency digest) before the windowed collector closes k and pulls it.
  FanoutObserver extra({&spans, &collector});
  ScenarioRun run(scenario, context, &extra);

  std::uint64_t boundary = 0;
  std::uint64_t resumed_from = 0;
  const bool resuming =
      !options.resume_text.empty() || !options.resume_from.empty();
  if (resuming) {
    const std::string context_name = options.resume_from.empty()
                                         ? std::string("checkpoint")
                                         : options.resume_from;
    boundary = restore_checkpoint_text(load_resume_text(options), scenario,
                                       options, run, spans, collector,
                                       context_name);
    resumed_from = boundary;
  } else {
    run.start();
  }

  const SimTime stride = options.window_cycles * options.checkpoint_every;
  std::uint64_t written = 0;
  for (;;) {
    ++boundary;
    const bool paused = run.advance_until(boundary * stride);
    if (!paused) break;  // stream drained before the boundary

    const std::string text = make_checkpoint_text(scenario, options,
                                                  boundary, run, spans,
                                                  collector);
    if (options.capture_checkpoints != nullptr) {
      options.capture_checkpoints->push_back(text);
    }
    if (!options.checkpoint_out.empty() &&
        !atomic_write_file(options.checkpoint_out, text)) {
      throw std::runtime_error("cannot write checkpoint file: " +
                               options.checkpoint_out);
    }
    ++written;
    if (options.halt_after_checkpoints > 0 &&
        written >= options.halt_after_checkpoints) {
      // The moved-out collectors leave this scope: sever the handshake
      // pointer so the moved copy never dereferences the dead original.
      collector.set_span_source(nullptr);
      CheckpointRunOutcome halted{SimulationResult{},
                                  std::move(run.stats()),
                                  std::move(collector),
                                  std::move(spans),
                                  written,
                                  resumed_from,
                                  true,
                                  std::nullopt,
                                  std::nullopt};
      if (const auto* portfolio =
              dynamic_cast<const PortfolioPolicy*>(&run.policy())) {
        halted.portfolio = portfolio->stats();
      }
      if (const DagArrivalSource* dag = run.dag()) {
        halted.dag = dag->stats();
      }
      return halted;
    }
  }

  const SimulationResult result = run.finish();
  spans.finalize();  // before the windowed collector: it pulls on close
  collector.finalize();
  collector.set_span_source(nullptr);
  CheckpointRunOutcome outcome{result,
                               std::move(run.stats()),
                               std::move(collector),
                               std::move(spans),
                               written,
                               resumed_from,
                               false,
                               std::nullopt,
                               std::nullopt};
  if (const auto* portfolio =
          dynamic_cast<const PortfolioPolicy*>(&run.policy())) {
    outcome.portfolio = portfolio->stats();
  }
  if (const DagArrivalSource* dag = run.dag()) {
    outcome.dag = dag->stats();
  }
  return outcome;
}

}  // namespace hetsched
