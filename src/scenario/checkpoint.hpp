// Crash-safe scenario execution: deterministic checkpoint/resume.
//
// A checkpointed run drives a ScenarioRun in fixed strides of simulated
// time (window_cycles * checkpoint_every) and serializes the complete
// resumable state at each stride boundary: simulator core/queue/in-flight
// state, arrival-generator position (RNG states included), StreamStats
// compaction digest, windowed-telemetry accumulators and the fault
// injector's schedule cursor. Snapshots follow the repo's versioned
// text-snapshot conventions (whitespace tokens, hexfloat doubles, a
// trailing FNV-1a checksum line) and are written with atomic
// temp+rename, so a crash mid-write leaves the previous checkpoint
// intact.
//
// The headline invariant, property-tested in tests/chaos_test.cpp: a run
// killed at ANY checkpoint boundary and resumed from the file produces
// bit-identical outputs (StreamStats digest, window JSONL, result) to
// the uninterrupted run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/latency.hpp"
#include "obs/windowed.hpp"
#include "scenario/scenario_runner.hpp"

namespace hetsched {

struct CheckpointRunOptions {
  // Telemetry window width; checkpoints land on multiples of it.
  SimTime window_cycles = 1'000'000;
  // Windows per checkpoint stride (>= 1).
  std::uint64_t checkpoint_every = 1;
  // Checkpoint file path, rewritten atomically at every boundary; empty
  // = no file output (captures below still work).
  std::string checkpoint_out;
  // Resume source: a checkpoint file path, or the literal checkpoint
  // text (tests; takes precedence when non-empty).
  std::string resume_from;
  std::string resume_text;
  // Stop after writing this many checkpoints this process (simulating a
  // crash); 0 = run to completion.
  std::uint64_t halt_after_checkpoints = 0;
  // When non-null, every checkpoint text is also appended here (tests).
  std::vector<std::string>* capture_checkpoints = nullptr;
};

struct CheckpointRunOutcome {
  SimulationResult result;   // default-initialized when halted
  StreamStats stream;
  WindowedCollector windows;  // finalized only when the run completed
  // Per-job latency spans (policy-labelled); fed the windows' lat_*
  // columns during the run and finalized alongside them.
  JobSpanCollector spans;
  std::uint64_t checkpoints_written = 0;
  // Stride boundary the run resumed from; 0 = started fresh.
  std::uint64_t resumed_from = 0;
  bool halted = false;
  // Selector outcome when the scenario ran a portfolio policy; for halted
  // runs this is the selector state as of the halt.
  std::optional<PortfolioStats> portfolio;
  // DAG release accounting when the scenario declared dep edges; for
  // halted runs this is the frontier state as of the halt.
  std::optional<DagStats> dag;
};

// Runs `scenario` under the checkpointing driver. Without resume/halt
// options the outcome is bit-identical to run_scenario plus a windowed
// collector. Throws std::runtime_error on unreadable, corrupted,
// truncated or mismatched (different scenario or checkpoint parameters)
// resume input, and on checkpoint files that cannot be written.
CheckpointRunOutcome run_scenario_checkpointed(
    const Scenario& scenario, const ScenarioContext& context,
    const CheckpointRunOptions& options);

// FNV-1a fingerprint of the scenario's canonical save() text; stamped
// into checkpoint headers so a snapshot cannot resume a different
// scenario.
std::uint64_t scenario_fingerprint(const Scenario& scenario);

}  // namespace hetsched
