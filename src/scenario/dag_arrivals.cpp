#include "scenario/dag_arrivals.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/contracts.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {

namespace {

namespace st = snapshot_text;

// Kahn's algorithm over the edge list; returns the pop order (empty
// slots absent — size < node_count exactly when the graph has a cycle).
std::vector<std::size_t> topological_order(const std::vector<DagEdge>& edges,
                                           std::size_t node_count) {
  std::vector<std::size_t> indegree(node_count, 0);
  std::vector<std::vector<std::size_t>> successors(node_count);
  for (const DagEdge& e : edges) {
    ++indegree[e.to];
    successors[e.from].push_back(e.to);
  }
  std::vector<std::size_t> order;
  order.reserve(node_count);
  for (std::size_t v = 0; v < node_count; ++v) {
    if (indegree[v] == 0) order.push_back(v);
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const std::size_t s : successors[order[head]]) {
      if (--indegree[s] == 0) order.push_back(s);
    }
  }
  return order;
}

}  // namespace

std::optional<DagSpec::Issue> DagSpec::validate(
    std::size_t node_count) const {
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const DagEdge& e = edges[i];
    if (e.from >= node_count || e.to >= node_count) {
      return Issue{i, "dep job id out of range (jobs 0.." +
                          std::to_string(node_count == 0 ? 0
                                                         : node_count - 1) +
                          ")"};
    }
    if (e.from == e.to) {
      return Issue{i, "dep repeats job " + std::to_string(e.from) +
                          " (self dependency)"};
    }
  }
  // Duplicate edges: sort (from, to, first index) and compare adjacent.
  std::vector<std::size_t> by_pair(edges.size());
  for (std::size_t i = 0; i < by_pair.size(); ++i) by_pair[i] = i;
  std::sort(by_pair.begin(), by_pair.end(),
            [this](std::size_t a, std::size_t b) {
              const DagEdge& ea = edges[a];
              const DagEdge& eb = edges[b];
              if (ea.from != eb.from) return ea.from < eb.from;
              if (ea.to != eb.to) return ea.to < eb.to;
              return a < b;
            });
  for (std::size_t k = 1; k < by_pair.size(); ++k) {
    const DagEdge& a = edges[by_pair[k - 1]];
    const DagEdge& b = edges[by_pair[k]];
    if (a.from == b.from && a.to == b.to) {
      return Issue{std::max(by_pair[k - 1], by_pair[k]),
                   "duplicate dep " + std::to_string(a.from) + " -> " +
                       std::to_string(a.to)};
    }
  }
  const std::vector<std::size_t> order =
      topological_order(edges, node_count);
  if (order.size() < node_count) {
    std::vector<char> popped(node_count, 0);
    for (const std::size_t v : order) popped[v] = 1;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!popped[edges[i].from] && !popped[edges[i].to]) {
        return Issue{i, "dep edges form a cycle through job " +
                            std::to_string(edges[i].from)};
      }
    }
    HETSCHED_ASSERT(false && "cyclic graph without a residual edge");
  }
  return std::nullopt;
}

std::vector<std::uint32_t> DagSpec::ranks(std::size_t node_count) const {
  std::vector<std::vector<std::size_t>> successors(node_count);
  for (const DagEdge& e : edges) successors[e.from].push_back(e.to);
  const std::vector<std::size_t> order =
      topological_order(edges, node_count);
  HETSCHED_REQUIRE(order.size() == node_count && "ranks on a cyclic graph");
  std::vector<std::uint32_t> rank(node_count, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = *it;
    for (const std::size_t s : successors[v]) {
      rank[v] = std::max(rank[v], rank[s] + 1);
    }
  }
  return rank;
}

DagArrivalSource::DagArrivalSource(
    const DagSpec& spec, std::vector<std::size_t> benchmark_ids,
    const ArrivalOptions& options, std::uint64_t seed,
    const std::optional<RealtimeSetup>& realtime) {
  const auto issue = spec.validate(options.count);
  HETSCHED_REQUIRE(!issue.has_value() && "DagSpec must validate");

  // Same draws as the plain streaming source: a DAG scenario's nominal
  // arrivals are bit-identical to the independent-job scenario's.
  GeneratedArrivalStream generator(std::move(benchmark_ids), options, seed);
  if (realtime.has_value()) {
    generator.set_realtime(realtime->reference_cycles_by_benchmark,
                           realtime->options, realtime->seed);
  }
  nodes_.resize(options.count);
  for (Node& node : nodes_) {
    const std::optional<JobArrival> arrival = generator.next();
    HETSCHED_ASSERT(arrival.has_value());
    node.base = *arrival;
  }

  const std::vector<std::uint32_t> rank = spec.ranks(nodes_.size());
  stats_.nodes = nodes_.size();
  stats_.edges = spec.edges.size();
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    nodes_[v].base.cp_rank = rank[v];
    stats_.max_rank = std::max(stats_.max_rank, rank[v]);
  }
  for (const DagEdge& e : spec.edges) {
    nodes_[e.from].successors.push_back(e.to);
    ++nodes_[e.to].preds_remaining;
  }
  // Roots enter the frontier at their generated arrival time.
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (nodes_[v].preds_remaining == 0) {
      nodes_[v].released = true;
      nodes_[v].release_time = nodes_[v].base.arrival;
      eligible_.push({nodes_[v].release_time, v});
      stats_.ready_peak = std::max<std::uint64_t>(stats_.ready_peak,
                                                  eligible_.size());
    }
  }
}

std::optional<JobArrival> DagArrivalSource::next() {
  stale_ = false;
  if (eligible_.empty()) return std::nullopt;
  const auto [release, node] = eligible_.top();
  eligible_.pop();
  emission_log_.push_back(node);
  JobArrival arrival = nodes_[node].base;
  arrival.arrival = release;
  return arrival;
}

void DagArrivalSource::unget(const JobArrival& arrival) {
  HETSCHED_REQUIRE(!emission_log_.empty() && "unget without an emission");
  const std::size_t node = emission_log_.back();
  emission_log_.pop_back();
  HETSCHED_ASSERT(nodes_[node].release_time == arrival.arrival);
  eligible_.push({arrival.arrival, node});
}

void DagArrivalSource::on_slice(const ScheduledSlice& slice) {
  // Preempted fragments don't retire the job; only completion counts.
  if (!slice.completed) return;
  // Job ids are assigned at admission in emission order, so the log maps
  // them straight back to node indices. An unget'd lookahead was never
  // admitted, so every admitted id stays below the log size.
  HETSCHED_REQUIRE(slice.job_id < emission_log_.size() &&
                   "completion for a job this source never emitted");
  const std::size_t node = emission_log_[slice.job_id];
  for (const std::size_t successor : nodes_[node].successors) {
    HETSCHED_ASSERT(nodes_[successor].preds_remaining > 0);
    if (--nodes_[successor].preds_remaining == 0) {
      release_node(successor, slice.end);
    }
  }
}

void DagArrivalSource::release_node(std::size_t node,
                                    SimTime completion_time) {
  Node& n = nodes_[node];
  HETSCHED_ASSERT(!n.released);
  n.released = true;
  n.release_time = std::max(n.base.arrival, completion_time);
  eligible_.push({n.release_time, node});
  stale_ = true;

  const Cycles latency =
      static_cast<Cycles>(n.release_time - n.base.arrival);
  const std::uint32_t slack = stats_.max_rank - n.base.cp_rank;
  ++stats_.releases;
  stats_.release_latency_total += latency;
  stats_.cp_slack_total += slack;
  stats_.ready_peak =
      std::max<std::uint64_t>(stats_.ready_peak, eligible_.size());

  if (release_observer_ != nullptr) {
    DagReleaseEvent event;
    event.time = completion_time;
    event.node = node;
    event.ready_depth = eligible_.size();
    event.latency = latency;
    event.slack = slack;
    release_observer_->on_dag_release(event);
  }
}

std::vector<JobArrival> DagArrivalSource::realized() const {
  std::vector<JobArrival> arrivals;
  arrivals.reserve(emission_log_.size());
  for (const std::size_t node : emission_log_) {
    JobArrival arrival = nodes_[node].base;
    arrival.arrival = nodes_[node].release_time;
    arrivals.push_back(arrival);
  }
  return arrivals;
}

void DagArrivalSource::save_state(std::ostream& out) const {
  out << "dag-arrivals " << nodes_.size() << ' ' << stats_.edges << "\n";
  out << "stale " << (stale_ ? 1 : 0) << "\n";
  out << "frontier\n";
  for (const Node& node : nodes_) {
    out << node.preds_remaining << ' ' << (node.released ? 1 : 0) << ' '
        << node.release_time << "\n";
  }
  // Drain a copy of the heap: entries come out sorted by (time, node), a
  // canonical order independent of heap layout.
  auto heap = eligible_;
  out << "eligible " << heap.size() << "\n";
  while (!heap.empty()) {
    const auto [release, node] = heap.top();
    heap.pop();
    out << release << ' ' << node << "\n";
  }
  out << "emitted " << emission_log_.size();
  for (const std::size_t node : emission_log_) out << ' ' << node;
  out << "\ndag-stats " << stats_.releases << ' ' << stats_.ready_peak
      << ' ' << stats_.release_latency_total << ' ' << stats_.cp_slack_total
      << "\n";
}

void DagArrivalSource::restore_state(std::istream& in,
                                     const std::string& context) {
  std::string token;
  if (!(in >> token) || token != "dag-arrivals") {
    st::fail(context, "expected 'dag-arrivals'");
  }
  if (st::read_value<std::size_t>(in, "dag node count", context) !=
      nodes_.size()) {
    st::fail(context, "dag node count does not match the scenario");
  }
  if (st::read_value<std::uint64_t>(in, "dag edge count", context) !=
      stats_.edges) {
    st::fail(context, "dag edge count does not match the scenario");
  }
  if (!(in >> token) || token != "stale") st::fail(context, "expected 'stale'");
  stale_ = st::read_value<int>(in, "dag stale flag", context) != 0;
  if (!(in >> token) || token != "frontier") {
    st::fail(context, "expected 'frontier'");
  }
  for (Node& node : nodes_) {
    node.preds_remaining =
        st::read_value<std::uint32_t>(in, "dag preds remaining", context);
    node.released = st::read_value<int>(in, "dag released flag", context) != 0;
    node.release_time =
        st::read_value<SimTime>(in, "dag release time", context);
  }
  if (!(in >> token) || token != "eligible") {
    st::fail(context, "expected 'eligible'");
  }
  const auto eligible =
      st::read_value<std::size_t>(in, "dag eligible count", context);
  while (!eligible_.empty()) eligible_.pop();
  for (std::size_t k = 0; k < eligible; ++k) {
    const auto release = st::read_value<SimTime>(in, "dag release", context);
    const auto node =
        st::read_value<std::size_t>(in, "dag eligible node", context);
    if (node >= nodes_.size()) {
      st::fail(context, "dag eligible node out of range");
    }
    eligible_.push({release, node});
  }
  if (!(in >> token) || token != "emitted") {
    st::fail(context, "expected 'emitted'");
  }
  const auto emitted =
      st::read_value<std::size_t>(in, "dag emitted count", context);
  if (emitted > nodes_.size()) {
    st::fail(context, "dag emitted count exceeds node count");
  }
  emission_log_.clear();
  emission_log_.reserve(emitted);
  for (std::size_t k = 0; k < emitted; ++k) {
    const auto node =
        st::read_value<std::size_t>(in, "dag emitted node", context);
    if (node >= nodes_.size()) {
      st::fail(context, "dag emitted node out of range");
    }
    emission_log_.push_back(node);
  }
  if (!(in >> token) || token != "dag-stats") {
    st::fail(context, "expected 'dag-stats'");
  }
  stats_.releases = st::read_value<std::uint64_t>(in, "dag releases", context);
  stats_.ready_peak =
      st::read_value<std::uint64_t>(in, "dag ready peak", context);
  stats_.release_latency_total =
      st::read_value<Cycles>(in, "dag release latency", context);
  stats_.cp_slack_total =
      st::read_value<std::uint64_t>(in, "dag cp slack", context);
}

}  // namespace hetsched
