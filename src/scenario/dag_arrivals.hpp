// DAG workloads: precedence-constrained job graphs over a generated
// arrival stream (ROADMAP item 4; cf. Mack et al., arXiv 2112.08980).
// Jobs are the arrival-stream indices 0..count-1; a `dep A B` edge means
// job A must retire before job B becomes eligible. Roots keep their
// generated arrival time; a successor is released at
//   max(generated arrival, last predecessor's retirement cycle)
// so the frontier advances the cycle the final dependency completes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "core/schedule_log.hpp"
#include "workload/arrivals.hpp"

namespace hetsched {

// One precedence edge: `from` must complete before `to` may start.
struct DagEdge {
  std::size_t from = 0;
  std::size_t to = 0;
};

// The dependency structure of a scenario's job graph. Jobs without
// edges are independent; an empty spec reproduces the plain streaming
// workload exactly.
struct DagSpec {
  std::vector<DagEdge> edges;

  bool empty() const { return edges.empty(); }

  // First structural problem with the edge set over `node_count` jobs,
  // or nullopt if the graph is a well-formed DAG. `edge_index` names the
  // offending edge (for cycles: some edge on a cycle) so callers can
  // attribute the error to a source line. Rejects out-of-range
  // endpoints, self edges (a duplicated job id within one edge),
  // duplicate edges and cycles.
  struct Issue {
    std::size_t edge_index = 0;
    std::string what;
  };
  std::optional<Issue> validate(std::size_t node_count) const;

  // Unit-weight longest-path-to-sink rank per node: 0 for sinks and
  // independent jobs, 1 + max over successors otherwise. The critical
  // path length (in edges) is the maximum entry. Requires validate() to
  // have passed.
  std::vector<std::uint32_t> ranks(std::size_t node_count) const;
};

// Cumulative DAG release accounting, surfaced in RunReport's "dag"
// section. `releases` counts dependent (non-root) releases only; roots
// are ordinary generated arrivals.
struct DagStats {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t releases = 0;
  std::uint64_t ready_peak = 0;      // eligible-set high-water mark
  std::uint32_t max_rank = 0;        // critical path length in edges
  Cycles release_latency_total = 0;  // sum of release - nominal arrival
  std::uint64_t cp_slack_total = 0;  // sum of max_rank - rank at release
};

// Release-on-completion arrival source: materialises the generated
// arrival stream (bit-identical draws to GeneratedArrivalStream for the
// same options/seed/realtime setup), then feeds the simulator only the
// eligible frontier. Implements ScheduleObserver so completion slices
// from the very simulator it feeds release successors; the simulator's
// lookahead re-polls via the lookahead_stale()/unget() protocol.
// Deliberately O(nodes) memory — DAG scenarios trade the O(1) streaming
// footprint for precedence structure.
class DagArrivalSource final : public ArrivalSource,
                               public ScheduleObserver {
 public:
  // Mirrors GeneratedArrivalStream::set_realtime, taken up front because
  // the constructor performs every arrival draw.
  struct RealtimeSetup {
    std::vector<Cycles> reference_cycles_by_benchmark;
    RealtimeOptions options;
    std::uint64_t seed = 0;
  };

  // `spec` must validate against options.count nodes (checked).
  DagArrivalSource(const DagSpec& spec,
                   std::vector<std::size_t> benchmark_ids,
                   const ArrivalOptions& options, std::uint64_t seed,
                   const std::optional<RealtimeSetup>& realtime);

  // Release events (ready depth, latency, slack) are reported here;
  // null disables reporting. Not part of the arrival stream itself.
  void set_release_observer(ScheduleObserver* observer) {
    release_observer_ = observer;
  }

  // ArrivalSource: emits eligible nodes in (release time, node index)
  // order. Admission order therefore equals emission order, which is how
  // simulator job ids map back to node indices.
  std::optional<JobArrival> next() override;
  bool lookahead_stale() const override { return stale_; }
  void unget(const JobArrival& arrival) override;

  // ScheduleObserver: completed slices retire nodes and release
  // successors. Preempted fragments and watchdog expiries release
  // nothing — only a real retirement satisfies a dependency.
  void on_slice(const ScheduledSlice& slice) override;

  const DagStats& stats() const { return stats_; }

  // Node index of the k-th emitted arrival (== simulator job id k).
  const std::vector<std::size_t>& emission_order() const {
    return emission_log_;
  }

  // The realized arrival sequence so far, suitable for batch replay
  // through MulticoreSimulator::run: sorted by construction, cp_rank
  // attached. Complete once the stream is drained.
  std::vector<JobArrival> realized() const;

  // Checkpoint support: per-node frontier state (in-degrees, release
  // flags/times), the eligible heap in canonical sorted order, the
  // emission log, the stale flag and cumulative stats. Graph structure
  // and ranks are derived from the scenario at reconstruction and only
  // verified by count here. Same contract as GeneratedArrivalStream:
  // construct identically, then restore before the next next().
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in, const std::string& context);

 private:
  struct Node {
    JobArrival base;  // nominal generated arrival, cp_rank filled in
    std::uint32_t preds_remaining = 0;
    bool released = false;
    SimTime release_time = 0;
    std::vector<std::size_t> successors;
  };

  using HeapEntry = std::pair<SimTime, std::size_t>;  // (release, node)

  void release_node(std::size_t node, SimTime completion_time);

  std::vector<Node> nodes_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      eligible_;
  std::vector<std::size_t> emission_log_;
  bool stale_ = false;
  DagStats stats_;
  ScheduleObserver* release_observer_ = nullptr;
};

}  // namespace hetsched
