#include "scenario/scenario.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"

namespace hetsched {
namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("scenario line " + std::to_string(line) + ": " +
                           what);
}

[[noreturn]] void invalid(const std::string& what) {
  throw std::invalid_argument("Scenario: " + what);
}

bool known_policy(const std::string& policy) {
  return PolicyRegistry::instance().known(policy);
}

}  // namespace

std::string_view to_string(Scenario::SystemKind kind) {
  switch (kind) {
    case Scenario::SystemKind::kPaperQuad: return "paper";
    case Scenario::SystemKind::kFixedBase: return "base";
    case Scenario::SystemKind::kScaledHeterogeneous: return "scaled";
  }
  return "unknown";
}

std::string_view to_string(QueueDiscipline discipline) {
  switch (discipline) {
    case QueueDiscipline::kFifo: return "fifo";
    case QueueDiscipline::kEdf: return "edf";
    case QueueDiscipline::kPriority: return "priority";
  }
  return "unknown";
}

SystemConfig Scenario::make_system() const {
  switch (system) {
    case SystemKind::kPaperQuad:
      return SystemConfig::paper_quadcore();
    case SystemKind::kFixedBase:
      return SystemConfig::fixed_base(cores);
    case SystemKind::kScaledHeterogeneous:
      return SystemConfig::scaled_heterogeneous(cores);
  }
  invalid("unknown system kind");
}

bool Scenario::needs_predictor() const {
  return PolicyRegistry::instance().needs_predictor(policy);
}

void Scenario::validate() const {
  if (name.empty()) invalid("name must not be empty");
  if (!known_policy(policy)) invalid("unknown policy '" + policy + "'");
  if (cores < 1) invalid("cores must be >= 1");
  if (system == SystemKind::kPaperQuad && cores != 4) {
    invalid("the paper system has exactly 4 cores");
  }
  if (system == SystemKind::kScaledHeterogeneous && cores < 2) {
    invalid("the scaled heterogeneous system needs >= 2 cores");
  }
  if (arrivals.count == 0) invalid("jobs must be >= 1");
  if (!(arrivals.mean_interarrival_cycles > 0.0) ||
      !std::isfinite(arrivals.mean_interarrival_cycles)) {
    invalid("mean-gap must be finite and > 0");
  }
  if (!(arrivals.burstiness >= 1.0) ||
      !std::isfinite(arrivals.burstiness)) {
    invalid("burstiness must be finite and >= 1");
  }
  if (!(arrivals.phase_switch >= 0.0 && arrivals.phase_switch <= 1.0)) {
    invalid("phase-switch must lie in [0, 1]");
  }
  if (!(suite.kernel_scale > 0.0 && suite.kernel_scale <= 4.0)) {
    invalid("kernel-scale must lie in (0, 4]");
  }
  if (suite.variants_per_kernel < 1) {
    invalid("variants-per-kernel must be >= 1");
  }
  if (predictor_ensemble < 1) invalid("ensemble must be >= 1");
  if (realtime.has_value()) {
    if (!(realtime->slack_factor > 0.0) ||
        !std::isfinite(realtime->slack_factor)) {
      invalid("slack must be finite and > 0");
    }
    if (realtime->priority_levels < 1) {
      invalid("priority-levels must be >= 1");
    }
  }
  faults.validate();
  for (const CoreFaultEvent& event : faults.core_events) {
    if (event.core >= cores) {
      invalid("fault event core " + std::to_string(event.core) +
              " out of range for a " + std::to_string(cores) +
              "-core system");
    }
  }
  if (const auto issue = dag.validate(arrivals.count)) {
    invalid("dep edge " + std::to_string(issue->edge_index) + ": " +
            issue->what);
  }
}

Scenario Scenario::parse(std::istream& in) {
  Scenario scenario;
  std::string line;
  std::size_t line_number = 0;
  // Source line of each dep edge, in edge order: DAG structural errors
  // (range, self/duplicate edges, cycles) are only checkable once the
  // whole graph is read, but must still name the offending line.
  std::vector<std::size_t> dep_lines;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive) || directive[0] == '#') continue;

    auto read_u64 = [&](std::uint64_t& out, std::uint64_t min_value) {
      if (!(tokens >> out) || out < min_value) {
        parse_fail(line_number, "'" + directive +
                                    "' expects an integer >= " +
                                    std::to_string(min_value));
      }
    };
    auto read_size = [&](std::size_t& out, std::size_t min_value) {
      std::uint64_t v = 0;
      read_u64(v, min_value);
      out = static_cast<std::size_t>(v);
    };
    auto read_real = [&](double& out, double lo, double hi) {
      if (!(tokens >> out) || !std::isfinite(out) || out < lo || out > hi) {
        parse_fail(line_number,
                   "'" + directive + "' expects a finite number in [" +
                       std::to_string(lo) + ", " + std::to_string(hi) + "]");
      }
    };
    auto read_event = [&](bool fail) {
      CoreFaultEvent ev;
      ev.fail = fail;
      if (!(tokens >> ev.core >> ev.at)) {
        parse_fail(line_number, "'" + directive + "' expects CORE and CYCLE");
      }
      scenario.faults.core_events.push_back(ev);
    };

    if (directive == "name") {
      if (!(tokens >> scenario.name)) {
        parse_fail(line_number, "'name' expects a token");
      }
    } else if (directive == "system") {
      std::string kind;
      if (!(tokens >> kind)) parse_fail(line_number, "missing system kind");
      if (kind == "paper") {
        scenario.system = SystemKind::kPaperQuad;
      } else if (kind == "base") {
        scenario.system = SystemKind::kFixedBase;
      } else if (kind == "scaled") {
        scenario.system = SystemKind::kScaledHeterogeneous;
      } else {
        parse_fail(line_number, "unknown system '" + kind + "'");
      }
    } else if (directive == "cores") {
      read_size(scenario.cores, 1);
    } else if (directive == "policy") {
      std::string policy;
      if (!(tokens >> policy) || !known_policy(policy)) {
        parse_fail(line_number, "policy must be one of: " +
                                    PolicyRegistry::instance().names_help());
      }
      scenario.policy = policy;
    } else if (directive == "discipline") {
      std::string discipline;
      if (!(tokens >> discipline)) {
        parse_fail(line_number, "missing discipline");
      }
      if (discipline == "fifo") {
        scenario.discipline = QueueDiscipline::kFifo;
      } else if (discipline == "edf") {
        scenario.discipline = QueueDiscipline::kEdf;
      } else if (discipline == "priority") {
        scenario.discipline = QueueDiscipline::kPriority;
      } else {
        parse_fail(line_number, "unknown discipline '" + discipline + "'");
      }
    } else if (directive == "seed") {
      read_u64(scenario.seed, 0);
    } else if (directive == "jobs") {
      std::uint64_t jobs = 0;
      read_u64(jobs, 1);
      scenario.arrivals.count = static_cast<std::size_t>(jobs);
    } else if (directive == "mean-gap") {
      read_real(scenario.arrivals.mean_interarrival_cycles, 1e-9, 1e15);
    } else if (directive == "distribution") {
      std::string dist;
      if (!(tokens >> dist)) parse_fail(line_number, "missing distribution");
      if (dist == "uniform") {
        scenario.arrivals.distribution = InterarrivalDistribution::kUniform;
      } else if (dist == "exponential") {
        scenario.arrivals.distribution =
            InterarrivalDistribution::kExponential;
      } else if (dist == "fixed") {
        scenario.arrivals.distribution = InterarrivalDistribution::kFixed;
      } else {
        parse_fail(line_number, "unknown distribution '" + dist + "'");
      }
    } else if (directive == "burstiness") {
      read_real(scenario.arrivals.burstiness, 1.0, 1e6);
    } else if (directive == "phase-switch") {
      read_real(scenario.arrivals.phase_switch, 0.0, 1.0);
    } else if (directive == "kernel-scale") {
      read_real(scenario.suite.kernel_scale, 1e-6, 4.0);
    } else if (directive == "variants-per-kernel") {
      read_size(scenario.suite.variants_per_kernel, 1);
    } else if (directive == "extended-suite") {
      std::uint64_t flag = 0;
      read_u64(flag, 0);
      if (flag > 1) parse_fail(line_number, "'extended-suite' expects 0 or 1");
      scenario.suite.include_extended = flag == 1;
    } else if (directive == "ensemble") {
      read_size(scenario.predictor_ensemble, 1);
    } else if (directive == "max-epochs") {
      read_size(scenario.predictor_max_epochs, 1);
    } else if (directive == "slack") {
      RealtimeOptions rt = scenario.realtime.value_or(RealtimeOptions{});
      read_real(rt.slack_factor, 1e-6, 1e6);
      scenario.realtime = rt;
    } else if (directive == "priority-levels") {
      RealtimeOptions rt = scenario.realtime.value_or(RealtimeOptions{});
      std::uint64_t levels = 0;
      read_u64(levels, 1);
      rt.priority_levels = static_cast<int>(levels);
      scenario.realtime = rt;
    } else if (directive == "fault-rate") {
      double rate = 0.0;
      read_real(rate, 0.0, 1.0);
      scenario.faults.reconfig_failure_rate = rate;
      scenario.faults.stuck_job_rate = rate;
      scenario.faults.counter_corruption_rate = rate;
    } else if (directive == "fault-seed") {
      read_u64(scenario.faults.seed, 0);
    } else if (directive == "fail") {
      read_event(true);
    } else if (directive == "recover") {
      read_event(false);
    } else if (directive == "dep") {
      DagEdge edge;
      if (!(tokens >> edge.from >> edge.to)) {
        parse_fail(line_number,
                   "'dep' expects two job indices (predecessor successor)");
      }
      scenario.dag.edges.push_back(edge);
      dep_lines.push_back(line_number);
    } else {
      parse_fail(line_number, "unknown directive '" + directive + "'");
    }

    std::string trailing;
    if (tokens >> trailing && trailing[0] != '#') {
      parse_fail(line_number, "trailing garbage '" + trailing + "'");
    }
  }
  // DAG structural errors first, attributed to the offending dep line;
  // validate() would catch them too, but without line numbers.
  if (const auto issue = scenario.dag.validate(scenario.arrivals.count)) {
    parse_fail(dep_lines[issue->edge_index], issue->what);
  }
  try {
    scenario.validate();
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("scenario: ") + e.what());
  }
  return scenario;
}

void Scenario::save(std::ostream& out) const {
  out.precision(17);  // doubles must survive a parse() round trip
  out << "name " << name << "\n";
  out << "system " << to_string(system) << "\n";
  out << "cores " << cores << "\n";
  out << "policy " << policy << "\n";
  out << "discipline " << to_string(discipline) << "\n";
  out << "seed " << seed << "\n";
  out << "jobs " << arrivals.count << "\n";
  out << "mean-gap " << arrivals.mean_interarrival_cycles << "\n";
  switch (arrivals.distribution) {
    case InterarrivalDistribution::kUniform:
      out << "distribution uniform\n";
      break;
    case InterarrivalDistribution::kExponential:
      out << "distribution exponential\n";
      break;
    case InterarrivalDistribution::kFixed:
      out << "distribution fixed\n";
      break;
  }
  out << "burstiness " << arrivals.burstiness << "\n";
  out << "phase-switch " << arrivals.phase_switch << "\n";
  out << "kernel-scale " << suite.kernel_scale << "\n";
  out << "variants-per-kernel " << suite.variants_per_kernel << "\n";
  out << "extended-suite " << (suite.include_extended ? 1 : 0) << "\n";
  out << "ensemble " << predictor_ensemble << "\n";
  if (predictor_max_epochs > 0) {
    out << "max-epochs " << predictor_max_epochs << "\n";
  }
  if (realtime.has_value()) {
    out << "slack " << realtime->slack_factor << "\n";
    out << "priority-levels " << realtime->priority_levels << "\n";
  }
  if (faults.reconfig_failure_rate > 0.0) {
    out << "fault-rate " << faults.reconfig_failure_rate << "\n";
  }
  if (faults.seed != 1) out << "fault-seed " << faults.seed << "\n";
  for (const CoreFaultEvent& ev : faults.core_events) {
    out << (ev.fail ? "fail " : "recover ") << ev.core << ' ' << ev.at
        << "\n";
  }
  for (const DagEdge& edge : dag.edges) {
    out << "dep " << edge.from << ' ' << edge.to << "\n";
  }
}

}  // namespace hetsched
