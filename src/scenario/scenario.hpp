// Scenario description: one self-contained, deterministic definition of
// a simulation run — system shape, scheduler, workload/arrival process,
// optional real-time attributes and fault plan — parseable from a small
// line-directive text format (the FaultPlan format family) so whole
// experiment setups can be checked in, diffed and replayed exactly.
//
// A scenario is a value: running the same scenario twice, at any thread
// count, produces bit-identical results (everything stochastic derives
// from the scenario seed).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "core/scheduler.hpp"
#include "core/system_config.hpp"
#include "fault/fault_plan.hpp"
#include "scenario/dag_arrivals.hpp"
#include "workload/arrivals.hpp"
#include "workload/characterization.hpp"

namespace hetsched {

struct Scenario {
  // How the machine is built from `cores`.
  enum class SystemKind {
    kPaperQuad,            // the paper's fixed 2/4/8/8 KB quad-core
    kFixedBase,            // `cores` homogeneous base-config cores
    kScaledHeterogeneous,  // `cores` cores repeating the 2/4/8/8 mix
  };

  std::string name = "scenario";
  SystemKind system = SystemKind::kScaledHeterogeneous;
  std::size_t cores = 4;
  // Any PolicyRegistry name (base | optimal | energy-centric | proposed |
  // realtime | sjf | energy-greedy | random | oracle | cp-aware) or a
  // portfolio spec "portfolio:<a>+<b>[@window-cycles]".
  std::string policy = "proposed";
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  std::uint64_t seed = 42;

  // Arrival process; arrivals.count is the stream length (jobs).
  ArrivalOptions arrivals{};
  // Characterised-suite shape (kernel scale, variants, extended pack).
  SuiteOptions suite{};
  // Predictor training budget for the ANN-backed policies.
  std::size_t predictor_ensemble = 30;
  std::size_t predictor_max_epochs = 0;  // 0 = trainer default

  // Real-time attributes: engaged when a `slack` directive is present.
  std::optional<RealtimeOptions> realtime;

  // Job precedence graph over arrival indices 0..jobs-1 (`dep` lines);
  // empty = independent jobs, bit-identical to the plain stream. When
  // non-empty, arrivals become release-on-completion: roots keep their
  // generated arrival time, successors release when their last
  // predecessor retires.
  DagSpec dag{};

  // Fault plan (empty = fault-free, bit-identical to no injector).
  FaultPlan faults{};

  // The machine this scenario runs on.
  SystemConfig make_system() const;

  // True when the policy (or any portfolio contender) is ANN-backed and
  // needs a trained predictor.
  bool needs_predictor() const;

  // Structural checks (known policy/system, core count bounds, arrival
  // parameters, fault plan); throws std::invalid_argument on violation.
  void validate() const;

  // Text format, one directive per line ('#' comments allowed):
  //   name STRING
  //   system paper|base|scaled
  //   cores N
  //   policy NAME (any registry name or portfolio:<a>+<b>[@cycles])
  //   discipline fifo|edf|priority
  //   seed N
  //   jobs N
  //   mean-gap CYCLES
  //   distribution uniform|exponential|fixed
  //   burstiness X
  //   phase-switch P
  //   kernel-scale X
  //   variants-per-kernel N
  //   extended-suite 0|1
  //   ensemble N
  //   max-epochs N
  //   slack X
  //   priority-levels N
  //   fault-rate P
  //   fault-seed N
  //   fail CORE CYCLE
  //   recover CORE CYCLE
  //   dep JOB JOB (predecessor then successor, indices into 0..jobs-1)
  // parse() throws std::runtime_error with the offending line number and
  // validates the result; malformed dep edges (out-of-range or repeated
  // job ids, duplicate edges, cycles) are reported with the line of the
  // offending dep directive.
  static Scenario parse(std::istream& in);
  // Round-trips through parse(): save() then parse() reproduces the
  // scenario exactly.
  void save(std::ostream& out) const;
};

std::string_view to_string(Scenario::SystemKind kind);
std::string_view to_string(QueueDiscipline discipline);

}  // namespace hetsched
