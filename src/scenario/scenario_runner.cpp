#include "scenario/scenario_runner.hpp"

#include <limits>
#include <optional>

#include "cache/cache_config.hpp"
#include "core/policy_registry.hpp"
#include "fault/fault_injector.hpp"
#include "obs/observability.hpp"
#include "util/contracts.hpp"
#include "workload/dataset_builder.hpp"
#include "workload/profile_cache.hpp"

namespace hetsched {
namespace {

CharacterizedSuite build_suite(const EnergyModel& energy,
                               const Scenario& scenario,
                               const std::string& profile_cache_path) {
  if (!profile_cache_path.empty()) {
    return load_or_build_suite(profile_cache_path, energy, scenario.suite);
  }
  return CharacterizedSuite::build(energy, scenario.suite);
}

}  // namespace

std::unique_ptr<SchedulerPolicy> make_scenario_policy(
    const Scenario& scenario, const ScenarioContext& context) {
  PolicyContext ctx;
  ctx.predictor = context.predictor();
  ctx.suite = &context.suite();
  ctx.seed = scenario.seed;
  return PolicyRegistry::instance().make(scenario.policy, ctx);
}

ScenarioContext::ScenarioContext(const Scenario& scenario,
                                 const std::string& profile_cache_path)
    : energy_(CactiModel{}, EnergyModelParams{}),
      suite_(build_suite(energy_, scenario, profile_cache_path)) {
  scenario.validate();
  scheduling_ids_ = suite_.scheduling_ids();
  HETSCHED_ASSERT(!scheduling_ids_.empty());

  base_reference_cycles_.resize(suite_.size(), 0);
  for (std::size_t id = 0; id < suite_.size(); ++id) {
    base_reference_cycles_[id] = suite_.benchmark(id)
                                     .profile_for(DesignSpace::base_config())
                                     .energy.total_cycles;
  }

  if (scenario.needs_predictor()) {
    // Train on the variant>0 instances, schedule the variant-0 instances
    // (the Experiment split); with one variant per kernel, train on
    // everything.
    std::vector<std::size_t> train_ids = suite_.training_ids();
    if (train_ids.empty()) {
      train_ids.resize(suite_.size());
      for (std::size_t i = 0; i < train_ids.size(); ++i) train_ids[i] = i;
    }
    const Dataset dataset = build_ann_dataset(suite_, train_ids);
    PredictorConfig config;
    config.ensemble_size = scenario.predictor_ensemble;
    if (scenario.predictor_max_epochs > 0) {
      config.trainer.max_epochs = scenario.predictor_max_epochs;
    }
    Rng train_rng(scenario.seed);
    predictor_ =
        std::make_unique<BestSizePredictor>(dataset, config, train_rng);
  }
}

ScenarioRun::ScenarioRun(const Scenario& scenario,
                         const ScenarioContext& context,
                         ScheduleObserver* extra, ObserverMode mode)
    : system_((scenario.validate(), scenario.make_system())),
      policy_(make_scenario_policy(scenario, context)),
      simulator_(system_, context.suite(), context.energy(), *policy_,
                 scenario.discipline),
      stats_(system_.core_count()),
      fanout_({&stats_, extra}),
      // Seed derivations match Experiment (arrivals) and the CLI
      // (real-time attributes), so a scenario reproduces those streams
      // exactly.
      stream_(context.scheduling_ids(), scenario.arrivals,
              scenario.seed ^ 0xa5a5a5a5ULL) {
  std::optional<DagArrivalSource::RealtimeSetup> dag_realtime;
  if (scenario.realtime.has_value()) {
    stream_.set_realtime(context.base_reference_cycles(), *scenario.realtime,
                         scenario.seed ^ 0x5151ULL);
    dag_realtime.emplace(DagArrivalSource::RealtimeSetup{
        context.base_reference_cycles(), *scenario.realtime,
        scenario.seed ^ 0x5151ULL});
  }
  if (!scenario.dag.empty()) {
    // Same ids/options/seeds as stream_, so the nominal arrival draws are
    // bit-identical to the independent-job run of this scenario.
    dag_.emplace(scenario.dag, context.scheduling_ids(), scenario.arrivals,
                 scenario.seed ^ 0xa5a5a5a5ULL, dag_realtime);
    // The DAG source must observe every completion in every mode —
    // releases are simulation state, not telemetry — so it heads the
    // fanout chain; release events go back through the chain only when
    // the run is observed.
    const bool observed = mode == ObserverMode::kObserved;
    fanout_ = FanoutObserver({&*dag_, observed ? &stats_ : nullptr,
                              observed ? extra : nullptr});
    simulator_.set_observer(&fanout_);
    if (observed) dag_->set_release_observer(&fanout_);
  } else if (mode == ObserverMode::kObserved) {
    // Without an extra observer, attach the stats sink directly: the
    // fanout hop costs an indirect call per event on the hot path.
    simulator_.set_observer(
        extra == nullptr ? static_cast<ScheduleObserver*>(&stats_)
                         : &fanout_);
  }
  if (!scenario.faults.empty()) {
    injector_.emplace(scenario.faults);
    simulator_.set_fault_injector(&*injector_);
  }
}

ScenarioOutcome run_scenario(const Scenario& scenario,
                             const ScenarioContext& context,
                             ScheduleObserver* extra) {
  ScenarioRun run(scenario, context, extra);
  run.start();
  run.advance_until(std::numeric_limits<SimTime>::max());
  SimulationResult result = run.finish();
  ScenarioOutcome outcome{std::move(result), std::move(run.stats()),
                          run.simulator().dispatch_telemetry(), std::nullopt,
                          std::nullopt};
  if (const auto* portfolio =
          dynamic_cast<const PortfolioPolicy*>(&run.policy())) {
    outcome.portfolio = portfolio->stats();
  }
  if (const DagArrivalSource* dag = run.dag()) {
    outcome.dag = dag->stats();
  }
  return outcome;
}

void record_scenario_metrics(MetricsRegistry& metrics,
                             const std::string& prefix,
                             const ScenarioOutcome& outcome) {
  record_result_metrics(metrics, prefix, outcome.result);
  const StreamStats& s = outcome.stream;
  metrics.counter(prefix + "stream.slices").add(s.slices());
  metrics.counter(prefix + "stream.completed_slices")
      .add(s.completed_slices());
  metrics.counter(prefix + "stream.busy_cycles").add(s.busy_cycles());
  metrics.counter(prefix + "stream.idle_cycles").add(s.idle_cycles());
  metrics.counter(prefix + "stream.longest_slice_cycles")
      .add(s.longest_slice());
  metrics.counter(prefix + "stream.dispatches").add(s.dispatches());
  metrics.counter(prefix + "stream.idle_intervals").add(s.idle_intervals());
  metrics.counter(prefix + "stream.reconfig_attempts")
      .add(s.reconfig_attempts());
  metrics.counter(prefix + "stream.reconfig_failures")
      .add(s.reconfig_failures());
  metrics.counter(prefix + "stream.invariant_violations")
      .add(s.invariant_violations());
  metrics.counter(prefix + "stream.digest").add(s.digest());
}

void attach_portfolio_summary(RunReport& report,
                              const PortfolioStats& stats) {
  report.policy_win_rates.clear();
  report.policy_switches.clear();
  for (std::size_t i = 0; i < stats.contenders.size(); ++i) {
    RunReport::PolicyWinRate row;
    row.name = stats.contenders[i];
    row.windows_won = stats.windows_active[i];
    row.win_rate =
        stats.windows_closed == 0
            ? 0.0
            : static_cast<double>(stats.windows_active[i]) /
                  static_cast<double>(stats.windows_closed);
    report.policy_win_rates.push_back(std::move(row));
  }
  for (const PortfolioStats::Switch& s : stats.switches) {
    report.policy_switches.push_back({s.window, s.time, s.from, s.to});
  }
}

void attach_dag_summary(RunReport& report, const DagStats& stats) {
  RunReport::DagSummary summary;
  summary.nodes = stats.nodes;
  summary.edges = stats.edges;
  summary.releases = stats.releases;
  summary.ready_peak = stats.ready_peak;
  summary.max_rank = stats.max_rank;
  summary.release_latency_cycles = stats.release_latency_total;
  summary.cp_slack_total = stats.cp_slack_total;
  report.dag = summary;
}

void record_dispatch_metrics(MetricsRegistry& metrics,
                             const std::string& prefix,
                             const DispatchTelemetry& dispatch) {
  metrics.counter(prefix + "decisions").add(dispatch.decisions);
  metrics.counter(prefix + "idle_queries").add(dispatch.idle_queries);
  metrics.counter(prefix + "words_scanned").add(dispatch.words_scanned);
  metrics.counter(prefix + "clamp_lookups").add(dispatch.clamp_lookups);
  metrics.counter(prefix + "clamp_hits").add(dispatch.clamp_hits);
  metrics.counter(prefix + "rebuilds").add(dispatch.rebuilds);
}

}  // namespace hetsched
