// Scenario execution: shared heavyweight state (characterised suite,
// energy model, trained predictor) built once per scenario family, and a
// streaming driver that runs one scenario end-to-end in memory bounded
// by the machine size — the arrival stream is generated on demand and
// the schedule is compacted into StreamStats as it happens, so a
// million-job scenario costs no more RAM than a thousand-job one.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/portfolio_policy.hpp"
#include "core/predictor.hpp"
#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "scenario/dag_arrivals.hpp"
#include "scenario/scenario.hpp"
#include "scenario/stream_stats.hpp"

namespace hetsched {

// Everything expensive a scenario needs, reusable across runs whose
// suite/predictor parameters agree (a sweep varies cores/arrivals/policy
// but shares one context). Read-only after construction, so concurrent
// run_scenario calls may share it.
class ScenarioContext {
 public:
  // Builds the characterised suite (served from `profile_cache_path`
  // when non-empty) and, when the scenario's policy needs one, trains
  // the ANN predictor.
  explicit ScenarioContext(const Scenario& scenario,
                           const std::string& profile_cache_path = "");

  const EnergyModel& energy() const { return energy_; }
  const CharacterizedSuite& suite() const { return suite_; }
  const std::vector<std::size_t>& scheduling_ids() const {
    return scheduling_ids_;
  }
  // Base-configuration execution cycles per benchmark id (deadline
  // references).
  const std::vector<Cycles>& base_reference_cycles() const {
    return base_reference_cycles_;
  }
  // Null when the scenario's policy does not consult a predictor.
  const SizePredictor* predictor() const { return predictor_.get(); }

 private:
  EnergyModel energy_;
  CharacterizedSuite suite_;
  std::vector<std::size_t> scheduling_ids_;
  std::vector<Cycles> base_reference_cycles_;
  std::unique_ptr<BestSizePredictor> predictor_;
};

struct ScenarioOutcome {
  SimulationResult result;
  StreamStats stream;  // compacted schedule + event-stream digest
  // Dispatch-path scan counters (decisions, bitmap words scanned, clamp
  // cache hits); purely observational, never part of the result digest.
  DispatchTelemetry dispatch;
  // Selector outcome when the scenario ran a portfolio policy (win
  // counts, switch events); nullopt otherwise.
  std::optional<PortfolioStats> portfolio;
  // Release accounting when the scenario declared a job DAG (node/edge
  // counts, dependent releases, ready-set peak, critical-path numbers);
  // nullopt for independent-job scenarios.
  std::optional<DagStats> dag;
};

// Instantiates the scheduler policy a scenario names, wired to the
// context's predictor when the policy consults one.
std::unique_ptr<SchedulerPolicy> make_scenario_policy(
    const Scenario& scenario, const ScenarioContext& context);

// One scenario execution held open so it can be driven in slices —
// the substrate for checkpointed runs and supervised (timeout-guarded)
// sweep cells. Owns the policy, simulator, arrival stream, StreamStats
// and optional fault injector that run_scenario would wire up
// internally; running start() / advance_until(max) / finish() is
// bit-identical to run_scenario. The scenario and context must outlive
// the run.
class ScenarioRun {
 public:
  // kObserved folds every event into the internal StreamStats (the
  // digest-bearing default); kRaw attaches no observer at all, which is
  // the simulator's pure dispatch throughput — observers never feed back
  // into simulation state, so the SimulationResult is identical either
  // way (stats() is simply empty).
  enum class ObserverMode { kObserved, kRaw };

  // `extra` (optional) receives every observer callback alongside the
  // internal StreamStats and must outlive the run.
  ScenarioRun(const Scenario& scenario, const ScenarioContext& context,
              ScheduleObserver* extra = nullptr,
              ObserverMode mode = ObserverMode::kObserved);

  // Stepping interface; see MulticoreSimulator's equivalents. A DAG
  // scenario is driven from its release-on-completion source; otherwise
  // the plain generated stream feeds the simulator directly.
  void start() { simulator_.start_stream(source()); }
  bool advance_until(SimTime limit) {
    return simulator_.advance_stream_until(source(), limit);
  }
  SimulationResult finish() { return simulator_.finish_stream(); }

  MulticoreSimulator& simulator() { return simulator_; }
  StreamStats& stats() { return stats_; }
  GeneratedArrivalStream& arrivals() { return stream_; }
  // The scenario's scheduler (checkpointing serialises its state; the
  // CLI extracts portfolio selector stats through it).
  SchedulerPolicy& policy() { return *policy_; }
  const SchedulerPolicy& policy() const { return *policy_; }
  // Null when the scenario has no fault plan.
  FaultInjector* injector() {
    return injector_.has_value() ? &*injector_ : nullptr;
  }
  // Null when the scenario declared no job DAG (checkpointing serialises
  // its frontier; tests replay its realized arrival order).
  DagArrivalSource* dag() { return dag_.has_value() ? &*dag_ : nullptr; }
  const DagArrivalSource* dag() const {
    return dag_.has_value() ? &*dag_ : nullptr;
  }

 private:
  ArrivalSource& source() {
    return dag_.has_value() ? static_cast<ArrivalSource&>(*dag_) : stream_;
  }

  SystemConfig system_;
  std::unique_ptr<SchedulerPolicy> policy_;
  MulticoreSimulator simulator_;
  StreamStats stats_;
  FanoutObserver fanout_;
  std::optional<FaultInjector> injector_;
  GeneratedArrivalStream stream_;
  std::optional<DagArrivalSource> dag_;
};

// Runs `scenario` under the streaming driver. Deterministic: the same
// scenario and context produce bit-identical outcomes at every thread
// count. The context must have been built for a scenario with the same
// suite/predictor parameters. `extra` (optional) receives every
// observer callback alongside the internal StreamStats — e.g. an
// EventTracer or WindowedCollector — without perturbing the run.
ScenarioOutcome run_scenario(const Scenario& scenario,
                             const ScenarioContext& context,
                             ScheduleObserver* extra = nullptr);

// Deposits an outcome into the registry under `prefix` (result buckets
// via record_result_metrics plus the stream aggregates and digest).
void record_scenario_metrics(MetricsRegistry& metrics,
                             const std::string& prefix,
                             const ScenarioOutcome& outcome);

// Copies a portfolio selector's outcome into the report: one win-rate
// row per contender (windows it was the active policy, over all closed
// selector windows) plus the switch-event list. The obs layer holds only
// plain data, so the conversion from core PortfolioStats lives here.
void attach_portfolio_summary(RunReport& report,
                              const PortfolioStats& stats);

// Copies a DAG run's release accounting into the report's "dag" section
// (same obs-layer-stays-plain-data split as attach_portfolio_summary).
void attach_dag_summary(RunReport& report, const DagStats& stats);

// Deposits the dispatch-index telemetry under `prefix` (e.g.
// "scale64.dispatch."). Deliberately separate from
// record_scenario_metrics, whose output is golden-pinned byte-for-byte.
void record_dispatch_metrics(MetricsRegistry& metrics,
                             const std::string& prefix,
                             const DispatchTelemetry& dispatch);

}  // namespace hetsched
