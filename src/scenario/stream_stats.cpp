#include "scenario/stream_stats.hpp"

#include <istream>
#include <ostream>

#include "util/snapshot_text.hpp"

namespace hetsched {
namespace {

// Event-type tags mixed into the digest so identical field values under
// different event kinds cannot alias.
enum : unsigned char {
  kTagSlice = 1,
  kTagFault,
  kTagDispatch,
  kTagReconfig,
  kTagIdle,
  kTagPreempt,
};

}  // namespace

void StreamStats::on_slice(const ScheduledSlice& slice) {
  digest_.update_value(static_cast<unsigned char>(kTagSlice))
      .update_value(slice.job_id)
      .update_value(slice.benchmark_id)
      .update_value(slice.core)
      .update_value(slice.start)
      .update_value(slice.end)
      .update_value(slice.config.size_bytes)
      .update_value(slice.config.associativity)
      .update_value(slice.config.line_bytes)
      .update_value(static_cast<int>(slice.kind))
      .update_value(slice.completed);

  ++slices_;
  if (slice.core >= per_core_.size() || slice.end <= slice.start) {
    ++invariant_violations_;
    return;
  }
  CoreAggregate& core = per_core_[slice.core];
  // Slices arrive in completion order, which on one core is also start
  // order; an overlap with the previous slice on the same core means two
  // jobs shared the core.
  if (core.slices > 0 && slice.start < core.last_slice_end) {
    ++invariant_violations_;
  }
  core.last_slice_end = slice.end;
  ++core.slices;
  core.busy_cycles += slice.end - slice.start;
  busy_cycles_ += slice.end - slice.start;
  longest_slice_ = std::max<Cycles>(longest_slice_, slice.end - slice.start);
  if (slice.completed) {
    ++completed_slices_;
    ++core.completed_slices;
  }
}

void StreamStats::on_fault(const FaultRecord& record) {
  digest_.update_value(static_cast<unsigned char>(kTagFault))
      .update_value(record.time)
      .update_value(record.core)
      .update_value(record.job_id)
      .update_value(static_cast<int>(record.kind));
  ++faults_;
}

void StreamStats::on_dispatch(const DispatchEvent& event) {
  digest_.update_value(static_cast<unsigned char>(kTagDispatch))
      .update_value(event.time)
      .update_value(event.core)
      .update_value(event.job_id)
      .update_value(event.benchmark_id)
      .update_value(static_cast<int>(event.kind))
      .update_value(event.backoff)
      .update_value(event.duration)
      .update_value(event.hung);
  ++dispatches_;
}

void StreamStats::on_reconfig(const ReconfigEvent& event) {
  digest_.update_value(static_cast<unsigned char>(kTagReconfig))
      .update_value(event.time)
      .update_value(event.core)
      .update_value(event.job_id)
      .update_value(event.attempt)
      .update_value(event.success)
      .update_value(event.backoff_wait);
  ++reconfig_attempts_;
  if (!event.success) ++reconfig_failures_;
}

void StreamStats::on_idle(const IdleEvent& event) {
  digest_.update_value(static_cast<unsigned char>(kTagIdle))
      .update_value(event.core)
      .update_value(event.from)
      .update_value(event.to);
  ++idle_intervals_;
  if (event.core < per_core_.size() && event.to > event.from) {
    per_core_[event.core].idle_cycles += event.to - event.from;
    idle_cycles_ += event.to - event.from;
  }
}

void StreamStats::on_dag_release(const DagReleaseEvent& event) {
  // No digest fold — see the header: keeps DAG streaming digests
  // comparable to batch replays, which observe no release events.
  (void)event;
  ++dag_releases_;
}

void StreamStats::on_preempt(const PreemptEvent& event) {
  digest_.update_value(static_cast<unsigned char>(kTagPreempt))
      .update_value(event.time)
      .update_value(event.core)
      .update_value(event.job_id)
      .update_value(event.was_hung);
  ++preemptions_;
}

void StreamStats::save_state(std::ostream& out) const {
  out << "stream-stats " << per_core_.size() << "\n"
      << "totals " << slices_ << ' ' << completed_slices_ << ' '
      << busy_cycles_ << ' ' << idle_cycles_ << ' ' << longest_slice_ << ' '
      << dispatches_ << ' ' << preemptions_ << ' ' << idle_intervals_ << ' '
      << reconfig_attempts_ << ' ' << reconfig_failures_ << ' ' << faults_
      << ' ' << invariant_violations_ << ' ' << dag_releases_ << "\n";
  for (const CoreAggregate& core : per_core_) {
    out << core.slices << ' ' << core.completed_slices << ' '
        << core.busy_cycles << ' ' << core.idle_cycles << ' '
        << core.last_slice_end << "\n";
  }
  out << "digest " << digest_.digest() << "\n";
}

void StreamStats::restore_state(std::istream& in,
                                const std::string& context) {
  namespace st = snapshot_text;
  std::string token;
  if (!(in >> token) || token != "stream-stats") {
    st::fail(context, "expected 'stream-stats'");
  }
  if (st::read_value<std::size_t>(in, "core count", context) !=
      per_core_.size()) {
    st::fail(context, "stream-stats core count does not match");
  }
  if (!(in >> token) || token != "totals") {
    st::fail(context, "expected 'totals'");
  }
  for (std::uint64_t* field :
       {&slices_, &completed_slices_, &busy_cycles_, &idle_cycles_,
        &longest_slice_, &dispatches_, &preemptions_, &idle_intervals_,
        &reconfig_attempts_, &reconfig_failures_, &faults_,
        &invariant_violations_, &dag_releases_}) {
    *field = st::read_value<std::uint64_t>(in, "stream total", context);
  }
  for (CoreAggregate& core : per_core_) {
    core.slices = st::read_value<std::uint64_t>(in, "core slices", context);
    core.completed_slices =
        st::read_value<std::uint64_t>(in, "core completed", context);
    core.busy_cycles = st::read_value<Cycles>(in, "core busy", context);
    core.idle_cycles = st::read_value<Cycles>(in, "core idle", context);
    core.last_slice_end =
        st::read_value<SimTime>(in, "core last slice end", context);
  }
  if (!(in >> token) || token != "digest") {
    st::fail(context, "expected 'digest'");
  }
  digest_ =
      Fnv1a(st::read_value<std::uint64_t>(in, "stream digest", context));
}

}  // namespace hetsched
