// Bounded-memory schedule accounting for streaming runs.
//
// A ScheduleLog retains every slice, so a million-job stream would hold
// millions of records. StreamStats is the compacting alternative: every
// observer callback is folded immediately into O(cores) running
// aggregates plus an order-sensitive FNV-1a digest of the full event
// stream. The digest makes two runs comparable byte-for-byte (equal
// digests ⇔ identical event streams, up to hash collision) without
// retaining either stream, which is how sweep shards and thread-count
// invariance are checked at scale.
//
// Invariants are checked incrementally with the same O(cores) state:
// slices on one core must not overlap and must be well-formed; a
// violation increments a counter instead of storing the offender, so
// the check itself stays bounded.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/schedule_log.hpp"
#include "util/hash.hpp"

namespace hetsched {

class StreamStats final : public ScheduleObserver {
 public:
  struct CoreAggregate {
    std::uint64_t slices = 0;
    std::uint64_t completed_slices = 0;
    Cycles busy_cycles = 0;
    Cycles idle_cycles = 0;
    SimTime last_slice_end = 0;
  };

  explicit StreamStats(std::size_t core_count)
      : per_core_(core_count) {}

  void on_slice(const ScheduledSlice& slice) override;
  void on_fault(const FaultRecord& record) override;
  void on_dispatch(const DispatchEvent& event) override;
  void on_reconfig(const ReconfigEvent& event) override;
  void on_idle(const IdleEvent& event) override;
  void on_preempt(const PreemptEvent& event) override;
  // Counted but deliberately NOT folded into the digest: a DAG run's
  // digest must stay comparable with a batch replay of its realized
  // arrivals, and the replay has no DAG source to emit release events.
  // The underlying slices/dispatches those releases derive from are all
  // digested, so the fingerprint loses nothing.
  void on_dag_release(const DagReleaseEvent& event) override;

  const std::vector<CoreAggregate>& per_core() const { return per_core_; }

  std::uint64_t slices() const { return slices_; }
  std::uint64_t completed_slices() const { return completed_slices_; }
  Cycles busy_cycles() const { return busy_cycles_; }
  Cycles idle_cycles() const { return idle_cycles_; }
  Cycles longest_slice() const { return longest_slice_; }
  std::uint64_t dispatches() const { return dispatches_; }
  std::uint64_t preemptions() const { return preemptions_; }
  std::uint64_t idle_intervals() const { return idle_intervals_; }
  std::uint64_t reconfig_attempts() const { return reconfig_attempts_; }
  std::uint64_t reconfig_failures() const { return reconfig_failures_; }
  std::uint64_t faults() const { return faults_; }
  std::uint64_t dag_releases() const { return dag_releases_; }

  // Slices that were malformed (end <= start, bad core index) or
  // overlapped a previous slice on their core. Zero on any correct run.
  std::uint64_t invariant_violations() const {
    return invariant_violations_;
  }

  // Order-sensitive fingerprint of every event observed so far.
  std::uint64_t digest() const { return digest_.digest(); }

  // Checkpoint support: serializes every aggregate plus the running
  // digest state, so a restored collector continues folding events into
  // the same fingerprint the uninterrupted run would produce.
  // restore_state requires a collector constructed with the same core
  // count and throws std::runtime_error (tagged with `context`) on
  // malformed or mismatched input.
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in, const std::string& context);

 private:
  std::vector<CoreAggregate> per_core_;
  std::uint64_t slices_ = 0;
  std::uint64_t completed_slices_ = 0;
  Cycles busy_cycles_ = 0;
  Cycles idle_cycles_ = 0;
  Cycles longest_slice_ = 0;
  std::uint64_t dispatches_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t idle_intervals_ = 0;
  std::uint64_t reconfig_attempts_ = 0;
  std::uint64_t reconfig_failures_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t invariant_violations_ = 0;
  std::uint64_t dag_releases_ = 0;
  Fnv1a digest_;
};

}  // namespace hetsched
