#include "trace/counters.hpp"

#include "util/contracts.hpp"

namespace hetsched {

std::array<double, kNumExecutionStatistics> ExecutionStatistics::to_vector()
    const {
  return {total_instructions,
          cycles,
          loads,
          stores,
          branches,
          taken_branches,
          int_ops,
          fp_ops,
          l1_accesses,
          l1_misses,
          l1_miss_rate,
          compulsory_misses,
          writebacks,
          working_set_bytes,
          load_fraction,
          mem_intensity,
          compute_intensity,
          branch_fraction};
}

std::string_view ExecutionStatistics::name(std::size_t i) {
  static constexpr std::string_view kNames[kNumExecutionStatistics] = {
      "total_instructions", "cycles",          "loads",
      "stores",             "branches",        "taken_branches",
      "int_ops",            "fp_ops",          "l1_accesses",
      "l1_misses",          "l1_miss_rate",    "compulsory_misses",
      "writebacks",         "working_set_bytes", "load_fraction",
      "mem_intensity",      "compute_intensity", "branch_fraction"};
  HETSCHED_REQUIRE(i < kNumExecutionStatistics);
  return kNames[i];
}

}  // namespace hetsched
