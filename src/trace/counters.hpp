// Hardware-counter model.
//
// The paper's ANN consumes "18 different cache-relevant execution
// statistics" recorded by built-in hardware counters while the application
// executes in the base configuration (Section IV.B/IV.D). RawCounters are
// the architecture-independent counts a kernel execution produces;
// ExecutionStatistics adds the base-configuration cache behaviour and the
// derived ratios, yielding exactly 18 named statistics.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace hetsched {

// Counts accumulated by the instrumented execution context while a kernel
// runs. These do not depend on any cache configuration.
struct RawCounters {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t int_ops = 0;
  std::uint64_t fp_ops = 0;

  std::uint64_t total_instructions() const {
    return loads + stores + branches + int_ops + fp_ops;
  }
  std::uint64_t memory_refs() const { return loads + stores; }
};

// The 18 statistics stored in the profiling table for each application,
// in a fixed order so they can be used directly as an ANN input vector.
inline constexpr std::size_t kNumExecutionStatistics = 18;

struct ExecutionStatistics {
  // Instruction mix (from RawCounters).
  double total_instructions = 0;   // [0]
  double cycles = 0;               // [1] one complete execution, base config
  double loads = 0;                // [2]
  double stores = 0;               // [3]
  double branches = 0;             // [4]
  double taken_branches = 0;       // [5]
  double int_ops = 0;              // [6]
  double fp_ops = 0;               // [7]
  // Memory behaviour in the base configuration.
  double l1_accesses = 0;          // [8]
  double l1_misses = 0;            // [9]
  double l1_miss_rate = 0;         // [10]
  double compulsory_misses = 0;    // [11] unique lines touched (base line sz)
  double writebacks = 0;           // [12]
  double working_set_bytes = 0;    // [13] unique bytes touched
  // Derived ratios.
  double load_fraction = 0;        // [14] loads / memory refs
  double mem_intensity = 0;        // [15] memory refs / instructions
  double compute_intensity = 0;    // [16] (int+fp) / instructions
  double branch_fraction = 0;      // [17] branches / instructions

  // Flattens to the canonical 18-element vector (index order above).
  std::array<double, kNumExecutionStatistics> to_vector() const;

  // Name of statistic i, for reports and feature-selection output.
  static std::string_view name(std::size_t i);
};

}  // namespace hetsched
