// Instrumented execution context.
//
// Kernels run against this context instead of raw host memory: every array
// element access is recorded as a MemRef in the benchmark's virtual address
// space and tallied in the RawCounters, and arithmetic/branch operations
// are tallied explicitly. The result is the same (trace, counters) pair
// SimpleScalar would produce for an instrumented binary, without needing an
// ISA-level simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/counters.hpp"
#include "trace/memref.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace hetsched {

class ExecutionContext;

// A typed array living in the benchmark's simulated address space. Loads
// and stores go through the owning context so they are traced and counted.
// Element values are held in host memory so kernels compute real results
// (data-dependent control flow produces realistic traces).
template <typename T>
class TracedArray {
 public:
  TracedArray() = default;

  std::size_t size() const { return data_.size(); }
  std::uint32_t base_address() const { return base_; }

  T load(std::size_t i) const;
  void store(std::size_t i, T value);

  // Untraced host-side access, for initialisation and result checking only.
  T peek(std::size_t i) const {
    HETSCHED_REQUIRE(i < data_.size());
    return data_[i];
  }
  void poke(std::size_t i, T value) {
    HETSCHED_REQUIRE(i < data_.size());
    data_[i] = value;
  }

 private:
  friend class ExecutionContext;
  TracedArray(ExecutionContext* ctx, std::uint32_t base, std::size_t n)
      : ctx_(ctx), base_(base), data_(n, T{}) {}

  ExecutionContext* ctx_ = nullptr;
  std::uint32_t base_ = 0;
  std::vector<T> data_;
};

class ExecutionContext {
 public:
  // `data_seed` seeds the kernel-visible RNG used to generate input data;
  // the same seed always reproduces the same trace.
  explicit ExecutionContext(std::uint64_t data_seed)
      : rng_(data_seed) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  // Allocates n elements of T, 64-byte aligned, at the next free region of
  // the simulated address space.
  template <typename T>
  TracedArray<T> alloc(std::size_t n) {
    HETSCHED_REQUIRE(n > 0);
    next_free_ = align_up(next_free_, 64);
    const std::uint32_t base = next_free_;
    next_free_ += static_cast<std::uint32_t>(n * sizeof(T));
    return TracedArray<T>(this, base, n);
  }

  // --- operation counting (called by kernels and TracedArray) ---
  void int_op(std::uint64_t n = 1) { counters_.int_ops += n; }
  void fp_op(std::uint64_t n = 1) { counters_.fp_ops += n; }
  // Records a branch; returns `taken` so it can wrap conditions inline:
  //   if (ctx.branch(x < y)) { ... }
  bool branch(bool taken) {
    ++counters_.branches;
    if (taken) ++counters_.taken_branches;
    return taken;
  }

  void record_load(std::uint32_t address, std::uint8_t size) {
    ++counters_.loads;
    trace_.push_back(MemRef{address, size, false});
  }
  void record_store(std::uint32_t address, std::uint8_t size) {
    ++counters_.stores;
    trace_.push_back(MemRef{address, size, true});
  }

  Rng& rng() { return rng_; }

  const MemTrace& trace() const { return trace_; }
  MemTrace take_trace() { return std::move(trace_); }
  const RawCounters& counters() const { return counters_; }
  std::uint32_t footprint_bytes() const { return next_free_ - kBaseAddress; }

 private:
  static constexpr std::uint32_t kBaseAddress = 0x1000;

  static std::uint32_t align_up(std::uint32_t v, std::uint32_t a) {
    return (v + a - 1) / a * a;
  }

  std::uint32_t next_free_ = kBaseAddress;
  MemTrace trace_;
  RawCounters counters_;
  Rng rng_;
};

template <typename T>
T TracedArray<T>::load(std::size_t i) const {
  HETSCHED_REQUIRE(ctx_ != nullptr);
  HETSCHED_REQUIRE(i < data_.size());
  ctx_->record_load(base_ + static_cast<std::uint32_t>(i * sizeof(T)),
                    static_cast<std::uint8_t>(sizeof(T)));
  return data_[i];
}

template <typename T>
void TracedArray<T>::store(std::size_t i, T value) {
  HETSCHED_REQUIRE(ctx_ != nullptr);
  HETSCHED_REQUIRE(i < data_.size());
  data_[i] = value;
  ctx_->record_store(base_ + static_cast<std::uint32_t>(i * sizeof(T)),
                     static_cast<std::uint8_t>(sizeof(T)));
}

}  // namespace hetsched
