#include "trace/kernel.hpp"

#include "trace/kernels/kernel_base.hpp"

namespace hetsched {

std::string_view to_string(Domain d) {
  switch (d) {
    case Domain::kAutomotive: return "automotive";
    case Domain::kConsumer: return "consumer";
    case Domain::kNetworking: return "networking";
    case Domain::kOffice: return "office";
    case Domain::kTelecom: return "telecom";
  }
  return "unknown";
}

KernelExecution execute(const Kernel& kernel, std::uint64_t data_seed) {
  ExecutionContext ctx(data_seed);
  kernel.run(ctx);
  KernelExecution result;
  result.counters = ctx.counters();
  result.footprint_bytes = ctx.footprint_bytes();
  result.trace = ctx.take_trace();
  return result;
}

std::vector<std::unique_ptr<Kernel>> make_standard_kernels(double scale) {
  std::vector<std::unique_ptr<Kernel>> kernels;
  append_automotive_kernels(kernels, scale);
  append_consumer_kernels(kernels, scale);
  append_networking_kernels(kernels, scale);
  append_office_kernels(kernels, scale);
  append_telecom_kernels(kernels, scale);
  return kernels;
}

std::vector<std::unique_ptr<Kernel>> make_extended_kernels(double scale) {
  std::vector<std::unique_ptr<Kernel>> kernels;
  append_extended_kernels(kernels, scale);
  return kernels;
}

}  // namespace hetsched
