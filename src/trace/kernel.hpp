// Kernel interface for the synthetic EEMBC-like benchmark suite.
//
// A Kernel is a deterministic embedded-style computation (filter, codec
// stage, table lookup, graph relaxation, ...) parameterised by a working-set
// scale. Executing it against an ExecutionContext yields the memory trace
// and raw counters used for cache characterisation and ANN features.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/execution_context.hpp"

namespace hetsched {

// EEMBC organises its suites by application domain; we mirror that so the
// suite spans distinct access-pattern families.
enum class Domain {
  kAutomotive,
  kConsumer,
  kNetworking,
  kOffice,
  kTelecom,
};

std::string_view to_string(Domain d);

class Kernel {
 public:
  virtual ~Kernel() = default;

  virtual const std::string& name() const = 0;
  virtual Domain domain() const = 0;

  // Runs one complete benchmark execution against `ctx`. Implementations
  // must be deterministic given ctx.rng()'s seed.
  virtual void run(ExecutionContext& ctx) const = 0;
};

// Result of executing a kernel once.
struct KernelExecution {
  MemTrace trace;
  RawCounters counters;
  std::uint32_t footprint_bytes = 0;
};

// Convenience: run `kernel` with the given data seed.
KernelExecution execute(const Kernel& kernel, std::uint64_t data_seed);

// Factory for the full suite; defined across the kernels/ translation
// units. `scale` in (0, 4] multiplies every kernel's working-set knobs so
// tests can run a miniature suite quickly (scale < 1).
std::vector<std::unique_ptr<Kernel>> make_standard_kernels(double scale = 1.0);

// Eight additional kernels (CRC, AES-like, Huffman, string search, sparse
// matvec, Kalman, CAN decode, JPEG quantise) for larger-suite studies;
// not part of the calibrated standard suite.
std::vector<std::unique_ptr<Kernel>> make_extended_kernels(double scale = 1.0);

}  // namespace hetsched
