// Automotive/industrial-style kernels, modelled after the access patterns of
// EEMBC AutoBench: angle-to-time conversion, table lookup with interpolation,
// FIR filtering, fixed-point matrix arithmetic and pulse-width modulation.
#include <cstdint>

#include "trace/kernels/kernel_base.hpp"

namespace hetsched {
namespace {

// a2time: tooth-wheel angle-to-time conversion. Tight loop over a small
// lookup table with integer arithmetic — small working set, branch heavy.
class AngleToTime final : public KernelBase {
 public:
  explicit AngleToTime(double scale)
      : KernelBase("a2time", Domain::kAutomotive, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t teeth = scaled(64, 8);
    const std::size_t pulses = scaled(6000, 64);
    auto tooth_angle = ctx.alloc<std::uint32_t>(teeth);
    auto period = ctx.alloc<std::uint32_t>(teeth);
    auto out = ctx.alloc<std::uint32_t>(teeth);

    for (std::size_t i = 0; i < teeth; ++i) {
      tooth_angle.poke(i, static_cast<std::uint32_t>(i * 360u));
      period.poke(i, 1000u + static_cast<std::uint32_t>(ctx.rng().below(500)));
    }

    std::uint32_t crank = 0;
    for (std::size_t p = 0; p < pulses; ++p) {
      const std::size_t tooth = p % teeth;
      const std::uint32_t angle = tooth_angle.load(tooth);
      const std::uint32_t per = period.load(tooth);
      crank += per;
      ctx.int_op(3);  // accumulate, scale, wrap
      std::uint32_t t = angle * per / 360u;
      if (ctx.branch((crank & 0x3ffu) > 512u)) {
        t += per / 2u;
        ctx.int_op(1);
      }
      out.store(tooth, t);
    }
  }
};

// tblook: engine-map table lookup with bilinear interpolation over a
// moderately sized 2-D table — mixed sequential/strided reads.
class TableLookup final : public KernelBase {
 public:
  explicit TableLookup(double scale)
      : KernelBase("tblook", Domain::kAutomotive, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t dim = scaled(40, 8);          // dim*dim u32 table
    const std::size_t lookups = scaled(9000, 64);
    auto table = ctx.alloc<std::uint32_t>(dim * dim);
    auto results = ctx.alloc<std::uint32_t>(256);

    for (std::size_t i = 0; i < dim * dim; ++i) {
      table.poke(i, static_cast<std::uint32_t>(ctx.rng().below(4096)));
    }

    for (std::size_t q = 0; q < lookups; ++q) {
      const std::size_t x =
          static_cast<std::size_t>(ctx.rng().below(dim - 1));
      const std::size_t y =
          static_cast<std::size_t>(ctx.rng().below(dim - 1));
      const std::uint32_t v00 = table.load(y * dim + x);
      const std::uint32_t v01 = table.load(y * dim + x + 1);
      const std::uint32_t v10 = table.load((y + 1) * dim + x);
      const std::uint32_t v11 = table.load((y + 1) * dim + x + 1);
      ctx.int_op(7);  // bilinear blend in fixed point
      const std::uint32_t interp = (v00 + v01 + v10 + v11) / 4u;
      results.store(q % 256, interp);
    }
  }
};

// aifirf: finite impulse response filter over a sample stream — classic
// sliding-window reuse whose best cache tracks the tap count.
class FirFilter final : public KernelBase {
 public:
  explicit FirFilter(double scale)
      : KernelBase("aifirf", Domain::kAutomotive, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t taps = scaled(32, 8);
    const std::size_t samples = scaled(700, 64);
    auto coeff = ctx.alloc<float>(taps);
    auto input = ctx.alloc<float>(samples + taps);
    auto output = ctx.alloc<float>(samples);

    for (std::size_t i = 0; i < taps; ++i) {
      coeff.poke(i, static_cast<float>(ctx.rng().normal(0.0, 0.5)));
    }
    for (std::size_t i = 0; i < samples + taps; ++i) {
      input.poke(i, static_cast<float>(ctx.rng().normal(0.0, 1.0)));
    }

    for (std::size_t n = 0; n < samples; ++n) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < taps; ++k) {
        acc += coeff.load(k) * input.load(n + k);
        ctx.fp_op(2);
        ctx.int_op(1);  // index update
      }
      ctx.branch(n + 1 < samples);
      output.store(n, acc);
    }
  }
};

// matrix01: fixed-size dense matrix multiply — the large-working-set,
// reuse-rich member of the automotive set.
class MatrixArith final : public KernelBase {
 public:
  explicit MatrixArith(double scale)
      : KernelBase("matrix01", Domain::kAutomotive, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t n = scaled(26, 8);  // 3 matrices of n*n floats
    auto a = ctx.alloc<float>(n * n);
    auto b = ctx.alloc<float>(n * n);
    auto c = ctx.alloc<float>(n * n);

    for (std::size_t i = 0; i < n * n; ++i) {
      a.poke(i, static_cast<float>(ctx.rng().uniform(-1.0, 1.0)));
      b.poke(i, static_cast<float>(ctx.rng().uniform(-1.0, 1.0)));
    }

    const std::size_t repeats = scaled(3, 1);
    for (std::size_t r = 0; r < repeats; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          float acc = 0.0f;
          for (std::size_t k = 0; k < n; ++k) {
            acc += a.load(i * n + k) * b.load(k * n + j);
            ctx.fp_op(2);
            ctx.int_op(2);  // row/col index arithmetic
          }
          ctx.branch(j + 1 < n);
          c.store(i * n + j, acc);
        }
      }
    }
  }
};

// puwmod: pulse-width modulation duty-cycle computation — almost entirely
// register arithmetic with a tiny state array; the smallest footprint in
// the suite.
class PulseWidth final : public KernelBase {
 public:
  explicit PulseWidth(double scale)
      : KernelBase("puwmod", Domain::kAutomotive, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t channels = scaled(16, 4);
    const std::size_t ticks = scaled(14000, 128);
    auto duty = ctx.alloc<std::uint32_t>(channels);
    auto counter = ctx.alloc<std::uint32_t>(channels);
    auto level = ctx.alloc<std::uint8_t>(channels);

    for (std::size_t c = 0; c < channels; ++c) {
      duty.poke(c, static_cast<std::uint32_t>(ctx.rng().below(100)));
    }

    for (std::size_t t = 0; t < ticks; ++t) {
      const std::size_t c = t % channels;
      std::uint32_t cnt = counter.load(c);
      cnt = (cnt + 1u) % 100u;
      ctx.int_op(2);
      counter.store(c, cnt);
      const bool high = cnt < duty.load(c);
      if (ctx.branch(high)) {
        level.store(c, 1);
      } else {
        level.store(c, 0);
      }
    }
  }
};

}  // namespace

void append_automotive_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                               double scale) {
  out.push_back(std::make_unique<AngleToTime>(scale));
  out.push_back(std::make_unique<TableLookup>(scale));
  out.push_back(std::make_unique<FirFilter>(scale));
  out.push_back(std::make_unique<MatrixArith>(scale));
  out.push_back(std::make_unique<PulseWidth>(scale));
}

}  // namespace hetsched
