// Consumer/media-style kernels, modelled after EEMBC ConsumerBench: JPEG
// forward DCT, RGB→CMYK conversion, image histogram and error-diffusion
// dithering.
#include <algorithm>
#include <cstdint>

#include "trace/kernels/kernel_base.hpp"

namespace hetsched {
namespace {

// cjpegdct: 8x8 forward DCT over a stream of image blocks with a resident
// coefficient table — block-local reuse plus streaming input.
class JpegDct final : public KernelBase {
 public:
  explicit JpegDct(double scale)
      : KernelBase("cjpegdct", Domain::kConsumer, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t blocks = scaled(28, 4);
    const std::size_t passes = scaled(4, 1);
    auto cos_table = ctx.alloc<float>(64);
    auto image = ctx.alloc<float>(blocks * 64);
    auto row = ctx.alloc<float>(8);  // per-block scratch row

    for (std::size_t i = 0; i < 64; ++i) {
      cos_table.poke(i, static_cast<float>(ctx.rng().uniform(-1.0, 1.0)));
    }
    for (std::size_t i = 0; i < blocks * 64; ++i) {
      image.poke(i, static_cast<float>(ctx.rng().below(256)));
    }

    for (std::size_t p = 0; p < passes; ++p) {
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t base = b * 64;
      // Row pass then column pass, both reading the 64-entry cosine table.
      for (std::size_t u = 0; u < 8; ++u) {
        for (std::size_t x = 0; x < 8; ++x) {
          float acc = 0.0f;
          for (std::size_t k = 0; k < 8; ++k) {
            acc += image.load(base + u * 8 + k) * cos_table.load(x * 8 + k);
            ctx.fp_op(2);
            ctx.int_op(1);
          }
          ctx.branch(x + 1 < 8);
          row.store(x, acc * 0.25f);
          ctx.fp_op(1);
        }
        // Write the transformed row back in place.
        for (std::size_t x = 0; x < 8; ++x) {
          image.store(base + u * 8 + x, row.load(x));
        }
      }
    }
    }
  }
};

// rgbcmy: pixelwise RGB→CMYK conversion — pure streaming with no reuse;
// its best cache is the smallest one (misses are compulsory regardless).
class RgbToCmyk final : public KernelBase {
 public:
  explicit RgbToCmyk(double scale)
      : KernelBase("rgbcmy", Domain::kConsumer, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t pixels = scaled(5000, 64);
    auto rgb = ctx.alloc<std::uint8_t>(pixels * 3);
    auto cmyk = ctx.alloc<std::uint8_t>(pixels * 4);

    for (std::size_t i = 0; i < pixels * 3; ++i) {
      rgb.poke(i, static_cast<std::uint8_t>(ctx.rng().below(256)));
    }

    for (std::size_t p = 0; p < pixels; ++p) {
      const std::uint8_t r = rgb.load(p * 3);
      const std::uint8_t g = rgb.load(p * 3 + 1);
      const std::uint8_t b = rgb.load(p * 3 + 2);
      std::uint8_t c = static_cast<std::uint8_t>(255 - r);
      std::uint8_t m = static_cast<std::uint8_t>(255 - g);
      std::uint8_t y = static_cast<std::uint8_t>(255 - b);
      std::uint8_t k = c < m ? (c < y ? c : y) : (m < y ? m : y);
      ctx.int_op(6);
      ctx.branch(k > 0);
      cmyk.store(p * 4, static_cast<std::uint8_t>(c - k));
      cmyk.store(p * 4 + 1, static_cast<std::uint8_t>(m - k));
      cmyk.store(p * 4 + 2, static_cast<std::uint8_t>(y - k));
      cmyk.store(p * 4 + 3, k);
    }
  }
};

// histogram: 256-bin luminance histogram — streaming reads plus hot
// read-modify-write traffic into a 1 KB bin array.
class HistogramKernel final : public KernelBase {
 public:
  explicit HistogramKernel(double scale)
      : KernelBase("histgrm", Domain::kConsumer, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t pixels = scaled(7000, 64);
    const std::size_t nbins = scaled(1536, 64);
    auto image = ctx.alloc<std::uint16_t>(pixels);
    auto bins = ctx.alloc<std::uint32_t>(nbins);

    for (std::size_t i = 0; i < pixels; ++i) {
      const double v = ctx.rng().normal(static_cast<double>(nbins) / 2.0,
                                        static_cast<double>(nbins) / 5.0);
      const double clamped =
          std::min(std::max(v, 0.0), static_cast<double>(nbins - 1));
      image.poke(i, static_cast<std::uint16_t>(clamped));
    }

    for (std::size_t p = 0; p < pixels; ++p) {
      const std::uint16_t lum = image.load(p);
      const std::uint32_t count = bins.load(lum);
      bins.store(lum, count + 1u);
      ctx.int_op(2);
      ctx.branch(p + 1 < pixels);
    }
    // Cumulative pass over the bins (histogram equalisation step).
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < nbins; ++i) {
      acc += bins.load(i);
      bins.store(i, acc);
      ctx.int_op(1);
    }
  }
};

// dith: Floyd–Steinberg error diffusion over an image row window — two-row
// working set with neighbour-carried dependencies.
class ErrorDiffusion final : public KernelBase {
 public:
  explicit ErrorDiffusion(double scale)
      : KernelBase("dith", Domain::kConsumer, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t width = scaled(256, 16);
    const std::size_t rows = scaled(24, 4);
    auto current = ctx.alloc<std::int32_t>(width);
    auto next = ctx.alloc<std::int32_t>(width);
    auto out = ctx.alloc<std::uint8_t>(width * rows);

    for (std::size_t i = 0; i < width; ++i) {
      current.poke(i, static_cast<std::int32_t>(ctx.rng().below(256)));
    }

    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t x = 0; x < width; ++x) {
        const std::int32_t old = current.load(x);
        const std::int32_t quant = old >= 128 ? 255 : 0;
        ctx.branch(old >= 128);
        const std::int32_t err = old - quant;
        ctx.int_op(2);
        out.store(r * width + x, static_cast<std::uint8_t>(quant));
        if (ctx.branch(x + 1 < width)) {
          current.store(x + 1, current.load(x + 1) + err * 7 / 16);
          next.store(x + 1, next.load(x + 1) + err * 1 / 16);
          ctx.int_op(4);
        }
        next.store(x, next.load(x) + err * 5 / 16);
        ctx.int_op(2);
      }
      // Swap rows: the "next" row becomes current, seeded with fresh input.
      for (std::size_t x = 0; x < width; ++x) {
        current.store(x, next.load(x) +
                             static_cast<std::int32_t>(ctx.rng().below(256)));
        next.store(x, 0);
        ctx.int_op(1);
      }
    }
  }
};

}  // namespace

void append_consumer_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                             double scale) {
  out.push_back(std::make_unique<JpegDct>(scale));
  out.push_back(std::make_unique<RgbToCmyk>(scale));
  out.push_back(std::make_unique<HistogramKernel>(scale));
  out.push_back(std::make_unique<ErrorDiffusion>(scale));
}

}  // namespace hetsched
