// Extended kernel pack: eight additional EEMBC-style kernels (CRC,
// AES-like substitution, Huffman decode, string search, sparse matrix,
// Kalman-style filter, CAN frame decode, JPEG quantisation). Not part of
// the calibrated standard suite; opted into via
// SuiteOptions::include_extended for larger-suite robustness studies.
#include <cmath>
#include <cstdint>

#include "trace/kernels/kernel_base.hpp"

namespace hetsched {
namespace {

// crc32: table-driven CRC over a byte stream — 1 KB hot table.
class Crc32 final : public KernelBase {
 public:
  explicit Crc32(double scale)
      : KernelBase("crc32", Domain::kNetworking, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t length = scaled(16000, 256);
    auto table = ctx.alloc<std::uint32_t>(256);
    auto data = ctx.alloc<std::uint8_t>(length);

    for (std::size_t i = 0; i < 256; ++i) {
      std::uint32_t c = static_cast<std::uint32_t>(i);
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table.poke(i, c);
    }
    for (std::size_t i = 0; i < length; ++i) {
      data.poke(i, static_cast<std::uint8_t>(ctx.rng().below(256)));
    }

    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < length; ++i) {
      const std::uint8_t byte = data.load(i);
      crc = table.load((crc ^ byte) & 0xffu) ^ (crc >> 8);
      ctx.int_op(3);
      ctx.branch(i + 1 < length);
    }
    (void)crc;
  }
};

// aesround: AES-like S-box substitution + mixing rounds over 16-byte
// blocks — tiny hot state, substitution-table bound.
class AesRound final : public KernelBase {
 public:
  explicit AesRound(double scale)
      : KernelBase("aesrnd", Domain::kNetworking, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t blocks = scaled(700, 16);
    auto sbox = ctx.alloc<std::uint8_t>(256);
    auto state = ctx.alloc<std::uint8_t>(16);
    auto input = ctx.alloc<std::uint8_t>(blocks * 16);

    for (std::size_t i = 0; i < 256; ++i) {
      sbox.poke(i, static_cast<std::uint8_t>((i * 167 + 13) & 0xff));
    }
    for (std::size_t i = 0; i < blocks * 16; ++i) {
      input.poke(i, static_cast<std::uint8_t>(ctx.rng().below(256)));
    }

    for (std::size_t b = 0; b < blocks; ++b) {
      for (std::size_t i = 0; i < 16; ++i) {
        state.store(i, input.load(b * 16 + i));
      }
      for (int round = 0; round < 10; ++round) {
        for (std::size_t i = 0; i < 16; ++i) {
          const std::uint8_t s = sbox.load(state.load(i));
          state.store(i, static_cast<std::uint8_t>(
                             s ^ static_cast<std::uint8_t>(round)));
          ctx.int_op(2);
        }
        ctx.branch(round < 9);
      }
    }
  }
};

// huffde: canonical Huffman decode via a node-table walk — mid-sized tree
// with data-dependent branching.
class HuffmanDecode final : public KernelBase {
 public:
  explicit HuffmanDecode(double scale)
      : KernelBase("huffde", Domain::kConsumer, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t nodes = scaled(700, 32);   // 2 u16 per node
    const std::size_t bits = scaled(40000, 512);
    auto tree = ctx.alloc<std::uint16_t>(nodes * 2);
    auto stream = ctx.alloc<std::uint8_t>(bits / 8);

    // Random full-ish binary tree: internal nodes link forward.
    for (std::size_t i = 0; i < nodes; ++i) {
      const std::uint64_t remaining = nodes - i - 1;
      if (remaining > 2 && ctx.rng().bernoulli(0.7)) {
        tree.poke(i * 2, static_cast<std::uint16_t>(
                             i + 1 + ctx.rng().below(remaining)));
        tree.poke(i * 2 + 1, static_cast<std::uint16_t>(
                                 i + 1 + ctx.rng().below(remaining)));
      } else {
        tree.poke(i * 2, 0);  // leaf
        tree.poke(i * 2 + 1, 0);
      }
    }
    for (std::size_t i = 0; i < bits / 8; ++i) {
      stream.poke(i, static_cast<std::uint8_t>(ctx.rng().below(256)));
    }

    std::size_t node = 0;
    std::uint64_t symbols = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      const std::uint8_t byte = stream.load(b / 8);
      const bool bit = (byte >> (b % 8)) & 1u;
      const std::uint16_t child = tree.load(node * 2 + (bit ? 1 : 0));
      ctx.int_op(2);
      if (ctx.branch(child == 0 || child >= nodes)) {
        ++symbols;  // leaf: emit symbol, restart at root
        node = 0;
      } else {
        node = child;
      }
    }
    (void)symbols;
  }
};

// strsearch: Horspool substring search — 256-entry shift table plus a
// streamed text buffer.
class StringSearch final : public KernelBase {
 public:
  explicit StringSearch(double scale)
      : KernelBase("strsrch", Domain::kOffice, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t text_len = scaled(12000, 512);
    constexpr std::size_t kPatternLen = 8;
    auto text = ctx.alloc<std::uint8_t>(text_len);
    auto pattern = ctx.alloc<std::uint8_t>(kPatternLen);
    auto shift = ctx.alloc<std::uint32_t>(256);

    for (std::size_t i = 0; i < text_len; ++i) {
      text.poke(i, static_cast<std::uint8_t>('a' + ctx.rng().below(8)));
    }
    for (std::size_t i = 0; i < kPatternLen; ++i) {
      pattern.poke(i, static_cast<std::uint8_t>('a' + ctx.rng().below(8)));
    }
    for (std::size_t i = 0; i < 256; ++i) shift.poke(i, kPatternLen);
    for (std::size_t i = 0; i + 1 < kPatternLen; ++i) {
      shift.poke(pattern.peek(i),
                 static_cast<std::uint32_t>(kPatternLen - 1 - i));
    }

    std::uint64_t matches = 0;
    std::size_t pos = 0;
    while (ctx.branch(pos + kPatternLen <= text_len)) {
      std::size_t i = kPatternLen;
      while (i > 0 && ctx.branch(text.load(pos + i - 1) ==
                                 pattern.load(i - 1))) {
        --i;
        ctx.int_op(1);
      }
      if (ctx.branch(i == 0)) ++matches;
      pos += shift.load(text.load(pos + kPatternLen - 1));
      ctx.int_op(2);
    }
    (void)matches;
  }
};

// sparsemv: CSR sparse matrix-vector product — indexed gathers over a
// large working set.
class SparseMatVec final : public KernelBase {
 public:
  explicit SparseMatVec(double scale)
      : KernelBase("sparsemv", Domain::kAutomotive, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t rows = scaled(220, 16);
    const std::size_t nnz_per_row = 6;
    const std::size_t nnz = rows * nnz_per_row;
    auto values = ctx.alloc<float>(nnz);
    auto cols = ctx.alloc<std::uint32_t>(nnz);
    auto x = ctx.alloc<float>(rows);
    auto y = ctx.alloc<float>(rows);

    for (std::size_t i = 0; i < nnz; ++i) {
      values.poke(i, static_cast<float>(ctx.rng().uniform(-1, 1)));
      cols.poke(i, static_cast<std::uint32_t>(ctx.rng().below(rows)));
    }
    for (std::size_t i = 0; i < rows; ++i) {
      x.poke(i, static_cast<float>(ctx.rng().uniform(-1, 1)));
    }

    const std::size_t repeats = scaled(4, 1);
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      for (std::size_t r = 0; r < rows; ++r) {
        float acc = 0.0f;
        for (std::size_t k = 0; k < nnz_per_row; ++k) {
          const std::size_t idx = r * nnz_per_row + k;
          acc += values.load(idx) * x.load(cols.load(idx));
          ctx.fp_op(2);
          ctx.int_op(2);
        }
        ctx.branch(r + 1 < rows);
        y.store(r, acc);
      }
    }
  }
};

// kalman: constant-size state estimator update — dense 6x6 floating-point
// algebra, compute bound with a tiny footprint.
class KalmanFilter final : public KernelBase {
 public:
  explicit KalmanFilter(double scale)
      : KernelBase("kalman", Domain::kAutomotive, scale) {}

  void run(ExecutionContext& ctx) const override {
    constexpr std::size_t kN = 6;
    const std::size_t steps = scaled(220, 16);
    auto state = ctx.alloc<float>(kN);
    auto cov = ctx.alloc<float>(kN * kN);
    auto gain = ctx.alloc<float>(kN * kN);
    auto meas = ctx.alloc<float>(steps * 2);

    for (std::size_t i = 0; i < kN; ++i) state.poke(i, 0.0f);
    for (std::size_t i = 0; i < kN * kN; ++i) {
      cov.poke(i, i % (kN + 1) == 0 ? 1.0f : 0.0f);
      gain.poke(i, static_cast<float>(ctx.rng().uniform(-0.1, 0.1)));
    }
    for (std::size_t i = 0; i < steps * 2; ++i) {
      meas.poke(i, static_cast<float>(ctx.rng().normal(0.0, 1.0)));
    }

    for (std::size_t t = 0; t < steps; ++t) {
      // Predict: cov += gain * cov (simplified propagation).
      for (std::size_t i = 0; i < kN; ++i) {
        for (std::size_t j = 0; j < kN; ++j) {
          float acc = cov.load(i * kN + j);
          for (std::size_t k = 0; k < kN; ++k) {
            acc += gain.load(i * kN + k) * cov.load(k * kN + j) * 0.01f;
            ctx.fp_op(3);
          }
          cov.store(i * kN + j, acc);
          ctx.branch(j + 1 < kN);
        }
      }
      // Update the state from the two measurements.
      const float z0 = meas.load(t * 2);
      const float z1 = meas.load(t * 2 + 1);
      for (std::size_t i = 0; i < kN; ++i) {
        const float residual =
            (i % 2 == 0 ? z0 : z1) - state.load(i) * 0.5f;
        state.store(i, state.load(i) + 0.1f * residual);
        ctx.fp_op(4);
      }
    }
  }
};

// canrdr: CAN bus frame decode — small ring of frames, bit-field
// extraction and a dispatch histogram.
class CanReader final : public KernelBase {
 public:
  explicit CanReader(double scale)
      : KernelBase("canrdr", Domain::kAutomotive, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t frames = scaled(4500, 64);
    constexpr std::size_t kRing = 32;
    auto ring = ctx.alloc<std::uint32_t>(kRing * 4);  // 16-byte frames
    auto dispatch = ctx.alloc<std::uint32_t>(128);

    for (std::size_t f = 0; f < frames; ++f) {
      const std::size_t slot = f % kRing;
      // "Receive" a frame.
      for (std::size_t w = 0; w < 4; ++w) {
        ring.store(slot * 4 + w,
                   static_cast<std::uint32_t>(ctx.rng().next()));
      }
      // Decode: 11-bit id, 4-bit dlc, payload checksum.
      const std::uint32_t header = ring.load(slot * 4);
      const std::uint32_t id = header >> 21;
      const std::uint32_t dlc = (header >> 17) & 0xfu;
      ctx.int_op(3);
      std::uint32_t sum = 0;
      for (std::uint32_t w = 1; w <= (dlc % 3) + 1; ++w) {
        sum += ring.load(slot * 4 + w);
        ctx.int_op(1);
      }
      const std::size_t bin = (id ^ sum) % 128u;
      dispatch.store(bin, dispatch.load(bin) + 1u);
      ctx.int_op(2);
      ctx.branch(f + 1 < frames);
    }
  }
};

// jpegquant: quantisation + zig-zag reordering of DCT blocks — streamed
// blocks against two resident 64-entry tables.
class JpegQuantise final : public KernelBase {
 public:
  explicit JpegQuantise(double scale)
      : KernelBase("jpegqnt", Domain::kConsumer, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t blocks = scaled(450, 16);
    auto quant = ctx.alloc<std::uint16_t>(64);
    auto zigzag = ctx.alloc<std::uint8_t>(64);
    auto coeffs = ctx.alloc<std::int16_t>(blocks * 64);
    auto out = ctx.alloc<std::int16_t>(64);

    for (std::size_t i = 0; i < 64; ++i) {
      quant.poke(i, static_cast<std::uint16_t>(1 + (i * 3) / 2));
      zigzag.poke(i, static_cast<std::uint8_t>((i * 29) % 64));
    }
    for (std::size_t i = 0; i < blocks * 64; ++i) {
      coeffs.poke(i,
                  static_cast<std::int16_t>(ctx.rng().normal(0.0, 60.0)));
    }

    for (std::size_t b = 0; b < blocks; ++b) {
      for (std::size_t i = 0; i < 64; ++i) {
        const std::size_t src = b * 64 + zigzag.load(i);
        const std::int16_t q = static_cast<std::int16_t>(
            coeffs.load(src) / static_cast<std::int16_t>(quant.load(i)));
        out.store(i, q);
        ctx.int_op(3);
        ctx.branch(q != 0);
      }
    }
  }
};

}  // namespace

void append_extended_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                             double scale) {
  out.push_back(std::make_unique<Crc32>(scale));
  out.push_back(std::make_unique<AesRound>(scale));
  out.push_back(std::make_unique<HuffmanDecode>(scale));
  out.push_back(std::make_unique<StringSearch>(scale));
  out.push_back(std::make_unique<SparseMatVec>(scale));
  out.push_back(std::make_unique<KalmanFilter>(scale));
  out.push_back(std::make_unique<CanReader>(scale));
  out.push_back(std::make_unique<JpegQuantise>(scale));
}

}  // namespace hetsched
