// Shared base for the synthetic kernels: name/domain storage plus the
// working-set scaling helper every kernel uses.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>

#include "trace/kernel.hpp"

namespace hetsched {

class KernelBase : public Kernel {
 public:
  KernelBase(std::string name, Domain domain, double scale)
      : name_(std::move(name)), domain_(domain), scale_(scale) {
    HETSCHED_REQUIRE(scale > 0.0 && scale <= 4.0);
  }

  const std::string& name() const override { return name_; }
  Domain domain() const override { return domain_; }

 protected:
  // Scales a working-set knob, never below `floor` (kernels need a minimum
  // problem size to be meaningful).
  std::size_t scaled(std::size_t base, std::size_t floor = 4) const {
    const auto v = static_cast<std::size_t>(
        static_cast<double>(base) * scale_);
    return std::max(v, floor);
  }

 private:
  std::string name_;
  Domain domain_;
  double scale_;
};

// Per-domain factory hooks implemented in the sibling .cpp files.
void append_automotive_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                               double scale);
void append_consumer_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                             double scale);
void append_networking_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                               double scale);
void append_office_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                           double scale);
void append_telecom_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                            double scale);
void append_extended_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                             double scale);

}  // namespace hetsched
