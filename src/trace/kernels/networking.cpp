// Networking-style kernels, modelled after EEMBC NetBench: longest-prefix
// route lookup over a trie, packet-queue management, and OSPF-style
// shortest-path relaxation.
#include <cstdint>

#include "trace/kernels/kernel_base.hpp"

namespace hetsched {
namespace {

// routelkup: longest-prefix match over a binary trie stored as an index
// array — pointer-chase pattern with a working set that defeats small
// caches.
class RouteLookup final : public KernelBase {
 public:
  explicit RouteLookup(double scale)
      : KernelBase("routelkup", Domain::kNetworking, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t nodes = scaled(620, 64);  // 3 u32 per node
    const std::size_t packets = scaled(1700, 64);
    // node layout: [left child, right child, next-hop] per node
    auto trie = ctx.alloc<std::uint32_t>(nodes * 3);

    // Build a randomly linked node table (a compressed multibit trie in
    // spirit): every node links to two other nodes, so lookups walk a
    // fixed number of levels across the whole structure.
    for (std::size_t i = 0; i < nodes; ++i) {
      trie.poke(i * 3, static_cast<std::uint32_t>(ctx.rng().below(nodes)));
      trie.poke(i * 3 + 1,
                static_cast<std::uint32_t>(ctx.rng().below(nodes)));
      trie.poke(i * 3 + 2, static_cast<std::uint32_t>(ctx.rng().below(64)));
    }

    constexpr int kLevels = 12;
    std::uint64_t delivered = 0;
    for (std::size_t p = 0; p < packets; ++p) {
      std::uint32_t addr32 =
          static_cast<std::uint32_t>(ctx.rng().next());
      std::uint32_t node = addr32 % nodes;
      std::uint32_t hop = 0;
      for (int depth = 0; depth < kLevels; ++depth) {
        const bool bit = (addr32 >> (31 - depth)) & 1u;
        ctx.int_op(2);
        node = trie.load(node * 3 + (bit ? 1u : 0u));
        ctx.branch(depth + 1 < kLevels);
      }
      hop = trie.load(node * 3 + 2);
      delivered += hop;
      ctx.int_op(1);
    }
    (void)delivered;
  }
};

// pktflow: packet buffer enqueue/dequeue with header checksumming — FIFO
// reuse over a ring of packet buffers.
class PacketFlow final : public KernelBase {
 public:
  explicit PacketFlow(double scale)
      : KernelBase("pktflow", Domain::kNetworking, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t ring_slots = scaled(24, 4);
    const std::size_t packet_words = 16;  // 64-byte packets
    const std::size_t events = scaled(4200, 64);
    auto ring = ctx.alloc<std::uint32_t>(ring_slots * packet_words);
    auto checksums = ctx.alloc<std::uint32_t>(ring_slots);

    std::size_t head = 0, tail = 0, occupancy = 0;
    for (std::size_t e = 0; e < events; ++e) {
      const bool enqueue = occupancy == 0 ||
                           (occupancy < ring_slots && ctx.rng().bernoulli(0.55));
      if (ctx.branch(enqueue)) {
        const std::size_t slot = head % ring_slots;
        std::uint32_t sum = 0;
        for (std::size_t w = 0; w < packet_words; ++w) {
          const std::uint32_t word =
              static_cast<std::uint32_t>(ctx.rng().next());
          ring.store(slot * packet_words + w, word);
          sum += word;
          ctx.int_op(2);
        }
        checksums.store(slot, sum);
        ++head;
        ++occupancy;
      } else {
        const std::size_t slot = tail % ring_slots;
        std::uint32_t sum = 0;
        for (std::size_t w = 0; w < packet_words; ++w) {
          sum += ring.load(slot * packet_words + w);
          ctx.int_op(1);
        }
        const bool ok = sum == checksums.load(slot);
        ctx.branch(ok);
        ++tail;
        --occupancy;
      }
      ctx.int_op(2);  // pointer updates
    }
  }
};

// ospf: Dijkstra-style relaxation over a dense adjacency matrix — large
// read-mostly working set with row-major scans.
class OspfDijkstra final : public KernelBase {
 public:
  explicit OspfDijkstra(double scale)
      : KernelBase("ospf", Domain::kNetworking, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t n = scaled(42, 8);
    auto adj = ctx.alloc<std::uint32_t>(n * n);
    auto dist = ctx.alloc<std::uint32_t>(n);
    auto done = ctx.alloc<std::uint8_t>(n);

    constexpr std::uint32_t kInf = 0x3fffffff;
    for (std::size_t i = 0; i < n * n; ++i) {
      adj.poke(i, ctx.rng().bernoulli(0.35)
                      ? static_cast<std::uint32_t>(1 + ctx.rng().below(100))
                      : kInf);
    }
    for (std::size_t i = 0; i < n; ++i) dist.poke(i, kInf);
    dist.poke(0, 0);

    for (std::size_t iter = 0; iter < n; ++iter) {
      // Select the nearest unfinished vertex.
      std::size_t best = n;
      std::uint32_t best_d = kInf;
      for (std::size_t v = 0; v < n; ++v) {
        const bool candidate =
            done.load(v) == 0 && dist.load(v) < best_d;
        if (ctx.branch(candidate)) {
          best = v;
          best_d = dist.load(v);
        }
        ctx.int_op(1);
      }
      if (!ctx.branch(best < n)) break;
      done.store(best, 1);
      // Relax its out-edges.
      for (std::size_t v = 0; v < n; ++v) {
        const std::uint32_t w = adj.load(best * n + v);
        if (ctx.branch(w != kInf)) {
          const std::uint32_t nd = best_d + w;
          ctx.int_op(1);
          if (ctx.branch(nd < dist.load(v))) {
            dist.store(v, nd);
          }
        }
        ctx.int_op(1);
      }
    }
  }
};

}  // namespace

void append_networking_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                               double scale) {
  out.push_back(std::make_unique<RouteLookup>(scale));
  out.push_back(std::make_unique<PacketFlow>(scale));
  out.push_back(std::make_unique<OspfDijkstra>(scale));
}

}  // namespace hetsched
