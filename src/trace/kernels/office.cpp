// Office-automation-style kernels, modelled after EEMBC OfficeBench: Bézier
// curve interpolation (printing), text parsing, and image rotation.
#include <cstdint>

#include "trace/kernels/kernel_base.hpp"

namespace hetsched {
namespace {

// bezier01: cubic Bézier evaluation for font/plot rendering — floating
// point heavy over a tiny control-point set.
class BezierInterp final : public KernelBase {
 public:
  explicit BezierInterp(double scale)
      : KernelBase("bezier01", Domain::kOffice, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t curves = scaled(88, 4);
    const std::size_t steps = scaled(16, 4);
    const std::size_t passes = scaled(4, 1);
    auto control = ctx.alloc<float>(curves * 8);  // 4 (x,y) points per curve
    auto out = ctx.alloc<float>(steps * 2);

    for (std::size_t i = 0; i < curves * 8; ++i) {
      control.poke(i, static_cast<float>(ctx.rng().uniform(0.0, 512.0)));
    }

    for (std::size_t p = 0; p < passes; ++p) {
    for (std::size_t c = 0; c < curves; ++c) {
      const std::size_t base = c * 8;
      for (std::size_t s = 0; s < steps; ++s) {
        const float t = static_cast<float>(s) / static_cast<float>(steps);
        const float mt = 1.0f - t;
        const float b0 = mt * mt * mt;
        const float b1 = 3.0f * mt * mt * t;
        const float b2 = 3.0f * mt * t * t;
        const float b3 = t * t * t;
        ctx.fp_op(12);
        float x = b0 * control.load(base) + b1 * control.load(base + 2) +
                  b2 * control.load(base + 4) + b3 * control.load(base + 6);
        float y = b0 * control.load(base + 1) + b1 * control.load(base + 3) +
                  b2 * control.load(base + 5) + b3 * control.load(base + 7);
        ctx.fp_op(14);
        ctx.branch(s + 1 < steps);
        out.store(s * 2, x);
        out.store(s * 2 + 1, y);
      }
    }
    }
  }
};

// text01: token scanning and keyword counting over a byte buffer — byte
// streaming with a small hot dispatch table.
class TextParse final : public KernelBase {
 public:
  explicit TextParse(double scale)
      : KernelBase("text01", Domain::kOffice, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t length = scaled(9000, 256);
    const std::size_t trigram_bins = scaled(1600, 64);
    auto text = ctx.alloc<std::uint8_t>(length);
    auto char_class = ctx.alloc<std::uint8_t>(128);
    auto token_hist = ctx.alloc<std::uint32_t>(64);
    auto trigram_hist = ctx.alloc<std::uint32_t>(trigram_bins);

    for (std::size_t i = 0; i < 128; ++i) {
      // 0 = separator, 1 = alpha, 2 = digit, 3 = punct
      const std::uint8_t cls =
          (i >= 'a' && i <= 'z') || (i >= 'A' && i <= 'Z') ? 1
          : (i >= '0' && i <= '9')                         ? 2
          : (i == ' ' || i == '\n' || i == '\t')           ? 0
                                                           : 3;
      char_class.poke(i, cls);
    }
    for (std::size_t i = 0; i < length; ++i) {
      // Biased toward letters and spaces, like real text.
      const std::uint64_t roll = ctx.rng().below(100);
      std::uint8_t ch;
      if (roll < 70) {
        ch = static_cast<std::uint8_t>('a' + ctx.rng().below(26));
      } else if (roll < 85) {
        ch = ' ';
      } else if (roll < 93) {
        ch = static_cast<std::uint8_t>('0' + ctx.rng().below(10));
      } else {
        ch = '.';
      }
      text.poke(i, ch);
    }

    std::uint32_t token_len = 0;
    std::uint32_t hash = 0;
    for (std::size_t i = 0; i < length; ++i) {
      const std::uint8_t ch = text.load(i);
      const std::uint8_t cls = char_class.load(ch & 0x7f);
      ctx.int_op(1);
      if (ctx.branch(cls == 0)) {
        if (ctx.branch(token_len > 0)) {
          const std::size_t bin = hash % 64u;
          token_hist.store(bin, token_hist.load(bin) + 1u);
          ctx.int_op(2);
        }
        token_len = 0;
        hash = 0;
      } else {
        hash = hash * 31u + ch;
        ++token_len;
        ctx.int_op(3);
        // Trigram index statistics (hot mid-sized table).
        const std::size_t bin = hash % trigram_bins;
        trigram_hist.store(bin, trigram_hist.load(bin) + 1u);
        ctx.int_op(2);
      }
    }
  }
};

// rotate01: 90-degree bitmap rotation — strided writes against sequential
// reads; the transpose-like pattern stresses line size choice.
class ImageRotate final : public KernelBase {
 public:
  explicit ImageRotate(double scale)
      : KernelBase("rotate01", Domain::kOffice, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t dim = scaled(52, 8);  // dim x dim bytes, twice
    auto src = ctx.alloc<std::uint8_t>(dim * dim);
    auto dst = ctx.alloc<std::uint8_t>(dim * dim);

    for (std::size_t i = 0; i < dim * dim; ++i) {
      src.poke(i, static_cast<std::uint8_t>(ctx.rng().below(256)));
    }

    const std::size_t passes = scaled(3, 1);
    for (std::size_t p = 0; p < passes; ++p) {
      for (std::size_t y = 0; y < dim; ++y) {
        for (std::size_t x = 0; x < dim; ++x) {
          const std::uint8_t v = src.load(y * dim + x);
          dst.store(x * dim + (dim - 1 - y), v);
          ctx.int_op(3);
          ctx.branch(x + 1 < dim);
        }
      }
    }
  }
};

}  // namespace

void append_office_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                           double scale) {
  out.push_back(std::make_unique<BezierInterp>(scale));
  out.push_back(std::make_unique<TextParse>(scale));
  out.push_back(std::make_unique<ImageRotate>(scale));
}

}  // namespace hetsched
