// Telecom/DSP-style kernels, modelled after EEMBC TeleBench:
// autocorrelation, convolutional encoding, Viterbi decoding and an FFT
// butterfly pass.
#include <cmath>
#include <cstdint>

#include "trace/kernels/kernel_base.hpp"

namespace hetsched {
namespace {

// autcor: fixed-lag autocorrelation of a sample buffer — repeated
// sequential sweeps over a mid-sized array.
class Autocorrelation final : public KernelBase {
 public:
  explicit Autocorrelation(double scale)
      : KernelBase("autcor", Domain::kTelecom, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t samples = scaled(900, 64);
    const std::size_t lags = scaled(24, 4);
    auto input = ctx.alloc<std::int32_t>(samples);
    auto output = ctx.alloc<std::int64_t>(lags);

    for (std::size_t i = 0; i < samples; ++i) {
      input.poke(i,
                 static_cast<std::int32_t>(ctx.rng().normal(0.0, 1024.0)));
    }

    for (std::size_t lag = 0; lag < lags; ++lag) {
      std::int64_t acc = 0;
      for (std::size_t i = 0; i + lag < samples; ++i) {
        acc += static_cast<std::int64_t>(input.load(i)) *
               static_cast<std::int64_t>(input.load(i + lag));
        ctx.int_op(3);
      }
      ctx.branch(lag + 1 < lags);
      output.store(lag, acc);
    }
  }
};

// conven: rate-1/2 convolutional encoder — shift-register arithmetic over
// a bit stream; minimal data footprint.
class ConvEncoder final : public KernelBase {
 public:
  explicit ConvEncoder(double scale)
      : KernelBase("conven", Domain::kTelecom, scale) {}

  void run(ExecutionContext& ctx) const override {
    const std::size_t bits = scaled(12000, 256);
    auto input = ctx.alloc<std::uint8_t>(bits / 8);
    auto output = ctx.alloc<std::uint8_t>(bits / 4);

    for (std::size_t i = 0; i < bits / 8; ++i) {
      input.poke(i, static_cast<std::uint8_t>(ctx.rng().below(256)));
    }

    std::uint32_t state = 0;
    std::uint8_t out_byte = 0;
    std::size_t out_bits = 0, out_index = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      const std::uint8_t byte = input.load(b / 8);
      const std::uint32_t bit = (byte >> (b % 8)) & 1u;
      state = ((state << 1) | bit) & 0x3fu;
      // Generator polynomials G1=0b101011, G2=0b111101 (constraint len 6).
      const std::uint32_t g1 = __builtin_popcount(state & 0x2bu) & 1u;
      const std::uint32_t g2 = __builtin_popcount(state & 0x3du) & 1u;
      ctx.int_op(8);
      out_byte = static_cast<std::uint8_t>((out_byte << 2) | (g1 << 1) | g2);
      out_bits += 2;
      if (ctx.branch(out_bits == 8)) {
        output.store(out_index++, out_byte);
        out_bits = 0;
        out_byte = 0;
      }
    }
  }
};

// viterb: Viterbi decoder over a 16-state trellis — dynamic programming
// with a path-metric table and traceback array.
class ViterbiDecoder final : public KernelBase {
 public:
  explicit ViterbiDecoder(double scale)
      : KernelBase("viterb", Domain::kTelecom, scale) {}

  void run(ExecutionContext& ctx) const override {
    constexpr std::size_t kStates = 64;
    const std::size_t steps = scaled(115, 16);
    auto metric = ctx.alloc<std::uint32_t>(kStates * 2);  // ping-pong rows
    auto traceback = ctx.alloc<std::uint8_t>(kStates * steps);
    auto symbols = ctx.alloc<std::uint8_t>(steps);

    for (std::size_t i = 0; i < steps; ++i) {
      symbols.poke(i, static_cast<std::uint8_t>(ctx.rng().below(4)));
    }
    for (std::size_t s = 0; s < kStates; ++s) {
      metric.poke(s, s == 0 ? 0u : 1000u);
    }

    std::size_t cur = 0;
    for (std::size_t t = 0; t < steps; ++t) {
      const std::size_t nxt = 1 - cur;
      const std::uint8_t sym = symbols.load(t);
      for (std::size_t s = 0; s < kStates; ++s) {
        // Two predecessors per state in a shift-register trellis.
        const std::size_t p0 = (s >> 1);
        const std::size_t p1 = (s >> 1) | (kStates >> 1);
        const std::uint32_t exp0 =
            static_cast<std::uint32_t>((s ^ p0 ^ sym) & 3u);
        const std::uint32_t exp1 =
            static_cast<std::uint32_t>((s ^ p1 ^ sym) & 3u);
        const std::uint32_t m0 = metric.load(cur * kStates + p0) + exp0;
        const std::uint32_t m1 = metric.load(cur * kStates + p1) + exp1;
        ctx.int_op(8);
        if (ctx.branch(m0 <= m1)) {
          metric.store(nxt * kStates + s, m0);
          traceback.store(t * kStates + s, 0);
        } else {
          metric.store(nxt * kStates + s, m1);
          traceback.store(t * kStates + s, 1);
        }
      }
      cur = nxt;
    }

    // Traceback from the best final state.
    std::size_t best = 0;
    std::uint32_t best_m = 0xffffffffu;
    for (std::size_t s = 0; s < kStates; ++s) {
      const std::uint32_t m = metric.load(cur * kStates + s);
      if (ctx.branch(m < best_m)) {
        best_m = m;
        best = s;
      }
    }
    for (std::size_t t = steps; t-- > 0;) {
      const std::uint8_t took = traceback.load(t * kStates + best);
      best = (best >> 1) | (took ? (kStates >> 1) : 0);
      ctx.int_op(3);
    }
  }
};

// fft00: radix-2 decimation-in-time FFT — bit-reversed permutation then
// log2(n) butterfly passes with a resident twiddle table.
class FftButterfly final : public KernelBase {
 public:
  explicit FftButterfly(double scale)
      : KernelBase("fft00", Domain::kTelecom, scale) {}

  void run(ExecutionContext& ctx) const override {
    // Round the scaled size down to a power of two >= 64.
    std::size_t n = 64;
    while (n * 2 <= scaled(256, 64)) n *= 2;
    auto re = ctx.alloc<float>(n);
    auto im = ctx.alloc<float>(n);
    auto tw_re = ctx.alloc<float>(n / 2);
    auto tw_im = ctx.alloc<float>(n / 2);

    for (std::size_t i = 0; i < n; ++i) {
      re.poke(i, static_cast<float>(ctx.rng().normal(0.0, 1.0)));
      im.poke(i, 0.0f);
    }
    for (std::size_t i = 0; i < n / 2; ++i) {
      const double angle =
          -2.0 * 3.14159265358979323846 * static_cast<double>(i) /
          static_cast<double>(n);
      tw_re.poke(i, static_cast<float>(std::cos(angle)));
      tw_im.poke(i, static_cast<float>(std::sin(angle)));
    }

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) {
        j ^= bit;
        ctx.int_op(2);
      }
      j ^= bit;
      ctx.int_op(2);
      if (ctx.branch(i < j)) {
        const float tr = re.load(i);
        re.store(i, re.load(j));
        re.store(j, tr);
        const float ti = im.load(i);
        im.store(i, im.load(j));
        im.store(j, ti);
      }
    }

    // Butterfly passes.
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t stride = n / len;
      for (std::size_t start = 0; start < n; start += len) {
        for (std::size_t k = 0; k < len / 2; ++k) {
          const std::size_t even = start + k;
          const std::size_t odd = even + len / 2;
          const float wr = tw_re.load(k * stride);
          const float wi = tw_im.load(k * stride);
          const float orr = re.load(odd);
          const float oii = im.load(odd);
          const float xr = orr * wr - oii * wi;
          const float xi = orr * wi + oii * wr;
          ctx.fp_op(6);
          const float er = re.load(even);
          const float ei = im.load(even);
          re.store(even, er + xr);
          im.store(even, ei + xi);
          re.store(odd, er - xr);
          im.store(odd, ei - xi);
          ctx.fp_op(4);
          ctx.int_op(3);
          ctx.branch(k + 1 < len / 2);
        }
      }
    }
  }
};

}  // namespace

void append_telecom_kernels(std::vector<std::unique_ptr<Kernel>>& out,
                            double scale) {
  out.push_back(std::make_unique<Autocorrelation>(scale));
  out.push_back(std::make_unique<ConvEncoder>(scale));
  out.push_back(std::make_unique<ViterbiDecoder>(scale));
  out.push_back(std::make_unique<FftButterfly>(scale));
}

}  // namespace hetsched
