// Memory-reference records: the unit of exchange between the synthetic
// benchmark kernels (which emit them) and the cache simulator (which
// consumes them). Equivalent to the load/store stream SimpleScalar's
// sim-cache would derive from an EEMBC binary.
#pragma once

#include <cstdint>
#include <vector>

namespace hetsched {

struct MemRef {
  std::uint32_t address = 0;  // byte address in the benchmark's VA space
  std::uint8_t size = 4;      // access width in bytes (1/2/4/8)
  bool is_write = false;

  friend bool operator==(const MemRef&, const MemRef&) = default;
};

using MemTrace = std::vector<MemRef>;

}  // namespace hetsched
