#include "trace/trace_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace hetsched {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("trace line " + std::to_string(line) + ": " +
                           what);
}

}  // namespace

void write_trace(std::ostream& out, const MemTrace& trace) {
  out << std::hex;
  for (const MemRef& ref : trace) {
    out << (ref.is_write ? 'W' : 'R') << ' ' << ref.address << ' '
        << std::dec << static_cast<unsigned>(ref.size) << std::hex << '\n';
  }
  out << std::dec;
}

MemTrace read_trace(std::istream& in) {
  MemTrace trace;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip leading whitespace; skip blanks and comments.
    std::size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;

    const char op = line[pos++];
    if (op != 'R' && op != 'W' && op != 'r' && op != 'w') {
      fail(line_number, "expected R or W");
    }

    pos = line.find_first_not_of(" \t", pos);
    if (pos == std::string::npos) fail(line_number, "missing address");
    std::uint32_t address = 0;
    auto [addr_end, addr_err] = std::from_chars(
        line.data() + pos, line.data() + line.size(), address, 16);
    if (addr_err != std::errc{}) fail(line_number, "bad address");
    pos = static_cast<std::size_t>(addr_end - line.data());

    pos = line.find_first_not_of(" \t", pos);
    if (pos == std::string::npos) fail(line_number, "missing size");
    unsigned size = 0;
    auto [size_end, size_err] = std::from_chars(
        line.data() + pos, line.data() + line.size(), size, 10);
    if (size_err != std::errc{} || size == 0 || size > 255) {
      fail(line_number, "bad size");
    }
    // Accesses are power-of-two sized (1..128): the cache model indexes
    // lines by address arithmetic that a 3-byte access would corrupt.
    if ((size & (size - 1)) != 0) {
      fail(line_number,
           "size " + std::to_string(size) + " is not a power of two");
    }
    // The access must fit the 32-bit address space end inclusive.
    if (address > 0xffffffffu - (size - 1)) {
      fail(line_number, "address + size overflows the 32-bit space");
    }
    pos = static_cast<std::size_t>(size_end - line.data());
    if (line.find_first_not_of(" \t\r", pos) != std::string::npos) {
      fail(line_number, "trailing garbage");
    }

    trace.push_back(MemRef{address, static_cast<std::uint8_t>(size),
                           op == 'W' || op == 'w'});
  }
  return trace;
}

}  // namespace hetsched
