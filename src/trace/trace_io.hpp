// Memory-trace file I/O.
//
// Text format, one reference per line — the same shape as classic
// trace-driven simulators (dinero/SimpleScalar EIO dumps) so externally
// captured traces can be replayed through the cache simulator:
//
//     # comment / blank lines ignored
//     R 1a40 4
//     W 1a44 4
//
// (R = read, W = write; hexadecimal byte address; access size in bytes —
// a power of two, with address + size fitting the 32-bit address space.)
#pragma once

#include <iosfwd>

#include "trace/memref.hpp"

namespace hetsched {

void write_trace(std::ostream& out, const MemTrace& trace);

// Parses a trace; throws std::runtime_error with a line number on
// malformed input.
MemTrace read_trace(std::istream& in);

}  // namespace hetsched
