#include "util/atomic_file.hpp"

#include <cstdio>
#include <fstream>

namespace hetsched {

bool atomic_write_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.close();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace hetsched
