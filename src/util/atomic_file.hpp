// Durable whole-file writes.
//
// Every artifact sink (run reports, windows JSONL, metrics snapshots,
// Chrome traces, CSVs, checkpoints, sweep manifests) writes through
// atomic_write_file: the content lands in a sibling temp file which is
// renamed over the destination only after a successful close. A crash,
// kill or full disk can therefore never leave a torn or truncated
// artifact behind — the destination either keeps its previous content or
// holds the complete new one. (The pattern was first proven by the
// characterisation profile cache; this is the shared extraction.)
#pragma once

#include <string>
#include <string_view>

namespace hetsched {

// Atomically replaces `path` with `content` via temp-file + rename.
// Returns false (destination untouched, temp file cleaned up) when the
// temp file cannot be created, written, or renamed.
bool atomic_write_file(const std::string& path, std::string_view content);

}  // namespace hetsched
