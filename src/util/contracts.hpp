// Contract-checking macros used across hetsched.
//
// The simulator is a research instrument: silent state corruption is far
// worse than a loud abort, so precondition checks stay on in all build
// types. HETSCHED_ASSERT is for internal invariants and may be compiled
// out with -DHETSCHED_DISABLE_ASSERTS for profiling runs.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hetsched::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "hetsched: %s failed: %s (%s:%d)\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace hetsched::detail

// Precondition on a public API: always checked.
#define HETSCHED_REQUIRE(expr)                                            \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::hetsched::detail::contract_failure("precondition", #expr,         \
                                           __FILE__, __LINE__);           \
    }                                                                     \
  } while (false)

// Internal invariant: checked unless explicitly disabled.
#ifndef HETSCHED_DISABLE_ASSERTS
#define HETSCHED_ASSERT(expr)                                             \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::hetsched::detail::contract_failure("invariant", #expr, __FILE__,  \
                                           __LINE__);                     \
    }                                                                     \
  } while (false)
#else
#define HETSCHED_ASSERT(expr) ((void)0)
#endif
