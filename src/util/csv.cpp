#include "util/csv.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace hetsched {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  HETSCHED_REQUIRE(!header.empty());
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  HETSCHED_REQUIRE(cells.size() == columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace hetsched
