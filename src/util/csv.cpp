#include "util/csv.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/contracts.hpp"

namespace hetsched {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  HETSCHED_REQUIRE(!header.empty());
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  HETSCHED_REQUIRE(cells.size() == columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  // Carriage returns trigger quoting like commas/quotes/newlines do:
  // a bare \r inside an unquoted field splits the row in most readers.
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;  // \r, \n and ',' are preserved verbatim inside quotes
  }
  quoted += '"';
  return quoted;
}

std::string CsvWriter::number(double value) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  return out.str();
}

}  // namespace hetsched
