// Minimal CSV writer so benches can dump machine-readable series next to
// their human-readable tables (one file per figure, consumed by plotting
// scripts outside this repo).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hetsched {

class CsvWriter {
 public:
  // Opens (truncates) `path` and writes the header row. Throws
  // std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void add_row(const std::vector<std::string>& cells);

  // Quotes a field if it contains separators/quotes/CR/LF.
  static std::string escape(const std::string& field);

  // Full-precision (max_digits10) rendering for machine-readable series:
  // CSV cells should round-trip the double, unlike the rounded console
  // tables (TablePrinter::num).
  static std::string number(double value);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace hetsched
