// Minimal CSV writer so benches can dump machine-readable series next to
// their human-readable tables (one file per figure, consumed by plotting
// scripts outside this repo).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hetsched {

class CsvWriter {
 public:
  // Opens (truncates) `path` and writes the header row. Throws
  // std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void add_row(const std::vector<std::string>& cells);

  // Quotes a field if it contains separators/quotes.
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace hetsched
