// FNV-1a hashing.
//
// One canonical implementation shared by every module that fingerprints
// bytes: predictor snapshots, the characterisation profile cache, and any
// future on-disk format. 64-bit FNV-1a is not cryptographic — it guards
// against truncation, bit rot and stale-parameter reuse, not adversaries.
#pragma once

#include <cstdint>
#include <string_view>
#include <type_traits>

namespace hetsched {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

// One-shot hash of a byte string.
constexpr std::uint64_t fnv1a(std::string_view data,
                              std::uint64_t seed = kFnv1aOffsetBasis) {
  std::uint64_t hash = seed;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnv1aPrime;
  }
  return hash;
}

// Incremental variant for hashing heterogeneous fields without first
// concatenating them into a string.
class Fnv1a {
 public:
  constexpr Fnv1a() = default;
  // Resumes hashing from a previously taken digest() — the checkpoint
  // restore path. A digest restored this way continues exactly as the
  // original hasher would have.
  constexpr explicit Fnv1a(std::uint64_t state) : hash_(state) {}

  constexpr Fnv1a& update(std::string_view data) {
    hash_ = fnv1a(data, hash_);
    return *this;
  }

  // Hashes the value's little-endian byte representation plus a leading
  // width byte, so adjacent fields cannot alias across widths.
  template <typename T>
    requires(std::is_integral_v<T> || std::is_enum_v<T>)
  constexpr Fnv1a& update_value(T value) {
    const auto v = static_cast<std::uint64_t>(value);
    mix(static_cast<unsigned char>(sizeof(T)));
    for (unsigned i = 0; i < sizeof(T); ++i) {
      mix(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
    }
    return *this;
  }

  std::uint64_t digest() const { return hash_; }

 private:
  constexpr void mix(unsigned char byte) {
    hash_ ^= byte;
    hash_ *= kFnv1aPrime;
  }

  std::uint64_t hash_ = kFnv1aOffsetBasis;
};

}  // namespace hetsched
