#include "util/probes.hpp"

#include <atomic>

namespace hetsched {
namespace {

std::atomic<ObsProbe*> g_probe{nullptr};

}  // namespace

ObsProbe* obs_probe() noexcept {
  return g_probe.load(std::memory_order_acquire);
}

void set_obs_probe(ObsProbe* probe) noexcept {
  g_probe.store(probe, std::memory_order_release);
}

}  // namespace hetsched
