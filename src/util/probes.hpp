// Process-global observability probe for layers below the simulator.
//
// The tracer/metrics subsystem (src/obs) lives above core, but two emit
// points sit beneath it: thread-pool job submission (util) and the
// profile-cache hit/miss decision (workload). Those layers cannot depend
// on obs, so they publish through this minimal hook instead: a single
// global pointer, null by default. With no probe installed every emit
// point is one relaxed atomic load and a branch — the null-sink path
// costs nothing measurable and changes no behaviour (verified by
// bench_obs_overhead).
//
// Determinism contract: emit points must fire identically for every
// HETSCHED_THREADS value. ThreadPool therefore reports only *top-level*
// jobs (submissions from outside a running job), whose count and order
// are fixed by sequential program order; nested parallel_for calls are
// part of their enclosing job and stay silent.
#pragma once

#include <cstddef>

namespace hetsched {

class ObsProbe {
 public:
  virtual ~ObsProbe() = default;

  // A top-level ThreadPool::parallel_for job of `unit_count` indices.
  virtual void on_pool_job(std::size_t unit_count) { (void)unit_count; }

  // Outcome of a load_or_build_suite lookup: served from the snapshot
  // (hit) or rebuilt from scratch (miss).
  virtual void on_profile_cache(bool hit) { (void)hit; }
};

// Currently installed probe, or nullptr when observability is off.
ObsProbe* obs_probe() noexcept;

// Installs (or, with nullptr, removes) the global probe. Callers must
// not swap probes while instrumented work is in flight; the intended
// pattern is install at startup, remove after the last emit point
// (see obs::ScopedProbe).
void set_obs_probe(ObsProbe* probe) noexcept;

}  // namespace hetsched
