#include "util/rng.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "util/snapshot_text.hpp"

namespace hetsched {

std::uint64_t Rng::below(std::uint64_t n) {
  HETSCHED_REQUIRE(n > 0);
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of n representable in 64 bits.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::exponential(double rate) {
  HETSCHED_REQUIRE(rate > 0.0);
  // uniform() is in [0,1); 1-u is in (0,1] so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

std::vector<std::size_t> Rng::sample_with_replacement(std::size_t n,
                                                      std::size_t k) {
  HETSCHED_REQUIRE(n > 0);
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(static_cast<std::size_t>(below(n)));
  }
  return out;
}

Rng Rng::split() {
  // Hash the current state into a fresh seed; advances this stream once so
  // successive splits differ.
  return Rng(next() ^ 0x9e3779b97f4a7c15ULL);
}

void Rng::save_state(std::ostream& out) const {
  out << "rng";
  for (const std::uint64_t s : state_) out << ' ' << s;
  out << ' ' << (has_spare_normal_ ? 1 : 0) << ' ';
  snapshot_text::write_double(out, spare_normal_);
  out << "\n";
}

void Rng::restore_state(std::istream& in, const std::string& context) {
  std::string token;
  if (!(in >> token) || token != "rng") {
    snapshot_text::fail(context, "expected 'rng'");
  }
  for (std::uint64_t& s : state_) {
    s = snapshot_text::read_value<std::uint64_t>(in, "rng state word",
                                                 context);
  }
  has_spare_normal_ =
      snapshot_text::read_value<int>(in, "rng spare flag", context) != 0;
  spare_normal_ =
      snapshot_text::read_value<double>(in, "rng spare normal", context);
}

}  // namespace hetsched
