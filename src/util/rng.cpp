#include "util/rng.hpp"

#include <cmath>

namespace hetsched {

std::uint64_t Rng::below(std::uint64_t n) {
  HETSCHED_REQUIRE(n > 0);
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of n representable in 64 bits.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::exponential(double rate) {
  HETSCHED_REQUIRE(rate > 0.0);
  // uniform() is in [0,1); 1-u is in (0,1] so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

std::vector<std::size_t> Rng::sample_with_replacement(std::size_t n,
                                                      std::size_t k) {
  HETSCHED_REQUIRE(n > 0);
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(static_cast<std::size_t>(below(n)));
  }
  return out;
}

Rng Rng::split() {
  // Hash the current state into a fresh seed; advances this stream once so
  // successive splits differ.
  return Rng(next() ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace hetsched
