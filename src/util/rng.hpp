// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in hetsched (arrival times, ANN weight
// initialisation, bagging resamples, random cache replacement) draws from
// an explicitly seeded Rng owned by the caller, so every experiment is
// reproducible bit-for-bit from its seed. The generator is xoshiro256**
// seeded through SplitMix64, both public-domain algorithms by Blackman &
// Vigna; we implement them here rather than using <random> engines so the
// stream is stable across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace hetsched {

// SplitMix64: used to expand a 64-bit seed into xoshiro state, and useful
// on its own for cheap stateless hashing of ids into streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: the workhorse generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    HETSCHED_REQUIRE(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n). n must be positive. Uses rejection to avoid
  // modulo bias (matters for reproducible statistics, not just aesthetics).
  std::uint64_t below(std::uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    HETSCHED_REQUIRE(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Standard normal via Marsaglia polar method.
  double normal();

  // Normal with given mean and standard deviation.
  double normal(double mean, double stddev) {
    HETSCHED_REQUIRE(stddev >= 0.0);
    return mean + stddev * normal();
  }

  bool bernoulli(double p) {
    HETSCHED_REQUIRE(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  // Exponential inter-arrival sample with the given rate (events/unit).
  double exponential(double rate);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  // k indices sampled with replacement from [0, n) — bagging resample.
  std::vector<std::size_t> sample_with_replacement(std::size_t n,
                                                   std::size_t k);

  // Derive an independent child stream (e.g. one per bagged ANN) without
  // perturbing this generator's sequence.
  Rng split();

  // Checkpoint support: serializes the full generator state (xoshiro
  // words plus the Marsaglia spare normal) as whitespace tokens; a
  // restored generator continues the stream bit-identically.
  // restore_state throws std::runtime_error (tagged with `context`) on
  // malformed input.
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in, const std::string& context);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace hetsched
