#include "util/snapshot_text.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/hash.hpp"

namespace hetsched::snapshot_text {

void fail(const std::string& context, const std::string& what) {
  throw std::runtime_error(context + ": " + what);
}

void write_double(std::ostream& out, double v) {
  out << std::hexfloat << v << std::defaultfloat;
}

template <>
double read_value<double>(std::istream& in, const char* what,
                          const std::string& context) {
  std::string token;
  if (!(in >> token)) {
    fail(context, std::string("cannot read ") + what);
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    fail(context, std::string("malformed double for ") + what);
  }
  return value;
}

void write_with_checksum(std::ostream& out, const std::string& body) {
  out << body << "checksum " << std::hex << fnv1a(body) << std::dec
      << "\n";
}

std::string read_verified(std::istream& in, const std::string& context) {
  std::ostringstream slurp;
  slurp << in.rdbuf();
  std::string content = slurp.str();

  const std::string::size_type mark = content.rfind("\nchecksum ");
  if (mark == std::string::npos) return content;

  std::string body = content.substr(0, mark + 1);
  std::istringstream tail(content.substr(mark + 1));
  std::string token, rest;
  std::uint64_t stored = 0;
  if (!(tail >> token >> std::hex >> stored) || token != "checksum") {
    fail(context, "malformed checksum line");
  }
  if (tail >> rest) fail(context, "trailing garbage after checksum");
  if (stored != fnv1a(body)) {
    fail(context, "checksum mismatch (truncated or corrupted snapshot)");
  }
  return body;
}

}  // namespace hetsched::snapshot_text
