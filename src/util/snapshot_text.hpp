// Shared helpers for versioned text snapshot formats.
//
// Both on-disk formats (the predictor snapshot and the characterisation
// profile cache) follow the same conventions: whitespace-token bodies,
// doubles in hexfloat so round trips are bit-exact, and a trailing
// "checksum <hex>" FNV-1a line over the exact body bytes so truncated or
// bit-flipped files are rejected at load time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace hetsched::snapshot_text {

// Throws std::runtime_error("<context>: <what>").
[[noreturn]] void fail(const std::string& context, const std::string& what);

// Writes `v` in hexfloat (bit-exact round trip).
void write_double(std::ostream& out, double v);

// Reads one whitespace token and parses it as T; fail()s on malformed
// input. The double specialisation parses via strtod because istream's
// operator>> does not accept hexfloat.
template <typename T>
T read_value(std::istream& in, const char* what,
             const std::string& context) {
  T value;
  if (!(in >> value)) {
    fail(context, std::string("cannot read ") + what);
  }
  return value;
}

template <>
double read_value<double>(std::istream& in, const char* what,
                          const std::string& context);

// Writes `body` followed by its FNV-1a checksum line.
void write_with_checksum(std::ostream& out, const std::string& body);

// Slurps `in`; when a trailing checksum line is present, verifies it and
// returns the body without it (fail()s on mismatch or a malformed line).
// Bodies without a checksum line are returned as-is, so formats predating
// the checksum stay loadable.
std::string read_verified(std::istream& in, const std::string& context);

}  // namespace hetsched::snapshot_text
