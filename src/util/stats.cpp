#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace hetsched {

void RunningStats::add(double x) {
  // A single NaN poisons mean/m2 forever (and inf turns m2 into NaN via
  // inf - inf); reject at the door like Histogram::build does.
  HETSCHED_REQUIRE(std::isfinite(x));
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  HETSCHED_REQUIRE(!values.empty());
  HETSCHED_REQUIRE(p >= 0.0 && p <= 100.0);
  for (double v : values) {
    // NaN breaks the strict-weak-ordering std::sort relies on, which is
    // undefined behaviour, and an inf endpoint would interpolate to NaN.
    HETSCHED_REQUIRE(std::isfinite(v));
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

double pearson(std::span<const double> x, std::span<const double> y) {
  HETSCHED_REQUIRE(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double geomean(std::span<const double> values) {
  HETSCHED_REQUIRE(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    HETSCHED_REQUIRE(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

Histogram Histogram::build(std::span<const double> values,
                           std::size_t nbins) {
  HETSCHED_REQUIRE(!values.empty());
  HETSCHED_REQUIRE(nbins > 0);
  for (double v : values) {
    // A NaN/inf input would feed an out-of-range double-to-integer cast
    // below, which is undefined behaviour — reject it loudly instead.
    HETSCHED_REQUIRE(std::isfinite(v));
  }
  Histogram h;
  h.lo = *std::min_element(values.begin(), values.end());
  h.hi = *std::max_element(values.begin(), values.end());
  h.bins.assign(nbins, 0);
  const double width = (h.hi - h.lo) / static_cast<double>(nbins);
  for (double v : values) {
    std::size_t idx = 0;
    if (width > 0.0) {
      // Clamp before the cast: for v == hi the quotient can round up to
      // nbins (or past it), and casting a double ≥ nbins risks both an
      // out-of-range index and UB for values outside size_t's range.
      const double scaled =
          std::min((v - h.lo) / width, static_cast<double>(nbins - 1));
      idx = static_cast<std::size_t>(scaled);
    }
    ++h.bins[idx];
  }
  return h;
}

}  // namespace hetsched
