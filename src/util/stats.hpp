// Small statistics toolkit: single-pass running moments (Welford),
// percentiles, correlation, and simple summaries used by feature selection,
// workload characterisation and the bench harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hetsched {

// Numerically stable running mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
double percentile(std::span<const double> values, double p);

double mean(std::span<const double> values);
double stddev(std::span<const double> values);

// Pearson correlation; returns 0 when either side has zero variance.
double pearson(std::span<const double> x, std::span<const double> y);

// Geometric mean of strictly positive values (used for normalised-energy
// summaries, where ratios should be averaged geometrically).
double geomean(std::span<const double> values);

// Equal-width histogram, mostly for bench diagnostics.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> bins;

  static Histogram build(std::span<const double> values, std::size_t nbins);
};

}  // namespace hetsched
