#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace hetsched {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HETSCHED_REQUIRE(!headers_.empty());
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;  // first column is usually a label
}

void TablePrinter::set_align(std::size_t column, Align align) {
  HETSCHED_REQUIRE(column < aligns_.size());
  aligns_[column] = align;
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  HETSCHED_REQUIRE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, ratio * 100.0);
  return buf;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_sep = [&] {
    os << '+';
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      os << ' ';
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << cells[c];
      if (aligns_[c] == Align::kLeft) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TablePrinter::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace hetsched
