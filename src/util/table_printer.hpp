// Aligned ASCII table output for the bench harnesses: every figure/table
// reproduction prints through this so bench output is uniform and easy to
// diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hetsched {

class TablePrinter {
 public:
  enum class Align { kLeft, kRight };

  // Column headers fix the column count; subsequent rows must match it.
  explicit TablePrinter(std::vector<std::string> headers);

  void set_align(std::size_t column, Align align);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);
  // Percent-formatted delta, e.g. "-28.4%".
  static std::string pct(double ratio, int precision = 1);

  // Render with box-drawing separators.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hetsched
