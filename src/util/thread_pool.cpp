#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "util/contracts.hpp"
#include "util/probes.hpp"

namespace hetsched {
namespace {

// True while a thread is executing job units — permanently on pool
// workers, and on a submitting thread for the span of its own slice.
// Nested parallel_for calls from such threads run inline: a nested
// submission would clobber the live job state (count_/next_/completed_)
// of the job the thread is still part of.
thread_local bool tl_pool_worker = false;

// Marks the current thread as inside a job for a scope; restored on
// exceptions so the serial path keeps its direct-propagation semantics.
struct InJobScope {
  InJobScope() { tl_pool_worker = true; }
  ~InJobScope() { tl_pool_worker = false; }
};

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t resolved = threads == 0 ? default_threads() : threads;
  HETSCHED_REQUIRE(resolved >= 1);
  workers_.reserve(resolved - 1);
  for (std::size_t t = 0; t + 1 < resolved; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::run_slice() {
  std::size_t done = 0;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) break;
    try {
      (*fn_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    ++done;
  }
  return done;
}

void ThreadPool::worker_loop() {
  tl_pool_worker = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    ++active_;
    lock.unlock();
    const std::size_t done = run_slice();
    lock.lock();
    --active_;
    completed_ += done;
    if (active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Observability: report top-level jobs only. Their count and order are
  // the sequential program order of submitting threads, so the probe sees
  // an identical stream for every thread count; nested calls belong to
  // the job already being reported.
  const bool top_level = !tl_pool_worker;
  if (top_level) {
    if (ObsProbe* probe = obs_probe()) probe->on_pool_job(count);
  }
  // Serial paths: a 1-thread pool, a single unit, or a nested call from a
  // worker (running inline keeps the fixed worker set deadlock-free). A
  // top-level multi-unit job marks the thread as in-job exactly like the
  // pooled path does, so nested calls behave identically whether this
  // pool has workers or not.
  if (workers_.empty() || count == 1 || tl_pool_worker) {
    if (top_level && count > 1) {
      InJobScope scope;
      for (std::size_t i = 0; i < count; ++i) fn(i);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(i);
    }
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // A worker that woke late for the *previous* generation may still be
    // draining its (empty) slice; job state must not change under it.
    done_cv_.wait(lock, [&] { return active_ == 0; });
    count_ = count;
    fn_ = &fn;
    next_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller participates in its own job; flag it so nested
  // parallel_for calls from inside `fn` run inline instead of
  // resubmitting over the live job. Entry to this path implies the flag
  // was false, so plain restore is exception-safe (run_slice is
  // noexcept in effect: it stores exceptions in error_).
  tl_pool_worker = true;
  const std::size_t done = run_slice();
  tl_pool_worker = false;

  std::unique_lock<std::mutex> lock(mutex_);
  completed_ += done;
  done_cv_.wait(lock,
                [&] { return active_ == 0 && completed_ == count_; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("HETSCHED_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed > 256 ? 256 : parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace hetsched
