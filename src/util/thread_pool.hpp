// Shared fixed-size thread pool.
//
// The characterisation pipeline (suite build, bagged-ANN training, the
// four Section-V system runs) is embarrassingly parallel across
// independent units whose outputs land in index-ordered slots, so the
// pool deliberately offers only `parallel_for`: no futures, no work
// stealing, no task graph. Determinism contract: `fn(i)` must write only
// to state owned by index i; under that contract the result of a
// parallel_for is bit-identical for every thread count, including 1.
//
// Nested parallel_for calls issued from inside a running job — whether on
// a pool worker or on the thread that submitted the job — run inline on
// the calling thread (serially), so parallel code can compose without
// deadlocking the fixed worker set or corrupting the live job state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hetsched {

class ThreadPool {
 public:
  // `threads` counts the caller too: a pool of T spawns T-1 workers and
  // the submitting thread participates. 0 means default_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  // Runs fn(0) .. fn(count-1), each exactly once, on the pool plus the
  // calling thread. Blocks until every index completed. The first
  // exception thrown by fn is rethrown here after the loop drains.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  // HETSCHED_THREADS if set (clamped to [1, 256]), else
  // hardware_concurrency, else 1.
  static std::size_t default_threads();

  // Process-wide shared pool. Created on first use with default_threads();
  // resizable via set_global_threads (call at startup, before the pool has
  // outstanding work).
  static ThreadPool& global();
  static void set_global_threads(std::size_t threads);

 private:
  void worker_loop();
  // Claims indices of the current job until none remain; returns how many
  // this thread completed.
  std::size_t run_slice();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // submitter waits for completion
  std::uint64_t generation_ = 0;      // bumped once per parallel_for
  bool stop_ = false;
  std::size_t active_ = 0;            // workers currently inside run_slice
  std::size_t completed_ = 0;         // indices finished this generation
  std::exception_ptr error_;

  // Job payload: written under mutex_ before the generation bump, read by
  // workers after they observe the bump (mutex-ordered).
  std::size_t count_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::atomic<std::size_t> next_{0};

  // Serialises concurrent external submitters (one job at a time).
  std::mutex submit_mutex_;
};

}  // namespace hetsched
