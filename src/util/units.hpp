// Strong unit wrappers for the quantities the simulator accounts in.
//
// Energy bookkeeping bugs (joules added to cycles, per-access confused with
// per-cycle) are the classic failure mode of energy-model code, so the two
// core quantities get distinct types with only the arithmetic that is
// dimensionally meaningful.
#pragma once

#include <compare>
#include <cstdint>

namespace hetsched {

// Energy in nanojoules. Double-backed: magnitudes span ~9 orders.
class NanoJoules {
 public:
  constexpr NanoJoules() = default;
  constexpr explicit NanoJoules(double value) : value_(value) {}

  constexpr double value() const { return value_; }
  constexpr double joules() const { return value_ * 1e-9; }
  constexpr double millijoules() const { return value_ * 1e-6; }

  constexpr NanoJoules operator+(NanoJoules o) const {
    return NanoJoules(value_ + o.value_);
  }
  constexpr NanoJoules operator-(NanoJoules o) const {
    return NanoJoules(value_ - o.value_);
  }
  constexpr NanoJoules& operator+=(NanoJoules o) {
    value_ += o.value_;
    return *this;
  }
  constexpr NanoJoules& operator-=(NanoJoules o) {
    value_ -= o.value_;
    return *this;
  }
  constexpr NanoJoules operator*(double k) const {
    return NanoJoules(value_ * k);
  }
  constexpr double operator/(NanoJoules o) const { return value_ / o.value_; }
  constexpr NanoJoules operator/(double k) const {
    return NanoJoules(value_ / k);
  }
  constexpr auto operator<=>(const NanoJoules&) const = default;

 private:
  double value_ = 0.0;
};

constexpr NanoJoules operator*(double k, NanoJoules e) { return e * k; }

// Cycle counts. 64-bit unsigned: a 5000-job run reaches ~1e11 cycles.
using Cycles = std::uint64_t;

// Simulation timestamps are also measured in cycles but kept as a separate
// alias for readability in the event queue.
using SimTime = std::uint64_t;

}  // namespace hetsched
