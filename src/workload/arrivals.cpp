#include "workload/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/contracts.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {
namespace {

void check_options(const ArrivalOptions& options) {
  HETSCHED_REQUIRE(options.count > 0);
  HETSCHED_REQUIRE(options.mean_interarrival_cycles > 0.0);
  HETSCHED_REQUIRE(options.burstiness >= 1.0);
  HETSCHED_REQUIRE(options.phase_switch >= 0.0 &&
                   options.phase_switch <= 1.0);
}

// One arrival draw, shared by the batch generator and the streaming
// source so both consume the identical rng sequence: phase switch,
// gap, then benchmark id.
JobArrival draw_arrival(const std::vector<std::size_t>& benchmark_ids,
                        const ArrivalOptions& options, Rng& rng, double& t,
                        bool& in_burst) {
  double mean = options.mean_interarrival_cycles;
  if (options.burstiness > 1.0) {
    // Gaps of mean/b in bursts and mean*(2 - 1/b) in quiet phases: with
    // symmetric phase switching the phases are equally likely per
    // arrival, so the arithmetic mean gap stays at `mean`.
    mean = in_burst ? mean / options.burstiness
                    : mean * (2.0 - 1.0 / options.burstiness);
    if (rng.bernoulli(options.phase_switch)) in_burst = !in_burst;
  }
  double gap = 0.0;
  switch (options.distribution) {
    case InterarrivalDistribution::kUniform:
      gap = rng.uniform(0.0, 2.0 * mean);
      break;
    case InterarrivalDistribution::kExponential:
      gap = rng.exponential(1.0 / mean);
      break;
    case InterarrivalDistribution::kFixed:
      gap = mean;
      break;
  }
  t += gap;
  JobArrival a;
  a.benchmark_id = benchmark_ids[rng.below(benchmark_ids.size())];
  a.arrival = static_cast<SimTime>(std::llround(t));
  return a;
}

}  // namespace

std::vector<JobArrival> generate_arrivals(
    const std::vector<std::size_t>& benchmark_ids,
    const ArrivalOptions& options, Rng& rng) {
  HETSCHED_REQUIRE(!benchmark_ids.empty());
  check_options(options);

  std::vector<JobArrival> arrivals;
  arrivals.reserve(options.count);
  double t = 0.0;
  bool in_burst = true;
  for (std::size_t i = 0; i < options.count; ++i) {
    arrivals.push_back(
        draw_arrival(benchmark_ids, options, rng, t, in_burst));
  }
  // Already non-decreasing by construction, but stable-sort defensively in
  // case of rounding collisions (order within a tie must be stable).
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const JobArrival& a, const JobArrival& b) {
                     return a.arrival < b.arrival;
                   });
  return arrivals;
}

void assign_realtime_attributes(
    std::vector<JobArrival>& arrivals,
    const std::vector<Cycles>& reference_cycles_by_benchmark,
    const RealtimeOptions& options, Rng& rng) {
  HETSCHED_REQUIRE(options.slack_factor > 0.0);
  HETSCHED_REQUIRE(options.priority_levels >= 1);
  for (JobArrival& arrival : arrivals) {
    HETSCHED_REQUIRE(arrival.benchmark_id <
                     reference_cycles_by_benchmark.size());
    const double reference = static_cast<double>(
        reference_cycles_by_benchmark[arrival.benchmark_id]);
    arrival.deadline =
        arrival.arrival +
        static_cast<SimTime>(std::llround(options.slack_factor * reference));
    arrival.priority = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(options.priority_levels)));
  }
}

GeneratedArrivalStream::GeneratedArrivalStream(
    std::vector<std::size_t> benchmark_ids, const ArrivalOptions& options,
    std::uint64_t seed)
    : benchmark_ids_(std::move(benchmark_ids)), options_(options),
      rng_(seed) {
  HETSCHED_REQUIRE(!benchmark_ids_.empty());
  check_options(options_);
}

void GeneratedArrivalStream::set_realtime(
    const std::vector<Cycles>& reference_cycles_by_benchmark,
    const RealtimeOptions& options, std::uint64_t seed) {
  HETSCHED_REQUIRE(emitted_ == 0);
  HETSCHED_REQUIRE(options.slack_factor > 0.0);
  HETSCHED_REQUIRE(options.priority_levels >= 1);
  realtime_ = true;
  reference_cycles_ = reference_cycles_by_benchmark;
  realtime_options_ = options;
  realtime_rng_.reseed(seed);
}

std::optional<JobArrival> GeneratedArrivalStream::next() {
  if (emitted_ >= options_.count) return std::nullopt;
  JobArrival a =
      draw_arrival(benchmark_ids_, options_, rng_, t_, in_burst_);
  if (realtime_) {
    HETSCHED_REQUIRE(a.benchmark_id < reference_cycles_.size());
    const double reference =
        static_cast<double>(reference_cycles_[a.benchmark_id]);
    a.deadline = a.arrival +
                 static_cast<SimTime>(std::llround(
                     realtime_options_.slack_factor * reference));
    a.priority = static_cast<int>(realtime_rng_.below(
        static_cast<std::uint64_t>(realtime_options_.priority_levels)));
  }
  ++emitted_;
  return a;
}

void GeneratedArrivalStream::save_state(std::ostream& out) const {
  out << "arrival-stream\n";
  rng_.save_state(out);
  out << "clock ";
  snapshot_text::write_double(out, t_);
  out << ' ' << (in_burst_ ? 1 : 0) << ' ' << emitted_ << "\n";
  out << "realtime " << (realtime_ ? 1 : 0) << "\n";
  if (realtime_) realtime_rng_.save_state(out);
}

void GeneratedArrivalStream::restore_state(std::istream& in,
                                           const std::string& context) {
  std::string token;
  if (!(in >> token) || token != "arrival-stream") {
    snapshot_text::fail(context, "expected 'arrival-stream'");
  }
  rng_.restore_state(in, context);
  if (!(in >> token) || token != "clock") {
    snapshot_text::fail(context, "expected 'clock'");
  }
  t_ = snapshot_text::read_value<double>(in, "arrival clock", context);
  in_burst_ =
      snapshot_text::read_value<int>(in, "burst phase", context) != 0;
  emitted_ =
      snapshot_text::read_value<std::uint64_t>(in, "emitted count", context);
  if (!(in >> token) || token != "realtime") {
    snapshot_text::fail(context, "expected 'realtime'");
  }
  const bool was_realtime =
      snapshot_text::read_value<int>(in, "realtime flag", context) != 0;
  if (was_realtime != realtime_) {
    snapshot_text::fail(context,
                        "real-time configuration does not match the "
                        "checkpointed stream");
  }
  if (realtime_) realtime_rng_.restore_state(in, context);
}

}  // namespace hetsched
