// Arrival-stream generation (Section V: "5000 uniform distribution
// arrival times ... On arrival, benchmarks were enqueued and processed on
// a FIFO basis").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace hetsched {

struct JobArrival {
  std::size_t benchmark_id = 0;  // index into the CharacterizedSuite
  SimTime arrival = 0;
  // Real-time extension (paper future work): priority level and absolute
  // completion deadline. Defaults reproduce the paper's baseline
  // best-effort workload.
  int priority = 0;
  std::optional<SimTime> deadline;
  // DAG extension: unit-weight longest-path-to-sink rank of this job in
  // its precedence graph (0 for independent jobs and sinks). Carried on
  // the arrival so batch replays of a realized DAG stream see the same
  // per-job rank the streaming run did.
  std::uint32_t cp_rank = 0;
};

enum class InterarrivalDistribution { kUniform, kExponential, kFixed };

struct ArrivalOptions {
  std::size_t count = 5000;
  // Mean inter-arrival gap in cycles. kUniform draws from
  // [0, 2*mean] (mean-preserving), kExponential from Exp(1/mean).
  double mean_interarrival_cycles = 55000.0;
  InterarrivalDistribution distribution = InterarrivalDistribution::kUniform;

  // Two-phase burstiness (a simple MMPP): when burstiness > 1, arrivals
  // alternate between a burst phase with gaps mean/burstiness and a quiet
  // phase with gaps mean*(2 - 1/burstiness), switching phase with
  // probability `phase_switch` after each arrival. The mean gap is
  // preserved; 1.0 disables bursts.
  double burstiness = 1.0;
  double phase_switch = 0.02;
};

// Draws `count` arrivals whose benchmark ids are sampled uniformly from
// `benchmark_ids`; returns them sorted by arrival time.
std::vector<JobArrival> generate_arrivals(
    const std::vector<std::size_t>& benchmark_ids,
    const ArrivalOptions& options, Rng& rng);

// Real-time extension: deadline and priority assignment for an existing
// stream. Each job's deadline becomes
//   arrival + slack_factor * reference_cycles(benchmark)
// where reference_cycles is supplied per benchmark id (typically the
// base-configuration execution time). Priorities are drawn uniformly
// from [0, priority_levels).
struct RealtimeOptions {
  double slack_factor = 4.0;   // tighter < looser
  int priority_levels = 1;     // 1 = everyone priority 0
};

void assign_realtime_attributes(
    std::vector<JobArrival>& arrivals,
    const std::vector<Cycles>& reference_cycles_by_benchmark,
    const RealtimeOptions& options, Rng& rng);

// Pull-based arrival production for streaming simulation: the simulator
// asks for one arrival at a time, so million-job streams never need to
// be materialised. Implementations must yield arrivals in non-decreasing
// arrival-time order.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;
  // The next arrival, or nullopt when the stream is exhausted. Called
  // again after exhaustion it keeps returning nullopt.
  virtual std::optional<JobArrival> next() = 0;

  // Release-on-completion support. A consumer holding a one-arrival
  // lookahead must re-poll when this returns true: events the consumer
  // itself produced (job completions) may have made an earlier arrival
  // eligible, or refilled an exhausted stream. The consumer pushes its
  // stale lookahead back with unget() and calls next() again; the source
  // clears the flag on every next(). Sources without feedback (the
  // default) are never stale and ignore unget.
  virtual bool lookahead_stale() const { return false; }
  virtual void unget(const JobArrival& arrival) { (void)arrival; }
};

// Adapts a pre-built (sorted) arrival vector to the pull interface.
class VectorArrivalSource final : public ArrivalSource {
 public:
  explicit VectorArrivalSource(const std::vector<JobArrival>& arrivals)
      : arrivals_(&arrivals) {}

  std::optional<JobArrival> next() override {
    if (index_ >= arrivals_->size()) return std::nullopt;
    return (*arrivals_)[index_++];
  }

 private:
  const std::vector<JobArrival>* arrivals_;
  std::size_t index_ = 0;
};

// Generates the same stream as generate_arrivals (bit-identical for the
// same options and seed — arrival times are non-decreasing by
// construction, so no sort is needed) one arrival at a time in O(1)
// memory. Optionally assigns real-time attributes exactly as
// assign_realtime_attributes would, drawing from an independent stream.
class GeneratedArrivalStream final : public ArrivalSource {
 public:
  GeneratedArrivalStream(std::vector<std::size_t> benchmark_ids,
                         const ArrivalOptions& options, std::uint64_t seed);

  // Enables deadline/priority assignment (call before the first next()).
  // `reference_cycles_by_benchmark` must cover every benchmark id.
  void set_realtime(const std::vector<Cycles>& reference_cycles_by_benchmark,
                    const RealtimeOptions& options, std::uint64_t seed);

  std::optional<JobArrival> next() override;

  std::uint64_t emitted() const { return emitted_; }

  // Checkpoint support: serializes the generator position (both RNG
  // states, the running arrival clock and the burst phase). The options,
  // benchmark ids and real-time configuration are NOT serialized — a
  // restored stream must be constructed (and set_realtime'd) exactly as
  // the original, then restore_state'd before the next next() call;
  // continuation is then bit-identical. restore_state throws
  // std::runtime_error (tagged with `context`) on malformed input.
  void save_state(std::ostream& out) const;
  void restore_state(std::istream& in, const std::string& context);

 private:
  std::vector<std::size_t> benchmark_ids_;
  ArrivalOptions options_;
  Rng rng_;
  double t_ = 0.0;
  bool in_burst_ = true;
  std::uint64_t emitted_ = 0;

  bool realtime_ = false;
  std::vector<Cycles> reference_cycles_;
  RealtimeOptions realtime_options_{};
  Rng realtime_rng_{0};
};

}  // namespace hetsched
