// Arrival-stream generation (Section V: "5000 uniform distribution
// arrival times ... On arrival, benchmarks were enqueued and processed on
// a FIFO basis").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace hetsched {

struct JobArrival {
  std::size_t benchmark_id = 0;  // index into the CharacterizedSuite
  SimTime arrival = 0;
  // Real-time extension (paper future work): priority level and absolute
  // completion deadline. Defaults reproduce the paper's baseline
  // best-effort workload.
  int priority = 0;
  std::optional<SimTime> deadline;
};

enum class InterarrivalDistribution { kUniform, kExponential, kFixed };

struct ArrivalOptions {
  std::size_t count = 5000;
  // Mean inter-arrival gap in cycles. kUniform draws from
  // [0, 2*mean] (mean-preserving), kExponential from Exp(1/mean).
  double mean_interarrival_cycles = 55000.0;
  InterarrivalDistribution distribution = InterarrivalDistribution::kUniform;

  // Two-phase burstiness (a simple MMPP): when burstiness > 1, arrivals
  // alternate between a burst phase with gaps mean/burstiness and a quiet
  // phase with gaps mean*(2 - 1/burstiness), switching phase with
  // probability `phase_switch` after each arrival. The mean gap is
  // preserved; 1.0 disables bursts.
  double burstiness = 1.0;
  double phase_switch = 0.02;
};

// Draws `count` arrivals whose benchmark ids are sampled uniformly from
// `benchmark_ids`; returns them sorted by arrival time.
std::vector<JobArrival> generate_arrivals(
    const std::vector<std::size_t>& benchmark_ids,
    const ArrivalOptions& options, Rng& rng);

// Real-time extension: deadline and priority assignment for an existing
// stream. Each job's deadline becomes
//   arrival + slack_factor * reference_cycles(benchmark)
// where reference_cycles is supplied per benchmark id (typically the
// base-configuration execution time). Priorities are drawn uniformly
// from [0, priority_levels).
struct RealtimeOptions {
  double slack_factor = 4.0;   // tighter < looser
  int priority_levels = 1;     // 1 = everyone priority 0
};

void assign_realtime_attributes(
    std::vector<JobArrival>& arrivals,
    const std::vector<Cycles>& reference_cycles_by_benchmark,
    const RealtimeOptions& options, Rng& rng);

}  // namespace hetsched
