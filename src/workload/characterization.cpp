#include "workload/characterization.hpp"

#include "cache/multi_sim.hpp"
#include "util/contracts.hpp"

namespace hetsched {

const ConfigProfile& BenchmarkProfile::profile_for(
    const CacheConfig& config) const {
  const auto idx = DesignSpace::index_of(config);
  HETSCHED_REQUIRE(idx.has_value());
  HETSCHED_REQUIRE(*idx < per_config.size());
  return per_config[*idx];
}

const ConfigProfile& BenchmarkProfile::best_overall() const {
  HETSCHED_REQUIRE(!per_config.empty());
  const ConfigProfile* best = &per_config.front();
  for (const ConfigProfile& p : per_config) {
    if (p.energy.total() < best->energy.total()) best = &p;
  }
  return *best;
}

const ConfigProfile& BenchmarkProfile::best_for_size(
    std::uint32_t size_bytes) const {
  const ConfigProfile* best = nullptr;
  for (const ConfigProfile& p : per_config) {
    if (p.config.size_bytes != size_bytes) continue;
    if (best == nullptr || p.energy.total() < best->energy.total()) {
      best = &p;
    }
  }
  HETSCHED_REQUIRE(best != nullptr);
  return *best;
}

std::uint32_t BenchmarkProfile::oracle_best_size() const {
  return best_overall().config.size_bytes;
}

ExecutionStatistics compute_statistics(const RawCounters& counters,
                                       const CacheSimResult& base_sim,
                                       const EnergyBreakdown& base_energy,
                                       const MemTrace& trace) {
  ExecutionStatistics s;
  s.total_instructions = static_cast<double>(counters.total_instructions());
  s.cycles = static_cast<double>(base_energy.total_cycles);
  s.loads = static_cast<double>(counters.loads);
  s.stores = static_cast<double>(counters.stores);
  s.branches = static_cast<double>(counters.branches);
  s.taken_branches = static_cast<double>(counters.taken_branches);
  s.int_ops = static_cast<double>(counters.int_ops);
  s.fp_ops = static_cast<double>(counters.fp_ops);
  s.l1_accesses = static_cast<double>(base_sim.stats.accesses);
  s.l1_misses = static_cast<double>(base_sim.stats.misses);
  s.l1_miss_rate = base_sim.stats.miss_rate();
  s.compulsory_misses = static_cast<double>(base_sim.stats.compulsory_misses);
  s.writebacks = static_cast<double>(base_sim.stats.writebacks);

  // Working set at word (4-byte) granularity, via the same flat bitmap
  // the cache model uses for compulsory-miss tracking.
  LineAddressSet words;
  for (const MemRef& ref : trace) {
    const std::uint32_t first = ref.address / 4u;
    const std::uint32_t last = (ref.address + ref.size - 1u) / 4u;
    for (std::uint32_t w = first; w <= last; ++w) words.insert(w);
  }
  s.working_set_bytes = static_cast<double>(words.size()) * 4.0;

  const double mem_refs = static_cast<double>(counters.memory_refs());
  const double instructions = s.total_instructions;
  s.load_fraction =
      mem_refs > 0.0 ? static_cast<double>(counters.loads) / mem_refs : 0.0;
  s.mem_intensity = instructions > 0.0 ? mem_refs / instructions : 0.0;
  s.compute_intensity =
      instructions > 0.0
          ? static_cast<double>(counters.int_ops + counters.fp_ops) /
                instructions
          : 0.0;
  s.branch_fraction =
      instructions > 0.0
          ? static_cast<double>(counters.branches) / instructions
          : 0.0;
  return s;
}

std::vector<std::unique_ptr<Kernel>> make_suite_kernels(
    const SuiteOptions& options) {
  auto kernels = make_standard_kernels(options.kernel_scale);
  if (options.include_extended) {
    for (auto& kernel : make_extended_kernels(options.kernel_scale)) {
      kernels.push_back(std::move(kernel));
    }
  }
  return kernels;
}

namespace {

// Characterises one benchmark instance (kernel × variant): executes the
// kernel, prices every design-space configuration, and derives the base
// statistics. The only difference between the fast and reference paths is
// how the per-config cache behaviour is obtained; both yield bit-identical
// profiles.
BenchmarkProfile characterize_unit(const Kernel& kernel,
                                   std::size_t kernel_index,
                                   std::size_t variant,
                                   const SuiteOptions& options,
                                   const EnergyModel& model,
                                   std::size_t base_index,
                                   bool single_pass) {
  const auto& space = DesignSpace::all();

  BenchmarkProfile profile;
  profile.instance.kernel_index = kernel_index;
  profile.instance.data_seed =
      options.seed_base + variant * 7919 + kernel_index * 104729;
  profile.instance.name = kernel.name() + "#" + std::to_string(variant);
  profile.instance.domain = kernel.domain();

  const KernelExecution exec = execute(kernel, profile.instance.data_seed);
  profile.counters = exec.counters;
  profile.footprint_bytes = exec.footprint_bytes;

  profile.per_config.reserve(space.size());
  if (single_pass) {
    const std::vector<CacheSimResult> sims =
        simulate_trace_multi(exec.trace, space);
    for (const CacheSimResult& sim : sims) {
      profile.per_config.push_back(
          ConfigProfile{sim.config, sim.stats,
                        model.evaluate(exec.counters, sim)});
    }
  } else {
    for (const CacheConfig& config : space) {
      ConfigProfile cp;
      cp.config = config;
      const CacheSimResult sim = simulate_trace(exec.trace, config);
      cp.cache = sim.stats;
      cp.energy = model.evaluate(exec.counters, sim);
      profile.per_config.push_back(cp);
    }
  }

  const ConfigProfile& base = profile.per_config[base_index];
  profile.base_statistics = compute_statistics(
      exec.counters, CacheSimResult{base.config, base.cache}, base.energy,
      exec.trace);
  return profile;
}

}  // namespace

CharacterizedSuite CharacterizedSuite::build(const EnergyModel& model,
                                             const SuiteOptions& options) {
  return build(model, options, ThreadPool::global());
}

CharacterizedSuite CharacterizedSuite::build(const EnergyModel& model,
                                             const SuiteOptions& options,
                                             ThreadPool& pool) {
  HETSCHED_REQUIRE(options.variants_per_kernel >= 1);
  const auto kernels = make_suite_kernels(options);
  HETSCHED_REQUIRE(!kernels.empty());

  const auto base_index = DesignSpace::index_of(DesignSpace::base_config());
  HETSCHED_REQUIRE(base_index.has_value());

  CharacterizedSuite suite;
  const std::size_t variants = options.variants_per_kernel;
  // Unit u = (kernel u / variants, variant u % variants): same k-major
  // order as the serial reference, with each unit writing only slot u, so
  // the suite is bit-identical for any thread count.
  suite.profiles_.resize(kernels.size() * variants);
  pool.parallel_for(
      suite.profiles_.size(), [&](std::size_t u) {
        const std::size_t k = u / variants;
        const std::size_t v = u % variants;
        suite.profiles_[u] = characterize_unit(
            *kernels[k], k, v, options, model, *base_index,
            /*single_pass=*/true);
      });
  return suite;
}

CharacterizedSuite CharacterizedSuite::build_reference(
    const EnergyModel& model, const SuiteOptions& options) {
  HETSCHED_REQUIRE(options.variants_per_kernel >= 1);
  const auto kernels = make_suite_kernels(options);
  HETSCHED_REQUIRE(!kernels.empty());

  const auto base_index = DesignSpace::index_of(DesignSpace::base_config());
  HETSCHED_REQUIRE(base_index.has_value());

  CharacterizedSuite suite;
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    for (std::size_t v = 0; v < options.variants_per_kernel; ++v) {
      suite.profiles_.push_back(characterize_unit(
          *kernels[k], k, v, options, model, *base_index,
          /*single_pass=*/false));
    }
  }
  return suite;
}

CharacterizedSuite CharacterizedSuite::from_profiles(
    std::vector<BenchmarkProfile> profiles) {
  CharacterizedSuite suite;
  suite.profiles_ = std::move(profiles);
  return suite;
}

const BenchmarkProfile& CharacterizedSuite::benchmark(std::size_t id) const {
  HETSCHED_REQUIRE(id < profiles_.size());
  return profiles_[id];
}

std::vector<std::size_t> CharacterizedSuite::scheduling_ids() const {
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    if (profiles_[i].instance.name.ends_with("#0")) ids.push_back(i);
  }
  return ids;
}

std::vector<std::size_t> CharacterizedSuite::training_ids() const {
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    if (!profiles_[i].instance.name.ends_with("#0")) ids.push_back(i);
  }
  return ids;
}

}  // namespace hetsched
