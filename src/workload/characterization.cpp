#include "workload/characterization.hpp"

#include <unordered_set>

#include "util/contracts.hpp"

namespace hetsched {

const ConfigProfile& BenchmarkProfile::profile_for(
    const CacheConfig& config) const {
  const auto idx = DesignSpace::index_of(config);
  HETSCHED_REQUIRE(idx.has_value());
  HETSCHED_REQUIRE(*idx < per_config.size());
  return per_config[*idx];
}

const ConfigProfile& BenchmarkProfile::best_overall() const {
  HETSCHED_REQUIRE(!per_config.empty());
  const ConfigProfile* best = &per_config.front();
  for (const ConfigProfile& p : per_config) {
    if (p.energy.total() < best->energy.total()) best = &p;
  }
  return *best;
}

const ConfigProfile& BenchmarkProfile::best_for_size(
    std::uint32_t size_bytes) const {
  const ConfigProfile* best = nullptr;
  for (const ConfigProfile& p : per_config) {
    if (p.config.size_bytes != size_bytes) continue;
    if (best == nullptr || p.energy.total() < best->energy.total()) {
      best = &p;
    }
  }
  HETSCHED_REQUIRE(best != nullptr);
  return *best;
}

std::uint32_t BenchmarkProfile::oracle_best_size() const {
  return best_overall().config.size_bytes;
}

ExecutionStatistics compute_statistics(const RawCounters& counters,
                                       const CacheSimResult& base_sim,
                                       const EnergyBreakdown& base_energy,
                                       const MemTrace& trace) {
  ExecutionStatistics s;
  s.total_instructions = static_cast<double>(counters.total_instructions());
  s.cycles = static_cast<double>(base_energy.total_cycles);
  s.loads = static_cast<double>(counters.loads);
  s.stores = static_cast<double>(counters.stores);
  s.branches = static_cast<double>(counters.branches);
  s.taken_branches = static_cast<double>(counters.taken_branches);
  s.int_ops = static_cast<double>(counters.int_ops);
  s.fp_ops = static_cast<double>(counters.fp_ops);
  s.l1_accesses = static_cast<double>(base_sim.stats.accesses);
  s.l1_misses = static_cast<double>(base_sim.stats.misses);
  s.l1_miss_rate = base_sim.stats.miss_rate();
  s.compulsory_misses = static_cast<double>(base_sim.stats.compulsory_misses);
  s.writebacks = static_cast<double>(base_sim.stats.writebacks);

  // Working set at word (4-byte) granularity.
  std::unordered_set<std::uint32_t> words;
  for (const MemRef& ref : trace) {
    const std::uint32_t first = ref.address / 4u;
    const std::uint32_t last = (ref.address + ref.size - 1u) / 4u;
    for (std::uint32_t w = first; w <= last; ++w) words.insert(w);
  }
  s.working_set_bytes = static_cast<double>(words.size()) * 4.0;

  const double mem_refs = static_cast<double>(counters.memory_refs());
  const double instructions = s.total_instructions;
  s.load_fraction =
      mem_refs > 0.0 ? static_cast<double>(counters.loads) / mem_refs : 0.0;
  s.mem_intensity = instructions > 0.0 ? mem_refs / instructions : 0.0;
  s.compute_intensity =
      instructions > 0.0
          ? static_cast<double>(counters.int_ops + counters.fp_ops) /
                instructions
          : 0.0;
  s.branch_fraction =
      instructions > 0.0
          ? static_cast<double>(counters.branches) / instructions
          : 0.0;
  return s;
}

std::vector<std::unique_ptr<Kernel>> make_suite_kernels(
    const SuiteOptions& options) {
  auto kernels = make_standard_kernels(options.kernel_scale);
  if (options.include_extended) {
    for (auto& kernel : make_extended_kernels(options.kernel_scale)) {
      kernels.push_back(std::move(kernel));
    }
  }
  return kernels;
}

CharacterizedSuite CharacterizedSuite::build(const EnergyModel& model,
                                             const SuiteOptions& options) {
  HETSCHED_REQUIRE(options.variants_per_kernel >= 1);
  const auto kernels = make_suite_kernels(options);
  HETSCHED_REQUIRE(!kernels.empty());

  CharacterizedSuite suite;
  const auto& space = DesignSpace::all();
  const auto base_index = DesignSpace::index_of(DesignSpace::base_config());
  HETSCHED_REQUIRE(base_index.has_value());

  for (std::size_t k = 0; k < kernels.size(); ++k) {
    for (std::size_t v = 0; v < options.variants_per_kernel; ++v) {
      BenchmarkProfile profile;
      profile.instance.kernel_index = k;
      profile.instance.data_seed =
          options.seed_base + v * 7919 + k * 104729;
      profile.instance.name =
          kernels[k]->name() + "#" + std::to_string(v);
      profile.instance.domain = kernels[k]->domain();

      const KernelExecution exec =
          execute(*kernels[k], profile.instance.data_seed);
      profile.counters = exec.counters;
      profile.footprint_bytes = exec.footprint_bytes;

      profile.per_config.reserve(space.size());
      for (const CacheConfig& config : space) {
        ConfigProfile cp;
        cp.config = config;
        const CacheSimResult sim = simulate_trace(exec.trace, config);
        cp.cache = sim.stats;
        cp.energy = model.evaluate(exec.counters, sim);
        profile.per_config.push_back(cp);
      }

      const ConfigProfile& base = profile.per_config[*base_index];
      profile.base_statistics = compute_statistics(
          exec.counters, CacheSimResult{base.config, base.cache},
          base.energy, exec.trace);

      suite.profiles_.push_back(std::move(profile));
    }
  }
  return suite;
}

const BenchmarkProfile& CharacterizedSuite::benchmark(std::size_t id) const {
  HETSCHED_REQUIRE(id < profiles_.size());
  return profiles_[id];
}

std::vector<std::size_t> CharacterizedSuite::scheduling_ids() const {
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    if (profiles_[i].instance.name.ends_with("#0")) ids.push_back(i);
  }
  return ids;
}

std::vector<std::size_t> CharacterizedSuite::training_ids() const {
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    if (!profiles_[i].instance.name.ends_with("#0")) ids.push_back(i);
  }
  return ids;
}

}  // namespace hetsched
