// Benchmark characterisation: the SimpleScalar+CACTI phase of the paper.
//
// Every benchmark instance (kernel + input seed) is executed once to
// obtain its trace and raw counters, then the trace is replayed through
// the cache simulator in each of the 18 Table-1 configurations and priced
// with the Figure-4 energy model. The multicore scheduling simulation
// replays these characterised (cycles, energy) values — exactly how the
// paper drives its MATLAB system simulation from SimpleScalar statistics.
//
// The characterisation is ground truth ("physics"): scheduler policies
// may only learn it through executions recorded in the profiling table.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "energy/energy_model.hpp"
#include "trace/kernel.hpp"
#include "util/thread_pool.hpp"

namespace hetsched {

// A benchmark instance: a kernel run on one concrete input (data seed).
struct BenchmarkInstance {
  std::string name;           // e.g. "a2time#0"
  std::size_t kernel_index = 0;
  std::uint64_t data_seed = 0;
  Domain domain = Domain::kAutomotive;
};

// One (benchmark, configuration) characterisation.
struct ConfigProfile {
  CacheConfig config;
  CacheStats cache;
  EnergyBreakdown energy;
};

struct BenchmarkProfile {
  BenchmarkInstance instance;
  RawCounters counters;
  std::uint32_t footprint_bytes = 0;
  // Indexed parallel to DesignSpace::all().
  std::vector<ConfigProfile> per_config;
  // The 18 execution statistics gathered in the base configuration.
  ExecutionStatistics base_statistics;

  const ConfigProfile& profile_for(const CacheConfig& config) const;
  // Lowest-total-energy configuration across the whole space.
  const ConfigProfile& best_overall() const;
  // Lowest-total-energy configuration with the given cache size.
  const ConfigProfile& best_for_size(std::uint32_t size_bytes) const;
  // Cache size of best_overall(): the oracle "best core" label.
  std::uint32_t oracle_best_size() const;
};

struct SuiteOptions {
  // Working-set scale passed to make_standard_kernels.
  double kernel_scale = 1.0;
  // Instances per kernel; seed v of kernel k uses data_seed = base + v.
  std::size_t variants_per_kernel = 8;
  std::uint64_t seed_base = 1000;
  // Append the eight extended kernels to the standard nineteen.
  bool include_extended = false;
};

// The kernel set a suite is built from: standard kernels plus, when
// opted in, the extended pack. kernel_index in BenchmarkInstance indexes
// this list.
std::vector<std::unique_ptr<Kernel>> make_suite_kernels(
    const SuiteOptions& options);

// The characterised suite: all benchmark profiles plus the models used to
// produce them.
class CharacterizedSuite {
 public:
  // Runs every kernel variant through every configuration. Deterministic
  // and bit-identical for every thread count: benchmark-instance units are
  // fanned out over `pool` (the shared global pool by default) into
  // index-ordered slots, and each unit decides all 18 configurations in a
  // single sweep over its trace (cache/multi_sim.hpp).
  static CharacterizedSuite build(const EnergyModel& model,
                                  const SuiteOptions& options = {});
  static CharacterizedSuite build(const EnergyModel& model,
                                  const SuiteOptions& options,
                                  ThreadPool& pool);

  // The original serial path — one full Cache replay per configuration on
  // the calling thread. Kept as the ground truth the fast path is tested
  // and benchmarked against.
  static CharacterizedSuite build_reference(const EnergyModel& model,
                                            const SuiteOptions& options = {});

  // Reassembles a suite from already-characterised profiles (profile
  // cache deserialisation).
  static CharacterizedSuite from_profiles(
      std::vector<BenchmarkProfile> profiles);

  std::size_t size() const { return profiles_.size(); }
  const BenchmarkProfile& benchmark(std::size_t id) const;
  const std::vector<BenchmarkProfile>& all() const { return profiles_; }

  // Ids of the variant-0 instances (the scheduling workload) and of the
  // variant>0 instances (ANN training data).
  std::vector<std::size_t> scheduling_ids() const;
  std::vector<std::size_t> training_ids() const;

 private:
  std::vector<BenchmarkProfile> profiles_;
};

// Derives the 18 execution statistics from the raw counters and the
// base-configuration cache behaviour.
ExecutionStatistics compute_statistics(const RawCounters& counters,
                                       const CacheSimResult& base_sim,
                                       const EnergyBreakdown& base_energy,
                                       const MemTrace& trace);

}  // namespace hetsched
