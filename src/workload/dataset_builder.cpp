#include "workload/dataset_builder.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/contracts.hpp"

namespace hetsched {

double size_to_target(std::uint32_t size_bytes) {
  switch (size_bytes) {
    case 2048: return 1.0;
    case 4096: return 2.0;
    case 8192: return 3.0;
    default: break;
  }
  HETSCHED_REQUIRE(false && "unknown cache size");
  return 0.0;
}

std::uint32_t target_to_size(double target) {
  const double snapped = std::clamp(std::round(target), 1.0, 3.0);
  return 1024u << static_cast<std::uint32_t>(snapped);
}

std::span<const double> size_target_classes() {
  static constexpr std::array<double, 3> kClasses = {1.0, 2.0, 3.0};
  return kClasses;
}

double transform_statistic(std::size_t index, double value) {
  HETSCHED_REQUIRE(index < kNumExecutionStatistics);
  constexpr std::size_t kFirstRatioStatistic = 14;  // load_fraction
  if (index >= kFirstRatioStatistic) return value;
  // Counts are non-negative; miss *rates* (index 10) are already small but
  // log1p is monotone and harmless there too.
  return std::log1p(value);
}

Dataset build_ann_dataset(const CharacterizedSuite& suite,
                          const std::vector<std::size_t>& ids) {
  std::vector<std::size_t> rows = ids;
  if (rows.empty()) {
    rows.resize(suite.size());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  }
  Dataset data;
  data.features = Matrix(rows.size(), kNumExecutionStatistics);
  data.targets = Matrix(rows.size(), 1);
  data.groups.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const BenchmarkProfile& profile = suite.benchmark(rows[r]);
    data.groups.push_back(profile.instance.kernel_index);
    const auto vec = profile.base_statistics.to_vector();
    for (std::size_t c = 0; c < vec.size(); ++c) {
      data.features.at(r, c) = transform_statistic(c, vec[c]);
    }
    data.targets.at(r, 0) = size_to_target(profile.oracle_best_size());
  }
  return data;
}

}  // namespace hetsched
