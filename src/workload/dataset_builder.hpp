// Builds the ANN training dataset from a characterised suite.
//
// Each row: the 18 execution statistics gathered in the base configuration
// (Section IV.D); target: log2 of the oracle best cache size in KB
// (2KB→1, 4KB→2, 8KB→3), the regression encoding the {10,18,5,1} net's
// single output predicts.
#pragma once

#include <vector>

#include "ann/dataset.hpp"
#include "workload/characterization.hpp"

namespace hetsched {

// Encoding between cache size and the ANN target value.
double size_to_target(std::uint32_t size_bytes);
std::uint32_t target_to_size(double target);
// The target classes {1, 2, 3} for snapping.
std::span<const double> size_target_classes();

// Feature transform applied to statistic column `index` before it enters
// the ANN: count-valued statistics (columns 0-13) are log1p-compressed so
// their orders-of-magnitude spread does not swamp the standardiser; ratio
// statistics (14-17) pass through.
double transform_statistic(std::size_t index, double value);

// Dataset over the given benchmark ids (one row per id). Falls back to all
// benchmarks when `ids` is empty. Features are transform_statistic()-ed.
Dataset build_ann_dataset(const CharacterizedSuite& suite,
                          const std::vector<std::size_t>& ids);

}  // namespace hetsched
