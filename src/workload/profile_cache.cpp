#include "workload/profile_cache.hpp"

#include <bit>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/contracts.hpp"
#include "util/hash.hpp"
#include "util/probes.hpp"
#include "util/snapshot_text.hpp"

namespace hetsched {
namespace {

constexpr std::string_view kMagic = "hetsched-suite";
constexpr int kVersion = 1;
// Bump whenever the characterisation pipeline changes the meaning of any
// serialised field (kernels, counters, statistics, energy model shape).
constexpr int kSchemaVersion = 1;
const std::string kContext = "profile cache";

using snapshot_text::write_double;

[[noreturn]] void fail(const std::string& what) {
  snapshot_text::fail(kContext, what);
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  return snapshot_text::read_value<T>(in, what, kContext);
}

double read_finite(std::istream& in, const char* what) {
  const double v = read_value<double>(in, what);
  if (!std::isfinite(v)) fail(std::string("non-finite ") + what);
  return v;
}

void hash_double(Fnv1a& h, double v) {
  h.update_value(std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t suite_cache_key(const SuiteOptions& options,
                              const EnergyModel& model) {
  Fnv1a h;
  h.update("hetsched-suite-key").update_value(kSchemaVersion);

  h.update("suite");
  hash_double(h, options.kernel_scale);
  h.update_value(options.variants_per_kernel)
      .update_value(options.seed_base)
      .update_value(options.include_extended);

  h.update("space");
  for (const CacheConfig& config : DesignSpace::all()) {
    h.update(config.name());
  }
  h.update(DesignSpace::base_config().name());

  const EnergyModelParams& p = model.params();
  h.update("energy");
  h.update_value(p.miss_latency)
      .update_value(p.beat_bytes)
      .update_value(p.bandwidth_cycles_per_beat);
  hash_double(h, p.offchip_access.value());
  hash_double(h, p.offchip_per_beat.value());
  hash_double(h, p.cpu_stall_per_cycle.value());
  hash_double(h, p.static_fraction);
  hash_double(h, p.base_cpi);
  hash_double(h, p.core_idle_per_cycle.value());
  hash_double(h, p.core_active_per_cycle.value());
  h.update_value(p.include_writebacks);

  const CactiCoefficients& c = model.cacti().coefficients();
  h.update("cacti");
  hash_double(h, c.data_array_per_way_byte);
  hash_double(h, c.tag_per_way_bit);
  hash_double(h, c.decode_per_index_bit);
  hash_double(h, c.sense_fixed);
  hash_double(h, c.write_factor);
  hash_double(h, c.fill_per_byte);
  h.update_value(c.address_bits);

  return h.digest();
}

void save_suite_snapshot(std::ostream& raw_out,
                         const CharacterizedSuite& suite,
                         std::uint64_t key) {
  std::ostringstream out;
  out << kMagic << " v" << kVersion << "\n";
  out << "key " << std::hex << key << std::dec << "\n";
  out << "profiles " << suite.size() << "\n";

  for (const BenchmarkProfile& profile : suite.all()) {
    const BenchmarkInstance& inst = profile.instance;
    HETSCHED_REQUIRE(!inst.name.empty());
    out << "profile " << inst.name << ' ' << inst.kernel_index << ' '
        << inst.data_seed << ' ' << static_cast<int>(inst.domain) << "\n";

    const RawCounters& rc = profile.counters;
    out << "counters " << rc.loads << ' ' << rc.stores << ' '
        << rc.branches << ' ' << rc.taken_branches << ' ' << rc.int_ops
        << ' ' << rc.fp_ops << ' ' << profile.footprint_bytes << "\n";

    out << "stats";
    for (const double v : profile.base_statistics.to_vector()) {
      out << ' ';
      write_double(out, v);
    }
    out << "\n";

    out << "configs " << profile.per_config.size() << "\n";
    for (const ConfigProfile& cp : profile.per_config) {
      const CacheStats& cs = cp.cache;
      out << cp.config.name() << ' ' << cs.accesses << ' ' << cs.hits
          << ' ' << cs.misses << ' ' << cs.read_misses << ' '
          << cs.write_misses << ' ' << cs.compulsory_misses << ' '
          << cs.evictions << ' ' << cs.writebacks << ' '
          << cs.writethroughs << ' ' << cs.prefetch_fills;
      const EnergyBreakdown& e = cp.energy;
      out << ' ' << e.miss_cycles << ' ' << e.total_cycles << ' ';
      write_double(out, e.static_energy.value());
      out << ' ';
      write_double(out, e.dynamic_energy.value());
      out << ' ';
      write_double(out, e.cpu_energy.value());
      out << "\n";
    }
  }

  snapshot_text::write_with_checksum(raw_out, out.str());
}

CharacterizedSuite load_suite_snapshot(std::istream& raw_in,
                                       std::uint64_t expected_key) {
  std::istringstream in(snapshot_text::read_verified(raw_in, kContext));

  std::string magic, version;
  if (!(in >> magic >> version) || magic != kMagic ||
      version != "v" + std::to_string(kVersion)) {
    fail("bad header");
  }

  std::string token;
  in >> token;
  if (token != "key") fail("expected 'key'");
  std::uint64_t key = 0;
  if (!(in >> std::hex >> key >> std::dec)) fail("cannot read key");
  if (key != expected_key) {
    fail("stale snapshot (parameters or schema changed)");
  }

  in >> token;
  if (token != "profiles") fail("expected 'profiles'");
  const auto n_profiles = read_value<std::size_t>(in, "profile count");
  if (n_profiles == 0 || n_profiles > 1000000) {
    fail("implausible profile count");
  }

  const std::size_t n_configs_expected = DesignSpace::all().size();
  std::vector<BenchmarkProfile> profiles;
  profiles.reserve(n_profiles);
  for (std::size_t p = 0; p < n_profiles; ++p) {
    in >> token;
    if (token != "profile") fail("expected 'profile'");
    BenchmarkProfile profile;
    BenchmarkInstance& inst = profile.instance;
    if (!(in >> inst.name)) fail("cannot read instance name");
    inst.kernel_index = read_value<std::size_t>(in, "kernel index");
    inst.data_seed = read_value<std::uint64_t>(in, "data seed");
    const int domain = read_value<int>(in, "domain");
    if (domain < 0 || domain > static_cast<int>(Domain::kTelecom)) {
      fail("domain out of range");
    }
    inst.domain = static_cast<Domain>(domain);

    in >> token;
    if (token != "counters") fail("expected 'counters'");
    RawCounters& rc = profile.counters;
    rc.loads = read_value<std::uint64_t>(in, "loads");
    rc.stores = read_value<std::uint64_t>(in, "stores");
    rc.branches = read_value<std::uint64_t>(in, "branches");
    rc.taken_branches = read_value<std::uint64_t>(in, "taken branches");
    rc.int_ops = read_value<std::uint64_t>(in, "int ops");
    rc.fp_ops = read_value<std::uint64_t>(in, "fp ops");
    profile.footprint_bytes = read_value<std::uint32_t>(in, "footprint");

    in >> token;
    if (token != "stats") fail("expected 'stats'");
    ExecutionStatistics& s = profile.base_statistics;
    for (double* field :
         {&s.total_instructions, &s.cycles, &s.loads, &s.stores,
          &s.branches, &s.taken_branches, &s.int_ops, &s.fp_ops,
          &s.l1_accesses, &s.l1_misses, &s.l1_miss_rate,
          &s.compulsory_misses, &s.writebacks, &s.working_set_bytes,
          &s.load_fraction, &s.mem_intensity, &s.compute_intensity,
          &s.branch_fraction}) {
      *field = read_finite(in, "execution statistic");
    }

    in >> token;
    if (token != "configs") fail("expected 'configs'");
    const auto n_configs = read_value<std::size_t>(in, "config count");
    if (n_configs != n_configs_expected) {
      fail("config count does not match the design space");
    }
    profile.per_config.reserve(n_configs);
    for (std::size_t c = 0; c < n_configs; ++c) {
      ConfigProfile cp;
      std::string config_name;
      if (!(in >> config_name)) fail("cannot read config name");
      const auto config = CacheConfig::parse(config_name);
      if (!config.has_value() || *config != DesignSpace::all()[c]) {
        fail("config does not match the design space order");
      }
      cp.config = *config;
      CacheStats& cs = cp.cache;
      cs.accesses = read_value<std::uint64_t>(in, "accesses");
      cs.hits = read_value<std::uint64_t>(in, "hits");
      cs.misses = read_value<std::uint64_t>(in, "misses");
      cs.read_misses = read_value<std::uint64_t>(in, "read misses");
      cs.write_misses = read_value<std::uint64_t>(in, "write misses");
      cs.compulsory_misses =
          read_value<std::uint64_t>(in, "compulsory misses");
      cs.evictions = read_value<std::uint64_t>(in, "evictions");
      cs.writebacks = read_value<std::uint64_t>(in, "writebacks");
      cs.writethroughs = read_value<std::uint64_t>(in, "writethroughs");
      cs.prefetch_fills = read_value<std::uint64_t>(in, "prefetch fills");
      EnergyBreakdown& e = cp.energy;
      e.miss_cycles = read_value<std::uint64_t>(in, "miss cycles");
      e.total_cycles = read_value<std::uint64_t>(in, "total cycles");
      e.static_energy = NanoJoules(read_finite(in, "static energy"));
      e.dynamic_energy = NanoJoules(read_finite(in, "dynamic energy"));
      e.cpu_energy = NanoJoules(read_finite(in, "cpu energy"));
      profile.per_config.push_back(cp);
    }
    profiles.push_back(std::move(profile));
  }
  if (in >> token) fail("trailing garbage after last profile");
  return CharacterizedSuite::from_profiles(std::move(profiles));
}

CharacterizedSuite load_or_build_suite(const std::string& path,
                                       const EnergyModel& model,
                                       const SuiteOptions& options,
                                       ThreadPool* pool) {
  const std::uint64_t key = suite_cache_key(options, model);

  {
    std::ifstream in(path);
    if (in) {
      try {
        CharacterizedSuite suite = load_suite_snapshot(in, key);
        if (ObsProbe* probe = obs_probe()) probe->on_profile_cache(true);
        return suite;
      } catch (const std::exception&) {
        // Stale, truncated or corrupt: fall through and rebuild.
      }
    }
  }
  if (ObsProbe* probe = obs_probe()) probe->on_profile_cache(false);

  CharacterizedSuite suite =
      pool != nullptr ? CharacterizedSuite::build(model, options, *pool)
                      : CharacterizedSuite::build(model, options);

  // Refresh atomically so a crashed or concurrent writer can never leave
  // a torn snapshot behind; failures only cost the cache.
  std::ostringstream out;
  save_suite_snapshot(out, suite, key);
  atomic_write_file(path, out.str());
  return suite;
}

}  // namespace hetsched
