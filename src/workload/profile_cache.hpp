// Persistent characterisation profile cache.
//
// CharacterizedSuite::build is the dominant up-front cost of every bench
// binary and every Experiment: each kernel variant's trace is generated
// and priced against all 18 Table-1 configurations before any scheduling
// happens. The characterisation is a pure function of (SuiteOptions,
// DesignSpace, energy-model parameters), so it can be computed once and
// reloaded in milliseconds by every later run.
//
// The snapshot is a versioned text format in the mould of
// PredictorSnapshot: doubles in hexfloat (bit-exact round trips), an
// FNV-1a checksum line over the body, and — new here — a 64-bit FNV-1a
// *key* hashing every input that determines the characterisation output
// (suite options, the design space, energy/CACTI parameters, and a schema
// version bumped whenever the characterisation pipeline changes
// semantics). A snapshot whose key does not match the requesting
// configuration is treated as stale and rebuilt, so a cached file can
// never silently serve characterisation for the wrong parameters.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "workload/characterization.hpp"

namespace hetsched {

// Hash of everything the characterisation output depends on.
std::uint64_t suite_cache_key(const SuiteOptions& options,
                              const EnergyModel& model);

// Writes the suite under `key` with a trailing checksum.
void save_suite_snapshot(std::ostream& out, const CharacterizedSuite& suite,
                         std::uint64_t key);

// Loads a snapshot; throws std::runtime_error on malformed or corrupted
// input, or when the stored key differs from `expected_key`.
CharacterizedSuite load_suite_snapshot(std::istream& in,
                                       std::uint64_t expected_key);

// File-level entry point: returns the cached suite at `path` when it is
// present, intact, and keyed to (options, model); otherwise builds the
// suite (on `pool`, or the global pool when null) and refreshes `path`
// via an atomic rename. An unwritable path degrades to a plain build.
CharacterizedSuite load_or_build_suite(const std::string& path,
                                       const EnergyModel& model,
                                       const SuiteOptions& options,
                                       ThreadPool* pool = nullptr);

}  // namespace hetsched
