// Tests for the alternative regression models (knn, decision tree, ridge)
// and the generic ModelSizePredictor pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "ann/decision_tree.hpp"
#include "ann/knn.hpp"
#include "ann/mlp_regressor.hpp"
#include "ann/ridge.hpp"
#include "core/model_predictor.hpp"
#include "workload/dataset_builder.hpp"

namespace hetsched {
namespace {

Dataset linear_dataset(std::size_t n, Rng& rng) {
  // y = 3 x0 - 2 x1 + 0.5
  Dataset data;
  std::vector<std::vector<double>> xs, ys;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-2, 2);
    const double b = rng.uniform(-2, 2);
    xs.push_back({a, b});
    ys.push_back({3 * a - 2 * b + 0.5});
  }
  data.features = Matrix::from_rows(xs);
  data.targets = Matrix::from_rows(ys);
  return data;
}

// ---------------- k-NN ----------------

TEST(KnnTest, ExactTrainingPointIsReproduced) {
  Rng rng(1);
  Dataset train;
  train.features = Matrix::from_rows({{0, 0}, {1, 0}, {0, 1}});
  train.targets = Matrix::from_rows({{10}, {20}, {30}});
  KnnRegressor knn(KnnConfig{.k = 2});
  knn.fit(train, {}, rng);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{1, 0}), 20.0);
}

TEST(KnnTest, InterpolatesBetweenNeighbours) {
  Rng rng(2);
  Dataset train;
  train.features = Matrix::from_rows({{0.0}, {1.0}});
  train.targets = Matrix::from_rows({{0.0}, {10.0}});
  KnnRegressor knn(KnnConfig{.k = 2, .distance_power = 1.0});
  knn.fit(train, {}, rng);
  // Midpoint: equal weights.
  EXPECT_NEAR(knn.predict(std::vector<double>{0.5}), 5.0, 1e-9);
  // Closer to x=1: pulled toward 10.
  EXPECT_GT(knn.predict(std::vector<double>{0.9}), 8.0);
}

TEST(KnnTest, KOneIsNearestNeighbour) {
  Rng rng(3);
  Dataset train = linear_dataset(50, rng);
  KnnRegressor knn(KnnConfig{.k = 1});
  knn.fit(train, {}, rng);
  // k=1 prediction equals the target of the nearest training row — check
  // on the training rows themselves.
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_DOUBLE_EQ(knn.predict(train.features.row(r)),
                     train.targets.at(r, 0));
  }
}

TEST(KnnTest, KLargerThanDatasetIsClamped) {
  Rng rng(4);
  Dataset train;
  train.features = Matrix::from_rows({{0.0}, {2.0}});
  train.targets = Matrix::from_rows({{4.0}, {8.0}});
  KnnRegressor knn(KnnConfig{.k = 99, .distance_power = 0.0});
  knn.fit(train, {}, rng);
  EXPECT_NEAR(knn.predict(std::vector<double>{1.0}), 6.0, 1e-9);
}

// ---------------- Decision tree ----------------

TEST(DecisionTreeTest, FitsAStepFunctionExactly) {
  Rng rng(5);
  Dataset train;
  std::vector<std::vector<double>> xs, ys;
  for (int i = 0; i < 40; ++i) {
    const double x = i / 40.0;
    xs.push_back({x});
    ys.push_back({x < 0.5 ? 1.0 : 3.0});
  }
  train.features = Matrix::from_rows(xs);
  train.targets = Matrix::from_rows(ys);
  DecisionTreeRegressor tree(DecisionTreeConfig{.max_depth = 3});
  tree.fit(train, {}, rng);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.2}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.8}), 3.0);
  EXPECT_EQ(tree.root_feature(), 0u);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTreeTest, PicksTheInformativeFeature) {
  Rng rng(6);
  Dataset train;
  std::vector<std::vector<double>> xs, ys;
  for (int i = 0; i < 60; ++i) {
    const double noise = rng.uniform(-1, 1);
    const double signal = rng.uniform(-1, 1);
    xs.push_back({noise, signal});
    ys.push_back({signal > 0 ? 5.0 : -5.0});
  }
  train.features = Matrix::from_rows(xs);
  train.targets = Matrix::from_rows(ys);
  DecisionTreeRegressor tree;
  tree.fit(train, {}, rng);
  EXPECT_EQ(tree.root_feature(), 1u);
}

TEST(DecisionTreeTest, RespectsMinSamplesLeaf) {
  Rng rng(7);
  Dataset train = linear_dataset(20, rng);
  DecisionTreeRegressor tree(
      DecisionTreeConfig{.max_depth = 20, .min_samples_leaf = 10});
  tree.fit(train, {}, rng);
  // 20 samples, leaves of >= 10: at most one split.
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTreeTest, ConstantTargetYieldsSingleLeaf) {
  Rng rng(8);
  Dataset train;
  train.features = Matrix::from_rows({{1}, {2}, {3}, {4}});
  train.targets = Matrix::from_rows({{7}, {7}, {7}, {7}});
  DecisionTreeRegressor tree;
  tree.fit(train, {}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{99}), 7.0);
}

// ---------------- Ridge ----------------

TEST(RidgeTest, SolveSpdAgainstKnownSystem) {
  // A = [[4,2],[2,3]], b = [2, 5] -> x = [-0.5, 2]
  const std::vector<double> a{4, 2, 2, 3};
  const std::vector<double> b{2, 5};
  const auto x = solve_spd(a, b, 2);
  EXPECT_NEAR(x[0], -0.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(RidgeTest, RecoversLinearCoefficients) {
  Rng rng(9);
  Dataset train = linear_dataset(200, rng);
  RidgeRegressor ridge(RidgeConfig{.lambda = 1e-8});
  ridge.fit(train, {}, rng);
  ASSERT_EQ(ridge.coefficients().size(), 3u);
  EXPECT_NEAR(ridge.coefficients()[0], 3.0, 1e-6);
  EXPECT_NEAR(ridge.coefficients()[1], -2.0, 1e-6);
  EXPECT_NEAR(ridge.coefficients()[2], 0.5, 1e-6);
  EXPECT_NEAR(ridge.predict(std::vector<double>{1.0, 1.0}), 1.5, 1e-6);
}

TEST(RidgeTest, RegularisationShrinksWeights) {
  Rng rng(10);
  Dataset train = linear_dataset(50, rng);
  RidgeRegressor weak(RidgeConfig{.lambda = 1e-8});
  RidgeRegressor strong(RidgeConfig{.lambda = 1000.0});
  weak.fit(train, {}, rng);
  strong.fit(train, {}, rng);
  EXPECT_LT(std::abs(strong.coefficients()[0]),
            std::abs(weak.coefficients()[0]));
}

// ---------------- MLP adapter ----------------

TEST(MlpRegressorTest, AdapterMatchesEnsembleSemantics) {
  Rng rng(11);
  Dataset train = linear_dataset(60, rng);
  BaggingConfig config;
  config.ensemble_size = 3;
  config.net.layer_sizes = {99, 6, 1};  // input width fixed at fit()
  config.trainer.max_epochs = 100;
  BaggedMlpRegressor model(config);
  EXPECT_FALSE(model.fitted());
  model.fit(train, {}, rng);
  EXPECT_TRUE(model.fitted());
  EXPECT_EQ(model.ensemble().size(), 3u);
  EXPECT_EQ(model.ensemble().member(0).input_size(), 2u);
  // Sanity: roughly learns the function.
  const double pred = model.predict(std::vector<double>{1.0, 0.0});
  EXPECT_NEAR(pred, 3.5, 1.5);
}

// ---------------- Generic predictor pipeline ----------------

TEST(ModelPredictorTest, AllModelsRunTheFullPipeline) {
  SuiteOptions suite_options;
  suite_options.kernel_scale = 0.25;
  suite_options.variants_per_kernel = 3;
  const CharacterizedSuite suite =
      CharacterizedSuite::build(EnergyModel{CactiModel{}}, suite_options);
  const Dataset data = build_ann_dataset(suite, {});

  PredictorConfig config;
  config.ensemble_size = 3;
  config.trainer.max_epochs = 100;

  auto check = [&](std::unique_ptr<Regressor> model) {
    Rng rng(12);
    const std::string name(model->name());
    ModelSizePredictor predictor(data, std::move(model), config, rng);
    EXPECT_EQ(predictor.report().selected_features, 10u) << name;
    EXPECT_GT(predictor.report().train_accuracy, 0.5) << name;
    // Prediction snaps to a legal size.
    const auto size = predictor.predict(
        0, suite.benchmark(0).base_statistics);
    EXPECT_TRUE(size == 2048 || size == 4096 || size == 8192) << name;
  };
  check(std::make_unique<KnnRegressor>());
  check(std::make_unique<DecisionTreeRegressor>());
  check(std::make_unique<RidgeRegressor>());
}

}  // namespace
}  // namespace hetsched
