// Tests for src/ann: matrix algebra, activations, backprop (validated
// against numerical gradients), training, bagging, splits, scaling,
// feature selection and metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ann/bagging.hpp"
#include "ann/feature_selection.hpp"
#include "ann/metrics.hpp"
#include "ann/trainer.hpp"

namespace hetsched {
namespace {

TEST(MatrixTest, MatmulMatchesHandComputation) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(MatrixTest, TransposedMatmulVariantsAgree) {
  Rng rng(1);
  const Matrix a = Matrix::xavier(3, 4, rng);
  const Matrix b = Matrix::xavier(3, 5, rng);
  // a^T * b computed two ways.
  const Matrix direct = a.transposed_matmul(b);
  const Matrix via_transpose = a.transposed().matmul(b);
  ASSERT_EQ(direct.rows(), via_transpose.rows());
  for (std::size_t r = 0; r < direct.rows(); ++r) {
    for (std::size_t c = 0; c < direct.cols(); ++c) {
      EXPECT_NEAR(direct.at(r, c), via_transpose.at(r, c), 1e-12);
    }
  }
  // a * b^T (shapes: 3x4 times 5x4^T -> need matching cols) — use fresh.
  const Matrix x = Matrix::xavier(2, 4, rng);
  const Matrix y = Matrix::xavier(6, 4, rng);
  const Matrix d1 = x.matmul_transposed(y);
  const Matrix d2 = x.matmul(y.transposed());
  for (std::size_t r = 0; r < d1.rows(); ++r) {
    for (std::size_t c = 0; c < d1.cols(); ++c) {
      EXPECT_NEAR(d1.at(r, c), d2.at(r, c), 1e-12);
    }
  }
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{10, 20}, {30, 40}});
  a.add_inplace(b, 0.5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 24);
  a.scale_inplace(2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 12);
  Matrix h = Matrix::from_rows({{1, 2}});
  const Matrix g = Matrix::from_rows({{3, 4}});
  h.hadamard_inplace(g);
  EXPECT_DOUBLE_EQ(h.at(0, 1), 8);
}

TEST(MatrixTest, RowVectorBroadcastAndColumnSums) {
  Matrix a = Matrix::from_rows({{1, 1}, {2, 2}});
  const Matrix bias = Matrix::from_rows({{10, 20}});
  a.add_row_vector(bias);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 21);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 12);
  const Matrix sums = a.column_sums();
  EXPECT_DOUBLE_EQ(sums.at(0, 0), 23);
  EXPECT_DOUBLE_EQ(sums.at(0, 1), 43);
}

TEST(MatrixTest, XavierBoundsRespectFanInOut) {
  Rng rng(2);
  const Matrix w = Matrix::xavier(10, 18, rng);
  const double limit = std::sqrt(6.0 / 28.0);
  for (double v : w.flat()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(ActivationTest, ValuesAndDerivatives) {
  EXPECT_DOUBLE_EQ(activate(Activation::kIdentity, 3.5), 3.5);
  EXPECT_NEAR(activate(Activation::kTanh, 0.5), std::tanh(0.5), 1e-12);
  EXPECT_NEAR(activate(Activation::kSigmoid, 0.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, 2.0), 2.0);

  // Derivative from output: f'(x) expressed via y = f(x).
  const double y = std::tanh(0.7);
  EXPECT_NEAR(activate_grad_from_output(Activation::kTanh, y), 1 - y * y,
              1e-12);
  EXPECT_NEAR(activate_grad_from_output(Activation::kSigmoid, 0.3),
              0.3 * 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(activate_grad_from_output(Activation::kIdentity, 9.0),
                   1.0);
}

TEST(MlpTest, TopologyAndParameterCount) {
  Rng rng(3);
  Mlp net(MlpConfig{{10, 18, 5, 1}}, rng);
  EXPECT_EQ(net.input_size(), 10u);
  EXPECT_EQ(net.output_size(), 1u);
  // (10*18+18) + (18*5+5) + (5*1+1) = 198 + 95 + 6
  EXPECT_EQ(net.parameter_count(), 299u);
}

TEST(MlpTest, PredictIsDeterministic) {
  Rng rng(4);
  Mlp net(MlpConfig{{3, 4, 1}}, rng);
  const std::vector<double> x{0.1, -0.2, 0.3};
  EXPECT_DOUBLE_EQ(net.predict_one(x)[0], net.predict_one(x)[0]);
}

// Backprop gradient validated against central finite differences on every
// parameter of a small net — the canonical correctness test for ANN code.
TEST(MlpTest, BackpropMatchesNumericalGradient) {
  Rng rng(5);
  const MlpConfig config{{2, 3, 1}};
  const Matrix inputs = Matrix::from_rows({{0.5, -1.0}, {1.5, 2.0}});
  const Matrix targets = Matrix::from_rows({{1.0}, {-1.0}});

  // Compute the analytic update by training one step with momentum 0 and
  // a tiny learning rate; recover the gradient from the weight delta.
  const double lr = 1e-6;
  Mlp net(config, rng);
  Mlp stepped = net;
  stepped.train_batch(inputs, targets, lr, 0.0);

  auto loss_of = [&](const Mlp& m) {
    return m.evaluate_mse(inputs, targets);
  };

  // Numerical directional check layer by layer, element by element.
  for (std::size_t layer = 0; layer < net.weights().size(); ++layer) {
    for (std::size_t r = 0; r < net.weights()[layer].rows(); ++r) {
      for (std::size_t c = 0; c < net.weights()[layer].cols(); ++c) {
        const double analytic_grad =
            (net.weights()[layer].at(r, c) -
             stepped.weights()[layer].at(r, c)) /
            lr;
        // Central difference.
        const double eps = 1e-5;
        Mlp plus = net;
        Mlp minus = net;
        const_cast<Matrix&>(plus.weights()[layer]).at(r, c) += eps;
        const_cast<Matrix&>(minus.weights()[layer]).at(r, c) -= eps;
        const double numeric_grad =
            (loss_of(plus) - loss_of(minus)) / (2 * eps);
        EXPECT_NEAR(analytic_grad, numeric_grad,
                    1e-4 * std::max(1.0, std::abs(numeric_grad)))
            << "layer " << layer << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST(MlpTest, TrainingFitsLinearFunction) {
  Rng rng(6);
  Mlp net(MlpConfig{{2, 8, 1}}, rng);
  // y = 2a - b over a small grid.
  std::vector<std::vector<double>> xs, ys;
  for (double a = -1.0; a <= 1.0; a += 0.25) {
    for (double b = -1.0; b <= 1.0; b += 0.25) {
      xs.push_back({a, b});
      ys.push_back({2 * a - b});
    }
  }
  const Matrix inputs = Matrix::from_rows(xs);
  const Matrix targets = Matrix::from_rows(ys);
  const double before = net.evaluate_mse(inputs, targets);
  for (int epoch = 0; epoch < 1500; ++epoch) {
    net.train_batch(inputs, targets, 0.02, 0.9);
  }
  const double after = net.evaluate_mse(inputs, targets);
  EXPECT_LT(after, before / 20.0);
  EXPECT_LT(after, 0.01);
}

TEST(TrainerTest, ReducesLossAndReportsHistory) {
  Rng rng(7);
  Dataset train;
  std::vector<std::vector<double>> xs, ys;
  Rng data_rng(8);
  for (int i = 0; i < 64; ++i) {
    const double a = data_rng.uniform(-1, 1);
    const double b = data_rng.uniform(-1, 1);
    xs.push_back({a, b});
    ys.push_back({a * a + 0.5 * b});
  }
  train.features = Matrix::from_rows(xs);
  train.targets = Matrix::from_rows(ys);

  TrainerConfig config;
  config.max_epochs = 200;
  Mlp net(MlpConfig{{2, 10, 1}}, rng);
  const TrainingReport report =
      Trainer(config).fit(net, train, Dataset{}, rng);
  EXPECT_EQ(report.epochs_run, 200u);
  EXPECT_EQ(report.train_mse_history.size(), 200u);
  EXPECT_LT(report.final_train_mse, report.train_mse_history.front() / 10);
}

TEST(TrainerTest, EarlyStoppingTriggersWithPatience) {
  Rng rng(9);
  Dataset train, validation;
  // Pure-noise targets: validation cannot keep improving for long.
  std::vector<std::vector<double>> xs, ys, vx, vy;
  Rng data_rng(10);
  for (int i = 0; i < 32; ++i) {
    xs.push_back({data_rng.uniform(-1, 1)});
    ys.push_back({data_rng.uniform(-1, 1)});
    vx.push_back({data_rng.uniform(-1, 1)});
    vy.push_back({data_rng.uniform(-1, 1)});
  }
  train.features = Matrix::from_rows(xs);
  train.targets = Matrix::from_rows(ys);
  validation.features = Matrix::from_rows(vx);
  validation.targets = Matrix::from_rows(vy);

  TrainerConfig config;
  config.max_epochs = 2000;
  config.patience = 10;
  Mlp net(MlpConfig{{1, 6, 1}}, rng);
  const TrainingReport report =
      Trainer(config).fit(net, train, validation, rng);
  EXPECT_TRUE(report.early_stopped);
  EXPECT_LT(report.epochs_run, 2000u);
}

TEST(DatasetTest, SubsetSelectsRowsAndGroups) {
  Dataset data;
  data.features = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  data.targets = Matrix::from_rows({{10}, {20}, {30}});
  data.groups = {7, 8, 9};
  const Dataset sub = data.subset({2, 0, 2});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.features.at(0, 0), 5);
  EXPECT_DOUBLE_EQ(sub.targets.at(1, 0), 10);
  EXPECT_EQ(sub.groups, (std::vector<std::size_t>{9, 7, 9}));
}

TEST(DatasetTest, SplitFractionsPartitionExactly) {
  Dataset data;
  std::vector<std::vector<double>> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back({static_cast<double>(i)});
    ys.push_back({static_cast<double>(i)});
  }
  data.features = Matrix::from_rows(xs);
  data.targets = Matrix::from_rows(ys);
  Rng rng(11);
  const DataSplit split = split_dataset(data, 0.7, 0.15, rng);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.validation.size(), 15u);
  EXPECT_EQ(split.test.size(), 15u);
  // Partition: every original value appears exactly once.
  std::multiset<double> seen;
  for (const Dataset* part :
       {&split.train, &split.validation, &split.test}) {
    for (std::size_t r = 0; r < part->size(); ++r) {
      seen.insert(part->features.at(r, 0));
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0.0);
  EXPECT_EQ(*seen.rbegin(), 99.0);
}

TEST(DatasetTest, StratifiedSplitRepresentsEveryGroupInTrain) {
  Dataset data;
  std::vector<std::vector<double>> xs, ys;
  std::vector<std::size_t> groups;
  for (std::size_t g = 0; g < 10; ++g) {
    for (int v = 0; v < 7; ++v) {
      xs.push_back({static_cast<double>(g * 100 + v)});
      ys.push_back({static_cast<double>(g)});
      groups.push_back(g);
    }
  }
  data.features = Matrix::from_rows(xs);
  data.targets = Matrix::from_rows(ys);
  data.groups = groups;
  Rng rng(12);
  const DataSplit split = split_dataset_stratified(data, 0.7, 0.15, rng);
  EXPECT_EQ(split.train.size() + split.validation.size() +
                split.test.size(),
            70u);
  std::set<std::size_t> train_groups(split.train.groups.begin(),
                                     split.train.groups.end());
  EXPECT_EQ(train_groups.size(), 10u)
      << "every group must contribute training rows";
  // Test partition should also be non-empty with 7 rows per group.
  EXPECT_GT(split.test.size(), 0u);
}

TEST(ScalerTest, StandardisesToZeroMeanUnitVariance) {
  Dataset data;
  data.features = Matrix::from_rows({{1, 100}, {2, 200}, {3, 300}});
  StandardScaler scaler;
  scaler.fit(data.features);
  const Matrix scaled = scaler.transform(data.features);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0;
    for (std::size_t r = 0; r < 3; ++r) mean += scaled.at(r, c);
    EXPECT_NEAR(mean / 3.0, 0.0, 1e-12);
  }
  EXPECT_NEAR(scaled.at(0, 0), scaled.at(0, 1), 1e-12)
      << "columns with the same shape scale identically";
}

TEST(ScalerTest, ConstantFeaturePassesThrough) {
  StandardScaler scaler;
  Matrix features = Matrix::from_rows({{5, 1}, {5, 2}, {5, 3}});
  scaler.fit(features);
  const Matrix scaled = scaler.transform(features);
  EXPECT_DOUBLE_EQ(scaled.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled.at(2, 0), 0.0);
}

TEST(ScalerTest, TransformRowMatchesMatrixTransform) {
  StandardScaler scaler;
  Matrix features = Matrix::from_rows({{1, 10}, {3, 30}});
  scaler.fit(features);
  const auto row = scaler.transform_row(std::vector<double>{2, 20});
  EXPECT_NEAR(row[0], 0.0, 1e-12);
  EXPECT_NEAR(row[1], 0.0, 1e-12);
}

TEST(FeatureSelectionTest, RanksByCorrelationAndFiltersRedundancy) {
  // f0 = target (perfect), f1 = 2*f0 (redundant), f2 = noise, f3 = -target.
  Rng rng(13);
  std::vector<std::vector<double>> xs, ys;
  for (int i = 0; i < 50; ++i) {
    const double t = rng.uniform(-1, 1);
    xs.push_back({t, 2 * t, rng.uniform(-1, 1), -t + 0.4 * rng.normal()});
    ys.push_back({t});
  }
  Dataset data;
  data.features = Matrix::from_rows(xs);
  data.targets = Matrix::from_rows(ys);

  FeatureSelectionConfig config;
  config.max_features = 2;
  const SelectedFeatures selected = select_features(data, config);
  ASSERT_EQ(selected.indices.size(), 2u);
  EXPECT_EQ(selected.indices[0], 0u);
  // f1 is perfectly redundant with f0, so the second pick must be f3
  // (high relevance, not redundant).
  EXPECT_EQ(selected.indices[1], 3u);
}

TEST(FeatureSelectionTest, ProjectRoundTrips) {
  Dataset data;
  data.features = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  data.targets = Matrix::from_rows({{1}, {0}});
  SelectedFeatures selected;
  selected.indices = {2, 0};
  const Dataset projected = selected.project(data);
  EXPECT_EQ(projected.feature_count(), 2u);
  EXPECT_DOUBLE_EQ(projected.features.at(1, 0), 6);
  EXPECT_DOUBLE_EQ(projected.features.at(1, 1), 4);
  const auto row = selected.project_row(std::vector<double>{7, 8, 9});
  EXPECT_EQ(row, (std::vector<double>{9, 7}));
}

TEST(BaggingTest, EnsemblePredictionIsMeanOfMembers) {
  Rng rng(14);
  Dataset train;
  train.features = Matrix::from_rows({{0.0}, {0.5}, {1.0}, {-0.5}});
  train.targets = Matrix::from_rows({{0.0}, {1.0}, {2.0}, {-1.0}});
  BaggingConfig config;
  config.ensemble_size = 5;
  config.net.layer_sizes = {1, 4, 1};
  config.trainer.max_epochs = 50;
  const BaggedEnsemble ensemble(config, train, Dataset{}, rng);
  EXPECT_EQ(ensemble.size(), 5u);

  const std::vector<double> x{0.25};
  const auto members = ensemble.member_outputs(x);
  double mean = 0;
  for (double m : members) mean += m;
  mean /= static_cast<double>(members.size());
  EXPECT_NEAR(ensemble.predict_one(x)[0], mean, 1e-12);
}

TEST(BaggingTest, MembersDifferFromEachOther) {
  Rng rng(15);
  Dataset train;
  train.features = Matrix::from_rows({{0.0}, {1.0}, {2.0}, {3.0}});
  train.targets = Matrix::from_rows({{0.0}, {1.0}, {0.0}, {1.0}});
  BaggingConfig config;
  config.ensemble_size = 4;
  config.net.layer_sizes = {1, 3, 1};
  config.trainer.max_epochs = 20;
  const BaggedEnsemble ensemble(config, train, Dataset{}, rng);
  const auto outs = ensemble.member_outputs(std::vector<double>{0.5});
  std::set<double> distinct(outs.begin(), outs.end());
  EXPECT_GT(distinct.size(), 1u)
      << "random init + bootstrap must decorrelate members";
}

TEST(MetricsTest, RegressionMetrics) {
  const Matrix pred = Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  const Matrix target = Matrix::from_rows({{1.5}, {2.0}, {2.5}});
  EXPECT_NEAR(mean_squared_error(pred, target), (0.25 + 0 + 0.25) / 3,
              1e-12);
  EXPECT_NEAR(mean_absolute_error(pred, target), (0.5 + 0 + 0.5) / 3,
              1e-12);
  EXPECT_DOUBLE_EQ(r_squared(target, target), 1.0);
  EXPECT_LT(r_squared(pred, target), 1.0);
}

TEST(MetricsTest, SnappingToClasses) {
  const std::vector<double> classes{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(snap_to_class(1.4, classes), 1.0);
  EXPECT_DOUBLE_EQ(snap_to_class(1.6, classes), 2.0);
  EXPECT_DOUBLE_EQ(snap_to_class(99.0, classes), 3.0);
  EXPECT_DOUBLE_EQ(snap_to_class(-5.0, classes), 1.0);

  const Matrix pred = Matrix::from_rows({{1.2}, {2.4}, {2.9}});
  const Matrix target = Matrix::from_rows({{1.0}, {3.0}, {3.0}});
  EXPECT_NEAR(snapped_accuracy(pred, target, classes), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace hetsched
