// Tests for the cache architecture options: write-through/no-allocate,
// the next-line prefetcher, and trace file I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "cache/cache.hpp"
#include "trace/trace_io.hpp"

namespace hetsched {
namespace {

constexpr CacheConfig kSmall{2048, 1, 16};

TEST(WritePolicyTest, Names) {
  EXPECT_EQ(to_string(WritePolicy::kWriteBackAllocate), "write-back");
  EXPECT_EQ(to_string(WritePolicy::kWriteThroughNoAllocate),
            "write-through");
}

TEST(WritePolicyTest, WriteThroughForwardsEveryStore) {
  CacheOptions options;
  options.write = WritePolicy::kWriteThroughNoAllocate;
  Cache cache(kSmall, options);
  cache.access(0x0, 4, false);  // read fill
  cache.access(0x0, 4, true);   // write hit -> forwarded
  cache.access(0x4, 4, true);   // write hit -> forwarded
  EXPECT_EQ(cache.stats().writethroughs, 2u);
  EXPECT_EQ(cache.dirty_lines(), 0u) << "write-through lines stay clean";
}

TEST(WritePolicyTest, WriteMissDoesNotAllocate) {
  CacheOptions options;
  options.write = WritePolicy::kWriteThroughNoAllocate;
  Cache cache(kSmall, options);
  const auto miss = cache.access(0x100, 4, true);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(cache.stats().writethroughs, 1u);
  // The line was NOT brought in: the subsequent read still misses.
  EXPECT_FALSE(cache.access(0x100, 4, false).hit);
  // ... but reads do allocate:
  EXPECT_TRUE(cache.access(0x100, 4, false).hit);
}

TEST(WritePolicyTest, WriteThroughNeverWritesBack) {
  CacheOptions options;
  options.write = WritePolicy::kWriteThroughNoAllocate;
  Cache cache(kSmall, options);
  const std::uint32_t stride = 128 * 16;
  cache.access(0x0, 4, false);
  cache.access(0x0, 4, true);
  // Conflict-evict the line: no writeback (memory already current).
  const auto r = cache.access(stride, 4, false);
  EXPECT_FALSE(r.writeback);
  EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(WritePolicyTest, WriteBackMatchesLegacyConstructor) {
  // The two-arg constructor and default options agree.
  Cache a(kSmall, ReplacementPolicy::kLru);
  Cache b(kSmall, CacheOptions{});
  for (std::uint32_t addr = 0; addr < 4096; addr += 8) {
    a.access(addr, 4, (addr / 8) % 3 == 0);
    b.access(addr, 4, (addr / 8) % 3 == 0);
  }
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().writebacks, b.stats().writebacks);
  EXPECT_EQ(a.stats().writethroughs, 0u);
}

TEST(PrefetchTest, NextLinePrefetchTurnsSequentialMissesIntoHits) {
  CacheOptions options;
  options.next_line_prefetch = true;
  Cache with(kSmall, options);
  Cache without(kSmall, CacheOptions{});
  for (std::uint32_t addr = 0; addr < 1024; addr += 4) {
    with.access(addr, 4, false);
    without.access(addr, 4, false);
  }
  // Sequential stream: prefetching halves the demand misses (every other
  // line arrives early).
  EXPECT_LT(with.stats().misses, without.stats().misses);
  EXPECT_GT(with.stats().prefetch_fills, 0u);
}

TEST(PrefetchTest, PrefetchDoesNotDoubleCountAccesses) {
  CacheOptions options;
  options.next_line_prefetch = true;
  Cache cache(kSmall, options);
  cache.access(0x0, 4, false);
  EXPECT_EQ(cache.stats().accesses, 1u) << "prefetch fills are not accesses";
  EXPECT_EQ(cache.stats().prefetch_fills, 1u);
  // The prefetched line is resident.
  EXPECT_TRUE(cache.access(16, 4, false).hit);
}

TEST(PrefetchTest, ResidentNextLineSkipsPrefetch) {
  CacheOptions options;
  options.next_line_prefetch = true;
  Cache cache(kSmall, options);
  cache.access(16, 4, false);  // fills line 1 (+ prefetch line 2)
  const auto before = cache.stats().prefetch_fills;
  cache.access(0, 4, false);  // miss line 0; line 1 already resident
  EXPECT_EQ(cache.stats().prefetch_fills, before)
      << "no prefetch when the next line is already cached";
}

TEST(PrefetchTest, RandomAccessPrefetchPollutes) {
  // On a pointer-chase pattern the prefetcher cannot help and costs
  // capacity: misses must not decrease dramatically (sanity bound).
  CacheOptions options;
  options.next_line_prefetch = true;
  Cache with(kSmall, options);
  Cache without(kSmall, CacheOptions{});
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const auto addr =
        static_cast<std::uint32_t>(rng.below(64 * 1024)) & ~3u;
    with.access(addr, 4, false);
    without.access(addr, 4, false);
  }
  EXPECT_GT(static_cast<double>(with.stats().misses),
            0.8 * static_cast<double>(without.stats().misses));
}

// ---------------- trace I/O ----------------

TEST(TraceIoTest, RoundTripsArbitraryTraces) {
  Rng rng(4);
  MemTrace trace;
  for (int i = 0; i < 5000; ++i) {
    // Power-of-two sizes 1..8, addresses clear of the 32-bit end so
    // address + size stays representable (the reader rejects both).
    trace.push_back(
        MemRef{static_cast<std::uint32_t>(rng.next()) & 0x7fffffffu,
               static_cast<std::uint8_t>(1u << rng.below(4)),
               rng.bernoulli(0.4)});
  }
  std::stringstream stream;
  write_trace(stream, trace);
  const MemTrace loaded = read_trace(stream);
  EXPECT_EQ(loaded, trace);
}

TEST(TraceIoTest, ParsesCommentsAndBlanksAndCase) {
  std::stringstream in(
      "# header comment\n"
      "\n"
      "R 1a40 4\n"
      "  w 1A44 2\n"
      "# trailing comment\n");
  const MemTrace trace = read_trace(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].address, 0x1a40u);
  EXPECT_EQ(trace[0].size, 4);
  EXPECT_FALSE(trace[0].is_write);
  EXPECT_EQ(trace[1].address, 0x1a44u);
  EXPECT_TRUE(trace[1].is_write);
}

TEST(TraceIoTest, RejectsMalformedLines) {
  for (const char* bad :
       {"X 10 4\n", "R zz 4\n", "R 10\n", "R 10 0\n", "R 10 4 extra\n",
        // non-power-of-two sizes
        "R 10 3\n", "W 10 6\n", "R 10 100\n",
        // address + size overflows the 32-bit space
        "R fffffffe 4\n", "W ffffffff 2\n"}) {
    std::stringstream in(bad);
    EXPECT_THROW(read_trace(in), std::runtime_error) << bad;
  }
}

TEST(TraceIoTest, LoadedTraceDrivesTheSimulator) {
  // A trace written to disk must simulate identically to the original.
  Rng rng(5);
  MemTrace trace;
  for (int i = 0; i < 3000; ++i) {
    trace.push_back(MemRef{
        static_cast<std::uint32_t>(rng.below(16384)) & ~3u, 4,
        rng.bernoulli(0.3)});
  }
  std::stringstream stream;
  write_trace(stream, trace);
  const MemTrace loaded = read_trace(stream);
  const CacheSimResult a = simulate_trace(trace, kSmall);
  const CacheSimResult b = simulate_trace(loaded, kSmall);
  EXPECT_EQ(a.stats.hits, b.stats.hits);
  EXPECT_EQ(a.stats.writebacks, b.stats.writebacks);
}

}  // namespace
}  // namespace hetsched
