// Tests for src/cache: configuration model, Table-1 design space,
// set-associative cache behaviour, replacement policies, hierarchy and
// tuner — including property sweeps over all 18 configurations.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/cache_tuner.hpp"
#include "cache/hierarchy.hpp"
#include "util/rng.hpp"

namespace hetsched {
namespace {

TEST(CacheConfigTest, GeometryDerivation) {
  const CacheConfig config{8192, 4, 64};
  EXPECT_EQ(config.num_lines(), 128u);
  EXPECT_EQ(config.num_sets(), 32u);
  EXPECT_EQ(config.size_kb(), 8u);
  EXPECT_TRUE(config.valid());
}

TEST(CacheConfigTest, InvalidConfigsAreRejected) {
  EXPECT_FALSE((CacheConfig{3000, 1, 16}).valid());  // non power of two
  EXPECT_FALSE((CacheConfig{2048, 3, 16}).valid());  // assoc not pow2
  EXPECT_FALSE((CacheConfig{2048, 1, 4096}).valid());  // line > size
  EXPECT_FALSE((CacheConfig{64, 32, 16}).valid());   // assoc > lines
  EXPECT_TRUE((CacheConfig{64, 4, 16}).valid());
}

TEST(CacheConfigTest, NameAndParseRoundTrip) {
  for (const CacheConfig& config : DesignSpace::all()) {
    const auto parsed = CacheConfig::parse(config.name());
    ASSERT_TRUE(parsed.has_value()) << config.name();
    EXPECT_EQ(*parsed, config);
  }
  EXPECT_EQ((CacheConfig{8192, 4, 64}).name(), "8KB_4W_64B");
}

TEST(CacheConfigTest, ParseRejectsGarbage) {
  EXPECT_FALSE(CacheConfig::parse("").has_value());
  EXPECT_FALSE(CacheConfig::parse("8KB").has_value());
  EXPECT_FALSE(CacheConfig::parse("8KB_3W_64B").has_value());
  EXPECT_FALSE(CacheConfig::parse("8KB_4W_64B_extra").has_value());
  EXPECT_FALSE(CacheConfig::parse("notaconfig").has_value());
}

TEST(CacheConfigTest, AddressDecomposition) {
  const CacheConfig config{2048, 1, 16};  // 128 sets
  const std::uint32_t addr = 0x1234;
  EXPECT_EQ(config.line_address(addr), addr / 16);
  EXPECT_EQ(config.set_index(addr), (addr / 16) % 128);
  EXPECT_EQ(config.tag(addr), (addr / 16) / 128);
}

TEST(DesignSpaceTest, Table1HasEighteenConfigs) {
  EXPECT_EQ(DesignSpace::all().size(), 18u);
  EXPECT_EQ(DesignSpace::configs_for_size(2048).size(), 3u);
  EXPECT_EQ(DesignSpace::configs_for_size(4096).size(), 6u);
  EXPECT_EQ(DesignSpace::configs_for_size(8192).size(), 9u);
}

TEST(DesignSpaceTest, SubsettedAssociativities) {
  EXPECT_EQ(DesignSpace::associativities_for(2048),
            (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(DesignSpace::associativities_for(4096),
            (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(DesignSpace::associativities_for(8192),
            (std::vector<std::uint32_t>{1, 2, 4}));
  EXPECT_TRUE(DesignSpace::associativities_for(1024).empty());
}

TEST(DesignSpaceTest, IndexOfRoundTrips) {
  const auto& all = DesignSpace::all();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto idx = DesignSpace::index_of(all[i]);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, i);
  }
  EXPECT_FALSE(DesignSpace::index_of(CacheConfig{16384, 1, 16}).has_value());
  // 2KB 2-way is a valid cache but not in Table 1.
  EXPECT_FALSE(DesignSpace::index_of(CacheConfig{2048, 2, 16}).has_value());
}

TEST(DesignSpaceTest, BaseConfigIsLargest) {
  const CacheConfig base = DesignSpace::base_config();
  EXPECT_EQ(base.name(), "8KB_4W_64B");
  EXPECT_TRUE(DesignSpace::index_of(base).has_value());
}

TEST(CacheTest, FirstAccessMissesThenHits) {
  Cache cache(CacheConfig{2048, 1, 16});
  EXPECT_FALSE(cache.access(0x1000, 4, false).hit);
  EXPECT_TRUE(cache.access(0x1000, 4, false).hit);
  EXPECT_TRUE(cache.access(0x100c, 4, false).hit);  // same line
  EXPECT_FALSE(cache.access(0x1010, 4, false).hit);  // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CacheTest, DirectMappedConflictEviction) {
  const CacheConfig config{2048, 1, 16};  // 128 sets
  Cache cache(config);
  const std::uint32_t stride = 128 * 16;  // same set, different tag
  EXPECT_FALSE(cache.access(0x0, 4, false).hit);
  EXPECT_FALSE(cache.access(stride, 4, false).hit);
  EXPECT_FALSE(cache.access(0x0, 4, false).hit) << "evicted by conflict";
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(CacheTest, TwoWayAbsorbsConflictPair) {
  const CacheConfig config{4096, 2, 16};  // 128 sets
  Cache cache(config);
  const std::uint32_t stride = 128 * 16;
  cache.access(0x0, 4, false);
  cache.access(stride, 4, false);
  EXPECT_TRUE(cache.access(0x0, 4, false).hit);
  EXPECT_TRUE(cache.access(stride, 4, false).hit);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  const CacheConfig config{4096, 2, 16};
  Cache cache(config, ReplacementPolicy::kLru);
  const std::uint32_t stride = 128 * 16;
  cache.access(0 * stride, 4, false);
  cache.access(1 * stride, 4, false);
  cache.access(0 * stride, 4, false);  // touch A: B is now LRU
  cache.access(2 * stride, 4, false);  // evicts B
  EXPECT_TRUE(cache.access(0 * stride, 4, false).hit);
  EXPECT_FALSE(cache.access(1 * stride, 4, false).hit);
}

TEST(CacheTest, FifoEvictsOldestRegardlessOfUse) {
  const CacheConfig config{4096, 2, 16};
  Cache cache(config, ReplacementPolicy::kFifo);
  const std::uint32_t stride = 128 * 16;
  cache.access(0 * stride, 4, false);  // A filled first
  cache.access(1 * stride, 4, false);
  cache.access(0 * stride, 4, false);  // touching A must not matter
  cache.access(2 * stride, 4, false);  // evicts A (oldest fill)
  EXPECT_FALSE(cache.access(0 * stride, 4, false).hit);
}

TEST(CacheTest, RandomPolicyRequiresRngAndStaysFunctional) {
  Rng rng(5);
  Cache cache(CacheConfig{4096, 2, 16}, ReplacementPolicy::kRandom, &rng);
  const std::uint32_t stride = 128 * 16;
  for (std::uint32_t i = 0; i < 8; ++i) {
    cache.access(i * stride, 4, false);
  }
  EXPECT_EQ(cache.stats().misses, 8u);
  EXPECT_EQ(cache.stats().evictions, 6u);  // 2 ways held, 6 evicted
}

TEST(CacheTest, WritebackOnDirtyEviction) {
  const CacheConfig config{2048, 1, 16};
  Cache cache(config);
  const std::uint32_t stride = 128 * 16;
  cache.access(0x0, 4, true);           // dirty fill
  const auto r = cache.access(stride, 4, false);  // evicts dirty line
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  // Clean eviction produces no writeback.
  const auto r2 = cache.access(2 * stride, 4, false);
  EXPECT_FALSE(r2.writeback);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheTest, WriteHitMarksLineDirty) {
  const CacheConfig config{2048, 1, 16};
  Cache cache(config);
  cache.access(0x0, 4, false);  // clean fill
  cache.access(0x4, 4, true);   // write hit dirties it
  const std::uint32_t stride = 128 * 16;
  EXPECT_TRUE(cache.access(stride, 4, false).writeback);
}

TEST(CacheTest, FlushWritesBackDirtyLinesAndInvalidates) {
  Cache cache(CacheConfig{2048, 1, 16});
  cache.access(0x0, 4, true);
  cache.access(0x20, 4, false);
  EXPECT_EQ(cache.dirty_lines(), 1u);
  EXPECT_EQ(cache.flush(), 1u);
  EXPECT_EQ(cache.dirty_lines(), 0u);
  EXPECT_FALSE(cache.access(0x0, 4, false).hit) << "flush invalidates";
}

TEST(CacheTest, AccessSpanningTwoLinesTouchesBoth) {
  Cache cache(CacheConfig{2048, 1, 16});
  // 8-byte access at line_end-4 crosses into the next line.
  const auto r = cache.access(16 - 4, 8, false);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(cache.stats().accesses, 2u);
  EXPECT_TRUE(cache.access(0, 4, false).hit);
  EXPECT_TRUE(cache.access(16, 4, false).hit);
}

TEST(CacheTest, CompulsoryMissesCountUniqueLines) {
  Cache cache(CacheConfig{2048, 1, 16});
  const std::uint32_t stride = 128 * 16;
  cache.access(0, 4, false);
  cache.access(stride, 4, false);  // evicts line 0
  cache.access(0, 4, false);       // conflict miss, NOT compulsory
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().compulsory_misses, 2u);
}

TEST(CacheTest, ResetStatsKeepsContents) {
  Cache cache(CacheConfig{2048, 1, 16});
  cache.access(0x0, 4, false);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_TRUE(cache.access(0x0, 4, false).hit) << "contents survive";
}

// ---- Property sweep over every Table-1 configuration ----

class CacheConfigSweep : public ::testing::TestWithParam<CacheConfig> {
 protected:
  static MemTrace random_trace(std::size_t n, std::uint32_t span,
                               std::uint64_t seed) {
    Rng rng(seed);
    MemTrace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      trace.push_back(MemRef{
          static_cast<std::uint32_t>(rng.below(span)) & ~3u, 4,
          rng.bernoulli(0.3)});
    }
    return trace;
  }
};

TEST_P(CacheConfigSweep, AccountingInvariantsHold) {
  const MemTrace trace = random_trace(20000, 32768, 11);
  const CacheSimResult result = simulate_trace(trace, GetParam());
  const CacheStats& s = result.stats;
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_EQ(s.read_misses + s.write_misses, s.misses);
  EXPECT_LE(s.compulsory_misses, s.misses);
  EXPECT_LE(s.evictions, s.misses);
  EXPECT_LE(s.writebacks, s.evictions);
  EXPECT_GE(s.accesses, trace.size());  // line-spanning only adds
}

TEST_P(CacheConfigSweep, DeterministicAcrossRuns) {
  const MemTrace trace = random_trace(5000, 16384, 12);
  const CacheSimResult a = simulate_trace(trace, GetParam());
  const CacheSimResult b = simulate_trace(trace, GetParam());
  EXPECT_EQ(a.stats.hits, b.stats.hits);
  EXPECT_EQ(a.stats.writebacks, b.stats.writebacks);
}

TEST_P(CacheConfigSweep, SequentialStreamMissesOncePerLine) {
  const CacheConfig config = GetParam();
  MemTrace trace;
  const std::uint32_t bytes = config.size_bytes / 2;  // fits comfortably
  for (std::uint32_t a = 0; a < bytes; a += 4) {
    trace.push_back(MemRef{a, 4, false});
  }
  const CacheSimResult result = simulate_trace(trace, config);
  EXPECT_EQ(result.stats.misses, bytes / config.line_bytes);
  EXPECT_EQ(result.stats.compulsory_misses, result.stats.misses);
}

TEST_P(CacheConfigSweep, WorkingSetSmallerThanCacheEventuallyAllHits) {
  const CacheConfig config = GetParam();
  // Touch half the cache twice; second pass must be all hits (any policy
  // keeps a working set smaller than capacity when accessed in order).
  MemTrace trace;
  const std::uint32_t bytes = config.size_bytes / 2;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint32_t a = 0; a < bytes; a += 4) {
      trace.push_back(MemRef{a, 4, false});
    }
  }
  const CacheSimResult result = simulate_trace(trace, config);
  EXPECT_EQ(result.stats.misses, bytes / config.line_bytes)
      << "second pass must not miss";
}

INSTANTIATE_TEST_SUITE_P(
    Table1, CacheConfigSweep, ::testing::ValuesIn(DesignSpace::all()),
    [](const ::testing::TestParamInfo<CacheConfig>& info) {
      return info.param.name();
    });

TEST(CacheHierarchyTest, L2AbsorbsL1Misses) {
  CacheHierarchy hierarchy(CacheConfig{2048, 1, 16});
  // Working set bigger than L1 but smaller than L2 (32 KB).
  MemTrace trace;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint32_t a = 0; a < 8192; a += 4) {
      trace.push_back(MemRef{a, 4, false});
    }
  }
  for (const MemRef& ref : trace) hierarchy.access(ref);
  const HierarchyStats stats = hierarchy.stats();
  EXPECT_GT(stats.l1.misses, 0u);
  // Every second-pass L1 miss must hit in L2.
  EXPECT_LT(stats.global_miss_rate(), stats.l1.miss_rate());
  EXPECT_GT(stats.l2.hits, 0u);
}

TEST(CacheHierarchyTest, SimulateHelperMatchesManualLoop) {
  MemTrace trace;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    trace.push_back(MemRef{
        static_cast<std::uint32_t>(rng.below(16384)) & ~3u, 4, false});
  }
  const HierarchyStats a =
      simulate_hierarchy(trace, CacheConfig{4096, 2, 32});
  CacheHierarchy h(CacheConfig{4096, 2, 32});
  for (const MemRef& ref : trace) h.access(ref);
  EXPECT_EQ(a.l1.hits, h.stats().l1.hits);
  EXPECT_EQ(a.l2.misses, h.stats().l2.misses);
}

TEST(CacheTunerTest, ReconfigureFlushesAndCounts) {
  CacheTuner tuner(8192, CacheConfig{8192, 1, 16});
  tuner.cache().access(0x0, 4, true);
  tuner.cache().access(0x40, 4, false);
  const ReconfigureCost cost = tuner.reconfigure(CacheConfig{8192, 2, 32});
  EXPECT_EQ(cost.flushed_writebacks, 1u);
  EXPECT_EQ(tuner.reconfigurations(), 1u);
  EXPECT_EQ(tuner.cache().config().associativity, 2u);
  EXPECT_FALSE(tuner.cache().access(0x0, 4, false).hit) << "cold start";
}

TEST(CacheTunerTest, SameConfigReconfigureIsFree) {
  CacheTuner tuner(8192, CacheConfig{8192, 1, 16});
  tuner.cache().access(0x0, 4, true);
  const ReconfigureCost cost = tuner.reconfigure(CacheConfig{8192, 1, 16});
  EXPECT_EQ(cost.flushed_writebacks, 0u);
  EXPECT_EQ(tuner.reconfigurations(), 0u);
  EXPECT_TRUE(tuner.cache().access(0x0, 4, false).hit) << "state preserved";
}

}  // namespace
}  // namespace hetsched
