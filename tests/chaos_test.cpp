// Chaos suite: crash-safety properties of the resilient-execution layer.
//
// The headline property: a streaming run killed at ANY checkpoint
// boundary and resumed from the snapshot produces bit-identical outputs
// (StreamStats digest, serialized result, window JSONL, and every later
// checkpoint) to the uninterrupted run — with and without fault
// injection. Alongside it: corrupted/truncated/mismatched snapshots are
// rejected, supervised sweeps quarantine hung and timed-out cells
// instead of aborting, a manifest-resumed sweep merges byte-identically,
// and the bench gate treats non-finite candidate values as regressions.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "experiment/sweep.hpp"
#include "obs/bench_diff.hpp"
#include "obs/windowed.hpp"
#include "scenario/checkpoint.hpp"
#include "scenario/scenario_runner.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hetsched {
namespace {

// One cheap suite shared by every test below; the base/optimal policies
// need no predictor training. Fault plans vary per test but do not
// affect the context, so one context serves them all.
struct World {
  Scenario base;
  ScenarioContext context;
};

World& world() {
  static World* w = [] {
    Scenario s;
    s.name = "chaos-fixture";
    s.system = Scenario::SystemKind::kScaledHeterogeneous;
    s.cores = 4;
    s.policy = "optimal";
    s.seed = 42;
    s.arrivals.count = 300;
    s.arrivals.mean_interarrival_cycles = 40000.0;
    s.suite.kernel_scale = 0.25;
    s.suite.variants_per_kernel = 1;
    return new World{s, ScenarioContext(s)};
  }();
  return *w;
}

std::string result_text(const SimulationResult& result) {
  std::ostringstream out;
  save_simulation_result(out, result);
  return out.str();
}

std::string windows_text(const WindowedCollector& collector) {
  std::ostringstream out;
  collector.write_jsonl(out);
  return out.str();
}

// --- Durable atomic outputs ----------------------------------------------

TEST(AtomicFile, WritesAndOverwrites) {
  const std::string path = testing::TempDir() + "chaos_atomic.txt";
  ASSERT_TRUE(atomic_write_file(path, "first\n"));
  ASSERT_TRUE(atomic_write_file(path, "second\n"));
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "second\n");
}

TEST(AtomicFile, FailsWithoutParentDirectory) {
  const std::string path =
      testing::TempDir() + "no-such-dir-chaos/out.txt";
  EXPECT_FALSE(atomic_write_file(path, "content"));
  EXPECT_FALSE(std::ifstream(path).good());
}

// --- Rng state round trip ------------------------------------------------

TEST(RngState, RoundTripContinuesBitIdentically) {
  Rng original(1234);
  for (int i = 0; i < 17; ++i) (void)original.next();
  // One normal() leaves the Marsaglia spare pending — the part of the
  // state a naive xoshiro-words-only snapshot would lose.
  (void)original.normal();

  std::ostringstream saved;
  original.save_state(saved);
  Rng restored(999);  // deliberately different seed
  std::istringstream in(saved.str());
  restored.restore_state(in, "test");

  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(original.next(), restored.next());
    EXPECT_EQ(original.normal(), restored.normal());
  }
}

TEST(RngState, RejectsGarbage) {
  Rng rng(1);
  std::istringstream in("not an rng snapshot");
  EXPECT_THROW(rng.restore_state(in, "test"), std::runtime_error);
}

// --- Checkpoint / resume -------------------------------------------------

CheckpointRunOptions base_checkpoint_options() {
  CheckpointRunOptions options;
  options.window_cycles = 1'000'000;
  options.checkpoint_every = 1;
  return options;
}

// The checkpointing driver itself must not perturb the simulation.
TEST(CheckpointResume, DriverMatchesPlainScenarioRun) {
  World& w = world();
  const ScenarioOutcome plain = run_scenario(w.base, w.context);
  const CheckpointRunOutcome checkpointed =
      run_scenario_checkpointed(w.base, w.context,
                                base_checkpoint_options());
  EXPECT_FALSE(checkpointed.halted);
  EXPECT_GT(checkpointed.checkpoints_written, 2u);
  EXPECT_EQ(checkpointed.stream.digest(), plain.stream.digest());
  EXPECT_EQ(result_text(checkpointed.result), result_text(plain.result));
}

// Kill-and-resume property: for EVERY checkpoint the full run produced,
// a fresh process resuming from it reproduces the full run's outputs
// byte for byte — including all later checkpoints.
void expect_kill_resume_identity(const Scenario& scenario,
                                 const ScenarioContext& context) {
  CheckpointRunOptions options = base_checkpoint_options();
  std::vector<std::string> checkpoints;
  options.capture_checkpoints = &checkpoints;
  const CheckpointRunOutcome full =
      run_scenario_checkpointed(scenario, context, options);
  ASSERT_FALSE(full.halted);
  ASSERT_GE(checkpoints.size(), 3u);

  const std::uint64_t ref_digest = full.stream.digest();
  const std::string ref_result = result_text(full.result);
  const std::string ref_windows = windows_text(full.windows);

  for (std::size_t k = 0; k < checkpoints.size(); ++k) {
    CheckpointRunOptions resume = base_checkpoint_options();
    resume.resume_text = checkpoints[k];
    std::vector<std::string> tail;
    resume.capture_checkpoints = &tail;
    const CheckpointRunOutcome resumed =
        run_scenario_checkpointed(scenario, context, resume);
    ASSERT_FALSE(resumed.halted);
    EXPECT_EQ(resumed.resumed_from, k + 1);
    EXPECT_EQ(resumed.stream.digest(), ref_digest) << "boundary " << k + 1;
    EXPECT_EQ(result_text(resumed.result), ref_result)
        << "boundary " << k + 1;
    EXPECT_EQ(windows_text(resumed.windows), ref_windows)
        << "boundary " << k + 1;
    ASSERT_EQ(tail.size(), checkpoints.size() - k - 1);
    for (std::size_t j = 0; j < tail.size(); ++j) {
      EXPECT_EQ(tail[j], checkpoints[k + 1 + j])
          << "checkpoint " << k + 1 + j << " resumed from " << k + 1;
    }
  }
}

TEST(CheckpointResume, KillAtEveryBoundaryIsBitIdentical) {
  World& w = world();
  expect_kill_resume_identity(w.base, w.context);
}

TEST(CheckpointResume, KillAtEveryBoundaryWithFaultsIsBitIdentical) {
  World& w = world();
  Scenario faulty = w.base;
  faulty.name = "chaos-fixture-faulty";
  faulty.faults.seed = 7;
  faulty.faults.core_events.push_back({2'000'000, 1, true});
  faulty.faults.core_events.push_back({5'000'000, 1, false});
  faulty.faults.reconfig_failure_rate = 0.05;
  faulty.faults.stuck_job_rate = 0.05;
  expect_kill_resume_identity(faulty, w.context);
}

// 64-core machine: the dispatch index is derived state, rebuilt (not
// serialized) on restore, so a resume must reconstruct multi-word idle
// bitmaps, per-size online counts and the clamp memo epoch exactly —
// including boundaries where failed cores are offline. The context is
// reusable because it never depends on the machine shape.
TEST(CheckpointResume, SixtyFourCoreKillAtEveryBoundaryIsBitIdentical) {
  World& w = world();
  Scenario big = w.base;
  big.name = "chaos-fixture-64core";
  big.cores = 64;
  // Keep the per-core load of the 4-core fixture so the run still spans
  // several checkpoint windows.
  big.arrivals.mean_interarrival_cycles = 40000.0 * 4.0 / 64.0;
  big.arrivals.count = 2000;
  // Overlapping outages in different size classes, so some checkpoint
  // boundaries land with cores down in more than one bitmap word.
  big.faults.seed = 11;
  big.faults.core_events.push_back({1'500'000, 9, true});
  big.faults.core_events.push_back({4'500'000, 9, false});
  big.faults.core_events.push_back({2'000'000, 33, true});
  big.faults.core_events.push_back({5'500'000, 33, false});
  big.faults.core_events.push_back({2'500'000, 60, true});
  big.faults.core_events.push_back({6'000'000, 60, false});
  expect_kill_resume_identity(big, w.context);
}

// File-level crash walkthrough: halt after two checkpoints (exit-3 path
// in the CLI), then resume from the file on disk.
TEST(CheckpointResume, HaltAndResumeFromFile) {
  World& w = world();
  const std::string path = testing::TempDir() + "chaos_resume.ckpt";

  CheckpointRunOptions halt = base_checkpoint_options();
  halt.checkpoint_out = path;
  halt.halt_after_checkpoints = 2;
  const CheckpointRunOutcome halted =
      run_scenario_checkpointed(w.base, w.context, halt);
  EXPECT_TRUE(halted.halted);
  EXPECT_EQ(halted.checkpoints_written, 2u);

  CheckpointRunOptions resume = base_checkpoint_options();
  resume.resume_from = path;
  const CheckpointRunOutcome resumed =
      run_scenario_checkpointed(w.base, w.context, resume);
  EXPECT_EQ(resumed.resumed_from, 2u);

  const CheckpointRunOutcome full = run_scenario_checkpointed(
      w.base, w.context, base_checkpoint_options());
  EXPECT_EQ(resumed.stream.digest(), full.stream.digest());
  EXPECT_EQ(result_text(resumed.result), result_text(full.result));
  EXPECT_EQ(windows_text(resumed.windows), windows_text(full.windows));
}

// --- Checkpoint rejection ------------------------------------------------

class CheckpointRejection : public ::testing::Test {
 protected:
  static const std::string& checkpoint() {
    static const std::string* text = [] {
      CheckpointRunOptions options = base_checkpoint_options();
      options.halt_after_checkpoints = 1;
      std::vector<std::string> captured;
      options.capture_checkpoints = &captured;
      run_scenario_checkpointed(world().base, world().context, options);
      return new std::string(captured.at(0));
    }();
    return *text;
  }

  static void expect_rejected(const CheckpointRunOptions& options) {
    EXPECT_THROW(
        run_scenario_checkpointed(world().base, world().context, options),
        std::runtime_error);
  }
};

TEST_F(CheckpointRejection, Garbage) {
  CheckpointRunOptions options = base_checkpoint_options();
  options.resume_text = "definitely not a checkpoint\n";
  expect_rejected(options);
}

TEST_F(CheckpointRejection, Truncated) {
  CheckpointRunOptions options = base_checkpoint_options();
  options.resume_text = checkpoint().substr(0, checkpoint().size() / 2);
  expect_rejected(options);
}

TEST_F(CheckpointRejection, CorruptedByte) {
  std::string mutated = checkpoint();
  const std::size_t at = mutated.size() / 2;
  mutated[at] = mutated[at] == '7' ? '8' : '7';
  CheckpointRunOptions options = base_checkpoint_options();
  options.resume_text = mutated;
  expect_rejected(options);
}

TEST_F(CheckpointRejection, DifferentScenario) {
  Scenario other = world().base;
  other.seed = 43;
  CheckpointRunOptions options = base_checkpoint_options();
  options.resume_text = checkpoint();
  EXPECT_THROW(run_scenario_checkpointed(other, world().context, options),
               std::runtime_error);
}

TEST_F(CheckpointRejection, DifferentWindowParameters) {
  CheckpointRunOptions options = base_checkpoint_options();
  options.window_cycles = 2'000'000;
  options.resume_text = checkpoint();
  expect_rejected(options);
}

TEST_F(CheckpointRejection, MissingFile) {
  CheckpointRunOptions options = base_checkpoint_options();
  options.resume_from = testing::TempDir() + "chaos-no-such.ckpt";
  expect_rejected(options);
}

// --- Supervised sweeps ---------------------------------------------------

SweepGrid sweep_grid() {
  SweepGrid grid;
  grid.base = world().base;
  grid.base.arrivals.count = 60;
  grid.core_counts = {4, 6};
  grid.mean_gaps = {40000.0};
  grid.policies = {"base", "optimal"};
  return grid;
}

TEST(SupervisedSweep, TimeoutQuarantineWithRetries) {
  SweepGrid grid = sweep_grid();
  grid.base.arrivals.count = 200000;  // far beyond a 1 ms budget
  grid.core_counts = {4};
  grid.policies = {"optimal"};

  SweepSupervisorOptions options;
  options.cell_timeout_ms = 1;
  options.supervision_slice_cycles = 50'000;
  options.max_attempts = 2;
  const SupervisedSweepResult result = run_sweep_supervised(
      grid, world().context, 1, ThreadPool::global(), options);

  ASSERT_EQ(result.failed.size(), 1u);
  EXPECT_EQ(result.failed[0].label, "c4.g0.optimal");
  EXPECT_TRUE(result.failed[0].timed_out);
  EXPECT_EQ(result.failed[0].attempts, 2u);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_FALSE(result.cells[0].completed);
  EXPECT_EQ(result.cells[0].label, "c4.g0.optimal");
}

TEST(SupervisedSweep, DeadlockedCellsAreQuarantinedNotFatal) {
  SweepGrid grid = sweep_grid();
  // Fail every core of the 4-core machines with no scheduled recovery:
  // those cells deadlock (a thrown error), the 6-core cells keep two
  // live cores and must complete untouched.
  for (std::size_t core = 0; core < 4; ++core) {
    grid.base.faults.core_events.push_back({50'000, core, true});
  }

  SweepSupervisorOptions options;
  const SupervisedSweepResult result = run_sweep_supervised(
      grid, world().context, grid.cell_count(), ThreadPool::global(),
      options);

  ASSERT_EQ(result.failed.size(), 2u);
  EXPECT_EQ(result.failed[0].label, "c4.g0.base");
  EXPECT_EQ(result.failed[1].label, "c4.g0.optimal");
  EXPECT_FALSE(result.failed[0].timed_out);
  EXPECT_NE(result.failed[0].reason.find("deadlock"), std::string::npos);
  for (const SweepCell& cell : result.cells) {
    EXPECT_EQ(cell.completed, cell.cores == 6) << cell.label;
    if (cell.completed) {
      EXPECT_EQ(cell.result.completed_jobs, 60u) << cell.label;
    }
  }
}

TEST(SupervisedSweep, ManifestResumeIsByteIdentical) {
  const SweepGrid grid = sweep_grid();
  SweepSupervisorOptions options;
  options.window_cycles = 1'000'000;

  const SupervisedSweepResult clean = run_sweep_supervised(
      grid, world().context, 2, ThreadPool::global(), options);
  ASSERT_TRUE(clean.failed.empty());
  ASSERT_EQ(clean.cells.size(), 4u);
  EXPECT_FALSE(clean.cells[0].windows_jsonl.empty());

  // Simulate a crash after two completed cells: a manifest holding only
  // those, resumed into a fresh sweep.
  const std::vector<SweepCell> subset(clean.cells.begin(),
                                      clean.cells.begin() + 2);
  SweepSupervisorOptions resume = options;
  resume.resume_manifest_text = serialize_sweep_manifest(grid, subset);
  const SupervisedSweepResult resumed = run_sweep_supervised(
      grid, world().context, 2, ThreadPool::global(), resume);

  ASSERT_TRUE(resumed.failed.empty());
  EXPECT_EQ(resumed.resumed_cells, 2u);
  // Byte-identity of the complete merged payload (results, digests,
  // window summaries and raw window JSONL) via the canonical
  // serialization.
  EXPECT_EQ(serialize_sweep_manifest(grid, resumed.cells),
            serialize_sweep_manifest(grid, clean.cells));
}

TEST(SupervisedSweep, ManifestRejection) {
  const SweepGrid grid = sweep_grid();
  SweepSupervisorOptions options;
  options.window_cycles = 1'000'000;
  const SupervisedSweepResult clean = run_sweep_supervised(
      grid, world().context, 2, ThreadPool::global(), options);
  const std::string manifest =
      serialize_sweep_manifest(grid, clean.cells);

  EXPECT_THROW(parse_sweep_manifest("garbage", grid, "test"),
               std::runtime_error);
  EXPECT_THROW(parse_sweep_manifest(
                   manifest.substr(0, manifest.size() / 2), grid, "test"),
               std::runtime_error);
  std::string mutated = manifest;
  const std::size_t at = mutated.size() / 3;
  mutated[at] = mutated[at] == '7' ? '8' : '7';
  EXPECT_THROW(parse_sweep_manifest(mutated, grid, "test"),
               std::runtime_error);
  SweepGrid other = grid;
  other.base.seed = 43;
  EXPECT_THROW(parse_sweep_manifest(manifest, other, "test"),
               std::runtime_error);

  // A rejected manifest must also fail the supervised run up front.
  SweepSupervisorOptions resume = options;
  resume.resume_manifest_text = "garbage";
  EXPECT_THROW(run_sweep_supervised(grid, world().context, 2,
                                    ThreadPool::global(), resume),
               std::runtime_error);
}

// --- Bench regression gate vs non-finite values --------------------------

TEST(BenchDiffGate, NonFiniteCurrentAlwaysRegresses) {
  // 1e999 overflows strtod to +inf — the way a broken bench's NaN/Inf
  // actually reaches the gate. Without the isfinite guard every
  // comparison against inf/NaN is false and the gate waves it through.
  const std::string baseline =
      R"({"wall_ms": 100.0, "speedup": 2.0})";
  const std::string current =
      R"({"wall_ms": 1e999, "speedup": 1e999})";
  const BenchDiffResult diff = bench_diff(baseline, current, 0.5);
  ASSERT_EQ(diff.compared.size(), 2u);
  EXPECT_TRUE(diff.regressed());
  // Both directions: inf wall time (lower-is-better) and inf "speedup"
  // (higher-is-better, where inf would naively look like a win).
  for (const BenchComparison& c : diff.compared) {
    EXPECT_TRUE(c.regressed) << c.path;
  }
}

TEST(BenchDiffGate, NonFiniteBaselineIsSkippedNotCompared) {
  const std::string baseline = R"({"wall_ms": 1e999})";
  const std::string current = R"({"wall_ms": 100.0})";
  const BenchDiffResult diff = bench_diff(baseline, current, 0.5);
  EXPECT_TRUE(diff.compared.empty());
  EXPECT_FALSE(diff.regressed());
  ASSERT_EQ(diff.skipped.size(), 1u);
  EXPECT_EQ(diff.skipped[0], "wall_ms");
}

}  // namespace
}  // namespace hetsched
