// Tests for src/core data structures and algorithms: system configuration,
// profiling table, Figure-5 tuning heuristic (scripted energy landscapes),
// and the Section IV.E energy-advantage decision.
#include <gtest/gtest.h>

#include "core/energy_decision.hpp"
#include "util/rng.hpp"
#include "core/profiling_table.hpp"
#include "core/system_config.hpp"
#include "core/tuning_heuristic.hpp"

namespace hetsched {
namespace {

Observation obs(double total) {
  return Observation{NanoJoules(total), NanoJoules(total / 2), 1000};
}

// ---------------- SystemConfig ----------------

TEST(SystemConfigTest, PaperQuadcoreShape) {
  const SystemConfig system = SystemConfig::paper_quadcore();
  ASSERT_EQ(system.core_count(), 4u);
  EXPECT_EQ(system.cores[0].cache_size_bytes, 2048u);
  EXPECT_EQ(system.cores[1].cache_size_bytes, 4096u);
  EXPECT_EQ(system.cores[2].cache_size_bytes, 8192u);
  EXPECT_EQ(system.cores[3].cache_size_bytes, 8192u);
  EXPECT_TRUE(system.cores[2].can_profile);
  EXPECT_TRUE(system.cores[3].can_profile);
  EXPECT_FALSE(system.cores[0].can_profile);
  EXPECT_EQ(system.primary_profiling_core, 3u);
  EXPECT_EQ(system.secondary_profiling_core, 2u);
  EXPECT_TRUE(system.valid());
}

TEST(SystemConfigTest, FixedBaseIsHomogeneous) {
  const SystemConfig system = SystemConfig::fixed_base(4);
  for (const CoreSpec& core : system.cores) {
    EXPECT_EQ(core.initial_config, DesignSpace::base_config());
    EXPECT_FALSE(core.can_profile);
  }
  EXPECT_TRUE(system.valid());
}

TEST(SystemConfigTest, CoresWithSize) {
  const SystemConfig system = SystemConfig::paper_quadcore();
  EXPECT_EQ(system.cores_with_size(2048),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(system.cores_with_size(8192),
            (std::vector<std::size_t>{2, 3}));
  EXPECT_TRUE(system.cores_with_size(16384).empty());
}

TEST(SystemConfigTest, ValidityChecks) {
  SystemConfig system = SystemConfig::paper_quadcore();
  system.cores[0].initial_config = CacheConfig{4096, 1, 16};  // size clash
  EXPECT_FALSE(system.valid());
  system = SystemConfig::paper_quadcore();
  system.primary_profiling_core = 9;
  EXPECT_FALSE(system.valid());
  system = SystemConfig{};
  EXPECT_FALSE(system.valid());
}

// ---------------- ProfilingTable ----------------

TEST(ProfilingTableTest, RecordAndFind) {
  ProfilingTable table(3);
  const CacheConfig config{4096, 2, 32};
  EXPECT_EQ(table.entry(1).find(config), nullptr);
  table.record(1, config, obs(50));
  ASSERT_NE(table.entry(1).find(config), nullptr);
  EXPECT_DOUBLE_EQ(table.entry(1).find(config)->total_energy.value(), 50);
  EXPECT_EQ(table.entry(0).find(config), nullptr) << "entries independent";
  // Overwrite.
  table.record(1, config, obs(40));
  EXPECT_DOUBLE_EQ(table.entry(1).find(config)->total_energy.value(), 40);
}

TEST(ProfilingTableTest, ObservedCountsAndFullExploration) {
  ProfilingTable table(1);
  ProfilingTable::Entry& entry = table.entry(0);
  EXPECT_EQ(entry.observed_count(), 0u);
  EXPECT_FALSE(entry.fully_explored());
  double energy = 100;
  for (const CacheConfig& config : DesignSpace::all()) {
    table.record(0, config, obs(energy));
    energy -= 1;
  }
  EXPECT_TRUE(entry.fully_explored());
  EXPECT_EQ(entry.observed_count_for_size(8192), 9u);
  EXPECT_EQ(entry.observed_count_for_size(2048), 3u);
}

TEST(ProfilingTableTest, BestObservedTracksMinimum) {
  ProfilingTable table(1);
  ProfilingTable::Entry& entry = table.entry(0);
  EXPECT_FALSE(entry.best_observed().has_value());
  table.record(0, CacheConfig{2048, 1, 16}, obs(80));
  table.record(0, CacheConfig{8192, 4, 64}, obs(30));
  table.record(0, CacheConfig{4096, 1, 32}, obs(55));
  EXPECT_EQ(entry.best_observed()->name(), "8KB_4W_64B");
  EXPECT_EQ(entry.best_observed_for_size(4096)->name(), "4KB_1W_32B");
  EXPECT_FALSE(entry.best_observed_for_size(4096).has_value() &&
               entry.best_observed_for_size(4096)->size_bytes != 4096);
}

TEST(ProfilingTableTest, NextUnexploredWalksCanonicalOrder) {
  ProfilingTable table(1);
  ProfilingTable::Entry& entry = table.entry(0);
  EXPECT_EQ(entry.next_unexplored_for_size(2048)->name(), "2KB_1W_16B");
  table.record(0, CacheConfig{2048, 1, 16}, obs(10));
  EXPECT_EQ(entry.next_unexplored_for_size(2048)->name(), "2KB_1W_32B");
  table.record(0, CacheConfig{2048, 1, 32}, obs(10));
  table.record(0, CacheConfig{2048, 1, 64}, obs(10));
  EXPECT_FALSE(entry.next_unexplored_for_size(2048).has_value());
}

// ---------------- TuningHeuristic (Figure 5) ----------------

class TuningHeuristicTest : public ::testing::Test {
 protected:
  ProfilingTable table_{1};

  // Executes the heuristic's next suggestion against a scripted energy
  // function, returning the sequence of visited configuration names.
  template <typename EnergyFn>
  std::vector<std::string> drive(std::uint32_t size, EnergyFn&& energy) {
    std::vector<std::string> visited;
    while (auto next = TuningHeuristic::next_config(table_.entry(0), size)) {
      visited.push_back(next->name());
      table_.record(0, *next, obs(energy(*next)));
    }
    return visited;
  }
};

TEST_F(TuningHeuristicTest, AssociativityThenLineSizeOnImprovement) {
  // Energy improves with both higher associativity and longer lines.
  const auto energy = [](const CacheConfig& c) {
    return 100.0 - 10.0 * c.associativity -
           0.1 * static_cast<double>(c.line_bytes);
  };
  const auto visited = drive(8192, energy);
  EXPECT_EQ(visited,
            (std::vector<std::string>{"8KB_1W_16B", "8KB_2W_16B",
                                      "8KB_4W_16B", "8KB_4W_32B",
                                      "8KB_4W_64B"}));
  EXPECT_TRUE(TuningHeuristic::complete(table_.entry(0), 8192));
  EXPECT_EQ(TuningHeuristic::best_known(table_.entry(0), 8192).name(),
            "8KB_4W_64B");
  EXPECT_EQ(TuningHeuristic::explored_count(table_.entry(0), 8192), 5u);
}

TEST_F(TuningHeuristicTest, StopsWhenAssociativityWorsens) {
  // 2-way worsens; line 32 worsens: minimal exploration (3 configs).
  const auto energy = [](const CacheConfig& c) {
    return 10.0 * c.associativity +
           0.5 * static_cast<double>(c.line_bytes);
  };
  const auto visited = drive(8192, energy);
  EXPECT_EQ(visited,
            (std::vector<std::string>{"8KB_1W_16B", "8KB_2W_16B",
                                      "8KB_1W_32B"}));
  EXPECT_EQ(TuningHeuristic::best_known(table_.entry(0), 8192).name(),
            "8KB_1W_16B");
}

TEST_F(TuningHeuristicTest, MidWalkWorseningFreezesAssociativity) {
  // 2-way improves, 4-way worsens; then line 32 improves, 64 worsens.
  const auto energy = [](const CacheConfig& c) {
    double e = 100.0;
    e += (c.associativity == 2) ? -20.0 : (c.associativity == 4 ? 5.0 : 0.0);
    e += (c.line_bytes == 32) ? -10.0 : (c.line_bytes == 64 ? 5.0 : 0.0);
    return e;
  };
  const auto visited = drive(8192, energy);
  EXPECT_EQ(visited,
            (std::vector<std::string>{"8KB_1W_16B", "8KB_2W_16B",
                                      "8KB_4W_16B", "8KB_2W_32B",
                                      "8KB_2W_64B"}));
  EXPECT_EQ(TuningHeuristic::best_known(table_.entry(0), 8192).name(),
            "8KB_2W_32B");
}

TEST_F(TuningHeuristicTest, SingleAssocSizeSkipsPhaseOne) {
  // 2KB has only 1-way in Table 1: goes straight to line exploration.
  const auto energy = [](const CacheConfig& c) {
    return 100.0 - static_cast<double>(c.line_bytes);
  };
  const auto visited = drive(2048, energy);
  EXPECT_EQ(visited,
            (std::vector<std::string>{"2KB_1W_16B", "2KB_1W_32B",
                                      "2KB_1W_64B"}));
  EXPECT_EQ(TuningHeuristic::best_known(table_.entry(0), 2048).name(),
            "2KB_1W_64B");
}

TEST_F(TuningHeuristicTest, ExplorationBoundsAcrossLandscapes) {
  // Property: for any energy landscape the heuristic executes at least 2
  // and at most 5 configurations on the 8KB core (1+2 assoc steps + 2 line
  // steps), and the walk is restartable (stateless over the table).
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    ProfilingTable table(1);
    std::array<double, 18> script{};
    for (auto& v : script) v = rng.uniform(10.0, 100.0);
    std::size_t executed = 0;
    while (auto next =
               TuningHeuristic::next_config(table.entry(0), 8192)) {
      table.record(0, *next,
                   obs(script[*DesignSpace::index_of(*next)]));
      ++executed;
      ASSERT_LE(executed, 5u);
    }
    EXPECT_GE(executed, 2u);
    // Converged best must be one of the explored configs and no worse
    // than the first (1W,16B) config.
    const CacheConfig best =
        TuningHeuristic::best_known(table.entry(0), 8192);
    const auto* best_obs = table.entry(0).find(best);
    ASSERT_NE(best_obs, nullptr);
    EXPECT_LE(best_obs->total_energy.value(),
              script[*DesignSpace::index_of(CacheConfig{8192, 1, 16})]);
  }
}

TEST_F(TuningHeuristicTest, ResumesAcrossInterruptions) {
  // The heuristic must continue where it left off when observations
  // arrive one at a time with other work in between (Section IV.F).
  const auto energy = [](const CacheConfig& c) {
    return 100.0 - 10.0 * c.associativity;
  };
  const auto first = TuningHeuristic::next_config(table_.entry(0), 8192);
  ASSERT_TRUE(first.has_value());
  table_.record(0, *first, obs(energy(*first)));
  // "Interruption": a fresh heuristic query over the same table must pick
  // up at the second step, not restart.
  const auto second = TuningHeuristic::next_config(table_.entry(0), 8192);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->name(), "8KB_2W_16B");
  EXPECT_NE(*first, *second);
}

// ---------------- Energy-advantage decision (Section IV.E) ----------------

TEST(EnergyDecisionTest, NoCandidatesMeansStall) {
  EnergyAdvantageInput input;
  input.energy_on_best = NanoJoules(100);
  input.wait_cycles = 1000;
  const EnergyAdvantageResult result = evaluate_energy_advantage(input);
  EXPECT_FALSE(result.run_on_non_best);
}

TEST(EnergyDecisionTest, RunsWhenStallCostExceedsRunCost) {
  EnergyAdvantageInput input;
  input.energy_on_best = NanoJoules(100);
  input.wait_cycles = 1000;
  input.candidates.push_back({2, NanoJoules(120), NanoJoules(0.05)});
  // stall cost = 100 + 0.05*1000 = 150 > 120 -> run on core 2.
  const EnergyAdvantageResult result = evaluate_energy_advantage(input);
  EXPECT_TRUE(result.run_on_non_best);
  EXPECT_EQ(result.chosen_core, 2u);
  EXPECT_DOUBLE_EQ(result.stall_cost.value(), 150.0);
  EXPECT_DOUBLE_EQ(result.run_cost.value(), 120.0);
}

TEST(EnergyDecisionTest, StallsWhenWaitingIsCheap) {
  EnergyAdvantageInput input;
  input.energy_on_best = NanoJoules(100);
  input.wait_cycles = 100;  // short wait
  input.candidates.push_back({1, NanoJoules(140), NanoJoules(0.05)});
  // stall cost = 100 + 5 = 105 < 140 -> stall.
  const EnergyAdvantageResult result = evaluate_energy_advantage(input);
  EXPECT_FALSE(result.run_on_non_best);
}

TEST(EnergyDecisionTest, PicksTheBestOfSeveralCandidates) {
  EnergyAdvantageInput input;
  input.energy_on_best = NanoJoules(100);
  input.wait_cycles = 2000;
  input.candidates.push_back({1, NanoJoules(190), NanoJoules(0.05)});
  input.candidates.push_back({2, NanoJoules(150), NanoJoules(0.05)});
  input.candidates.push_back({3, NanoJoules(170), NanoJoules(0.05)});
  const EnergyAdvantageResult result = evaluate_energy_advantage(input);
  EXPECT_TRUE(result.run_on_non_best);
  EXPECT_EQ(result.chosen_core, 2u) << "largest margin wins";
}

TEST(EnergyDecisionTest, ZeroWaitNeverRunsOnWorseCore) {
  // If the best core frees up immediately, a non-best core that costs
  // more energy can never be advantageous.
  EnergyAdvantageInput input;
  input.energy_on_best = NanoJoules(100);
  input.wait_cycles = 0;
  input.candidates.push_back({1, NanoJoules(100.01), NanoJoules(10.0)});
  EXPECT_FALSE(evaluate_energy_advantage(input).run_on_non_best);
}

TEST(EnergyDecisionTest, EqualCostTiesResolveToStall) {
  EnergyAdvantageInput input;
  input.energy_on_best = NanoJoules(100);
  input.wait_cycles = 0;
  input.candidates.push_back({1, NanoJoules(100), NanoJoules(0.0)});
  // margin == 0: prose says run "if stall energy is greater" (strict).
  EXPECT_FALSE(evaluate_energy_advantage(input).run_on_non_best);
}

}  // namespace
}  // namespace hetsched
